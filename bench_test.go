package toss

// This file holds one benchmark per table/figure of the paper's evaluation
// (Figures 15(a–c) and 16(a–c)) plus the ablation benchmarks DESIGN.md
// calls out. `go test -bench=. -benchmem` regenerates every series; the
// cmd/experiments binary prints the same data as labelled tables.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/seo"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
	"repro/internal/xmldb"
)

// benchSystem builds a TOSS system over a synthetic DBLP corpus.
func benchSystem(b *testing.B, papers int, eps float64, withSIGMOD bool) (*core.System, *datagen.Corpus) {
	b.Helper()
	gen := datagen.DefaultConfig(papers)
	gen.Seed = 3
	corpus := datagen.Generate(gen)
	s := core.NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		b.Fatal(err)
	}
	dblp.Col.SetMaxBytes(0)
	chunk := 50
	for i := 0; i < len(corpus.Papers); i += chunk {
		end := i + chunk
		if end > len(corpus.Papers) {
			end = len(corpus.Papers)
		}
		key := fmt.Sprintf("dblp-%04d", i/chunk)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:end]))); err != nil {
			b.Fatal(err)
		}
	}
	if withSIGMOD {
		sig, err := s.AddInstance("sigmod")
		if err != nil {
			b.Fatal(err)
		}
		sig.Col.SetMaxBytes(0)
		n := len(corpus.Papers) / 5
		if n < 1 {
			n = 1
		}
		if _, err := sig.Col.PutXML("sigmod-0", strings.NewReader(corpus.SIGMODString(corpus.Papers[:n]))); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Build(experiments.DefaultMeasure(), eps); err != nil {
		b.Fatal(err)
	}
	return s, corpus
}

// BenchmarkFig15Quality regenerates the Figure 15 quality experiment (one
// dataset per iteration: 4 queries scored against ground truth for TAX,
// TOSS(ε=2) and TOSS(ε=3)).
func BenchmarkFig15Quality(b *testing.B) {
	cfg := experiments.DefaultQualityConfig()
	cfg.Datasets = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunQuality(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Outcomes) == 0 {
			b.Fatal("no outcomes")
		}
	}
}

// BenchmarkFig16aSelection measures the Figure 16(a) conjunctive selection
// (2 isa + 4 tag conditions) per data size, TOSS vs the TAX baseline.
func BenchmarkFig16aSelection(b *testing.B) {
	pat := pattern.MustParse(
		`#1 pc #2, #1 pc #3, #1 pc #4 :: ` +
			`#1.tag = "inproceedings" & #2.tag = "title" & #3.tag = "booktitle" & #4.tag = "year" & ` +
			`#2.content isa "operation" & #3.content isa "conference"`)
	for _, papers := range []int{250, 1000} {
		s, _ := benchSystem(b, papers, 3, false)
		docs, err := s.Trees("dblp")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("TOSS/papers=%d", papers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Select("dblp", pat, []int{1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("TAX/papers=%d", papers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tax.Select(tree.NewCollection(), docs, pat, []int{1}, tax.Baseline{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16bJoin measures the Figure 16(b) join (5 tag + 1 similarTo
// conditions) of the DBLP and SIGMOD corpora, TOSS vs the TAX baseline.
func BenchmarkFig16bJoin(b *testing.B) {
	pat := pattern.MustParse(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
			`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
			`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	for _, papers := range []int{100, 400} {
		s, _ := benchSystem(b, papers, 3, true)
		ldocs, _ := s.Trees("dblp")
		rdocs, _ := s.Trees("sigmod")
		b.Run(fmt.Sprintf("TOSS/papers=%d", papers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Join("dblp", "sigmod", pat, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("TAX/papers=%d", papers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst := tree.NewCollection()
				prod := tax.Product(dst, ldocs, rdocs)
				if _, err := tax.Select(dst, prod, pat, nil, tax.Baseline{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16cEpsilon measures TOSS selection time as ε grows (the
// Figure 16(c) sweep): larger ε ⇒ larger SEO clusters ⇒ larger results.
func BenchmarkFig16cEpsilon(b *testing.B) {
	for _, eps := range []float64{0, 2, 4, 6} {
		s, corpus := benchSystem(b, 400, eps, false)
		author := corpus.Authors[0].Canonical()
		pat := pattern.MustParse(fmt.Sprintf(
			`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author))
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Select("dblp", pat, []int{1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSEOPrecompute contrasts answering ~ conditions from the
// precomputed SEO against computing pairwise similarity at query time (the
// design argument behind Definition 8's condition (3)).
func BenchmarkAblationSEOPrecompute(b *testing.B) {
	gen := datagen.DefaultConfig(400)
	gen.Seed = 3
	corpus := datagen.Generate(gen)
	author := corpus.Authors[0].Canonical()
	pat := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author))

	load := func(s *core.System) {
		dblp, err := s.AddInstance("dblp")
		if err != nil {
			b.Fatal(err)
		}
		dblp.Col.SetMaxBytes(0)
		if _, err := dblp.Col.PutXML("dblp-0", strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
			b.Fatal(err)
		}
	}

	withSEO := core.NewSystem()
	load(withSEO)
	if err := withSEO.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	b.Run("precomputed-SEO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := withSEO.Select("dblp", pat, []int{1}); err != nil {
				b.Fatal(err)
			}
		}
	})

	dynamic := core.NewSystem()
	dynamic.MakerConfig.ValueTags = nil // nothing ontologized: every ~ is a live distance computation
	load(dynamic)
	if err := dynamic.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	b.Run("on-the-fly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dynamic.Select("dblp", pat, []int{1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndex contrasts indexed bottom-up XPath evaluation with a
// full document scan in the xmldb substrate.
func BenchmarkAblationIndex(b *testing.B) {
	gen := datagen.DefaultConfig(1000)
	gen.Seed = 3
	corpus := datagen.Generate(gen)
	db := xmldb.New()
	col := db.CreateCollection("dblp")
	col.SetMaxBytes(0)
	if _, err := col.PutXML("dblp-0", strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
		b.Fatal(err)
	}
	col.BuildIndexes()
	const expr = `//inproceedings/booktitle[.='VLDB']`
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := col.Query(expr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := col.QueryScan(expr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLemma1 contrasts the Lemma 1 single-representative node
// distance with the full min-over-pairs distance during SEA clustering with
// a strong measure.
func BenchmarkAblationLemma1(b *testing.B) {
	h := ontology.NewHierarchy()
	gen := datagen.DefaultConfig(400)
	gen.Seed = 3
	corpus := datagen.Generate(gen)
	for _, p := range corpus.Papers {
		for _, a := range p.DBLPAuthors {
			h.AddNode(a)
			h.MustAddEdge(a, "author")
		}
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"lemma1", false}, {"full-pairs", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := seo.Enhance(h, similarity.Levenshtein{}, 2,
					seo.Options{CompatibilityFilter: true, DisableLemma1: mode.disable}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReachability contrasts the memoized reachability index
// with per-query DFS for isa lookups over the fused hierarchy.
func BenchmarkAblationReachability(b *testing.B) {
	s, _ := benchSystem(b, 400, 3, false)
	h := s.FusedIsa.Hierarchy
	nodes := h.Nodes()
	h.BuildReachability()
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < len(nodes); j += 7 {
				h.Leq(nodes[j], "conference")
			}
		}
	})
	b.Run("dfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < len(nodes); j += 7 {
				h.LeqNoIndex(nodes[j], "conference")
			}
		}
	})
}

// BenchmarkSEABuild measures the Similarity Enhancer itself (the
// precomputation the Query Executor amortises), per ontology size.
func BenchmarkSEABuild(b *testing.B) {
	for _, papers := range []int{100, 400} {
		gen := datagen.DefaultConfig(papers)
		gen.Seed = 3
		corpus := datagen.Generate(gen)
		s := core.NewSystem()
		dblp, err := s.AddInstance("dblp")
		if err != nil {
			b.Fatal(err)
		}
		dblp.Col.SetMaxBytes(0)
		if _, err := dblp.Col.PutXML("d", strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
			b.Fatal(err)
		}
		if err := s.MakeOntologies(); err != nil {
			b.Fatal(err)
		}
		if err := s.Fuse(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("terms=%d", s.OntologyTermCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.Enhance(experiments.DefaultMeasure(), 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimilarityMeasures measures the individual string measures on
// representative author-name pairs.
func BenchmarkSimilarityMeasures(b *testing.B) {
	pairs := [][2]string{
		{"Jeffrey D. Ullman", "J. D. Ullman"},
		{"Gian Luigi Ferrari", "GianLuigi Ferrari"},
		{"Materialized View and Index Selection Tool", "Materialized View and Index Selection Tool."},
	}
	for _, name := range similarity.Names() {
		m := similarity.ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					m.Distance(p[0], p[1])
				}
			}
		})
	}
}

// BenchmarkEmbedding measures the raw TAX embedding search on one document.
func BenchmarkEmbedding(b *testing.B) {
	gen := datagen.DefaultConfig(200)
	gen.Seed = 3
	corpus := datagen.Generate(gen)
	col := tree.NewCollection()
	t, err := col.ParseXMLString(corpus.DBLPString(corpus.Papers))
	if err != nil {
		b.Fatal(err)
	}
	pat := pattern.MustParse(
		`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #3.content = "1999"`)
	c := tax.Compile(pat)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Embeddings(t, tax.Baseline{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSelect contrasts sequential and fan-out candidate-document
// evaluation for a selection over a chunked corpus.
func BenchmarkParallelSelect(b *testing.B) {
	s, corpus := benchSystem(b, 1000, 3, false)
	author := corpus.Authors[0].Canonical()
	pat := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s.Parallelism = workers
			for i := 0; i < b.N; i++ {
				if _, err := s.Select("dblp", pat, []int{1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	s.Parallelism = 1
}
