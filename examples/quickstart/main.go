// Quickstart: load a tiny DBLP-style instance, build the similarity
// enhanced ontology, and run one similarity selection — the "find all papers
// by J. Ullman" query from the paper's introduction, which plain exact-match
// querying cannot answer because the author appears under three different
// spellings.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	toss "repro"
)

const dblpXML = `<dblp>
  <inproceedings key="u1">
    <author>Jeffrey D. Ullman</author>
    <title>Principles of Database Systems</title>
    <booktitle>PODS</booktitle>
    <year>1997</year>
  </inproceedings>
  <inproceedings key="u2">
    <author>J. Ullman</author>
    <author>Hector Garcia-Molina</author>
    <title>Database Systems Implementation</title>
    <booktitle>SIGMOD Conference</booktitle>
    <year>1999</year>
  </inproceedings>
  <inproceedings key="u3">
    <author>Jeff Ullman</author>
    <title>Information Integration Using Logical Views</title>
    <booktitle>ICDT</booktitle>
    <year>1997</year>
  </inproceedings>
  <inproceedings key="x1">
    <author>Paolo Ciancarini</author>
    <title>A Case Study in Coordination</title>
    <booktitle>SIGMOD Conference</booktitle>
    <year>1999</year>
  </inproceedings>
</dblp>`

func main() {
	log.SetFlags(0)

	// 1. Load the instance into a fresh TOSS system.
	sys := toss.New()
	inst, err := sys.AddInstance("dblp")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.Col.PutXML("dblp.xml", strings.NewReader(dblpXML)); err != nil {
		log.Fatal(err)
	}

	// 2. Build: Ontology Maker + canonical fusion + SEA similarity
	//    enhancement, with the rule-based person-name measure at ε = 3.
	if err := sys.Build(toss.MeasureByName("name-rule"), 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused ontology: %d terms, SEO: %d nodes\n\n",
		sys.OntologyTermCount(), sys.Ontology().SEO.NodeCount())

	// 3. Query: all papers with an author similar to "Jeffrey D. Ullman".
	p := toss.MustParsePattern(`#1 pc #2 :: #1.tag = "inproceedings" & ` +
		`#2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	res, err := sys.Query(context.Background(),
		toss.QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
	if err != nil {
		log.Fatal(err)
	}
	answers := res.Answers
	fmt.Printf("TOSS finds %d papers (exact match would find 1):\n\n", len(answers))
	for _, t := range answers {
		if err := t.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
