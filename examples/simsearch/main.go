// simsearch demonstrates how the similarity threshold ε controls the
// precision/recall trade-off of similarity search over a synthetic
// bibliography: the same author-name query returns more (and eventually
// wrong) answers as ε grows, and the SEO cluster of the queried name
// grows accordingly.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	toss "repro"

	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)

	gen := datagen.DefaultConfig(150)
	gen.Seed = 42
	gen.AuthorPool = 20
	gen.SurnamePool = 6
	gen.VariantRate = 0.85
	gen.TypoRate = 0.2
	gen.MangleRate = 0.25
	corpus := datagen.Generate(gen)

	// Query the most-published author.
	best, bestCount := 0, 0
	for _, a := range corpus.Authors {
		if n := len(corpus.PapersByAuthor(a.ID)); n > bestCount {
			best, bestCount = a.ID, n
		}
	}
	author := corpus.Authors[best]
	truth := corpus.PapersByAuthor(best)
	fmt.Printf("query author: %s (%d papers, mentions: %s)\n\n",
		author.Canonical(), bestCount, strings.Join(corpus.MentionsOf(best), " | "))

	query := toss.MustParsePattern(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`,
		author.Canonical()))

	fmt.Printf("%5s %9s %9s %9s %9s  %s\n", "eps", "returned", "correct", "precision", "recall", "SEO cluster of the name")
	for _, eps := range []float64{0, 1, 2, 3, 4} {
		sys := toss.New()
		inst, err := sys.AddInstance("dblp")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := inst.Col.PutXML("dblp.xml",
			strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
			log.Fatal(err)
		}
		if err := sys.Build(toss.MeasureByName("name-rule"), eps); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Query(context.Background(),
			toss.QueryRequest{Pattern: query, Instance: "dblp", Adorn: []int{1}})
		if err != nil {
			log.Fatal(err)
		}
		ids := paperIDs(res.Answers)
		correct := 0
		for _, id := range ids {
			if truth[id] {
				correct++
			}
		}
		precision, recall := 1.0, 0.0
		if len(ids) > 0 {
			precision = float64(correct) / float64(len(ids))
		}
		if len(truth) > 0 {
			recall = float64(correct) / float64(len(truth))
		}
		cluster := sys.SimilarStrings(author.Canonical())
		sort.Strings(cluster)
		if len(cluster) > 6 {
			cluster = append(cluster[:6], "...")
		}
		fmt.Printf("%5.1f %9d %9d %9.3f %9.3f  %s\n",
			eps, len(ids), correct, precision, recall, strings.Join(cluster, " | "))
	}
}

func paperIDs(trees []*toss.Tree) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range trees {
		for _, n := range t.FindTag("@key") {
			if !seen[n.Content] {
				seen[n.Content] = true
				out = append(out, n.Content)
			}
		}
	}
	return out
}
