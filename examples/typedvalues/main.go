// typedvalues demonstrates the typed-value machinery of the paper's Section
// 5: types with domains, conversion functions with closure under identity
// and composition, and well-typed comparisons through least common
// supertypes. A catalogue lists part dimensions in millimetres in one source
// and centimetres in another; TOSS compares them as the same quantity, the
// way the paper's Euro/USD discussion prescribes.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	toss "repro"

	"repro/internal/pattern"
	"repro/internal/types"
)

const metricXML = `<catalog>
  <part key="m1">
    <name>spacer</name>
    <width>25</width>
  </part>
  <part key="m2">
    <name>bracket</name>
    <width>40</width>
  </part>
</catalog>`

func main() {
	log.SetFlags(0)
	sys := toss.New()

	// Register a unit type: 1 cm = 10 mm. MustDeclareUnit installs both
	// conversion directions and the subtype edge cm ≤ mm.
	sys.Types.MustDeclareUnit("cm", "mm", 10)

	inst, err := sys.AddInstance("catalog")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.Col.PutXML("catalog.xml", strings.NewReader(metricXML)); err != nil {
		log.Fatal(err)
	}
	// Tag the width contents as millimetres so comparisons are unit-aware.
	docs, err := sys.Trees("catalog")
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		for _, n := range d.FindTag("width") {
			n.ContentType = "mm"
		}
	}
	if err := sys.Build(toss.MeasureByName("levenshtein"), 1); err != nil {
		log.Fatal(err)
	}

	// "width = 2.5 cm" matches the 25 mm part: both sides convert to the
	// least common supertype (mm) before comparing.
	q := `#1 pc #2 :: #1.tag = "part" & #2.tag = "width" & #2.content = "2.5":cm`
	p := toss.MustParsePattern(q)
	if errs := sys.CheckWellTyped(p); len(errs) != 0 {
		log.Fatalf("query is ill-typed: %v", errs)
	}
	qres, err := sys.Query(context.Background(),
		toss.QueryRequest{Pattern: p, Instance: "catalog", Adorn: []int{1}})
	if err != nil {
		log.Fatal(err)
	}
	res := qres.Answers
	fmt.Printf("width = 2.5cm matches %d part(s):\n", len(res))
	for _, t := range res {
		fmt.Printf("  %s (%s mm)\n", t.Root.ChildContent("name"), t.Root.ChildContent("width"))
	}

	// Range queries convert too: parts wider than 3 cm.
	q2 := `#1 pc #2 :: #1.tag = "part" & #2.tag = "width" & #2.content > "3":cm`
	res2, err := sys.Query(context.Background(),
		toss.QueryRequest{Pattern: toss.MustParsePattern(q2), Instance: "catalog", Adorn: []int{1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("width > 3cm matches %d part(s)\n", len(res2.Answers))

	// instance_of consults the type domain.
	q3 := `#1 pc #2 :: #1.tag = "part" & #2.tag = "width" & #2.content instance_of mm`
	res3, err := sys.Query(context.Background(),
		toss.QueryRequest{Pattern: toss.MustParsePattern(q3), Instance: "catalog", Adorn: []int{1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("width instance_of mm matches %d part(s)\n", len(res3.Answers))

	// The static type checker rejects comparisons with no common supertype.
	sys.Types.MustRegister(&types.Type{Name: "colour"})
	bad := pattern.MustParse(`#1 :: "red":colour = "3":cm`)
	if errs := sys.CheckWellTyped(bad); len(errs) > 0 {
		fmt.Printf("ill-typed query rejected: %s\n", errs[0].Reason)
	}
}
