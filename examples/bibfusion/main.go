// bibfusion reproduces Example 13 of the paper: integrate the DBLP and
// SIGMOD bibliographies (whose schemas, venue spellings and author formats
// all differ) and find the papers recorded in both — a condition join whose
// selection uses a similarTo condition on titles. It also prints the fused
// ontology nodes where interoperation constraints merged the two schemas'
// terms (booktitle = conference, confYear = year).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	toss "repro"
)

const dblpXML = `<dblp>
  <inproceedings key="d1">
    <author>Sanjay Agrawal</author>
    <author>Surajit Chaudhuri</author>
    <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
    <pages>608</pages>
    <year>2001</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d2">
    <author>Elisa Bertino</author>
    <author>Barbara Carminati</author>
    <title>Securing XML Documents with Author-X</title>
    <pages>21-31</pages>
    <year>2001</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d3">
    <author>Paolo Ciancarini</author>
    <title>Coordination Models and Languages</title>
    <pages>61-70</pages>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>`

const sigmodXML = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000.</title>
      <author>S. Agrawal</author>
      <author>S. Chaudhuri</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2001</confYear>
    </article>
    <article key="s2">
      <title>Securing XML Documents with Author-X.</title>
      <author>E. Bertino</author>
      <author>B. Carminati</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2001</confYear>
    </article>
    <article key="s3">
      <title>Schema Evolution in Heterogeneous Stores.</title>
      <author>M. Ferrari</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2001</confYear>
    </article>
  </articles>
</ProceedingsPage>`

func main() {
	log.SetFlags(0)
	sys := toss.New()
	dblp, err := sys.AddInstance("dblp")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dblp.Col.PutXML("dblp.xml", strings.NewReader(dblpXML)); err != nil {
		log.Fatal(err)
	}
	sigmod, err := sys.AddInstance("sigmod")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sigmod.Col.PutXML("sigmod.xml", strings.NewReader(sigmodXML)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Build(toss.MeasureByName("name-rule"), 3); err != nil {
		log.Fatal(err)
	}

	// Show how fusion merged schema terms across the two sources.
	fmt.Println("fused ontology nodes that merged terms from both sources:")
	for name, members := range sys.Ontology().FusedIsa.Members {
		sources := map[int]bool{}
		for _, q := range members {
			sources[q.Source] = true
		}
		if len(sources) > 1 && len(members) > 2 {
			var terms []string
			for _, q := range members {
				terms = append(terms, q.String())
			}
			fmt.Printf("  %s = {%s}\n", name, strings.Join(terms, ", "))
		}
	}
	fmt.Println()

	// Example 13: papers in the SIGMOD DB whose title is similar to the
	// title of some SIGMOD-conference paper recorded in DBLP.
	p := toss.MustParsePattern(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	jres, err := sys.Query(context.Background(),
		toss.QueryRequest{Pattern: p, Instance: "dblp", Right: "sigmod"})
	if err != nil {
		log.Fatal(err)
	}
	answers := jres.Answers
	fmt.Printf("join on similar titles: %d match(es)\n", len(answers))
	for _, t := range answers {
		titles := t.FindTag("title")
		for _, n := range titles {
			fmt.Printf("  title: %s\n", n.Content)
		}
	}

	// The same author, spelled differently in the two sources, is
	// recognised by the similarity enhanced ontology.
	fmt.Println()
	for _, pair := range [][2]string{
		{"Elisa Bertino", "E. Bertino"},
		{"Sanjay Agrawal", "S. Agrawal"},
		{"Sanjay Agrawal", "E. Bertino"},
	} {
		p := toss.MustParsePattern(fmt.Sprintf(
			`#1 :: #1.tag = "dblp" & %q ~ %q`, pair[0], pair[1]))
		res, err := sys.Query(context.Background(),
			toss.QueryRequest{Pattern: p, Instance: "dblp"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q ~ %q : %v\n", pair[0], pair[1], len(res.Answers) > 0)
	}
}
