// govquery reproduces the motivating example of the paper's introduction:
// "find all papers having at least one author from the US government". No
// author lists their affiliation as "US Government" — they write "US Census
// Bureau", "US Army", "Army Research Lab" and so on — so exact matching
// returns nothing. TOSS answers the query through the part-of hierarchy the
// Ontology Maker builds from the lexicon.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	toss "repro"
)

const papersXML = `<dblp>
  <inproceedings key="p1">
    <author>Ann Smith</author>
    <affiliation>US Census Bureau</affiliation>
    <title>Scalable Census Tabulation</title>
    <year>2002</year>
  </inproceedings>
  <inproceedings key="p2">
    <author>Bob Jones</author>
    <affiliation>Army Research Lab</affiliation>
    <title>Secure Multimodal Decision Architectures</title>
    <year>2003</year>
  </inproceedings>
  <inproceedings key="p3">
    <author>Carol White</author>
    <affiliation>Stanford University</affiliation>
    <title>Ontology Algebra for Interoperation</title>
    <year>2001</year>
  </inproceedings>
  <inproceedings key="p4">
    <author>Dan Brown</author>
    <affiliation>NASA</affiliation>
    <title>Telemetry Stream Compression</title>
    <year>2000</year>
  </inproceedings>
  <inproceedings key="p5">
    <author>Eve Green</author>
    <affiliation>Google</affiliation>
    <title>Web-Scale Index Construction</title>
    <year>2003</year>
  </inproceedings>
</dblp>`

func main() {
	log.SetFlags(0)
	sys := toss.New()
	inst, err := sys.AddInstance("papers")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := inst.Col.PutXML("papers.xml", strings.NewReader(papersXML)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Build(toss.MeasureByName("name-rule"), 2); err != nil {
		log.Fatal(err)
	}

	run := func(label, src string) {
		p := toss.MustParsePattern(src)
		res, err := sys.Query(context.Background(),
			toss.QueryRequest{Pattern: p, Instance: "papers", Adorn: []int{1}})
		if err != nil {
			log.Fatal(err)
		}
		answers := res.Answers
		fmt.Printf("%s -> %d paper(s)\n", label, len(answers))
		for _, t := range answers {
			if err := t.WriteXML(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
	}

	// The part-of hierarchy knows US Census Bureau ⊑ US Department of
	// Commerce ⊑ US Government, Army Research Lab ⊑ US Army ⊑ ... etc.
	run(`affiliation part_of "US Government"`,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "affiliation" & #2.content part_of "us government"`)

	// The isa hierarchy classifies Google as a web search company, which is
	// a computer company (the paper's Section 1 example).
	run(`affiliation isa "computer company"`,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "affiliation" & #2.content isa "computer company"`)

	// Exact matching finds nothing, which is the paper's point.
	run(`affiliation = "US Government" (exact)`,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "affiliation" & #2.content = "US Government"`)
}
