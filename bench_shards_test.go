package toss

// Shard ablation benchmarks (benchstat-friendly): the same unselective scan
// query on the same corpus at different shard counts. Answers are identical
// at every count (see internal/core/shards_query_test.go and
// internal/xmldb/shards_test.go); only the scatter width differs. The scan
// fans out one worker per shard, so the speedup is bounded by
// min(shards, GOMAXPROCS) — on a single-CPU runner the scatter serialises
// and the ratio stays near 1.0 by construction, which is why
// TestWriteBenchShardsJSON records gomaxprocs alongside the timings.
//
//	go test -run NONE -bench 'BenchmarkShard' -count 10 | benchstat -
//	GOMAXPROCS=8 go test -run TestWriteBenchShardsJSON -v

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/pattern"
)

// shardBenchSystem is plannerBenchSystem with a configurable shard count:
// one paper per document so the hash partitioning has documents to spread
// and every shard owns a slice of the scan work.
func shardBenchSystem(b testing.TB, papers, shards int) (*core.System, *datagen.Corpus) {
	b.Helper()
	gen := datagen.DefaultConfig(papers)
	gen.Seed = 11
	corpus := datagen.Generate(gen)
	s := core.NewSystem()
	s.DB.SetDefaultShards(shards)
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		b.Fatal(err)
	}
	dblp.Col.SetMaxBytes(0)
	for i := range corpus.Papers {
		key := fmt.Sprintf("dblp-%05d", i)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:i+1]))); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Build(experiments.DefaultMeasure(), 3); err != nil {
		b.Fatal(err)
	}
	return s, corpus
}

// shardBenchPattern is deliberately unselective: contains "a" rewrites to a
// title path matching nearly every document, so evaluation walks the whole
// collection and the per-shard scatter is the dominant cost.
func shardBenchPattern() *pattern.Tree {
	return pattern.MustParse(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content contains "a"`)
}

func benchmarkShardSelect(b *testing.B, shards int) {
	s, _ := shardBenchSystem(b, 400, shards)
	pat := shardBenchPattern()
	ctx := context.Background()
	req := core.QueryRequest{Pattern: pat, Instance: "dblp", Adorn: []int{1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardSelect(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) { benchmarkShardSelect(b, n) })
	}
}

// TestWriteBenchShardsJSON runs the 1-vs-N shard ablation once and records
// it in BENCH_shards.json (ns/op per shard count plus the ratio against the
// unsharded layout), so CI and later sessions can diff scatter-gather
// performance without re-running benchstat by hand. The file also records
// GOMAXPROCS: the scan speedup is bounded by min(shards, GOMAXPROCS), so a
// near-1.0 ratio on a single-CPU runner is expected, not a regression.
func TestWriteBenchShardsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	type entry struct {
		NsPerOp  int64   `json:"ns_per_op"`
		AllocsOp int64   `json:"allocs_per_op"`
		N        int     `json:"n"`
		Speedup  float64 `json:"speedup_vs_1shard,omitempty"`
	}
	procs := runtime.GOMAXPROCS(0)
	report := struct {
		GOMAXPROCS int              `json:"gomaxprocs"`
		Note       string           `json:"note,omitempty"`
		ScanSelect map[string]entry `json:"scan_select"`
	}{GOMAXPROCS: procs, ScanSelect: map[string]entry{}}
	if procs < 4 {
		report.Note = fmt.Sprintf(
			"scan speedup is bounded by min(shards, GOMAXPROCS)=%d on this runner; re-run on a multi-core machine for the parallel ratio", procs)
	}

	var base int64
	for _, n := range []int{1, 4} {
		r := testing.Benchmark(func(b *testing.B) { benchmarkShardSelect(b, n) })
		e := entry{NsPerOp: r.NsPerOp(), AllocsOp: r.AllocsPerOp(), N: r.N}
		if n == 1 {
			base = r.NsPerOp()
		} else if e.NsPerOp > 0 {
			e.Speedup = float64(base) / float64(e.NsPerOp)
		}
		report.ScanSelect[fmt.Sprintf("shards=%d", n)] = e
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shards.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	sp := report.ScanSelect["shards=4"].Speedup
	t.Logf("shard scan speedup at 4 shards: %.2fx (GOMAXPROCS=%d)", sp, procs)
	if procs >= 4 && sp < 2.0 {
		t.Logf("warning: expected >=2x at 4 shards with %d procs, got %.2fx", procs, sp)
	}
}
