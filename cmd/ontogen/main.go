// Command ontogen runs the TOSS Ontology Maker and Similarity Enhancer over
// one or more XML files and prints the per-instance ontologies, the derived
// interoperation constraints' fusion, and the similarity enhanced ontology.
//
// Usage:
//
//	ontogen [-measure name-rule] [-eps 3] [-show isa|part-of|seo|all] file1.xml [file2.xml ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/similarity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ontogen: ")
	measureName := flag.String("measure", "name-rule", "similarity measure: "+strings.Join(similarity.Names(), ", "))
	eps := flag.Float64("eps", 3, "similarity threshold epsilon")
	show := flag.String("show", "all", "what to print: isa, part-of, seo, all")
	rules := flag.String("rules", "", "DBA rule file to merge into the lexicon (isa:/part:/syn: lines)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT for the fused hierarchies instead of text")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ontogen [flags] file1.xml [file2.xml ...]")
		os.Exit(2)
	}
	measure := similarity.ByName(*measureName)
	if measure == nil {
		log.Fatalf("unknown measure %q", *measureName)
	}

	sys := core.NewSystem()
	if *rules != "" {
		if err := sys.Lexicon.LoadRulesFile(*rules); err != nil {
			log.Fatal(err)
		}
	}
	for i, file := range flag.Args() {
		in, err := sys.AddInstance(fmt.Sprintf("src%d", i+1))
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(file)
		if err != nil {
			log.Fatal(err)
		}
		_, err = in.Col.PutXML(file, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", file, err)
		}
	}
	if err := sys.Build(measure, *eps); err != nil {
		log.Fatalf("building: %v", err)
	}

	if *dot {
		if *show == "isa" || *show == "all" {
			if err := sys.Ontology().FusedIsa.WriteDOT(os.Stdout, "isa"); err != nil {
				log.Fatal(err)
			}
		}
		if *show == "part-of" || *show == "all" {
			if err := sys.Ontology().FusedPart.WriteDOT(os.Stdout, "partof"); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	if *show == "isa" || *show == "all" {
		fmt.Println("=== fused isa hierarchy ===")
		fmt.Print(sys.Ontology().FusedIsa.String())
	}
	if *show == "part-of" || *show == "all" {
		fmt.Println("=== fused part-of hierarchy ===")
		fmt.Print(sys.Ontology().FusedPart.String())
	}
	if *show == "seo" || *show == "all" {
		fmt.Printf("=== similarity enhanced ontology (measure=%s eps=%g) ===\n", *measureName, *eps)
		fmt.Print(sys.Ontology().SEO.String())
	}
	log.Printf("instances=%d fused-terms=%d seo-nodes=%d",
		len(sys.Instances), sys.OntologyTermCount(), sys.Ontology().SEO.NodeCount())
}
