package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureA = `<dblp>
  <inproceedings key="d1">
    <author>Elisa Bertino</author>
    <title>Securing XML Documents</title>
    <booktitle>SIGMOD Conference</booktitle>
    <year>2000</year>
  </inproceedings>
</dblp>`

const fixtureB = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Securing XML Documents.</title>
      <author>E. Bertino</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2000</confYear>
    </article>
  </articles>
</ProceedingsPage>`

func buildOntogen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ontogen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building ontogen: %v\n%s", err, out)
	}
	return bin
}

func TestOntogenTwoSources(t *testing.T) {
	bin := buildOntogen(t)
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xml")
	b := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(a, []byte(fixtureA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(fixtureB), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-eps", "3", a, b).CombinedOutput()
	if err != nil {
		t.Fatalf("ontogen failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"fused isa hierarchy",
		"fused part-of hierarchy",
		"similarity enhanced ontology",
		"booktitle", // fused schema node
		"seo-nodes",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The schema merge (booktitle = conference) shows up as one node whose
	// member list spans both sources.
	if !strings.Contains(s, "booktitle:1") || !strings.Contains(s, "conference:2") {
		t.Errorf("fusion member listing missing source-qualified terms:\n%s", s)
	}
}

func TestOntogenErrors(t *testing.T) {
	bin := buildOntogen(t)
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Errorf("no args should fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "-measure", "nope", "x.xml").CombinedOutput(); err == nil {
		t.Errorf("unknown measure should fail:\n%s", out)
	}
	if out, err := exec.Command(bin, "/missing-file.xml").CombinedOutput(); err == nil {
		t.Errorf("missing file should fail:\n%s", out)
	}
}
