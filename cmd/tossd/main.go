// Command tossd serves TOSS queries over HTTP. Unlike tossql, which rebuilds
// the lexicon, fused ontology and SEO on every invocation, tossd builds them
// once at startup and answers queries from the long-lived structures.
//
// Usage:
//
//	tossd -instance dblp=file1.xml[,file2.xml] [-instance sigmod=...] \
//	      [-addr :8080] [-measure name-rule] [-eps 3] [-rules file] \
//	      [-max-inflight 4] [-max-queue 8] [-timeout 30s] [-max-timeout 2m] \
//	      [-cache-size 256] [-parallelism N] [-shards N] \
//	      [-data DIR] [-wal-sync interval] [-wal-max-bytes N]
//
// With -data, each instance journals every mutation to a per-shard
// write-ahead log under <data>/<name>/ and recovers from it on startup
// (see docs/DURABILITY.md); seed files are skipped once the journal holds
// state. An instance spec with an empty file list ("name=") declares a
// collection fed only by ingestion and recovery.
//
// Endpoints: POST /v1/query (and its legacy alias /query), POST /v1/docs
// (NDJSON bulk ingestion; see docs/SERVER.md), GET /healthz, /readyz,
// /v1/stats-summary, /statz, /metrics. The listener binds before seed
// loading and WAL recovery begin: /healthz answers ok (the process is
// alive) while /readyz answers 503 "loading" until the system is built, so
// routers and balancers can watch a node come up instead of getting
// connection refused. SIGINT/SIGTERM flips /readyz to 503 "draining",
// waits -drain-grace for probers to notice, then drains in-flight queries
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/similarity"
	"repro/internal/xmldb"
)

type instanceFlag struct {
	specs []string
}

func (f *instanceFlag) String() string { return strings.Join(f.specs, " ") }
func (f *instanceFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file1.xml[,file2.xml], got %q", v)
	}
	f.specs = append(f.specs, v)
	return nil
}

// handlerBox wraps the active handler so atomic.Value sees one concrete
// type across the bootstrap-to-real swap.
type handlerBox struct {
	h http.Handler
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tossd: ")
	var instances instanceFlag
	flag.Var(&instances, "instance", "instance spec name=file1.xml[,file2.xml] (repeatable)")
	addr := flag.String("addr", ":8080", "listen address")
	measureName := flag.String("measure", "name-rule", "similarity measure: "+strings.Join(similarity.Names(), ", "))
	eps := flag.Float64("eps", 3, "similarity threshold epsilon")
	rules := flag.String("rules", "", "DBA rule file to merge into the lexicon (isa:/part:/syn: lines)")
	parallelism := flag.Int("parallelism", 0, "embedding-search worker count per query (0 = one per shard)")
	minSimIndexDocs := flag.Int("min-simindex-docs", 0, "document count below which ~ queries skip the similarity candidate index (0 = planner default)")
	noAdaptive := flag.Bool("no-adaptive", false, "disable the adaptive feedback layer (corrections, auto-tuned gates, mid-stream re-optimization); the static cost-based planner still runs")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "hash-partitioned shards per collection (1 reproduces the unsharded layout; answers are identical at any count)")
	maxInFlight := flag.Int("max-inflight", 4, "maximum concurrently executing queries")
	maxQueue := flag.Int("max-queue", -1, "maximum queries waiting for a slot before 429 (-1 = 2×max-inflight)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on per-request timeout_ms")
	cacheSize := flag.Int("cache-size", 256, "result-cache capacity in entries (0 disables)")
	dataDir := flag.String("data", "", "durable data root: each instance journals to <data>/<name>/ and recovers from it on startup (empty = in-memory only)")
	walSync := flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | off")
	walMaxBytes := flag.Int64("wal-max-bytes", 4<<20, "WAL size per collection that triggers background compaction (snapshot + segment rotation)")
	drainGrace := flag.Duration("drain-grace", 0, "after SIGTERM, keep serving with /readyz=503 for this long before closing the listener")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tossd [flags]")
		flag.Usage()
		os.Exit(2)
	}
	if len(instances.specs) == 0 {
		log.Fatal("at least one -instance is required")
	}
	measure := similarity.ByName(*measureName)
	if measure == nil {
		log.Fatalf("unknown measure %q (want one of %s)", *measureName, strings.Join(similarity.Names(), ", "))
	}

	// Bind the listener and start serving a bootstrap handler before any
	// seed loading or WAL recovery: readiness (/readyz 503 "loading") is
	// observable from the first instant, which is what lets tossrouter's
	// prober distinguish "coming up" from "gone". The real handler is
	// swapped in once the system is built.
	var handler atomic.Value // holds handlerBox; atomic.Value needs one concrete type
	boot := http.NewServeMux()
	boot.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok loading")
	})
	boot.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "loading", http.StatusServiceUnavailable)
	})
	handler.Store(handlerBox{boot})
	httpSrv := &http.Server{Addr: *addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(handlerBox).h.ServeHTTP(w, r)
	})}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.Serve(ln)
	}()
	log.Printf("listening on %s (loading)", *addr)

	sys := core.NewSystem()
	if *parallelism > 0 {
		sys.Parallelism = *parallelism
	}
	sys.DB.SetDefaultShards(*shards)
	if *minSimIndexDocs > 0 {
		sys.Planner.SetMinSimIndexDocs(*minSimIndexDocs)
	}
	if *noAdaptive {
		sys.AdaptiveDisabled = true
	}
	if *rules != "" {
		if err := sys.Lexicon.LoadRulesFile(*rules); err != nil {
			log.Fatal(err)
		}
	}
	syncPolicy, err := xmldb.ParseSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, spec := range instances.specs {
		name, files, _ := strings.Cut(spec, "=")
		in, err := sys.AddInstance(name)
		if err != nil {
			log.Fatal(err)
		}
		recovered := 0
		if *dataDir != "" {
			// Attach the WAL before seeding: recovery replays any previous
			// state, and every mutation from here on is journaled.
			walDir := filepath.Join(*dataDir, name)
			opts := xmldb.WALOptions{
				Sync:     syncPolicy,
				MaxBytes: *walMaxBytes,
				OnError:  func(err error) { log.Printf("wal %s: %v", name, err) },
			}
			if err := in.Col.OpenWAL(walDir, opts); err != nil {
				log.Fatalf("opening wal for %s: %v", name, err)
			}
			recovered = in.Col.DocCount()
			if st := in.Col.WALStats(); recovered > 0 {
				log.Printf("instance %s: recovered %d doc(s) at generation %d (%d wal record(s) replayed) from %s",
					name, recovered, st.RecoveredGeneration, st.ReplayedRecords, walDir)
			}
		}
		for _, file := range strings.Split(files, ",") {
			if file == "" {
				continue // "name=" declares an instance fed only by ingestion/recovery
			}
			if recovered > 0 {
				// The journal is authoritative once it holds state: seed files
				// already live there (possibly mutated since) and reloading
				// them would clobber ingested updates.
				log.Printf("instance %s: skipping seed %s (recovered state is authoritative)", name, file)
				continue
			}
			f, err := os.Open(file)
			if err != nil {
				log.Fatal(err)
			}
			_, err = in.Col.PutXML(file, f)
			f.Close()
			if err != nil {
				log.Fatalf("loading %s: %v", file, err)
			}
		}
		log.Printf("instance %s: %d doc(s), %d bytes, %d shard(s)", name, in.Col.DocCount(), in.Col.ByteSize(), in.Col.ShardCount())
	}
	if err := sys.Build(measure, *eps); err != nil {
		log.Fatalf("building SEO: %v", err)
	}
	// Build the inverted indexes eagerly so the first query pays no
	// index-construction latency.
	for _, in := range sys.Instances {
		in.Col.BuildIndexes()
	}
	log.Printf("built in %s: fused ontology %d terms, SEO %d nodes (measure=%s eps=%g)",
		time.Since(start).Round(time.Millisecond), sys.OntologyTermCount(), sys.Ontology().SEO.NodeCount(), *measureName, *eps)

	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		Logger:         log.Default(),
	}
	if *maxQueue < 0 {
		cfg.MaxQueue = 2 * *maxInFlight
	}
	if *cacheSize == 0 {
		cfg.CacheSize = -1
	}
	srv, err := server.New(sys, cfg)
	if err != nil {
		log.Fatal(err)
	}
	handler.Store(handlerBox{srv.Handler()})
	log.Printf("ready on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Graceful drain: /readyz flips to 503 immediately so routers and
	// balancers take this node out of rotation, the grace window gives their
	// probers time to notice while queries still execute, then the listener
	// closes and in-flight queries (bounded by max-timeout) finish.
	srv.StartDraining()
	log.Printf("shutting down: draining %d in-flight, %d queued (grace %s)", srv.Limiter().InFlight(), srv.Limiter().Queued(), *drainGrace)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("shutdown: %v", err)
	}
	// Close the journals last: the drain above guarantees no mutation is in
	// flight, so the final fsync captures everything the server acknowledged.
	for _, in := range sys.Instances {
		if err := in.Col.CloseWAL(); err != nil {
			log.Printf("closing wal for %s: %v", in.Name, err)
		}
	}
	log.Printf("drained, bye")
}
