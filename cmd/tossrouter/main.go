// Command tossrouter fronts a static cluster of tossd nodes: it scatters
// queries over every node that can hold the target collection, merges the
// per-node NDJSON answer streams back into global insertion-sequence order,
// and consistent-hashes ingested documents across the cluster while
// assigning the cluster-wide sequences that make that merge exact. Routed
// answers are byte-equivalent to a single node holding every document.
//
// Usage:
//
//	tossrouter -node http://10.0.0.1:8080 -node http://10.0.0.2:8080 \
//	           [-addr :9090] [-probe-interval 2s] [-summary-ttl 2s] \
//	           [-retries 2] [-retry-backoff 50ms] \
//	           [-max-inflight 16] [-max-queue 32] \
//	           [-timeout 30s] [-max-timeout 2m] [-drain-grace 0s]
//
// Endpoints mirror tossd where the semantics carry over: POST /v1/query
// (and /query), POST /v1/docs, GET /healthz, /readyz, /statz, /metrics.
// See docs/CLUSTER.md for topology, partial-result and retry semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

type nodeFlag struct {
	urls []string
}

func (f *nodeFlag) String() string { return strings.Join(f.urls, " ") }
func (f *nodeFlag) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		return fmt.Errorf("empty node URL")
	}
	f.urls = append(f.urls, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tossrouter: ")
	var nodes nodeFlag
	flag.Var(&nodes, "node", "tossd base URL, e.g. http://10.0.0.1:8080 (repeatable; at least one required)")
	addr := flag.String("addr", ":9090", "listen address")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "period of the background /readyz node prober (<0 disables)")
	summaryTTL := flag.Duration("summary-ttl", 2*time.Second, "how long a node's /v1/stats-summary digest is reused before refetching")
	retries := flag.Int("retries", 2, "upstream retries after a connect error, 429 or 5xx (<0 disables; never retries mid-stream)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "first retry delay; doubles per attempt")
	maxInFlight := flag.Int("max-inflight", 16, "maximum concurrently executing routed requests")
	maxQueue := flag.Int("max-queue", -1, "maximum requests waiting for a slot before 429 (-1 = 2×max-inflight)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on per-request timeout_ms")
	drainGrace := flag.Duration("drain-grace", 0, "after SIGTERM, keep serving with /readyz=503 for this long before closing the listener")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tossrouter [flags]")
		flag.Usage()
		os.Exit(2)
	}
	if len(nodes.urls) == 0 {
		log.Fatal("at least one -node is required")
	}

	cfg := router.Config{
		Nodes:          nodes.urls,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Retries:        *retries,
		RetryBackoff:   *retryBackoff,
		SummaryTTL:     *summaryTTL,
		ProbeInterval:  *probeInterval,
		Logger:         log.Default(),
	}
	if *maxQueue < 0 {
		cfg.MaxQueue = 2 * *maxInFlight
	}
	rt, err := router.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s, routing to %d node(s): %s", *addr, len(nodes.urls), strings.Join(rt.Nodes(), ", "))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Drain: flip /readyz to 503 so balancers stop sending, give them the
	// grace window to notice, then close the listener and let in-flight
	// routed requests (bounded by max-timeout) finish.
	rt.StartDraining()
	log.Printf("shutting down: draining %d in-flight, %d queued (grace %s)", rt.Limiter().InFlight(), rt.Limiter().Queued(), *drainGrace)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained, bye")
}
