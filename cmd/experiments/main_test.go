package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildExperiments(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "experiments")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building experiments: %v\n%s", err, out)
	}
	return bin
}

func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildExperiments(t)
	out, err := exec.Command(bin, "-quick", "-fig", "15a").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -fig 15a: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 15(a)") {
		t.Errorf("missing table header:\n%s", out)
	}
	out, err = exec.Command(bin, "-quick", "-fig", "16c").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -fig 16c: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 16(c)") {
		t.Errorf("missing table header:\n%s", out)
	}
}

func TestExperimentsUnknownFigure(t *testing.T) {
	bin := buildExperiments(t)
	if out, err := exec.Command(bin, "-fig", "99z").CombinedOutput(); err == nil {
		t.Errorf("unknown figure should fail:\n%s", out)
	}
}
