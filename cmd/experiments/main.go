// Command experiments regenerates the paper's evaluation figures as text
// tables: Figure 15(a–c) (answer quality of TOSS vs TAX) and Figure 16(a–c)
// (selection/join scalability and the ε sweep).
//
// Usage:
//
//	experiments [-fig 15|15a|15b|15c|16a|16b|16c|all] [-quick]
//
// -quick shrinks the sweeps so everything finishes in well under a minute.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	fig := flag.String("fig", "all", "which figure to regenerate: 15, 15a, 15b, 15c, 16a, 16b, 16c, ablations, all")
	quick := flag.Bool("quick", false, "shrink the sweeps for a fast run")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV files into this directory")
	flag.Parse()

	writeCSV := func(name string, emit func(io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("creating %s: %v", *csvDir, err)
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("creating %s: %v", path, err)
		}
		defer f.Close()
		if err := emit(f); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		log.Printf("wrote %s", path)
	}

	want := func(name string) bool {
		f := strings.ToLower(*fig)
		return f == "all" || f == name || (len(f) == 2 && strings.HasPrefix(name, f))
	}

	ran := false
	if want("15a") || want("15b") || want("15c") {
		cfg := experiments.DefaultQualityConfig()
		if *quick {
			cfg.Datasets = 1
		}
		rep, err := experiments.RunQuality(cfg)
		if err != nil {
			log.Fatalf("quality experiment: %v", err)
		}
		if want("15a") {
			fmt.Println(rep.Fig15a())
		}
		if want("15b") {
			fmt.Println(rep.Fig15b())
		}
		if want("15c") {
			fmt.Println(rep.Fig15c())
		}
		writeCSV("fig15.csv", rep.WriteCSV)
		ran = true
	}
	if want("16a") {
		cfg := experiments.DefaultSelectionScalabilityConfig()
		if *quick {
			cfg.PaperCounts = []int{100, 200, 400}
			cfg.Repetitions = 1
		}
		rep, err := experiments.RunSelectionScalability(cfg)
		if err != nil {
			log.Fatalf("selection scalability: %v", err)
		}
		fmt.Println(rep.String())
		writeCSV("fig16a.csv", rep.WriteCSV)
		ran = true
	}
	if want("16b") {
		cfg := experiments.DefaultJoinScalabilityConfig()
		if *quick {
			cfg.PaperCounts = []int{50, 100, 200}
		}
		rep, err := experiments.RunJoinScalability(cfg)
		if err != nil {
			log.Fatalf("join scalability: %v", err)
		}
		fmt.Println(rep.String())
		writeCSV("fig16b.csv", rep.WriteCSV)
		ran = true
	}
	if strings.ToLower(*fig) == "ablations" || strings.ToLower(*fig) == "all" {
		cfg := experiments.DefaultAblationConfig()
		if *quick {
			cfg.Papers = 150
			cfg.Repetitions = 2
		}
		rep, err := experiments.RunAblations(cfg)
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		fmt.Println(rep.String())
		ran = true
	}
	if want("16c") {
		cfg := experiments.DefaultEpsilonConfig()
		if *quick {
			cfg.Epsilons = []float64{0, 2, 4, 6}
			cfg.SelectPapers = 300
			cfg.JoinPapers = 150
			cfg.Repetitions = 1
		}
		rep, err := experiments.RunEpsilon(cfg)
		if err != nil {
			log.Fatalf("epsilon sweep: %v", err)
		}
		fmt.Println(rep.String())
		writeCSV("fig16c.csv", rep.WriteCSV)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 15, 15a, 15b, 15c, 16a, 16b, 16c or all)\n", *fig)
		os.Exit(2)
	}
}
