package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureDBLP = `<dblp>
  <inproceedings key="u1">
    <author>Jeffrey D. Ullman</author>
    <title>Principles of Database Systems</title>
    <booktitle>PODS</booktitle>
    <year>1997</year>
  </inproceedings>
  <inproceedings key="u2">
    <author>J. Ullman</author>
    <title>Database Systems Implementation</title>
    <booktitle>SIGMOD Conference</booktitle>
    <year>1999</year>
  </inproceedings>
</dblp>`

const fixtureSIGMOD = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Database Systems Implementation.</title>
      <author>J. D. Ullman</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>1999</confYear>
    </article>
  </articles>
</ProceedingsPage>`

// buildCLI compiles this command into a temp dir once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tossql")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building tossql: %v\n%s", err, out)
	}
	return bin
}

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLISimilaritySelect(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-eps", "3",
		"-explain",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "2 answer tree(s)") {
		t.Errorf("expected 2 answers:\n%s", s)
	}
	if !strings.Contains(s, "plan:") || !strings.Contains(s, "candidate documents") {
		t.Errorf("-explain should print the execution plan:\n%s", s)
	}
	if !strings.Contains(s, "J. Ullman") {
		t.Errorf("answers missing variant paper:\n%s", s)
	}
}

func TestCLITAXMode(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-tax",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -tax failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 answer tree(s)") {
		t.Errorf("TAX exact match should find exactly 1:\n%s", out)
	}
}

func TestCLIJoin(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	sigmod := writeFixture(t, "sigmod.xml", fixtureSIGMOD)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-instance", "sigmod="+sigmod,
		"-join",
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -join failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 answer tree(s)") {
		t.Errorf("join should find the shared paper:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	cases := [][]string{
		{},                         // no pattern
		{`#1 ::`},                  // bad pattern, no instance
		{"-instance", "bad", `#1`}, // malformed instance spec
		{"-instance", "dblp=" + dblp, "-measure", "nope", `#1`}, // unknown measure
		{"-instance", "dblp=" + dblp, "-sl", "x", `#1`},         // bad sl
		{"-instance", "dblp=/missing.xml", `#1`},                // missing file
		{"-instance", "dblp=" + dblp, "-join", `#1`},            // join needs two instances
	}
	for _, args := range cases {
		cmd := exec.Command(bin, args...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("tossql %v should fail:\n%s", args, out)
		}
	}
}

func TestCLIAlgebraExpression(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	sigmod := writeFixture(t, "sigmod.xml", fixtureSIGMOD)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-instance", "sigmod="+sigmod,
		"-algebra",
		`join[#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content](dblp, sigmod)`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -algebra failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 answer tree(s)") {
		t.Errorf("algebra join should find the shared paper:\n%s", out)
	}
	// Bad expression fails cleanly.
	bad := exec.Command(bin, "-instance", "dblp="+dblp, "-algebra", `union(dblp)`)
	if out, err := bad.CombinedOutput(); err == nil {
		t.Errorf("bad algebra expression should fail:\n%s", out)
	}
}

func TestCLIRanked(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-ranked",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -ranked failed: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "best first") || !strings.Contains(s, "score 0.00") {
		t.Errorf("ranked output malformed:\n%s", s)
	}
	// The exact match (score 0) must print before the variant.
	exact := strings.Index(s, "Jeffrey D. Ullman")
	variant := strings.Index(s, "J. Ullman")
	if exact < 0 || variant < 0 || exact > variant {
		t.Errorf("ranking order wrong (exact at %d, variant at %d):\n%s", exact, variant, s)
	}
	// -ranked with -join is rejected.
	bad := exec.Command(bin, "-instance", "dblp="+dblp, "-ranked", "-join", `#1`)
	if out, err := bad.CombinedOutput(); err == nil {
		t.Errorf("-ranked -join should fail:\n%s", out)
	}
}

func TestCLIAnalyzeSelect(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-analyze",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -analyze failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"analyze: EXPLAIN ANALYZE: select on dblp",
		"route=index(", // index-vs-scan routing decision
		"candidates=",  // per-path candidate counts
		"selectivity",  // pre-filter selectivity
		"rewrite  [",   // per-stage timings
		"pre-filter  [",
		"eval  [",
		"counters[dblp]:",
		"2 answer tree(s)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-analyze output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIAnalyzeJoin(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	sigmod := writeFixture(t, "sigmod.xml", fixtureSIGMOD)
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-instance", "sigmod="+sigmod,
		"-join", "-analyze",
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -join -analyze failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"analyze: EXPLAIN ANALYZE: join on dblp",
		"route=",
		"pairs tried",
		"pair selectivity",
		"counters[dblp]:",
		"counters[sigmod]:",
		"1 answer tree(s)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-join -analyze output missing %q:\n%s", want, s)
		}
	}
}

func TestCLIAnalyzeRejectsIncompatibleModes(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)
	for _, extra := range [][]string{{"-tax"}, {"-ranked"}} {
		args := append([]string{"-instance", "dblp=" + dblp, "-analyze"}, extra...)
		args = append(args, `#1 :: #1.tag = "dblp"`)
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("-analyze %v should fail:\n%s", extra, out)
		}
	}
}

func TestCLITimeout(t *testing.T) {
	bin := buildCLI(t)
	dblp := writeFixture(t, "dblp.xml", fixtureDBLP)

	// An already-expired deadline must abort the query with a deadline error
	// (the build itself is not covered by -timeout).
	cmd := exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-timeout", "1ns",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expired deadline must fail:\n%s", out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Errorf("error should name the deadline:\n%s", out)
	}

	// A generous deadline must not change the result.
	cmd = exec.Command(bin,
		"-instance", "dblp="+dblp,
		"-timeout", "1m",
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tossql -timeout 1m failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 answer tree(s)") {
		t.Errorf("expected 2 answers:\n%s", out)
	}
}
