// Command tossql loads XML instances, builds the similarity enhanced
// ontology, and evaluates a TOSS query against them, printing the answer
// trees as XML.
//
// Usage:
//
//	tossql -instance dblp=file1.xml[,file2.xml] [-instance sigmod=...] \
//	       [-measure name-rule] [-eps 3] [-sl 1] \
//	       [-limit n] [-stream] [-tax] [-explain] 'pattern'
//
// Example pattern:
//
//	#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "J. Ullman"
//
// Selection runs against the first -instance; supply -join to run a
// condition join between the first two instances instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

type instanceFlag struct {
	specs []string
}

func (f *instanceFlag) String() string { return strings.Join(f.specs, " ") }
func (f *instanceFlag) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=file1.xml[,file2.xml], got %q", v)
	}
	f.specs = append(f.specs, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tossql: ")
	var instances instanceFlag
	flag.Var(&instances, "instance", "instance spec name=file1.xml[,file2.xml] (repeatable)")
	measureName := flag.String("measure", "name-rule", "similarity measure: "+strings.Join(similarity.Names(), ", "))
	eps := flag.Float64("eps", 3, "similarity threshold epsilon")
	slFlag := flag.String("sl", "", "comma-separated pattern labels whose subtrees are kept (selection SL)")
	taxMode := flag.Bool("tax", false, "evaluate with plain TAX semantics (exact/contains) instead of TOSS")
	join := flag.Bool("join", false, "join the first two instances instead of selecting from the first")
	algebra := flag.Bool("algebra", false, "treat the argument as a full algebra expression, e.g. select[...; 1](dblp) or union(e1, e2)")
	explain := flag.Bool("explain", false, "print the rewritten XPath queries before executing")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: run the query and print the plan annotated with actual routing decisions, candidate counts and per-stage timings")
	rules := flag.String("rules", "", "DBA rule file to merge into the lexicon (isa:/part:/syn: lines)")
	ranked := flag.Bool("ranked", false, "order selection answers by similarity score (sum of ~ distances, best first)")
	stats := flag.Bool("stats", false, "print system statistics after building")
	timeout := flag.Duration("timeout", 0, "abort query execution after this duration, e.g. 500ms (0 = no deadline; TOSS paths only)")
	noPlanner := flag.Bool("no-planner", false, "disable the cost-based planner and use the fixed execution heuristics (answers are identical either way)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "hash-partitioned shards per collection (1 reproduces the unsharded layout; answers are identical at any count)")
	limit := flag.Int("limit", 0, "stop after this many answers (0 = all; selections stop scanning early via limit pushdown)")
	stream := flag.Bool("stream", false, "print answers incrementally as the executor produces them (TOSS selections and joins only); the count prints last")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tossql [flags] 'pattern'")
		flag.Usage()
		os.Exit(2)
	}
	if len(instances.specs) == 0 {
		log.Fatal("at least one -instance is required")
	}
	if *stream && (*taxMode || *algebra || *ranked || *analyze) {
		log.Fatal("-stream applies to TOSS selections and joins only")
	}
	var pat *pattern.Tree
	var expr core.Expr
	var err error
	if *algebra {
		expr, err = core.ParseExpr(flag.Arg(0))
		if err != nil {
			log.Fatalf("parsing algebra expression: %v", err)
		}
	} else {
		pat, err = pattern.Parse(flag.Arg(0))
		if err != nil {
			log.Fatalf("parsing pattern: %v", err)
		}
	}
	measure := similarity.ByName(*measureName)
	if measure == nil {
		log.Fatalf("unknown measure %q (want one of %s)", *measureName, strings.Join(similarity.Names(), ", "))
	}
	var sl []int
	if *slFlag != "" {
		for _, part := range strings.Split(*slFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -sl entry %q: %v", part, err)
			}
			sl = append(sl, n)
		}
	}

	sys := core.NewSystem()
	if *noPlanner {
		sys.Planner = nil
	}
	sys.DB.SetDefaultShards(*shards)
	if *rules != "" {
		if err := sys.Lexicon.LoadRulesFile(*rules); err != nil {
			log.Fatal(err)
		}
	}
	var names []string
	for _, spec := range instances.specs {
		name, files, _ := strings.Cut(spec, "=")
		in, err := sys.AddInstance(name)
		if err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
		for _, file := range strings.Split(files, ",") {
			f, err := os.Open(file)
			if err != nil {
				log.Fatal(err)
			}
			_, err = in.Col.PutXML(file, f)
			f.Close()
			if err != nil {
				log.Fatalf("loading %s: %v", file, err)
			}
		}
	}
	if err := sys.Build(measure, *eps); err != nil {
		log.Fatalf("building SEO: %v", err)
	}
	log.Printf("fused ontology: %d terms; SEO: %d nodes (measure=%s eps=%g)",
		sys.OntologyTermCount(), sys.SEO.NodeCount(), *measureName, *eps)
	if *stats {
		for _, line := range strings.Split(strings.TrimRight(sys.Stats().String(), "\n"), "\n") {
			log.Printf("stats: %s", line)
		}
	}

	// The deadline covers query execution only, not the build: context is
	// threaded into core's scan loops, so an expired deadline aborts the scan
	// mid-flight instead of after the fact.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *explain && pat != nil && !*join {
		plan, perr := sys.Explain(names[0], pat)
		if perr != nil {
			log.Fatal(perr)
		}
		for _, line := range strings.Split(strings.TrimRight(plan.String(), "\n"), "\n") {
			log.Printf("plan: %s", line)
		}
	}

	if *analyze {
		if pat == nil || *taxMode || *ranked {
			log.Fatal("-analyze applies to TOSS selections and joins only")
		}
		qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Analyze: true, Limit: *limit}
		if *join {
			if len(names) < 2 {
				log.Fatal("-join needs two -instance specs")
			}
			qreq.Right = names[1]
		}
		res, aerr := sys.Query(ctx, qreq)
		if aerr != nil {
			log.Fatalf("executing query: %v", aerr)
		}
		answers := res.Answers
		ap := &core.AnalyzedPlan{Plan: res.Plan, Stats: res.Stats}
		for _, line := range strings.Split(strings.TrimRight(ap.String(), "\n"), "\n") {
			log.Printf("analyze: %s", line)
		}
		for _, name := range names {
			c := sys.Instance(name).Col.Counters()
			log.Printf("counters[%s]: queries=%d indexed=%d scans=%d value-index=%d docs-walked=%d nodes-tested=%d matched=%d",
				name, c.Queries, c.IndexedQueries, c.ScanQueries, c.ValueIndexHits,
				c.DocsWalked, c.NodesTested, c.NodesMatched)
		}
		log.Printf("%d answer tree(s)", len(answers))
		for _, t := range answers {
			if err := t.WriteXML(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	if *ranked {
		if pat == nil || *join {
			log.Fatal("-ranked applies to plain selections only")
		}
		res, rerr := sys.Query(ctx, core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Ranked: true, Limit: *limit})
		if rerr != nil {
			log.Fatalf("executing query: %v", rerr)
		}
		rankedAnswers := res.Ranked
		log.Printf("%d answer tree(s), best first", len(rankedAnswers))
		for _, ra := range rankedAnswers {
			log.Printf("score %.2f", ra.Score)
			if err := ra.Tree.WriteXML(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	var answers []*tree.Tree
	switch {
	case expr != nil:
		answers, err = expr.EvalContext(ctx, sys)
	case *join:
		if len(names) < 2 {
			log.Fatal("-join needs two -instance specs")
		}
		if *taxMode {
			ldocs, _ := sys.Trees(names[0])
			rdocs, _ := sys.Trees(names[1])
			dst := tree.NewCollection()
			answers, err = tax.Select(dst, tax.Product(dst, ldocs, rdocs), pat, sl, tax.Baseline{})
		} else {
			qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Right: names[1], Adorn: sl, Limit: *limit}
			if *stream {
				streamQuery(ctx, sys, qreq)
				return
			}
			var res *core.QueryResult
			res, err = sys.Query(ctx, qreq)
			if err == nil {
				answers = res.Answers
			}
		}
	case *taxMode:
		docs, terr := sys.Trees(names[0])
		if terr != nil {
			log.Fatal(terr)
		}
		answers, err = tax.Select(tree.NewCollection(), docs, pat, sl, tax.Baseline{})
	default:
		qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Limit: *limit}
		if *stream {
			streamQuery(ctx, sys, qreq)
			return
		}
		var res *core.QueryResult
		res, err = sys.Query(ctx, qreq)
		if err == nil {
			answers = res.Answers
		}
	}
	if err != nil {
		log.Fatalf("executing query: %v", err)
	}
	// TAX and algebra paths have no limit pushdown; truncate after the fact so
	// -limit means the same thing everywhere.
	if *limit > 0 && len(answers) > *limit {
		answers = answers[:*limit]
	}

	log.Printf("%d answer tree(s)", len(answers))
	for _, t := range answers {
		if err := t.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

// streamQuery runs req with Stream set and prints each answer the moment the
// executor produces it; the answer count, unknown up front, prints last.
func streamQuery(ctx context.Context, sys *core.System, req core.QueryRequest) {
	req.Stream = true
	res, err := sys.Query(ctx, req)
	if err != nil {
		log.Fatalf("executing query: %v", err)
	}
	defer res.Stream.Close()
	n := 0
	for {
		t, serr := res.Stream.Next(ctx)
		if serr == io.EOF {
			break
		}
		if serr != nil {
			log.Fatalf("streaming answers: %v", serr)
		}
		if err := t.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
		n++
	}
	log.Printf("%d answer tree(s) (streamed)", n)
}
