// Command tossql loads XML instances, builds the similarity enhanced
// ontology, and evaluates a TOSS query against them, printing the answer
// trees as XML.
//
// Usage:
//
//	tossql -instance dblp=file1.xml[,file2.xml] [-instance sigmod=...] \
//	       [-measure name-rule] [-eps 3] [-sl 1] \
//	       [-limit n] [-stream] [-tax] [-explain] 'pattern'
//
// Example pattern:
//
//	#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "J. Ullman"
//
// Selection runs against the first -instance; supply -join to run a
// condition join between the first two instances instead.
//
// With -server <url>, tossql skips the local build entirely and sends the
// query to a running tossd (or tossrouter) over POST /v1/query; -instance
// then just names server-side collections (no files), and -stream prints
// each NDJSON answer line the moment it arrives.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

type instanceFlag struct {
	specs []string
}

func (f *instanceFlag) String() string { return strings.Join(f.specs, " ") }
func (f *instanceFlag) Set(v string) error {
	// Local mode wants name=file1.xml[,file2.xml]; remote mode (-server)
	// wants just the collection name. Accept both shapes here and let each
	// mode use the part it needs.
	f.specs = append(f.specs, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tossql: ")
	var instances instanceFlag
	flag.Var(&instances, "instance", "instance spec name=file1.xml[,file2.xml] (repeatable)")
	measureName := flag.String("measure", "name-rule", "similarity measure: "+strings.Join(similarity.Names(), ", "))
	eps := flag.Float64("eps", 3, "similarity threshold epsilon")
	slFlag := flag.String("sl", "", "comma-separated pattern labels whose subtrees are kept (selection SL)")
	taxMode := flag.Bool("tax", false, "evaluate with plain TAX semantics (exact/contains) instead of TOSS")
	join := flag.Bool("join", false, "join the first two instances instead of selecting from the first")
	algebra := flag.Bool("algebra", false, "treat the argument as a full algebra expression, e.g. select[...; 1](dblp) or union(e1, e2)")
	explain := flag.Bool("explain", false, "print the rewritten XPath queries before executing")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: run the query and print the plan annotated with actual routing decisions, candidate counts and per-stage timings")
	rules := flag.String("rules", "", "DBA rule file to merge into the lexicon (isa:/part:/syn: lines)")
	ranked := flag.Bool("ranked", false, "order selection answers by similarity score (sum of ~ distances, best first)")
	stats := flag.Bool("stats", false, "print system statistics after building")
	timeout := flag.Duration("timeout", 0, "abort query execution after this duration, e.g. 500ms (0 = no deadline; TOSS paths only)")
	noPlanner := flag.Bool("no-planner", false, "disable the cost-based planner and use the fixed execution heuristics (answers are identical either way)")
	noAdaptive := flag.Bool("no-adaptive", false, "disable the adaptive feedback layer (corrections, auto-tuned gates, mid-stream re-optimization); the static planner still runs (answers are identical either way)")
	warmup := flag.Int("warmup", 0, "run the query this many times before the -analyze run so the adaptive planner learns corrections (local mode, -analyze only)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "hash-partitioned shards per collection (1 reproduces the unsharded layout; answers are identical at any count)")
	limit := flag.Int("limit", 0, "stop after this many answers (0 = all; selections stop scanning early via limit pushdown)")
	stream := flag.Bool("stream", false, "print answers incrementally as the executor produces them (TOSS selections and joins only); the count prints last")
	serverURL := flag.String("server", "", "query a running tossd/tossrouter at this base URL over POST /v1/query instead of building locally; -instance then names server-side collections")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tossql [flags] 'pattern'")
		flag.Usage()
		os.Exit(2)
	}
	if *serverURL == "" && len(instances.specs) == 0 {
		log.Fatal("at least one -instance is required (or use -server)")
	}
	if *stream && (*taxMode || *algebra || *ranked || *analyze) {
		log.Fatal("-stream applies to TOSS selections and joins only")
	}
	if *serverURL != "" {
		if *taxMode || *explain || *stats || *rules != "" {
			log.Fatal("-tax, -explain, -stats and -rules apply to local mode only (the server built its own structures)")
		}
		if *warmup > 0 {
			log.Fatal("-warmup applies to local mode only (a server's feedback store is already warm from its own traffic)")
		}
		runRemote(*serverURL, remoteOptions{
			instances:  instances.specs,
			arg:        flag.Arg(0),
			slSpec:     *slFlag,
			algebra:    *algebra,
			join:       *join,
			analyze:    *analyze,
			ranked:     *ranked,
			noPlanner:  *noPlanner,
			noAdaptive: *noAdaptive,
			limit:      *limit,
			stream:     *stream,
			timeout:    *timeout,
			measure:    *measureName,
			eps:        *eps,
		})
		return
	}
	var pat *pattern.Tree
	var expr core.Expr
	var err error
	if *algebra {
		expr, err = core.ParseExpr(flag.Arg(0))
		if err != nil {
			log.Fatalf("parsing algebra expression: %v", err)
		}
	} else {
		pat, err = pattern.Parse(flag.Arg(0))
		if err != nil {
			log.Fatalf("parsing pattern: %v", err)
		}
	}
	measure := similarity.ByName(*measureName)
	if measure == nil {
		log.Fatalf("unknown measure %q (want one of %s)", *measureName, strings.Join(similarity.Names(), ", "))
	}
	sl := parseSL(*slFlag)

	sys := core.NewSystem()
	if *noPlanner {
		sys.Planner = nil
	}
	if *noAdaptive {
		sys.AdaptiveDisabled = true
	}
	sys.DB.SetDefaultShards(*shards)
	if *rules != "" {
		if err := sys.Lexicon.LoadRulesFile(*rules); err != nil {
			log.Fatal(err)
		}
	}
	var names []string
	for _, spec := range instances.specs {
		name, files, _ := strings.Cut(spec, "=")
		in, err := sys.AddInstance(name)
		if err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
		for _, file := range strings.Split(files, ",") {
			f, err := os.Open(file)
			if err != nil {
				log.Fatal(err)
			}
			_, err = in.Col.PutXML(file, f)
			f.Close()
			if err != nil {
				log.Fatalf("loading %s: %v", file, err)
			}
		}
	}
	if err := sys.Build(measure, *eps); err != nil {
		log.Fatalf("building SEO: %v", err)
	}
	log.Printf("fused ontology: %d terms; SEO: %d nodes (measure=%s eps=%g)",
		sys.OntologyTermCount(), sys.Ontology().SEO.NodeCount(), *measureName, *eps)
	if *stats {
		for _, line := range strings.Split(strings.TrimRight(sys.Stats().String(), "\n"), "\n") {
			log.Printf("stats: %s", line)
		}
	}

	// The deadline covers query execution only, not the build: context is
	// threaded into core's scan loops, so an expired deadline aborts the scan
	// mid-flight instead of after the fact.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *explain && pat != nil && !*join {
		plan, perr := sys.Explain(names[0], pat)
		if perr != nil {
			log.Fatal(perr)
		}
		for _, line := range strings.Split(strings.TrimRight(plan.String(), "\n"), "\n") {
			log.Printf("plan: %s", line)
		}
	}

	if *analyze {
		if pat == nil || *taxMode || *ranked {
			log.Fatal("-analyze applies to TOSS selections and joins only")
		}
		qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Analyze: true, Limit: *limit}
		if *join {
			if len(names) < 2 {
				log.Fatal("-join needs two -instance specs")
			}
			qreq.Right = names[1]
		}
		// Warm-up runs seed the feedback store with estimated-vs-actual rows,
		// so the analyzed run below shows the corrected plan (its trace grows
		// an `adaptive:` line once corrections apply).
		for i := 0; i < *warmup; i++ {
			if _, werr := sys.Query(ctx, qreq); werr != nil {
				log.Fatalf("warm-up query: %v", werr)
			}
		}
		res, aerr := sys.Query(ctx, qreq)
		if aerr != nil {
			log.Fatalf("executing query: %v", aerr)
		}
		answers := res.Answers
		ap := &core.AnalyzedPlan{Plan: res.Plan, Stats: res.Stats}
		for _, line := range strings.Split(strings.TrimRight(ap.String(), "\n"), "\n") {
			log.Printf("analyze: %s", line)
		}
		for _, name := range names {
			c := sys.Instance(name).Col.Counters()
			log.Printf("counters[%s]: queries=%d indexed=%d scans=%d value-index=%d docs-walked=%d nodes-tested=%d matched=%d",
				name, c.Queries, c.IndexedQueries, c.ScanQueries, c.ValueIndexHits,
				c.DocsWalked, c.NodesTested, c.NodesMatched)
		}
		log.Printf("%d answer tree(s)", len(answers))
		for _, t := range answers {
			if err := t.WriteXML(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	if *ranked {
		if pat == nil || *join {
			log.Fatal("-ranked applies to plain selections only")
		}
		res, rerr := sys.Query(ctx, core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Ranked: true, Limit: *limit})
		if rerr != nil {
			log.Fatalf("executing query: %v", rerr)
		}
		rankedAnswers := res.Ranked
		log.Printf("%d answer tree(s), best first", len(rankedAnswers))
		for _, ra := range rankedAnswers {
			log.Printf("score %.2f", ra.Score)
			if err := ra.Tree.WriteXML(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	var answers []*tree.Tree
	switch {
	case expr != nil:
		answers, err = expr.EvalContext(ctx, sys)
	case *join:
		if len(names) < 2 {
			log.Fatal("-join needs two -instance specs")
		}
		if *taxMode {
			ldocs, _ := sys.Trees(names[0])
			rdocs, _ := sys.Trees(names[1])
			dst := tree.NewCollection()
			answers, err = tax.Select(dst, tax.Product(dst, ldocs, rdocs), pat, sl, tax.Baseline{})
		} else {
			qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Right: names[1], Adorn: sl, Limit: *limit}
			if *stream {
				streamQuery(ctx, sys, qreq)
				return
			}
			var res *core.QueryResult
			res, err = sys.Query(ctx, qreq)
			if err == nil {
				answers = res.Answers
			}
		}
	case *taxMode:
		docs, terr := sys.Trees(names[0])
		if terr != nil {
			log.Fatal(terr)
		}
		answers, err = tax.Select(tree.NewCollection(), docs, pat, sl, tax.Baseline{})
	default:
		qreq := core.QueryRequest{Pattern: pat, Instance: names[0], Adorn: sl, Limit: *limit}
		if *stream {
			streamQuery(ctx, sys, qreq)
			return
		}
		var res *core.QueryResult
		res, err = sys.Query(ctx, qreq)
		if err == nil {
			answers = res.Answers
		}
	}
	if err != nil {
		log.Fatalf("executing query: %v", err)
	}
	// TAX and algebra paths have no limit pushdown; truncate after the fact so
	// -limit means the same thing everywhere.
	if *limit > 0 && len(answers) > *limit {
		answers = answers[:*limit]
	}

	log.Printf("%d answer tree(s)", len(answers))
	for _, t := range answers {
		if err := t.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func parseSL(spec string) []int {
	var sl []int
	if spec != "" {
		for _, part := range strings.Split(spec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -sl entry %q: %v", part, err)
			}
			sl = append(sl, n)
		}
	}
	return sl
}

type remoteOptions struct {
	instances  []string
	arg        string
	slSpec     string
	algebra    bool
	join       bool
	analyze    bool
	ranked     bool
	noPlanner  bool
	noAdaptive bool
	limit      int
	stream     bool
	timeout    time.Duration
	measure    string
	eps        float64
}

// remoteLine is one NDJSON line of a streamed remote response: an answer,
// the in-band error sentinel tossd and tossrouter append when a stream dies
// mid-flight (tossrouter's names the failing node), or the success trailer
// ({"ontology_version":N}) every complete stream ends with.
type remoteLine struct {
	XML             string   `json:"xml"`
	Seq             *uint64  `json:"seq,omitempty"`
	Score           *float64 `json:"score,omitempty"`
	Error           string   `json:"error,omitempty"`
	Node            string   `json:"node,omitempty"`
	Failed          []string `json:"failed_nodes,omitempty"`
	Partial         bool     `json:"partial,omitempty"`
	OntologyVersion *uint64  `json:"ontology_version,omitempty"`
}

// runRemote sends the query to a running tossd or tossrouter over POST
// /v1/query and prints the answers the same way local mode does. It rides
// the process-wide pooled HTTP client (router.SharedClient), so repeated
// invocations inside one process — and the router the request may fan out
// through — reuse connections.
func runRemote(base string, o remoteOptions) {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	req := server.QueryRequest{
		SL:         parseSL(o.slSpec),
		Limit:      o.limit,
		Stream:     o.stream,
		Ranked:     o.ranked,
		Analyze:    o.analyze,
		NoPlanner:  o.noPlanner,
		NoAdaptive: o.noAdaptive,
	}
	if o.algebra {
		req.Expr = o.arg
	} else {
		req.Pattern = o.arg
	}
	var names []string
	for _, spec := range o.instances {
		name, _, _ := strings.Cut(spec, "=")
		names = append(names, name)
	}
	if len(names) > 0 {
		req.Instance = names[0]
	}
	if o.join {
		if len(names) < 2 {
			log.Fatal("-join needs two -instance names")
		}
		req.Right = names[1]
	}
	// Measure and epsilon ride along only when explicitly set: the server's
	// own build is the default, and naming it redundantly would force the
	// server to resolve a variant for no reason.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "measure":
			req.Measure = o.measure
		case "eps":
			eps := o.eps
			req.Eps = &eps
		}
	})
	if o.timeout > 0 {
		req.TimeoutMS = int(o.timeout / time.Millisecond)
	}

	body, err := json.Marshal(&req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := router.SharedClient().Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("querying %s: %v", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		log.Fatalf("server %s: %s: %s", base, resp.Status, strings.TrimSpace(string(msg)))
	}

	if o.stream {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		n := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var rl remoteLine
			if err := json.Unmarshal([]byte(line), &rl); err != nil {
				log.Fatalf("bad stream line: %v", err)
			}
			if rl.Error != "" {
				// The stream is truncated, not complete: report what arrived
				// and which node (if the router named one) took the rest down.
				failed := strings.Join(rl.Failed, ", ")
				if failed == "" {
					failed = rl.Node
				}
				if failed != "" {
					log.Printf("%d answer tree(s) before the stream aborted (failing node: %s)", n, failed)
				} else {
					log.Printf("%d answer tree(s) before the stream aborted", n)
				}
				log.Fatalf("stream error: %s", rl.Error)
			}
			if rl.OntologyVersion != nil {
				continue // success trailer: the stream is complete
			}
			printXML(rl.XML)
			n++
		}
		if err := sc.Err(); err != nil {
			log.Fatalf("reading stream: %v", err)
		}
		log.Printf("%d answer tree(s) (streamed)", n)
		return
	}

	var qr struct {
		server.QueryResponse
		Nodes *struct {
			Configured int      `json:"configured"`
			Reached    int      `json:"reached"`
			Failed     []string `json:"failed,omitempty"`
			Partial    bool     `json:"partial"`
		} `json:"nodes,omitempty"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		log.Fatalf("decoding response: %v", err)
	}
	if qr.Analyze != "" {
		for _, line := range strings.Split(strings.TrimRight(qr.Analyze, "\n"), "\n") {
			log.Printf("analyze: %s", line)
		}
	}
	if qr.Nodes != nil && qr.Nodes.Partial {
		log.Printf("PARTIAL result: %d/%d node(s) reached; missing: %s",
			qr.Nodes.Reached, qr.Nodes.Configured, strings.Join(qr.Nodes.Failed, ", "))
	}
	if o.ranked {
		log.Printf("%d answer tree(s), best first", qr.Count)
		for _, a := range qr.Answers {
			if a.Score != nil {
				log.Printf("score %.2f", *a.Score)
			}
			printXML(a.XML)
		}
		return
	}
	log.Printf("%d answer tree(s)", qr.Count)
	for _, a := range qr.Answers {
		printXML(a.XML)
	}
}

func printXML(x string) {
	os.Stdout.WriteString(x)
	if !strings.HasSuffix(x, "\n") {
		os.Stdout.WriteString("\n")
	}
}

// streamQuery runs req with Stream set and prints each answer the moment the
// executor produces it; the answer count, unknown up front, prints last.
func streamQuery(ctx context.Context, sys *core.System, req core.QueryRequest) {
	req.Stream = true
	res, err := sys.Query(ctx, req)
	if err != nil {
		log.Fatalf("executing query: %v", err)
	}
	defer res.Stream.Close()
	n := 0
	for {
		t, serr := res.Stream.Next(ctx)
		if serr == io.EOF {
			break
		}
		if serr != nil {
			log.Fatalf("streaming answers: %v", serr)
		}
		if err := t.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
		n++
	}
	log.Printf("%d answer tree(s) (streamed)", n)
}
