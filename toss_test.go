package toss

import (
	"strings"
	"testing"
)

const facadeXML = `<dblp>
  <inproceedings key="u1">
    <author>Jeffrey D. Ullman</author>
    <title>Principles of Database Systems</title>
    <booktitle>PODS</booktitle>
    <year>1997</year>
  </inproceedings>
  <inproceedings key="u2">
    <author>J. Ullman</author>
    <title>Database Systems Implementation</title>
    <booktitle>SIGMOD Conference</booktitle>
    <year>1999</year>
  </inproceedings>
</dblp>`

// TestFacadeQuickstart exercises the public API end to end, mirroring the
// package documentation example.
func TestFacadeQuickstart(t *testing.T) {
	sys := New()
	inst, err := sys.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Col.PutXML("dblp.xml", strings.NewReader(facadeXML)); err != nil {
		t.Fatal(err)
	}
	m := MeasureByName("name-rule")
	if m == nil {
		t.Fatal("name-rule measure missing")
	}
	if err := sys.Build(m, 3); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePattern(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := sys.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("similarity selection returned %d answers, want 2", len(answers))
	}
	for _, a := range answers {
		if a.Root.Tag != "inproceedings" {
			t.Errorf("answer root = %q", a.Root.Tag)
		}
	}
}

func TestFacadeMeasures(t *testing.T) {
	names := MeasureNames()
	if len(names) < 6 {
		t.Fatalf("only %d measures", len(names))
	}
	for _, n := range names {
		if MeasureByName(n) == nil {
			t.Errorf("MeasureByName(%q) = nil", n)
		}
	}
	if MeasureByName("bogus") != nil {
		t.Error("unknown measure should be nil")
	}
}

func TestFacadeParseErrors(t *testing.T) {
	if _, err := ParsePattern("not a pattern"); err == nil {
		t.Error("bad pattern should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParsePattern should panic")
		}
	}()
	MustParsePattern("also not a pattern")
}
