package toss

// Similarity candidate index benchmarks: the same limit-10 ~ selection and
// ranked limit-10 query over a 5000-document corpus, once through the
// planner's simindex access path (n-gram candidate terms → value-index
// postings → verify) and once with the planner disabled (cluster-expansion /
// scan candidate path). Answers are byte-identical by construction — the
// index proposes a superset of the matching terms and the evaluator verdict
// is the same function — so the whole difference is how many documents each
// path scores.
//
//	go test -run NONE -bench 'BenchmarkSimIndex' -count 10 | benchstat -
//	go test -run TestWriteBenchSimIndexJSON -v

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/similarity"
)

const (
	simIndexBenchPapers = 5000
	simIndexBenchShards = 4
	simIndexBenchLimit  = 10
)

// simIndexBenchSystem builds the one-paper-per-document corpus with the
// Levenshtein measure at eps 2, the configuration whose dynamic ~ fallback
// the n-gram filter covers. The author pool is far smaller than the paper
// count, so author frequencies are heavily skewed — many documents share the
// hot names the probe literal is a typo of.
func simIndexBenchSystem(b testing.TB) (*core.System, *datagen.Corpus) {
	b.Helper()
	gen := datagen.DefaultConfig(simIndexBenchPapers)
	gen.Seed = 11
	corpus := datagen.Generate(gen)
	s := core.NewSystem()
	s.DB.SetDefaultShards(simIndexBenchShards)
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		b.Fatal(err)
	}
	dblp.Col.SetMaxBytes(0)
	for i := range corpus.Papers {
		key := fmt.Sprintf("dblp-%05d", i)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:i+1]))); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Build(similarity.Levenshtein{}, 2); err != nil {
		b.Fatal(err)
	}
	return s, corpus
}

// simIndexBenchPattern probes for a one-character typo of a real author name:
// a term the ontology does not know, so the planner-off path cannot narrow by
// the value index and the simindex's n-gram channel is what prunes.
func simIndexBenchPattern(corpus *datagen.Corpus) *pattern.Tree {
	name := []rune(corpus.Authors[0].Canonical())
	lit := string(append(append([]rune(nil), name[:len(name)/2]...), name[len(name)/2+1:]...))
	return pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, lit))
}

func benchmarkSimIndexQuery(b *testing.B, s *core.System, pat *pattern.Tree, ranked, noPlanner bool) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Query(ctx, core.QueryRequest{
			Pattern: pat, Instance: "dblp", Adorn: []int{1},
			Ranked: ranked, Limit: simIndexBenchLimit, NoPlanner: noPlanner,
		})
		if err != nil {
			b.Fatal(err)
		}
		if ranked {
			if len(res.Ranked) == 0 {
				b.Fatal("ranked query matched nothing")
			}
		} else if len(res.Answers) == 0 {
			b.Fatal("query matched nothing")
		}
	}
}

func BenchmarkSimIndexLimit(b *testing.B) {
	s, corpus := simIndexBenchSystem(b)
	pat := simIndexBenchPattern(corpus)
	b.Run("mode=simindex", func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, false, false) })
	b.Run("mode=scan", func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, false, true) })
}

func BenchmarkSimIndexRanked(b *testing.B) {
	s, corpus := simIndexBenchSystem(b)
	pat := simIndexBenchPattern(corpus)
	b.Run("mode=simindex", func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, true, false) })
	b.Run("mode=scan", func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, true, true) })
}

// TestWriteBenchSimIndexJSON measures what the similarity candidate index
// buys and records it in BENCH_simindex.json: documents scored by the
// indexed ranked limit-10 query against the planner-off candidate scan on
// the same corpus, plus ns/op for both plans. CI asserts the ≥10x reduction
// and this test asserts the answers are byte-identical, so a regression that
// silently drops the access path — or makes it lossy — fails the build.
func TestWriteBenchSimIndexJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	s, corpus := simIndexBenchSystem(t)
	pat := simIndexBenchPattern(corpus)
	ctx := context.Background()

	// Traced ranked runs give the docs-scored counts for both plans.
	idx, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Ranked: true, Limit: simIndexBenchLimit, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stats.Sim == nil {
		t.Fatal("ranked limit query did not engage the simindex access path")
	}
	scan, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Ranked: true, Limit: simIndexBenchLimit,
		NoPlanner: true, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical answers: same scores, same witness XML, same order.
	if len(idx.Ranked) != len(scan.Ranked) {
		t.Fatalf("simindex returned %d ranked answers, scan %d", len(idx.Ranked), len(scan.Ranked))
	}
	if len(idx.Ranked) == 0 {
		t.Fatal("probe literal matched nothing — bench corpus broken")
	}
	for i := range idx.Ranked {
		if idx.Ranked[i].Score != scan.Ranked[i].Score ||
			idx.Ranked[i].Tree.XMLString() != scan.Ranked[i].Tree.XMLString() {
			t.Fatalf("rank %d differs between simindex and scan paths", i)
		}
	}
	// The selection path must agree too.
	selIdx, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Limit: simIndexBenchLimit,
	})
	if err != nil {
		t.Fatal(err)
	}
	selScan, err := s.Query(ctx, core.QueryRequest{
		Pattern: pat, Instance: "dblp", Adorn: []int{1}, Limit: simIndexBenchLimit, NoPlanner: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(selIdx.Answers) != len(selScan.Answers) {
		t.Fatalf("limited selection: simindex %d answers, scan %d", len(selIdx.Answers), len(selScan.Answers))
	}
	for i := range selIdx.Answers {
		if selIdx.Answers[i].XMLString() != selScan.Answers[i].XMLString() {
			t.Fatalf("limited selection answer %d differs between paths", i)
		}
	}

	type entry struct {
		NsPerOp    int64 `json:"ns_per_op"`
		AllocsOp   int64 `json:"allocs_per_op"`
		N          int   `json:"n"`
		DocsScored int   `json:"docs_scored"`
	}
	ri := testing.Benchmark(func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, true, false) })
	rs := testing.Benchmark(func(b *testing.B) { benchmarkSimIndexQuery(b, s, pat, true, true) })
	report := struct {
		Papers         int     `json:"papers"`
		Shards         int     `json:"shards"`
		Limit          int     `json:"limit"`
		TotalDocs      int     `json:"total_docs"`
		CandidateTerms int     `json:"candidate_terms"`
		MatchedTerms   int     `json:"matched_terms"`
		Indexed        entry   `json:"indexed"`
		Scan           entry   `json:"scan"`
		ScoredReduct   float64 `json:"docs_scored_reduction"`
		Speedup        float64 `json:"speedup"`
	}{
		Papers:         simIndexBenchPapers,
		Shards:         simIndexBenchShards,
		Limit:          simIndexBenchLimit,
		TotalDocs:      idx.Stats.TotalDocs,
		CandidateTerms: idx.Stats.Sim.CandidateTerms,
		MatchedTerms:   idx.Stats.Sim.MatchedTerms,
		Indexed: entry{
			NsPerOp: ri.NsPerOp(), AllocsOp: ri.AllocsPerOp(), N: ri.N,
			DocsScored: idx.Stats.DocsEvaluated,
		},
		Scan: entry{
			NsPerOp: rs.NsPerOp(), AllocsOp: rs.AllocsPerOp(), N: rs.N,
			DocsScored: scan.Stats.DocsEvaluated,
		},
	}
	if report.Indexed.DocsScored > 0 {
		report.ScoredReduct = float64(report.Scan.DocsScored) / float64(report.Indexed.DocsScored)
	}
	if ri.NsPerOp() > 0 {
		report.Speedup = float64(rs.NsPerOp()) / float64(ri.NsPerOp())
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_simindex.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("limit-%d ~: simindex scores %d of %d docs, scan scores %d (%.1fx fewer), speedup %.2fx",
		simIndexBenchLimit, report.Indexed.DocsScored, report.TotalDocs,
		report.Scan.DocsScored, report.ScoredReduct, report.Speedup)
	if report.ScoredReduct < 10 {
		t.Errorf("simindex scored %d docs vs scan %d — reduction %.1fx is below the 10x floor",
			report.Indexed.DocsScored, report.Scan.DocsScored, report.ScoredReduct)
	}
}
