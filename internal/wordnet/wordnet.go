// Package wordnet is the lexical substrate the TOSS Ontology Maker consults.
// The paper uses WordNet to "automatically identify isa, equivalent, and
// part-of relationships between terms in an SDB"; shipping WordNet is
// impossible offline, so this package provides the same three relations over
// a curated domain lexicon (bibliographic, organisational and geographic
// nouns — the vocabulary of the paper's examples), plus an API for the
// database administrator to add rules, exactly as the paper allows ("these
// can be edited further and refined by a database administrator").
package wordnet

import (
	"sort"
	"strings"
)

// Lexicon holds synonym, hypernym (isa) and holonym (part-of) relations over
// lower-cased terms.
type Lexicon struct {
	synonyms  map[string]map[string]bool
	hypernyms map[string]map[string]bool // term -> its more general terms
	holonyms  map[string]map[string]bool // term -> its wholes
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{
		synonyms:  map[string]map[string]bool{},
		hypernyms: map[string]map[string]bool{},
		holonyms:  map[string]map[string]bool{},
	}
}

func norm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func addRel(m map[string]map[string]bool, from, to string) {
	set := m[from]
	if set == nil {
		set = map[string]bool{}
		m[from] = set
	}
	set[to] = true
}

// AddSynonym records that a and b name the same concept (symmetric).
func (l *Lexicon) AddSynonym(a, b string) {
	a, b = norm(a), norm(b)
	if a == b {
		return
	}
	addRel(l.synonyms, a, b)
	addRel(l.synonyms, b, a)
}

// AddHypernym records sub isa sup.
func (l *Lexicon) AddHypernym(sub, sup string) {
	sub, sup = norm(sub), norm(sup)
	if sub == sup {
		return
	}
	addRel(l.hypernyms, sub, sup)
}

// AddHolonym records part part-of whole.
func (l *Lexicon) AddHolonym(part, whole string) {
	part, whole = norm(part), norm(whole)
	if part == whole {
		return
	}
	addRel(l.holonyms, part, whole)
}

// Synonyms returns the direct synonyms of term, sorted.
func (l *Lexicon) Synonyms(term string) []string { return keysOf(l.synonyms[norm(term)]) }

// Hypernyms returns the direct hypernyms of term, sorted.
func (l *Lexicon) Hypernyms(term string) []string { return keysOf(l.hypernyms[norm(term)]) }

// Holonyms returns the direct holonyms (wholes) of term, sorted.
func (l *Lexicon) Holonyms(term string) []string { return keysOf(l.holonyms[norm(term)]) }

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Synonym reports whether a and b are (directly) synonymous.
func (l *Lexicon) Synonym(a, b string) bool {
	a, b = norm(a), norm(b)
	return a == b || l.synonyms[a][b]
}

// IsA reports whether sub reaches sup through hypernym edges (reflexive,
// transitive, and tolerant of synonym hops at each step).
func (l *Lexicon) IsA(sub, sup string) bool {
	return l.reaches(l.hypernyms, norm(sub), norm(sup))
}

// PartOf reports whether part reaches whole through holonym edges
// (reflexive, transitive, synonym-tolerant).
func (l *Lexicon) PartOf(part, whole string) bool {
	return l.reaches(l.holonyms, norm(part), norm(whole))
}

func (l *Lexicon) reaches(rel map[string]map[string]bool, from, to string) bool {
	if from == to || l.synonyms[from][to] {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	expand := func(term string) []string {
		var next []string
		for t := range rel[term] {
			next = append(next, t)
		}
		for t := range l.synonyms[term] {
			next = append(next, t)
		}
		return next
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range expand(cur) {
			if n == to || l.synonyms[n][to] {
				return true
			}
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return false
}

// Terms returns every term the lexicon knows, sorted.
func (l *Lexicon) Terms() []string {
	set := map[string]bool{}
	for _, m := range []map[string]map[string]bool{l.synonyms, l.hypernyms, l.holonyms} {
		for k, tos := range m {
			set[k] = true
			for t := range tos {
				set[t] = true
			}
		}
	}
	return keysOf(set)
}

// Default returns a lexicon seeded with the bibliographic/organisation
// vocabulary used throughout the paper's examples and our experiments.
func Default() *Lexicon {
	l := New()

	// Publication taxonomy.
	for _, pair := range [][2]string{
		{"inproceedings", "article"},
		{"incollection", "article"},
		{"article", "publication"},
		{"proceedings", "publication"},
		{"book", "publication"},
		{"journal", "periodical"},
		{"periodical", "publication"},
		{"publication", "document"},
		{"thesis", "document"},
		{"phdthesis", "thesis"},
		{"mastersthesis", "thesis"},
	} {
		l.AddHypernym(pair[0], pair[1])
	}
	l.AddSynonym("paper", "article")

	// People and venues.
	for _, pair := range [][2]string{
		{"author", "person"},
		{"editor", "person"},
		{"person", "entity"},
		{"conference", "meeting"},
		{"workshop", "meeting"},
		{"symposium", "meeting"},
		{"meeting", "event"},
		{"title", "name"},
		{"booktitle", "name"},
	} {
		l.AddHypernym(pair[0], pair[1])
	}
	l.AddSynonym("booktitle", "conference")

	// Temporal terms.
	for _, pair := range [][2]string{
		{"year", "date"},
		{"month", "date"},
		{"day", "date"},
		{"date", "time"},
	} {
		l.AddHypernym(pair[0], pair[1])
	}
	l.AddSynonym("confyear", "year")

	// Organisations — the "US government" motivating example of Section 1.
	for _, pair := range [][2]string{
		{"us census bureau", "us department of commerce"},
		{"nist", "us department of commerce"},
		{"us department of commerce", "us government"},
		{"us army", "us department of defense"},
		{"us navy", "us department of defense"},
		{"us air force", "us department of defense"},
		{"us department of defense", "us government"},
		{"nasa", "us government"},
		{"national science foundation", "us government"},
		{"army research lab", "us army"},
		{"naval research laboratory", "us navy"},
	} {
		l.AddHolonym(pair[0], pair[1])
	}
	for _, pair := range [][2]string{
		{"google", "web search company"},
		{"web search company", "computer company"},
		{"microsoft", "software company"},
		{"ibm", "computer company"},
		{"software company", "computer company"},
		{"computer company", "company"},
		{"company", "organization"},
		{"us government", "organization"},
		{"university", "educational institution"},
		{"educational institution", "organization"},
		{"stanford university", "university"},
		{"university of maryland", "university"},
	} {
		l.AddHypernym(pair[0], pair[1])
	}

	// Data-management vocabulary (the Figure 13 toy ontology and the
	// title-word isa conditions of the quality experiments). Inflected
	// forms hang below their lemma (the WordNet lemmatisation step), and
	// lemmas below broader concepts, giving the isa conditions two levels
	// of reach.
	for _, pair := range [][2]string{
		// lemma families
		{"indexes", "index"},
		{"indices", "index"},
		{"queries", "query"},
		{"views", "view"},
		{"joins", "join"},
		{"transactions", "transaction"},
		{"models", "model"},
		{"databases", "database"},
		{"relation", "relational"},
		// concepts
		{"relational", "data model"},
		{"model", "abstraction"},
		{"data model", "abstraction"},
		{"database", "information system"},
		{"dbms", "information system"},
		{"xml", "markup language"},
		{"sgml", "markup language"},
		{"html", "markup language"},
		{"markup language", "language"},
		{"query", "request"},
		{"index", "access method"},
		{"view", "derived relation"},
		{"transaction", "operation"},
		{"optimization", "improvement"},
		{"join", "operation"},
	} {
		l.AddHypernym(pair[0], pair[1])
	}
	return l
}
