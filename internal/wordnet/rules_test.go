package wordnet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRules(t *testing.T) {
	l := New()
	src := `
# taxonomy of search companies
isa:  google < web search company
isa:  web search company < computer company
part: us census bureau < us government
syn:  booktitle = conference
`
	if err := l.ParseRules(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if !l.IsA("google", "computer company") {
		t.Error("isa rules not applied")
	}
	if !l.PartOf("us census bureau", "us government") {
		t.Error("part rules not applied")
	}
	if !l.Synonym("booktitle", "conference") {
		t.Error("syn rules not applied")
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, src := range []string{
		"no prefix here",
		"isa: missing separator",
		"part: < empty left",
		"syn: a b",
		"bogus: a < b",
		"isa: a <",
	} {
		l := New()
		if err := l.ParseRules(strings.NewReader(src)); err == nil {
			t.Errorf("ParseRules(%q) should fail", src)
		}
	}
}

func TestRulesRoundTrip(t *testing.T) {
	l := Default()
	var b strings.Builder
	if err := l.WriteRules(&b); err != nil {
		t.Fatal(err)
	}
	l2 := New()
	if err := l2.ParseRules(strings.NewReader(b.String())); err != nil {
		t.Fatalf("re-parsing dump: %v", err)
	}
	// Same relations survive the round trip.
	for _, pair := range [][2]string{
		{"google", "company"},
		{"indices", "access method"},
		{"inproceedings", "publication"},
	} {
		if !l2.IsA(pair[0], pair[1]) {
			t.Errorf("round trip lost %s isa %s", pair[0], pair[1])
		}
	}
	if !l2.PartOf("us census bureau", "us government") {
		t.Error("round trip lost part-of")
	}
	if !l2.Synonym("booktitle", "conference") {
		t.Error("round trip lost synonym")
	}
	if len(l2.Terms()) != len(l.Terms()) {
		t.Errorf("term counts differ: %d vs %d", len(l2.Terms()), len(l.Terms()))
	}
}

func TestLoadRulesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.txt")
	if err := os.WriteFile(path, []byte("isa: a < b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := New()
	if err := l.LoadRulesFile(path); err != nil {
		t.Fatal(err)
	}
	if !l.IsA("a", "b") {
		t.Error("file rules not applied")
	}
	if err := l.LoadRulesFile("/missing-rules.txt"); err == nil {
		t.Error("missing file should fail")
	}
}
