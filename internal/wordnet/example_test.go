package wordnet_test

import (
	"fmt"
	"strings"

	"repro/internal/wordnet"
)

// The default lexicon answers the paper's Section 1 classifications.
func ExampleDefault() {
	l := wordnet.Default()
	fmt.Println(l.PartOf("US Census Bureau", "US Government"))
	fmt.Println(l.IsA("Google", "computer company"))
	fmt.Println(l.Synonym("booktitle", "conference"))
	// Output:
	// true
	// true
	// true
}

// DBA rules extend the lexicon with the textual isa:/part:/syn: format.
func ExampleLexicon_ParseRules() {
	l := wordnet.New()
	rules := `
# custom vocabulary
isa:  smartwatch < wearable
part: strap < smartwatch
syn:  watch = timepiece
`
	if err := l.ParseRules(strings.NewReader(rules)); err != nil {
		panic(err)
	}
	fmt.Println(l.IsA("smartwatch", "wearable"))
	fmt.Println(l.PartOf("strap", "smartwatch"))
	fmt.Println(l.Synonym("watch", "timepiece"))
	// Output:
	// true
	// true
	// true
}
