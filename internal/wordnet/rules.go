package wordnet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ParseRules reads DBA rules from r and applies them to the lexicon. The
// paper's Ontology Maker lets the database administrator "edit further and
// refine" the automatically extracted relationships; this is the textual
// format those edits take:
//
//	# comments and blank lines are ignored
//	isa:  google < web search company
//	part: us census bureau < us government
//	syn:  booktitle = conference
//
// Terms are free text (trimmed, case-insensitive); '<' separates the more
// specific term from the more general, '=' declares synonymy.
func (l *Lexicon) ParseRules(r io.Reader) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("wordnet: line %d: missing rule kind prefix (isa:/part:/syn:)", lineNo)
		}
		kind = strings.TrimSpace(strings.ToLower(kind))
		rest = strings.TrimSpace(rest)
		switch kind {
		case "isa", "part":
			a, b, ok := strings.Cut(rest, "<")
			if !ok {
				return fmt.Errorf("wordnet: line %d: %s rule needs 'a < b'", lineNo, kind)
			}
			a, b = strings.TrimSpace(a), strings.TrimSpace(b)
			if a == "" || b == "" {
				return fmt.Errorf("wordnet: line %d: empty term", lineNo)
			}
			if kind == "isa" {
				l.AddHypernym(a, b)
			} else {
				l.AddHolonym(a, b)
			}
		case "syn":
			a, b, ok := strings.Cut(rest, "=")
			if !ok {
				return fmt.Errorf("wordnet: line %d: syn rule needs 'a = b'", lineNo)
			}
			a, b = strings.TrimSpace(a), strings.TrimSpace(b)
			if a == "" || b == "" {
				return fmt.Errorf("wordnet: line %d: empty term", lineNo)
			}
			l.AddSynonym(a, b)
		default:
			return fmt.Errorf("wordnet: line %d: unknown rule kind %q", lineNo, kind)
		}
	}
	return sc.Err()
}

// LoadRulesFile reads DBA rules from a file (see ParseRules).
func (l *Lexicon) LoadRulesFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wordnet: %w", err)
	}
	defer f.Close()
	if err := l.ParseRules(f); err != nil {
		return fmt.Errorf("%w (in %s)", err, path)
	}
	return nil
}

// WriteRules serialises the lexicon in the ParseRules format, sorted, so a
// DBA can dump, edit and reload it.
func (l *Lexicon) WriteRules(w io.Writer) error {
	var lines []string
	for term, sups := range l.hypernyms {
		for sup := range sups {
			lines = append(lines, fmt.Sprintf("isa: %s < %s", term, sup))
		}
	}
	for term, wholes := range l.holonyms {
		for whole := range wholes {
			lines = append(lines, fmt.Sprintf("part: %s < %s", term, whole))
		}
	}
	seen := map[string]bool{}
	for a, bs := range l.synonyms {
		for b := range bs {
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			key := lo + "\x00" + hi
			if !seen[key] {
				seen[key] = true
				lines = append(lines, fmt.Sprintf("syn: %s = %s", lo, hi))
			}
		}
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
