package wordnet

import "testing"

func TestRelations(t *testing.T) {
	l := New()
	l.AddHypernym("google", "Web Search Company")
	l.AddHypernym("web search company", "computer company")
	l.AddSynonym("Booktitle", "conference")
	l.AddHolonym("author", "article")

	if got := l.Hypernyms("Google"); len(got) != 1 || got[0] != "web search company" {
		t.Errorf("Hypernyms = %v (case normalisation?)", got)
	}
	if !l.IsA("google", "computer company") {
		t.Error("transitive IsA failed")
	}
	if !l.IsA("google", "google") {
		t.Error("IsA must be reflexive")
	}
	if l.IsA("computer company", "google") {
		t.Error("IsA must not be symmetric")
	}
	if !l.Synonym("booktitle", "CONFERENCE") {
		t.Error("synonyms should be case-insensitive")
	}
	if !l.Synonym("x", "x") {
		t.Error("Synonym reflexive")
	}
	if !l.PartOf("author", "article") {
		t.Error("PartOf direct failed")
	}
	if l.PartOf("article", "author") {
		t.Error("PartOf must not be symmetric")
	}
}

func TestSynonymHopInReachability(t *testing.T) {
	l := New()
	l.AddSynonym("booktitle", "conference")
	l.AddHypernym("conference", "meeting")
	if !l.IsA("booktitle", "meeting") {
		t.Error("IsA should hop through synonyms")
	}
	if !l.IsA("booktitle", "conference") {
		t.Error("IsA should treat synonyms as equivalent")
	}
}

func TestSelfRelationsIgnored(t *testing.T) {
	l := New()
	l.AddSynonym("a", "a")
	l.AddHypernym("a", "a")
	l.AddHolonym("a", "a")
	if len(l.Terms()) != 0 {
		t.Errorf("self relations should be ignored, got terms %v", l.Terms())
	}
}

func TestDefaultLexicon(t *testing.T) {
	l := Default()
	cases := []struct {
		a, b string
		rel  string
		want bool
	}{
		{"inproceedings", "publication", "isa", true},
		{"indices", "access method", "isa", true},
		{"indexes", "index", "isa", true},
		{"relational", "abstraction", "isa", true},
		{"google", "company", "isa", true},
		{"booktitle", "meeting", "isa", true}, // via synonym conference
		{"year", "time", "isa", true},
		{"index", "operation", "isa", false},
		{"us census bureau", "us government", "part-of", true},
		{"army research lab", "us government", "part-of", true},
		{"stanford university", "us government", "part-of", false},
	}
	for _, c := range cases {
		var got bool
		if c.rel == "isa" {
			got = l.IsA(c.a, c.b)
		} else {
			got = l.PartOf(c.a, c.b)
		}
		if got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.a, c.rel, c.b, got, c.want)
		}
	}
	if !l.Synonym("paper", "article") {
		t.Error("paper/article synonymy missing")
	}
	if len(l.Terms()) < 50 {
		t.Errorf("default lexicon suspiciously small: %d terms", len(l.Terms()))
	}
}

func TestHolonymsAndSynonymsAccessors(t *testing.T) {
	l := Default()
	if got := l.Holonyms("us census bureau"); len(got) != 1 || got[0] != "us department of commerce" {
		t.Errorf("Holonyms = %v", got)
	}
	if got := l.Synonyms("booktitle"); len(got) != 1 || got[0] != "conference" {
		t.Errorf("Synonyms = %v", got)
	}
	if l.Hypernyms("zzz") != nil && len(l.Hypernyms("zzz")) != 0 {
		t.Error("unknown term should have no hypernyms")
	}
}
