package ontology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddEdgeAndLeq(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("author", "article")
	h.MustAddEdge("title", "article")
	h.MustAddEdge("article", "publication")
	if !h.Leq("author", "article") {
		t.Error("author <= article should hold")
	}
	if !h.Leq("author", "publication") {
		t.Error("transitive reachability failed")
	}
	if !h.Leq("author", "author") {
		t.Error("Leq must be reflexive on members")
	}
	if h.Leq("article", "author") {
		t.Error("Leq must not be symmetric")
	}
	if h.Leq("ghost", "article") || h.Leq("article", "ghost") {
		t.Error("unknown terms are not ordered")
	}
	// Same answers after the index is built.
	h.BuildReachability()
	if !h.Leq("author", "publication") || h.Leq("publication", "author") {
		t.Error("index answers differ from DFS answers")
	}
}

func TestCycleRejection(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("a", "b")
	h.MustAddEdge("b", "c")
	if err := h.AddEdge("c", "a"); err == nil {
		t.Fatal("closing a cycle should fail")
	}
	if err := h.AddEdge("a", "a"); err == nil {
		t.Fatal("self-loop should fail")
	}
	// Duplicate edges are idempotent.
	if err := h.AddEdge("a", "b"); err != nil {
		t.Fatalf("duplicate edge: %v", err)
	}
	if h.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", h.EdgeCount())
	}
}

func TestBelowAbove(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("index", "access method")
	h.MustAddEdge("indexes", "index")
	h.MustAddEdge("indices", "index")
	below := h.Below("index")
	if strings.Join(below, ",") != "index,indexes,indices" {
		t.Errorf("Below = %v", below)
	}
	above := h.Above("indices")
	if strings.Join(above, ",") != "access method,index,indices" {
		t.Errorf("Above = %v", above)
	}
	if h.Below("nope") != nil {
		t.Error("Below of unknown term should be nil")
	}
}

func TestParentsChildren(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("a", "x")
	h.MustAddEdge("a", "y")
	h.MustAddEdge("b", "x")
	if got := h.Parents("a"); strings.Join(got, ",") != "x,y" {
		t.Errorf("Parents(a) = %v", got)
	}
	if got := h.Children("x"); strings.Join(got, ",") != "a,b" {
		t.Errorf("Children(x) = %v", got)
	}
}

func TestTransitiveReduction(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("a", "b")
	h.MustAddEdge("b", "c")
	h.MustAddEdge("a", "c") // redundant
	h.TransitiveReduction()
	if h.EdgeCount() != 2 {
		t.Fatalf("EdgeCount after reduction = %d, want 2", h.EdgeCount())
	}
	if !h.Leq("a", "c") {
		t.Fatal("reduction must preserve reachability")
	}
	// A diamond must be preserved entirely.
	d := NewHierarchy()
	d.MustAddEdge("a", "b")
	d.MustAddEdge("a", "c")
	d.MustAddEdge("b", "d")
	d.MustAddEdge("c", "d")
	d.TransitiveReduction()
	if d.EdgeCount() != 4 {
		t.Errorf("diamond reduced to %d edges, want 4", d.EdgeCount())
	}
}

func TestCloneIndependence(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("a", "b")
	cp := h.Clone()
	cp.MustAddEdge("b", "c")
	if h.HasNode("c") {
		t.Error("mutating clone affected original")
	}
	if !cp.Leq("a", "c") {
		t.Error("clone lost structure")
	}
}

func TestStringRendering(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("author", "article")
	if got := h.String(); got != "author <= article\n" {
		t.Errorf("String = %q", got)
	}
}

func TestOntologyAccessors(t *testing.T) {
	o := NewOntology()
	o.Isa().MustAddEdge("google", "company")
	o.PartOf().MustAddEdge("author", "article")
	if o.TermCount() != 4 {
		t.Errorf("TermCount = %d, want 4", o.TermCount())
	}
	// Missing relation is materialised empty.
	o2 := &Ontology{Hierarchies: map[string]*Hierarchy{}}
	if o2.Isa() == nil || o2.PartOf() == nil {
		t.Error("relation accessors must never return nil")
	}
}

// randomHierarchy builds a random DAG by only adding edges low → high.
func randomHierarchy(rng *rand.Rand, n int) *Hierarchy {
	h := NewHierarchy()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
		h.AddNode(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				h.MustAddEdge(names[i], names[j])
			}
		}
	}
	return h
}

// TestQuickLeqMatchesDFS: the memoized reachability index agrees with plain
// DFS on random DAGs.
func TestQuickLeqMatchesDFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHierarchy(rng, 3+rng.Intn(10))
		nodes := h.Nodes()
		h.BuildReachability()
		for i := 0; i < 30; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if h.Leq(u, v) != h.LeqNoIndex(u, v) {
				t.Logf("seed %d: Leq(%s,%s) disagrees", seed, u, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransitiveReductionPreservesOrder: reduction never changes Leq.
func TestQuickTransitiveReductionPreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHierarchy(rng, 3+rng.Intn(8))
		before := map[[2]string]bool{}
		nodes := h.Nodes()
		for _, u := range nodes {
			for _, v := range nodes {
				before[[2]string{u, v}] = h.Leq(u, v)
			}
		}
		h.TransitiveReduction()
		for _, u := range nodes {
			for _, v := range nodes {
				if h.Leq(u, v) != before[[2]string{u, v}] {
					t.Logf("seed %d: reduction changed Leq(%s,%s)", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	h := NewHierarchy()
	h.MustAddEdge("author", "article")
	h.MustAddEdge(`odd"name`, "article")
	var b strings.Builder
	if err := h.WriteDOT(&b, "my graph!"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph my_graph_",
		`"author" -> "article";`,
		`\"name`, // quote escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestFusionWriteDOT(t *testing.T) {
	sigmod, dblp := paperHierarchies()
	f, err := Fuse([]*Hierarchy{sigmod, dblp}, []Constraint{Equal("author", 1, "author", 2)})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := f.WriteDOT(&b, "fusion"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "author:1") || !strings.Contains(out, "author:2") {
		t.Errorf("fused node label missing members:\n%s", out)
	}
	if !strings.Contains(out, "digraph fusion") {
		t.Error("graph name missing")
	}
}
