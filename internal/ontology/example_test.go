package ontology_test

import (
	"fmt"

	"repro/internal/ontology"
)

// Fusing the paper's Example 10: two bibliographic part-of hierarchies merge
// under interoperation constraints; conference (SIGMOD) and booktitle (DBLP)
// become one fused node.
func ExampleFuse() {
	sigmod := ontology.NewHierarchy()
	sigmod.MustAddEdge("author", "article")
	sigmod.MustAddEdge("conference", "article")

	dblp := ontology.NewHierarchy()
	dblp.MustAddEdge("author", "inproceedings")
	dblp.MustAddEdge("booktitle", "inproceedings")

	f, err := ontology.Fuse(
		[]*ontology.Hierarchy{sigmod, dblp},
		[]ontology.Constraint{
			ontology.Equal("conference", 1, "booktitle", 2),
			ontology.Equal("author", 1, "author", 2),
		})
	if err != nil {
		panic(err)
	}
	conf, _ := f.Psi(ontology.QTerm{Term: "conference", Source: 1})
	book, _ := f.Psi(ontology.QTerm{Term: "booktitle", Source: 2})
	fmt.Println(conf == book)
	a, _ := f.Psi(ontology.QTerm{Term: "author", Source: 1})
	art, _ := f.Psi(ontology.QTerm{Term: "article", Source: 1})
	fmt.Println(f.Hierarchy.Leq(a, art))
	// Output:
	// true
	// true
}

func ExampleHierarchy_Below() {
	h := ontology.NewHierarchy()
	h.MustAddEdge("index", "access method")
	h.MustAddEdge("indexes", "index")
	h.MustAddEdge("indices", "index")
	fmt.Println(h.Below("access method"))
	// Output:
	// [access method index indexes indices]
}
