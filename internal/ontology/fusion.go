package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// QTerm is a term qualified by the index of the hierarchy it comes from —
// the "x : i" notation of Definition 4.
type QTerm struct {
	Term   string
	Source int
}

func (q QTerm) String() string { return fmt.Sprintf("%s:%d", q.Term, q.Source) }

// Constraint is an interoperation constraint between terms of different
// hierarchies (Definition 4): x:i ≤ y:j, x:i = y:j (the pair of ≤
// constraints, as the paper notes), or x:i ≠ y:j (the two terms must NOT end
// up in the same fused node; an integration violating this does not exist).
type Constraint struct {
	X   QTerm
	Y   QTerm
	Eq  bool
	Neq bool
}

// Leq builds the constraint x:i ≤ y:j.
func Leq(x string, i int, y string, j int) Constraint {
	return Constraint{X: QTerm{x, i}, Y: QTerm{y, j}}
}

// Equal builds the constraint x:i = y:j.
func Equal(x string, i int, y string, j int) Constraint {
	return Constraint{X: QTerm{x, i}, Y: QTerm{y, j}, Eq: true}
}

// NotEqual builds the constraint x:i ≠ y:j.
func NotEqual(x string, i int, y string, j int) Constraint {
	return Constraint{X: QTerm{x, i}, Y: QTerm{y, j}, Neq: true}
}

func (c Constraint) String() string {
	op := "<="
	switch {
	case c.Eq:
		op = "="
	case c.Neq:
		op = "!="
	}
	return fmt.Sprintf("%s %s %s", c.X, op, c.Y)
}

// Fusion is the canonical fusion of several hierarchies under interoperation
// constraints (Section 4.2): a witness ⟨H, ≤, ψ_1..ψ_n⟩ to integrability.
// Each fused node corresponds to a set of qualified terms that the
// constraints force to be equal (an SCC of the hierarchy graph of Def. 6).
type Fusion struct {
	// Hierarchy is the fused DAG over canonical node names.
	Hierarchy *Hierarchy
	// Members maps a canonical node name to the qualified terms it merges.
	Members map[string][]QTerm
	// Witness maps each qualified term to its canonical node (the ψ_i maps).
	Witness map[QTerm]string
	// byTerm maps a bare term to the canonical nodes containing it in any
	// source; used at query time where terms arrive unqualified.
	byTerm map[string][]string
}

// Fuse integrates the given hierarchies under the constraints and returns
// the canonical fusion. It follows the graph-merging construction the paper
// adapts from [3,2]: build the hierarchy graph (every hierarchy edge plus
// every constraint edge), contract its strongly connected components (the
// sets of terms forced equal), and keep the condensation DAG.
//
// Constraints referring to out-of-range sources or unknown terms yield an
// error rather than being silently dropped.
func Fuse(hierarchies []*Hierarchy, constraints []Constraint) (*Fusion, error) {
	for _, c := range constraints {
		for _, q := range []QTerm{c.X, c.Y} {
			if q.Source < 1 || q.Source > len(hierarchies) {
				return nil, fmt.Errorf("ontology: constraint %v: source %d out of range 1..%d", c, q.Source, len(hierarchies))
			}
			if !hierarchies[q.Source-1].HasNode(q.Term) {
				return nil, fmt.Errorf("ontology: constraint %v: term %q not in hierarchy %d", c, q.Term, q.Source)
			}
		}
	}

	// Hierarchy graph (Definition 6): nodes x:i, edges from hierarchy edges
	// and from constraints (both directions for equality constraints);
	// ≠ constraints contribute no edges but are verified against the SCCs.
	g := newDigraph()
	for i, h := range hierarchies {
		for _, n := range h.Nodes() {
			g.addNode(QTerm{n, i + 1})
		}
		for _, e := range h.Edges() {
			g.addEdge(QTerm{e.Child, i + 1}, QTerm{e.Parent, i + 1})
		}
	}
	var neqs []Constraint
	for _, c := range constraints {
		if c.Neq {
			neqs = append(neqs, c)
			continue
		}
		g.addEdge(c.X, c.Y)
		if c.Eq {
			g.addEdge(c.Y, c.X)
		}
	}

	comps := g.tarjanSCC()

	// ≠ constraints: the two terms must not land in the same component.
	if len(neqs) > 0 {
		compOf := map[QTerm]int{}
		for ci, comp := range comps {
			for _, q := range comp {
				compOf[q] = ci
			}
		}
		for _, c := range neqs {
			if compOf[c.X] == compOf[c.Y] {
				return nil, fmt.Errorf("ontology: not integrable: constraint %v violated (the remaining constraints force %v = %v)", c, c.X, c.Y)
			}
		}
	}

	f := &Fusion{
		Hierarchy: NewHierarchy(),
		Members:   map[string][]QTerm{},
		Witness:   map[QTerm]string{},
		byTerm:    map[string][]string{},
	}
	// Canonical names: the smallest bare term of the component; if the same
	// bare term would name several components, fall back to the smallest
	// qualified string for the later ones.
	nameOf := make([]string, len(comps))
	used := map[string]int{} // name → component index + 1
	for ci, comp := range comps {
		sort.Slice(comp, func(a, b int) bool {
			if comp[a].Term != comp[b].Term {
				return comp[a].Term < comp[b].Term
			}
			return comp[a].Source < comp[b].Source
		})
		name := comp[0].Term
		if prev, taken := used[name]; taken && prev != ci+1 {
			name = comp[0].String()
		}
		used[name] = ci + 1
		nameOf[ci] = name
		f.Members[name] = comp
		f.Hierarchy.AddNode(name)
		for _, q := range comp {
			f.Witness[q] = name
			if !containsStr(f.byTerm[q.Term], name) {
				f.byTerm[q.Term] = append(f.byTerm[q.Term], name)
			}
		}
	}
	for _, t := range f.byTerm {
		sort.Strings(t)
	}
	// Condensation edges. The condensation of the SCCs is acyclic, so
	// AddEdge cannot fail here; a failure would indicate a bug in tarjanSCC.
	for from, tos := range g.adj {
		cf := f.Witness[from]
		for _, to := range tos {
			ct := f.Witness[to]
			if cf == ct {
				continue
			}
			if err := f.Hierarchy.AddEdge(cf, ct); err != nil {
				return nil, fmt.Errorf("ontology: condensation not acyclic: %w", err)
			}
		}
	}
	f.Hierarchy.TransitiveReduction()
	return f, nil
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// NodesOf returns the canonical fused nodes that contain the bare term in
// any source hierarchy (usually one; several when distinct unconstrained
// sources both use the term).
func (f *Fusion) NodesOf(term string) []string { return f.byTerm[term] }

// Psi returns the canonical node for a qualified term, implementing the ψ_i
// witness maps of Definition 5. ok is false when the term is unknown.
func (f *Fusion) Psi(q QTerm) (string, bool) {
	n, ok := f.Witness[q]
	return n, ok
}

// String summarises the fusion: node memberships plus the fused Hasse edges.
func (f *Fusion) String() string {
	var b strings.Builder
	names := make([]string, 0, len(f.Members))
	for n := range f.Members {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		terms := make([]string, len(f.Members[n]))
		for i, q := range f.Members[n] {
			terms[i] = q.String()
		}
		fmt.Fprintf(&b, "%s = {%s}\n", n, strings.Join(terms, ", "))
	}
	b.WriteString(f.Hierarchy.String())
	return b.String()
}

// ---- digraph + Tarjan SCC over qualified terms ----

type digraph struct {
	adj   map[QTerm][]QTerm
	nodes []QTerm
	seen  map[QTerm]bool
}

func newDigraph() *digraph {
	return &digraph{adj: map[QTerm][]QTerm{}, seen: map[QTerm]bool{}}
}

func (g *digraph) addNode(q QTerm) {
	if !g.seen[q] {
		g.seen[q] = true
		g.nodes = append(g.nodes, q)
	}
}

func (g *digraph) addEdge(from, to QTerm) {
	g.addNode(from)
	g.addNode(to)
	g.adj[from] = append(g.adj[from], to)
}

// tarjanSCC returns the strongly connected components (iterative Tarjan, so
// deep hierarchies cannot overflow the goroutine stack).
func (g *digraph) tarjanSCC() [][]QTerm {
	index := map[QTerm]int{}
	low := map[QTerm]int{}
	onStack := map[QTerm]bool{}
	var stack []QTerm
	var comps [][]QTerm
	counter := 0

	type frame struct {
		node QTerm
		edge int
	}
	for _, start := range g.nodes {
		if _, visited := index[start]; visited {
			continue
		}
		frames := []frame{{node: start}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(g.adj[f.node]) {
				next := g.adj[f.node][f.edge]
				f.edge++
				if _, visited := index[next]; !visited {
					index[next] = counter
					low[next] = counter
					counter++
					stack = append(stack, next)
					onStack[next] = true
					frames = append(frames, frame{node: next})
				} else if onStack[next] {
					if index[next] < low[f.node] {
						low[f.node] = index[next]
					}
				}
				continue
			}
			// Done with f.node.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
			if low[f.node] == index[f.node] {
				var comp []QTerm
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.node {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
