package ontology

import (
	"fmt"
	"testing"
)

func benchHierarchy(n int) *Hierarchy {
	h := NewHierarchy()
	for i := 0; i < n; i++ {
		h.MustAddEdge(fmt.Sprintf("leaf-%d", i), fmt.Sprintf("mid-%d", i%20))
	}
	for i := 0; i < 20; i++ {
		h.MustAddEdge(fmt.Sprintf("mid-%d", i), "root")
	}
	return h
}

func BenchmarkBuildReachability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := benchHierarchy(1000)
		h.BuildReachability()
	}
}

func BenchmarkLeqIndexed(b *testing.B) {
	h := benchHierarchy(1000)
	h.BuildReachability()
	for i := 0; i < b.N; i++ {
		if !h.Leq("leaf-500", "root") {
			b.Fatal("reachability broken")
		}
	}
}

func BenchmarkFuse(b *testing.B) {
	h1 := benchHierarchy(500)
	h2 := benchHierarchy(500)
	var constraints []Constraint
	for i := 0; i < 50; i++ {
		constraints = append(constraints, Equal(fmt.Sprintf("leaf-%d", i), 1, fmt.Sprintf("leaf-%d", i), 2))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fuse([]*Hierarchy{h1, h2}, constraints); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := benchHierarchy(500)
		// Add redundant transitive edges to give the reduction work.
		for j := 0; j < 100; j++ {
			_ = h.AddEdge(fmt.Sprintf("leaf-%d", j), "root")
		}
		b.StartTimer()
		h.TransitiveReduction()
	}
}
