package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the incremental half of Section 4.2: runtime mutation of an
// already-computed canonical fusion. A full Fuse re-runs the SCC contraction
// from scratch; the operations here apply one edge addition, one edge
// retraction, or one equality merge directly to the fused DAG, producing the
// same structure a re-Fuse with the extra constraint would (the merged set of
// an equality constraint is exactly the SCC the hierarchy graph of
// Definition 6 would contract). Callers mutate a Clone and install the result
// atomically; none of these methods is safe for concurrent use on a shared
// Fusion.

// RuntimeSource is the QTerm source index given to terms introduced at
// runtime rather than by a registered instance (instances are 1-based).
const RuntimeSource = 0

// Clone returns a deep copy of the fusion; mutations of the copy leave the
// original untouched.
func (f *Fusion) Clone() *Fusion {
	cp := &Fusion{
		Hierarchy: f.Hierarchy.Clone(),
		Members:   make(map[string][]QTerm, len(f.Members)),
		Witness:   make(map[QTerm]string, len(f.Witness)),
		byTerm:    make(map[string][]string, len(f.byTerm)),
	}
	for n, ms := range f.Members {
		cp.Members[n] = append([]QTerm(nil), ms...)
	}
	for q, n := range f.Witness {
		cp.Witness[q] = n
	}
	for t, ns := range f.byTerm {
		cp.byTerm[t] = append([]string(nil), ns...)
	}
	return cp
}

// nodeOfTerm resolves a bare term to its canonical fused node. Terms that
// appear in several fused nodes (distinct unconstrained sources) are
// ambiguous mutation targets and yield an error.
func (f *Fusion) nodeOfTerm(term string) (string, bool, error) {
	ns := f.byTerm[term]
	switch len(ns) {
	case 0:
		return "", false, nil
	case 1:
		return ns[0], true, nil
	}
	return "", false, fmt.Errorf("ontology: term %q is ambiguous (fused nodes %s)", term, strings.Join(ns, ", "))
}

// EnsureTerm returns the canonical fused node containing term, adding a fresh
// singleton node (qualified by source, RuntimeSource for ad-hoc terms) when
// the term is unknown.
func (f *Fusion) EnsureTerm(term string, source int) (string, error) {
	if term == "" {
		return "", fmt.Errorf("ontology: empty term")
	}
	if n, ok, err := f.nodeOfTerm(term); err != nil || ok {
		return n, err
	}
	q := QTerm{Term: term, Source: source}
	name := term
	if _, taken := f.Members[name]; taken {
		// A node is named term without containing it (qualified-name
		// fallback collisions); qualify the new node the same way.
		name = q.String()
		if _, taken := f.Members[name]; taken {
			return "", fmt.Errorf("ontology: cannot name new node for term %q: %q taken", term, name)
		}
	}
	f.Members[name] = []QTerm{q}
	f.Witness[q] = name
	f.byTerm[term] = append(f.byTerm[term], name)
	sort.Strings(f.byTerm[term])
	f.Hierarchy.AddNode(name)
	return name, nil
}

// AddTermEdge records childTerm ≤ parentTerm between the canonical fused
// nodes of the two bare terms, adding unknown terms as fresh nodes qualified
// by source. It returns the two canonical node names and whether the
// hierarchy changed (false when the direct edge already existed). An edge
// that would create a cycle — i.e. an addition under which no integration
// exists — is an error.
func (f *Fusion) AddTermEdge(childTerm, parentTerm string, source int) (child, parent string, changed bool, err error) {
	if child, err = f.EnsureTerm(childTerm, source); err != nil {
		return
	}
	if parent, err = f.EnsureTerm(parentTerm, source); err != nil {
		return
	}
	if child == parent {
		err = fmt.Errorf("ontology: %q and %q already share fused node %q", childTerm, parentTerm, child)
		return
	}
	if f.Hierarchy.HasEdge(child, parent) {
		return child, parent, false, nil
	}
	if err = f.Hierarchy.AddEdge(child, parent); err != nil {
		return
	}
	return child, parent, true, nil
}

// RetractTermEdge removes the direct fused edge childTerm ≤ parentTerm. Only
// Hasse edges are retractable; retracting an order that holds only through
// intermediate nodes is an error (retract the chain's own edges instead).
func (f *Fusion) RetractTermEdge(childTerm, parentTerm string) (child, parent string, err error) {
	child, ok, err := f.nodeOfTerm(childTerm)
	if err != nil {
		return "", "", err
	}
	if !ok {
		return "", "", fmt.Errorf("ontology: unknown term %q", childTerm)
	}
	parent, ok, err = f.nodeOfTerm(parentTerm)
	if err != nil {
		return "", "", err
	}
	if !ok {
		return "", "", fmt.Errorf("ontology: unknown term %q", parentTerm)
	}
	if !f.Hierarchy.RemoveEdge(child, parent) {
		return "", "", fmt.Errorf("ontology: no direct edge %q ≤ %q (only Hasse edges can be retracted)", child, parent)
	}
	return child, parent, nil
}

// MergeTerms applies the equality constraint xTerm = yTerm to the fusion:
// the canonical nodes of both terms — together with every node on a directed
// path between them, which is exactly the SCC the hierarchy graph of
// Definition 6 would contract after adding x ≤ y and y ≤ x — collapse into
// one fused node. It returns the merged node's canonical name and the node
// names that disappeared. Contracting a path set cannot create cycles, so a
// merge always yields a valid fusion.
func (f *Fusion) MergeTerms(xTerm, yTerm string) (merged string, removed []string, err error) {
	nx, ok, err := f.nodeOfTerm(xTerm)
	if err != nil {
		return "", nil, err
	}
	if !ok {
		return "", nil, fmt.Errorf("ontology: unknown term %q", xTerm)
	}
	ny, ok, err := f.nodeOfTerm(yTerm)
	if err != nil {
		return "", nil, err
	}
	if !ok {
		return "", nil, fmt.Errorf("ontology: unknown term %q", yTerm)
	}
	if nx == ny {
		return "", nil, fmt.Errorf("ontology: %q and %q already share fused node %q", xTerm, yTerm, nx)
	}

	// The merge set: nx, ny, and every node between them (in a DAG paths run
	// in at most one direction).
	h := f.Hierarchy
	h.BuildReachability()
	mset := map[string]bool{nx: true, ny: true}
	for _, n := range h.Nodes() {
		if (h.Leq(nx, n) && h.Leq(n, ny)) || (h.Leq(ny, n) && h.Leq(n, nx)) {
			mset[n] = true
		}
	}

	// Canonical name of the merged node: smallest member term, matching
	// Fuse's naming; fall back to the qualified spelling when that bare name
	// already names an unrelated node.
	var qs []QTerm
	for n := range mset {
		qs = append(qs, f.Members[n]...)
	}
	sort.Slice(qs, func(a, b int) bool {
		if qs[a].Term != qs[b].Term {
			return qs[a].Term < qs[b].Term
		}
		return qs[a].Source < qs[b].Source
	})
	merged = qs[0].Term
	if _, taken := f.Members[merged]; taken && !mset[merged] {
		merged = qs[0].String()
		if _, taken := f.Members[merged]; taken && !mset[merged] {
			return "", nil, fmt.Errorf("ontology: cannot name merged node: %q taken", merged)
		}
	}

	// Rebuild the hierarchy with the merge set contracted. Because mset is
	// closed under betweenness, contraction cannot form a cycle.
	rename := func(n string) string {
		if mset[n] {
			return merged
		}
		return n
	}
	nh := NewHierarchy()
	for _, n := range h.Nodes() {
		nh.AddNode(rename(n))
	}
	for _, e := range h.Edges() {
		c, p := rename(e.Child), rename(e.Parent)
		if c == p {
			continue
		}
		if err := nh.AddEdge(c, p); err != nil {
			return "", nil, fmt.Errorf("ontology: merge of %q and %q: %w", xTerm, yTerm, err)
		}
	}
	nh.TransitiveReduction()
	f.Hierarchy = nh

	// Rewire membership and witnesses.
	terms := map[string]bool{}
	for n := range mset {
		for _, q := range f.Members[n] {
			f.Witness[q] = merged
			terms[q.Term] = true
		}
		if n != merged {
			removed = append(removed, n)
		}
		delete(f.Members, n)
	}
	f.Members[merged] = qs
	for t := range terms {
		var keep []string
		for _, n := range f.byTerm[t] {
			if !mset[n] {
				keep = append(keep, n)
			}
		}
		if !containsStr(keep, merged) {
			keep = append(keep, merged)
		}
		sort.Strings(keep)
		f.byTerm[t] = keep
	}
	sort.Strings(removed)
	return merged, removed, nil
}
