// Package ontology implements the ontology machinery of Section 4 of the
// paper: hierarchies (Hasse diagrams of partial orders, represented as
// DAGs over term strings), ontologies (partial maps from relation names such
// as "isa" and "part-of" to hierarchies), interoperation constraints, and the
// canonical fusion of several hierarchies under such constraints.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Hierarchy is a directed acyclic graph over terms. An edge u→v encodes
// u ≤ v in the underlying partial order (e.g. author part-of article is the
// edge author→article). Acyclicity is the caller's obligation when adding
// edges; AddEdge refuses edges that would create a cycle.
type Hierarchy struct {
	nodes map[string]bool
	up    map[string]map[string]bool // child → parents
	down  map[string]map[string]bool // parent → children

	reach map[string]map[string]bool // memoized ancestors incl. self; nil when dirty
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		nodes: map[string]bool{},
		up:    map[string]map[string]bool{},
		down:  map[string]map[string]bool{},
	}
}

// AddNode adds an isolated term if not present.
func (h *Hierarchy) AddNode(term string) {
	if !h.nodes[term] {
		h.nodes[term] = true
		h.reach = nil
	}
}

// HasNode reports whether the term is in the hierarchy.
func (h *Hierarchy) HasNode(term string) bool { return h.nodes[term] }

// AddEdge records child ≤ parent. It returns an error if the edge would
// create a cycle (hierarchies are Hasse diagrams of partial orders, hence
// acyclic). Self-loops are rejected; duplicate edges are no-ops.
func (h *Hierarchy) AddEdge(child, parent string) error {
	if child == parent {
		return fmt.Errorf("ontology: self-loop on %q", child)
	}
	h.AddNode(child)
	h.AddNode(parent)
	if h.up[child][parent] {
		return nil
	}
	// Adding child→parent creates a cycle iff parent already reaches child.
	if h.Leq(parent, child) {
		return fmt.Errorf("ontology: edge %q ≤ %q would create a cycle", child, parent)
	}
	addEdge(h.up, child, parent)
	addEdge(h.down, parent, child)
	h.reach = nil
	return nil
}

// HasEdge reports whether the direct (Hasse) edge child→parent is present.
func (h *Hierarchy) HasEdge(child, parent string) bool { return h.up[child][parent] }

// RemoveEdge deletes the direct edge child→parent, reporting whether it was
// present. Only Hasse edges can be retracted: if the order also holds through
// another path, that path keeps it. Removal cannot create cycles, so it
// always succeeds when the edge exists.
func (h *Hierarchy) RemoveEdge(child, parent string) bool {
	if !h.up[child][parent] {
		return false
	}
	delete(h.up[child], parent)
	delete(h.down[parent], child)
	h.reach = nil
	return true
}

// MustAddEdge is AddEdge but panics on error. Convenient for building fixed
// ontologies in code.
func (h *Hierarchy) MustAddEdge(child, parent string) {
	if err := h.AddEdge(child, parent); err != nil {
		panic(err)
	}
}

func addEdge(m map[string]map[string]bool, from, to string) {
	set := m[from]
	if set == nil {
		set = map[string]bool{}
		m[from] = set
	}
	set[to] = true
}

// Nodes returns all terms in sorted order.
func (h *Hierarchy) Nodes() []string {
	out := make([]string, 0, len(h.nodes))
	for n := range h.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeCount returns the number of terms.
func (h *Hierarchy) NodeCount() int { return len(h.nodes) }

// EdgeCount returns the number of edges.
func (h *Hierarchy) EdgeCount() int {
	n := 0
	for _, set := range h.up {
		n += len(set)
	}
	return n
}

// Edge is a single u ≤ v pair.
type Edge struct{ Child, Parent string }

// Edges returns all edges sorted by (child, parent).
func (h *Hierarchy) Edges() []Edge {
	var out []Edge
	for c, ps := range h.up {
		for p := range ps {
			out = append(out, Edge{c, p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Child != out[j].Child {
			return out[i].Child < out[j].Child
		}
		return out[i].Parent < out[j].Parent
	})
	return out
}

// Parents returns the direct parents of term, sorted.
func (h *Hierarchy) Parents(term string) []string { return sortedKeys(h.up[term]) }

// Children returns the direct children of term, sorted.
func (h *Hierarchy) Children(term string) []string { return sortedKeys(h.down[term]) }

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Leq reports u ≤ v: v is reachable from u following child→parent edges
// (reflexively). Uses a memoized full reachability index, rebuilt after
// mutations; see BuildReachability for eager construction.
func (h *Hierarchy) Leq(u, v string) bool {
	if u == v {
		return h.nodes[u]
	}
	if !h.nodes[u] || !h.nodes[v] {
		return false
	}
	if h.reach != nil {
		return h.reach[u][v]
	}
	return h.leqDFS(u, v)
}

// leqDFS answers one reachability query without building the index; used
// while the hierarchy is still being mutated (AddEdge cycle checks) and by
// the reachability-index ablation benchmark.
func (h *Hierarchy) leqDFS(u, v string) bool {
	seen := map[string]bool{u: true}
	stack := []string{u}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range h.up[cur] {
			if p == v {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// LeqNoIndex answers u ≤ v by plain DFS, ignoring any reachability index.
// It exists for the reachability ablation; Leq is the production path.
func (h *Hierarchy) LeqNoIndex(u, v string) bool {
	if u == v {
		return h.nodes[u]
	}
	if !h.nodes[u] || !h.nodes[v] {
		return false
	}
	return h.leqDFS(u, v)
}

// BuildReachability eagerly computes the ancestors-of index used by Leq.
// It is called lazily by Below/Above; calling it explicitly lets benchmarks
// separate index construction from query time.
func (h *Hierarchy) BuildReachability() {
	if h.reach != nil {
		return
	}
	reach := make(map[string]map[string]bool, len(h.nodes))
	// Process in reverse topological order so each node's ancestor set is a
	// union of its parents' sets.
	order := h.topoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		set := map[string]bool{n: true}
		for p := range h.up[n] {
			for a := range reach[p] {
				set[a] = true
			}
		}
		reach[n] = set
	}
	h.reach = reach
}

// topoOrder returns the nodes so that parents appear before children.
func (h *Hierarchy) topoOrder() []string {
	state := map[string]int{} // 0 unvisited, 1 in-stack, 2 done
	var order []string
	var visit func(string)
	visit = func(n string) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for p := range h.up[n] {
			visit(p)
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range h.Nodes() {
		visit(n)
	}
	// order currently has parents before children already? visit pushes a
	// node after its parents, so order is parents-first.
	return reverse(order)
}

func reverse(s []string) []string {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// Below returns all terms u with u ≤ term (including term itself), sorted.
// This is the below_H set of Section 5 restricted to hierarchy members.
func (h *Hierarchy) Below(term string) []string {
	if !h.nodes[term] {
		return nil
	}
	h.BuildReachability()
	var out []string
	for n, anc := range h.reach {
		if anc[term] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Above returns all terms v with term ≤ v (including term itself), sorted.
func (h *Hierarchy) Above(term string) []string {
	if !h.nodes[term] {
		return nil
	}
	h.BuildReachability()
	out := make([]string, 0, len(h.reach[term]))
	for a := range h.reach[term] {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy.
func (h *Hierarchy) Clone() *Hierarchy {
	cp := NewHierarchy()
	for n := range h.nodes {
		cp.AddNode(n)
	}
	for c, ps := range h.up {
		for p := range ps {
			addEdge(cp.up, c, p)
			addEdge(cp.down, p, c)
		}
	}
	return cp
}

// TransitiveReduction removes every edge u→v for which another path u⇝v
// exists, turning the DAG into a minimal Hasse diagram (the definition of a
// hierarchy in Section 4.1).
func (h *Hierarchy) TransitiveReduction() {
	type edge struct{ c, p string }
	var drop []edge
	for c, ps := range h.up {
		for p := range ps {
			// Is p reachable from c without the direct edge?
			if h.reachableAvoiding(c, p) {
				drop = append(drop, edge{c, p})
			}
		}
	}
	for _, e := range drop {
		delete(h.up[e.c], e.p)
		delete(h.down[e.p], e.c)
	}
	if len(drop) > 0 {
		h.reach = nil
	}
}

// reachableAvoiding reports whether target is reachable from start following
// up-edges without using the direct edge start→target.
func (h *Hierarchy) reachableAvoiding(start, target string) bool {
	seen := map[string]bool{start: true}
	stack := []string{}
	for p := range h.up[start] {
		if p == target {
			continue // skip the direct edge
		}
		stack = append(stack, p)
		seen[p] = true
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == target {
			return true
		}
		for p := range h.up[cur] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// String renders the hierarchy as sorted "child <= parent" lines.
func (h *Hierarchy) String() string {
	var b strings.Builder
	for _, e := range h.Edges() {
		fmt.Fprintf(&b, "%s <= %s\n", e.Child, e.Parent)
	}
	return b.String()
}

// Ontology is a partial mapping from relation names (the strings of Σ, such
// as "isa" and "part-of") to hierarchies (Definition 3).
type Ontology struct {
	Hierarchies map[string]*Hierarchy
}

// Relation names used throughout the system. The paper fixes Σ ⊇ {isa,
// part-of} with Θ(isa) and Θ(part-of) always defined.
const (
	RelIsa    = "isa"
	RelPartOf = "part-of"
)

// NewOntology returns an ontology with empty isa and part-of hierarchies.
func NewOntology() *Ontology {
	return &Ontology{Hierarchies: map[string]*Hierarchy{
		RelIsa:    NewHierarchy(),
		RelPartOf: NewHierarchy(),
	}}
}

// Isa returns the isa hierarchy (never nil).
func (o *Ontology) Isa() *Hierarchy { return o.relation(RelIsa) }

// PartOf returns the part-of hierarchy (never nil).
func (o *Ontology) PartOf() *Hierarchy { return o.relation(RelPartOf) }

func (o *Ontology) relation(name string) *Hierarchy {
	h := o.Hierarchies[name]
	if h == nil {
		h = NewHierarchy()
		o.Hierarchies[name] = h
	}
	return h
}

// TermCount returns the total number of distinct terms over all hierarchies.
func (o *Ontology) TermCount() int {
	set := map[string]bool{}
	for _, h := range o.Hierarchies {
		for n := range h.nodes {
			set[n] = true
		}
	}
	return len(set)
}
