package ontology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperHierarchies builds the simplified SIGMOD and DBLP part-of ontologies
// of the paper's Figure 9.
func paperHierarchies() (*Hierarchy, *Hierarchy) {
	sigmod := NewHierarchy() // hierarchy 1
	for _, child := range []string{"article"} {
		sigmod.MustAddEdge(child, "articles")
	}
	for _, child := range []string{"author", "conference", "title", "year", "month", "date", "location", "volume", "number", "confYear"} {
		sigmod.MustAddEdge(child, "article")
	}
	sigmod.MustAddEdge("articles", "ProceedingsPage")

	dblp := NewHierarchy() // hierarchy 2
	for _, child := range []string{"author", "title", "booktitle", "year", "pages"} {
		dblp.MustAddEdge(child, "inproceedings")
	}
	dblp.MustAddEdge("inproceedings", "dblp")
	return sigmod, dblp
}

// TestPaperFusionExample reproduces Example 10 / Figure 11: fusing the two
// bibliographic ontologies under the paper's interoperation constraints.
func TestPaperFusionExample(t *testing.T) {
	sigmod, dblp := paperHierarchies()
	constraints := []Constraint{
		Equal("conference", 1, "booktitle", 2),
		Equal("title", 1, "title", 2),
		Equal("author", 1, "author", 2),
		Equal("year", 1, "year", 2),
		Equal("confYear", 1, "year", 2),
	}
	f, err := Fuse([]*Hierarchy{sigmod, dblp}, constraints)
	if err != nil {
		t.Fatal(err)
	}

	// conference:1 and booktitle:2 land on the same canonical node.
	c1, ok1 := f.Psi(QTerm{"conference", 1})
	b2, ok2 := f.Psi(QTerm{"booktitle", 2})
	if !ok1 || !ok2 || c1 != b2 {
		t.Errorf("conference:1 and booktitle:2 should fuse, got %q vs %q", c1, b2)
	}
	// year:1 = year:2 = confYear:1 all merge.
	y1, _ := f.Psi(QTerm{"year", 1})
	y2, _ := f.Psi(QTerm{"year", 2})
	cy1, _ := f.Psi(QTerm{"confYear", 1})
	if y1 != y2 || y1 != cy1 {
		t.Errorf("year merging failed: %q %q %q", y1, y2, cy1)
	}
	// pages exists only in DBLP, so it stays a singleton.
	pg, ok := f.Psi(QTerm{"pages", 2})
	if !ok || len(f.Members[pg]) != 1 {
		t.Errorf("pages should be a singleton node, got %v", f.Members[pg])
	}
	// Order is preserved: author ≤ article (SIGMOD) and author ≤
	// inproceedings (DBLP) both hold in the fused hierarchy.
	a, _ := f.Psi(QTerm{"author", 1})
	art, _ := f.Psi(QTerm{"article", 1})
	inpro, _ := f.Psi(QTerm{"inproceedings", 2})
	if !f.Hierarchy.Leq(a, art) {
		t.Error("fused order lost author <= article")
	}
	if !f.Hierarchy.Leq(a, inpro) {
		t.Error("fused order lost author <= inproceedings")
	}
	// NodesOf works for bare terms.
	if nodes := f.NodesOf("author"); len(nodes) != 1 {
		t.Errorf("NodesOf(author) = %v", nodes)
	}
	if f.NodesOf("ghost") != nil {
		t.Error("NodesOf(unknown) should be nil")
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}

func TestFusionEqualityChains(t *testing.T) {
	// a:1 = b:2 and b:2 = c:3 must merge all three (SCC through equality
	// edges).
	h1 := NewHierarchy()
	h1.AddNode("a")
	h2 := NewHierarchy()
	h2.AddNode("b")
	h3 := NewHierarchy()
	h3.AddNode("c")
	f, err := Fuse([]*Hierarchy{h1, h2, h3}, []Constraint{
		Equal("a", 1, "b", 2),
		Equal("b", 2, "c", 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	na, _ := f.Psi(QTerm{"a", 1})
	nb, _ := f.Psi(QTerm{"b", 2})
	nc, _ := f.Psi(QTerm{"c", 3})
	if na != nb || nb != nc {
		t.Errorf("equality chain not merged: %q %q %q", na, nb, nc)
	}
	if len(f.Members[na]) != 3 {
		t.Errorf("merged node has %d members, want 3", len(f.Members[na]))
	}
}

func TestFusionLeqConstraint(t *testing.T) {
	h1 := NewHierarchy()
	h1.AddNode("google")
	h2 := NewHierarchy()
	h2.AddNode("company")
	f, err := Fuse([]*Hierarchy{h1, h2}, []Constraint{Leq("google", 1, "company", 2)})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := f.Psi(QTerm{"google", 1})
	c, _ := f.Psi(QTerm{"company", 2})
	if g == c {
		t.Error("<= constraint must not merge nodes")
	}
	if !f.Hierarchy.Leq(g, c) {
		t.Error("<= constraint must order the fused nodes")
	}
}

func TestFusionNameCollision(t *testing.T) {
	// The same bare term in two sources without constraints stays as two
	// distinct fused nodes with distinct names.
	h1 := NewHierarchy()
	h1.AddNode("title")
	h2 := NewHierarchy()
	h2.AddNode("title")
	f, err := Fuse([]*Hierarchy{h1, h2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := f.Psi(QTerm{"title", 1})
	n2, _ := f.Psi(QTerm{"title", 2})
	if n1 == n2 {
		t.Fatal("unconstrained same-name terms must stay distinct")
	}
	if nodes := f.NodesOf("title"); len(nodes) != 2 {
		t.Errorf("NodesOf(title) = %v, want both nodes", nodes)
	}
}

func TestFusionConstraintValidation(t *testing.T) {
	h := NewHierarchy()
	h.AddNode("a")
	if _, err := Fuse([]*Hierarchy{h}, []Constraint{Equal("a", 1, "b", 2)}); err == nil {
		t.Error("out-of-range source must fail")
	}
	if _, err := Fuse([]*Hierarchy{h}, []Constraint{Equal("ghost", 1, "a", 1)}); err == nil {
		t.Error("unknown term must fail")
	}
}

func TestFusionMergesCyclesAcrossConstraints(t *testing.T) {
	// a ≤ b in source 1, plus b:1 = a:2, a:2 ... plus constraint b:1 <= a:1
	// would create a cycle a ≤ b ≤ a; fusion must merge rather than fail.
	h1 := NewHierarchy()
	h1.MustAddEdge("a", "b")
	h2 := NewHierarchy()
	h2.AddNode("x")
	f, err := Fuse([]*Hierarchy{h1, h2},
		[]Constraint{Leq("b", 1, "x", 2), Leq("x", 2, "a", 1)})
	if err != nil {
		t.Fatal(err)
	}
	na, _ := f.Psi(QTerm{"a", 1})
	nb, _ := f.Psi(QTerm{"b", 1})
	nx, _ := f.Psi(QTerm{"x", 2})
	if na != nb || nb != nx {
		t.Errorf("cycle should collapse into one node: %q %q %q", na, nb, nx)
	}
}

func TestConstraintString(t *testing.T) {
	if got := Equal("a", 1, "b", 2).String(); got != "a:1 = b:2" {
		t.Errorf("Equal String = %q", got)
	}
	if got := Leq("a", 1, "b", 2).String(); got != "a:1 <= b:2" {
		t.Errorf("Leq String = %q", got)
	}
}

// TestQuickFusionAxioms checks Definition 5 on random inputs: (1) the fused
// hierarchy preserves each source's order through ψ; (2) it satisfies every
// constraint; and the result is acyclic by construction.
func TestQuickFusionAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h1 := randomHierarchy(rng, 3+rng.Intn(6))
		h2 := randomHierarchy(rng, 3+rng.Intn(6))
		// Random constraints between existing terms.
		var constraints []Constraint
		n1, n2 := h1.Nodes(), h2.Nodes()
		for i := 0; i < rng.Intn(4); i++ {
			x := n1[rng.Intn(len(n1))]
			y := n2[rng.Intn(len(n2))]
			if rng.Intn(2) == 0 {
				constraints = append(constraints, Equal(x, 1, y, 2))
			} else {
				constraints = append(constraints, Leq(x, 1, y, 2))
			}
		}
		fu, err := Fuse([]*Hierarchy{h1, h2}, constraints)
		if err != nil {
			t.Logf("seed %d: fuse error %v", seed, err)
			return false
		}
		// Axiom 1: order preservation.
		for src, h := range map[int]*Hierarchy{1: h1, 2: h2} {
			for _, u := range h.Nodes() {
				for _, v := range h.Nodes() {
					if h.Leq(u, v) {
						cu, _ := fu.Psi(QTerm{u, src})
						cv, _ := fu.Psi(QTerm{v, src})
						if !fu.Hierarchy.Leq(cu, cv) {
							t.Logf("seed %d: lost %s <=_%d %s", seed, u, src, v)
							return false
						}
					}
				}
			}
		}
		// Axiom 2: constraints respected.
		for _, c := range constraints {
			cx, _ := fu.Psi(c.X)
			cy, _ := fu.Psi(c.Y)
			if !fu.Hierarchy.Leq(cx, cy) {
				t.Logf("seed %d: constraint %v not respected", seed, c)
				return false
			}
			if c.Eq && cx != cy {
				t.Logf("seed %d: equality constraint %v not merged", seed, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNotEqualConstraints(t *testing.T) {
	h1 := NewHierarchy()
	h1.AddNode("title")
	h2 := NewHierarchy()
	h2.AddNode("title")
	// ≠ alone: fine (the terms stay separate anyway without an = edge).
	f, err := Fuse([]*Hierarchy{h1, h2}, []Constraint{NotEqual("title", 1, "title", 2)})
	if err != nil {
		t.Fatalf("compatible != constraint should succeed: %v", err)
	}
	n1, _ := f.Psi(QTerm{"title", 1})
	n2, _ := f.Psi(QTerm{"title", 2})
	if n1 == n2 {
		t.Error("terms should stay separate")
	}
	// ≠ contradicted by = : not integrable.
	if _, err := Fuse([]*Hierarchy{h1, h2}, []Constraint{
		Equal("title", 1, "title", 2),
		NotEqual("title", 1, "title", 2),
	}); err == nil {
		t.Error("contradictory constraints must fail")
	}
	// ≠ contradicted transitively via a chain of <= constraints forming a
	// cycle.
	h3 := NewHierarchy()
	h3.AddNode("x")
	if _, err := Fuse([]*Hierarchy{h1, h3}, []Constraint{
		Leq("title", 1, "x", 2),
		Leq("x", 2, "title", 1),
		NotEqual("title", 1, "x", 2),
	}); err == nil {
		t.Error("cycle-forced equality must violate !=")
	}
	if got := NotEqual("a", 1, "b", 2).String(); got != "a:1 != b:2" {
		t.Errorf("NotEqual String = %q", got)
	}
}
