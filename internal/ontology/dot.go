package ontology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the hierarchy in Graphviz DOT format (edges point from
// child to parent, i.e. along ≤). The graph name must be a valid DOT
// identifier fragment; it is sanitised defensively.
func (h *Hierarchy) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=BT;\n  node [shape=box];\n", dotID(name)); err != nil {
		return err
	}
	for _, n := range h.Nodes() {
		if _, err := fmt.Fprintf(w, "  %s;\n", dotQuote(n)); err != nil {
			return err
		}
	}
	for _, e := range h.Edges() {
		if _, err := fmt.Fprintf(w, "  %s -> %s;\n", dotQuote(e.Child), dotQuote(e.Parent)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// WriteDOT renders the fusion: fused nodes labelled with their qualified
// members, edges along the fused order.
func (f *Fusion) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=BT;\n  node [shape=box];\n", dotID(name)); err != nil {
		return err
	}
	for _, n := range f.Hierarchy.Nodes() {
		label := n
		if members := f.Members[n]; len(members) > 1 {
			parts := make([]string, len(members))
			for i, q := range members {
				parts[i] = q.String()
			}
			label = strings.Join(parts, "\\n")
		}
		if _, err := fmt.Fprintf(w, "  %s [label=%s];\n", dotQuote(n), dotQuote(label)); err != nil {
			return err
		}
	}
	for _, e := range f.Hierarchy.Edges() {
		if _, err := fmt.Fprintf(w, "  %s -> %s;\n", dotQuote(e.Child), dotQuote(e.Parent)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// dotQuote renders a DOT double-quoted string.
func dotQuote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	// Preserve intentional newline escapes from label construction.
	s = strings.ReplaceAll(s, `\\n`, `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}

// dotID sanitises a graph name into a DOT identifier.
func dotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && b.Len() > 0) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}
