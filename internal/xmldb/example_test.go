package xmldb_test

import (
	"fmt"
	"strings"

	"repro/internal/xmldb"
)

// A collection behaves like a tiny Xindice: put XML documents, query with
// XPath, respect the 5 MB size cap.
func ExampleCollection_Query() {
	db := xmldb.New()
	col := db.CreateCollection("dblp")
	_, err := col.PutXML("p1", strings.NewReader(
		`<inproceedings><author>Jeffrey D. Ullman</author><year>1997</year></inproceedings>`))
	if err != nil {
		panic(err)
	}
	_, err = col.PutXML("p2", strings.NewReader(
		`<inproceedings><author>Paolo Ciancarini</author><year>1999</year></inproceedings>`))
	if err != nil {
		panic(err)
	}
	nodes, err := col.Query(`//inproceedings[year='1999']/author`)
	if err != nil {
		panic(err)
	}
	for _, n := range nodes {
		fmt.Println(n.Content)
	}
	fmt.Println(col.DocCount())
	// Output:
	// Paolo Ciancarini
	// 2
}
