package xmldb

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/similarity"
	"repro/internal/simindex"
	"repro/internal/tree"
)

// docEntry is one stored document together with its global insertion sequence
// number. The seq is assigned once, at first insert, and survives replacement,
// so ordering entries by seq reproduces the collection-wide insertion order no
// matter how documents hash across shards.
type docEntry struct {
	key  string
	seq  uint64
	tree *tree.Tree
	size int // XML bytes, for the collection-wide size cap
}

// shard is one hash partition of a Collection: its own documents, inverted
// indexes, statistics snapshot, generation counter and query counters, all
// behind a private RWMutex so queries against different shards never contend
// on a lock.
type shard struct {
	mu      sync.RWMutex
	docs    map[string]*docEntry
	entries []*docEntry              // ascending seq (shard-local insertion order)
	byRoot  map[*tree.Node]*docEntry // document root → entry, for posting-list grouping

	tagIndex  map[string][]*tree.Node
	termIndex map[string][]*tree.Node
	// valueIndex maps tag + "\x00" + exact content to nodes, accelerating
	// the [.='v'] equality predicates the TOSS rewriter emits. It is only
	// consulted for tags in which every node's XPath string value equals its
	// own content (mixedValueTag is false): a content-less interior node's
	// string value joins its descendants' text and is not in the index.
	valueIndex    map[string][]*tree.Node
	mixedValueTag map[string]bool
	// simIdx is the similarity candidate index over the shard's distinct
	// content values (internal/simindex): n-gram and phonetic filters that
	// propose candidate terms for `~` probes without scanning documents. It
	// shares the tag/term/value index lifecycle: built lazily by
	// buildIndexesLocked, maintained incrementally on insert/delete,
	// invalidated wholesale with the others.
	simIdx *simindex.Index

	bytes      int // XML bytes stored in this shard
	generation atomic.Uint64

	// statsCache holds this shard's statistics snapshot for the generation it
	// was built at; statsMu guards it separately from mu so a stats read never
	// contends with query traffic.
	statsMu    sync.Mutex
	statsCache *Stats

	// Cumulative per-shard query counters (surfaced through ShardInfos and
	// the server's toss_shard_* metrics). The collection-wide counters live on
	// Collection and are maintained independently.
	nQueries      atomic.Uint64
	nDocsWalked   atomic.Uint64
	nNodesTested  atomic.Uint64
	nNodesMatched atomic.Uint64
}

func newShard() *shard {
	return &shard{
		docs:   map[string]*docEntry{},
		byRoot: map[*tree.Node]*docEntry{},
	}
}

func (sh *shard) resetCounters() {
	sh.nQueries.Store(0)
	sh.nDocsWalked.Store(0)
	sh.nNodesTested.Store(0)
	sh.nNodesMatched.Store(0)
}

// ---- per-shard index maintenance ----

func (sh *shard) invalidateIndexes() {
	sh.tagIndex = nil
	sh.termIndex = nil
	sh.valueIndex = nil
	sh.simIdx = nil
}

func (sh *shard) buildIndexesLocked() {
	if sh.tagIndex != nil && sh.simIdx != nil {
		return
	}
	tagIdx := map[string][]*tree.Node{}
	termIdx := map[string][]*tree.Node{}
	valIdx := map[string][]*tree.Node{}
	mixed := map[string]bool{}
	simIdx := simindex.New()
	for _, e := range sh.entries {
		e.tree.Walk(func(n *tree.Node) bool {
			tagIdx[n.Tag] = append(tagIdx[n.Tag], n)
			if n.Content != "" {
				for _, tok := range similarity.Tokenize(n.Content) {
					termIdx[tok] = append(termIdx[tok], n)
				}
				valIdx[valueKey(n.Tag, n.Content)] = append(valIdx[valueKey(n.Tag, n.Content)], n)
				simIdx.Add(n.Content)
			} else if subtreeHasContent(n) {
				// XPath string value differs from (empty) own content:
				// exclude the tag from value-index routing.
				mixed[n.Tag] = true
			}
			return true
		})
	}
	sh.tagIndex = tagIdx
	sh.termIndex = termIdx
	sh.valueIndex = valIdx
	sh.mixedValueTag = mixed
	sh.simIdx = simIdx
}

// indexTreeLocked folds a newly inserted tree (appended at the end of the
// shard's insertion order) into existing indexes. A no-op when the indexes are
// not built: the next query rebuilds them from scratch anyway.
func (sh *shard) indexTreeLocked(t *tree.Tree) {
	if sh.tagIndex == nil {
		return
	}
	t.Walk(func(n *tree.Node) bool {
		sh.tagIndex[n.Tag] = append(sh.tagIndex[n.Tag], n)
		if n.Content != "" {
			for _, tok := range similarity.Tokenize(n.Content) {
				sh.termIndex[tok] = append(sh.termIndex[tok], n)
			}
			sh.valueIndex[valueKey(n.Tag, n.Content)] = append(sh.valueIndex[valueKey(n.Tag, n.Content)], n)
			sh.simIdx.Add(n.Content)
		} else if subtreeHasContent(n) {
			sh.mixedValueTag[n.Tag] = true
		}
		return true
	})
}

// unindexTreeLocked removes a deleted tree's nodes from the indexes, touching
// only the posting lists the tree contributed to. mixedValueTag is left as-is:
// a deletion can only make a "mixed" verdict stale in the conservative
// direction (value-index routing stays disabled for the tag), never unsound.
func (sh *shard) unindexTreeLocked(t *tree.Tree) {
	if sh.tagIndex == nil {
		return
	}
	gone := map[*tree.Node]bool{}
	tags := map[string]bool{}
	terms := map[string]bool{}
	vals := map[string]bool{}
	t.Walk(func(n *tree.Node) bool {
		gone[n] = true
		tags[n.Tag] = true
		if n.Content != "" {
			for _, tok := range similarity.Tokenize(n.Content) {
				terms[tok] = true
			}
			vals[valueKey(n.Tag, n.Content)] = true
			// One Remove per node occurrence: the simindex refcount mirrors
			// the number of live nodes carrying the value, so a value used by
			// surviving documents stays live.
			sh.simIdx.Remove(n.Content)
		}
		return true
	})
	prune := func(idx map[string][]*tree.Node, key string) {
		kept := idx[key][:0]
		for _, n := range idx[key] {
			if !gone[n] {
				kept = append(kept, n)
			}
		}
		if len(kept) == 0 {
			delete(idx, key)
		} else {
			idx[key] = kept
		}
	}
	for tag := range tags {
		prune(sh.tagIndex, tag)
	}
	for term := range terms {
		prune(sh.termIndex, term)
	}
	for val := range vals {
		prune(sh.valueIndex, val)
	}
}

// withIndexes runs f under the shard's read lock with the inverted indexes
// present, escalating to the exclusive lock only to (re)build them. The loop
// re-checks because a writer may invalidate the indexes between the two lock
// acquisitions.
func (sh *shard) withIndexes(f func()) {
	sh.mu.RLock()
	for sh.tagIndex == nil || sh.simIdx == nil {
		sh.mu.RUnlock()
		sh.mu.Lock()
		sh.buildIndexesLocked()
		sh.mu.Unlock()
		sh.mu.RLock()
	}
	f()
	sh.mu.RUnlock()
}

// ---- gather: order-stable cross-shard merge ----

// seqGroup is a run of nodes from one document, tagged with the document's
// insertion seq — the unit of the order-stable cross-shard merge.
type seqGroup struct {
	seq   uint64
	nodes []*tree.Node
}

// groupPostingsLocked copies a posting list into per-document groups. Posting
// lists are maintained in (shard insertion order, preorder) order, so
// consecutive nodes of the same document form a contiguous run; each group's
// node slice is a fresh copy, safe to filter and merge outside the lock.
func (sh *shard) groupPostingsLocked(postings []*tree.Node) []seqGroup {
	var out []seqGroup
	var curRoot *tree.Node
	for _, n := range postings {
		r := n.Root()
		if len(out) == 0 || r != curRoot {
			curRoot = r
			var seq uint64
			if e := sh.byRoot[r]; e != nil {
				seq = e.seq
			}
			out = append(out, seqGroup{seq: seq})
		}
		g := &out[len(out)-1]
		g.nodes = append(g.nodes, n)
	}
	return out
}

// mergeGroups flattens per-shard group lists into one node list ordered by
// document insertion seq — exactly the order a single-shard collection
// produces. Within a document the shard already yields preorder.
func mergeGroups(lists [][]seqGroup) []*tree.Node {
	var all []seqGroup
	total := 0
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, g := range all {
		total += len(g.nodes)
	}
	if total == 0 {
		return nil
	}
	out := make([]*tree.Node, 0, total)
	for _, g := range all {
		out = append(out, g.nodes...)
	}
	return out
}
