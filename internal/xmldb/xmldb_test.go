package xmldb

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

func paperXML(key, author, title, year string) string {
	return fmt.Sprintf(`<inproceedings key=%q><author>%s</author><title>%s</title><year>%s</year></inproceedings>`,
		key, author, title, year)
}

func TestCreateAndLookup(t *testing.T) {
	db := New()
	c1 := db.CreateCollection("dblp")
	if c1 == nil || c1.Name() != "dblp" {
		t.Fatal("CreateCollection failed")
	}
	if db.CreateCollection("dblp") != c1 {
		t.Error("CreateCollection must be idempotent")
	}
	if db.Collection("dblp") != c1 {
		t.Error("Collection lookup failed")
	}
	if db.Collection("nope") != nil {
		t.Error("missing collection should be nil")
	}
	db.CreateCollection("sigmod")
	names := db.CollectionNames()
	if strings.Join(names, ",") != "dblp,sigmod" {
		t.Errorf("CollectionNames = %v", names)
	}
	db.DropCollection("sigmod")
	if db.Collection("sigmod") != nil {
		t.Error("DropCollection failed")
	}
}

func TestPutGetDelete(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	doc, err := c.PutXML("p1", strings.NewReader(paperXML("p1", "Ullman", "Databases", "1997")))
	if err != nil {
		t.Fatal(err)
	}
	if c.DocCount() != 1 || c.Doc("p1") != doc {
		t.Fatal("document not stored")
	}
	if c.ByteSize() <= 0 {
		t.Error("ByteSize should grow")
	}
	// Replacement.
	doc2, err := c.PutXML("p1", strings.NewReader(paperXML("p1", "Widom", "Streams", "2001")))
	if err != nil {
		t.Fatal(err)
	}
	if c.DocCount() != 1 || c.Doc("p1") != doc2 {
		t.Error("replacement failed")
	}
	if got := c.Doc("p1").Root.ChildContent("author"); got != "Widom" {
		t.Errorf("replaced doc author = %q", got)
	}
	// Deletion.
	if !c.Delete("p1") {
		t.Error("Delete should succeed")
	}
	if c.Delete("p1") {
		t.Error("second Delete should fail")
	}
	if c.DocCount() != 0 || c.ByteSize() != 0 {
		t.Errorf("after delete: %d docs, %d bytes", c.DocCount(), c.ByteSize())
	}
}

func TestKeysOrder(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, "A", "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	keys := c.Keys()
	for i, k := range keys {
		if k != fmt.Sprintf("p%d", i) {
			t.Fatalf("Keys order broken: %v", keys)
		}
	}
	if len(c.Docs()) != 5 {
		t.Errorf("Docs = %d", len(c.Docs()))
	}
}

func TestSizeLimit(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	c.SetMaxBytes(300)
	if _, err := c.PutXML("p1", strings.NewReader(paperXML("p1", "A", "T", "2000"))); err != nil {
		t.Fatal(err)
	}
	_, err := c.PutXML("p2", strings.NewReader(paperXML("p2", strings.Repeat("B", 300), "T", "2000")))
	if !errors.Is(err, ErrCollectionFull) {
		t.Fatalf("expected ErrCollectionFull, got %v", err)
	}
	// The failed put must not corrupt the collection.
	if c.DocCount() != 1 {
		t.Errorf("failed put changed doc count: %d", c.DocCount())
	}
	if got, _ := c.Query(`//inproceedings`); len(got) != 1 {
		t.Errorf("failed put left stray nodes: %d", len(got))
	}
	// A failed replacement keeps the old document.
	_, err = c.PutXML("p1", strings.NewReader(paperXML("p1", strings.Repeat("C", 300), "T", "2000")))
	if !errors.Is(err, ErrCollectionFull) {
		t.Fatalf("expected ErrCollectionFull on replacement, got %v", err)
	}
	if c.Doc("p1") == nil || c.Doc("p1").Root.ChildContent("author") != "A" {
		t.Error("failed replacement lost the original document")
	}
	// Disable the limit.
	c.SetMaxBytes(0)
	if _, err := c.PutXML("p3", strings.NewReader(paperXML("p3", strings.Repeat("D", 400), "T", "2000"))); err != nil {
		t.Errorf("unlimited put failed: %v", err)
	}
}

func TestDefaultLimitIsXindices5MB(t *testing.T) {
	if DefaultMaxCollectionBytes != 5*1024*1024 {
		t.Errorf("default limit = %d", DefaultMaxCollectionBytes)
	}
}

func TestPutTree(t *testing.T) {
	db := New()
	c := db.CreateCollection("x")
	// A tree built elsewhere is cloned in.
	other := tree.NewCollection()
	tr, err := other.ParseXMLString(`<a><b>hi</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutTree("k", tr); err != nil {
		t.Fatal(err)
	}
	got := c.Doc("k")
	if got == tr {
		t.Error("foreign tree should have been cloned")
	}
	if !tree.Equal(got, tr) {
		t.Error("clone not equal")
	}
	// A tree from the collection's own tree.Collection is stored directly.
	own, err := c.TreeCollection().ParseXMLString(`<c/>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PutTree("k2", own); err != nil {
		t.Fatal(err)
	}
	if c.Doc("k2") != own {
		t.Error("own tree should be stored as-is")
	}
}

func TestQueryAndIndexes(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 10; i++ {
		year := "1997"
		if i%2 == 0 {
			year = "1999"
		}
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, fmt.Sprintf("Author %d", i), "Databases and Indexes", year))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Query(`//inproceedings[year='1999']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("Query = %d nodes, want 5", len(got))
	}
	// Index-backed accessors.
	if n := c.NodesWithTag("author"); len(n) != 10 {
		t.Errorf("NodesWithTag(author) = %d", len(n))
	}
	if n := c.NodesWithTerm("databases"); len(n) != 10 {
		t.Errorf("NodesWithTerm(databases) = %d", len(n))
	}
	if n := c.NodesWithTerm("nonexistent"); len(n) != 0 {
		t.Errorf("NodesWithTerm(nonexistent) = %d", len(n))
	}
	// Index invalidation on mutation.
	c.Delete("p0")
	if n := c.NodesWithTag("author"); len(n) != 9 {
		t.Errorf("index not invalidated: %d", len(n))
	}
	// Bad query surfaces a parse error.
	if _, err := c.Query(`//[`); err == nil {
		t.Error("bad query should fail")
	}
}

func TestQueryIndexedVsScanAgreement(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	rng := rand.New(rand.NewSource(5))
	years := []string{"1997", "1998", "1999"}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("p%d", i)
		xml := paperXML(key, fmt.Sprintf("A%d", rng.Intn(5)), fmt.Sprintf("T%d", rng.Intn(5)), years[rng.Intn(3)])
		if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	exprs := []string{
		`//inproceedings`,
		`//inproceedings/year`,
		`//inproceedings[year='1999']`,
		`//inproceedings[year='1999']/author`,
		`//year[.='1998']`,
		`//author[.='A3']`,
		`//inproceedings[author='A1' and year='1997']`,
		`//*[year='1999']`,              // wildcard final step: scan path
		`//inproceedings[author]/title`, // inner predicate: scan path
	}
	for _, expr := range exprs {
		indexed, err := c.Query(expr)
		if err != nil {
			t.Fatalf("Query(%q): %v", expr, err)
		}
		scanned, err := c.QueryScan(expr)
		if err != nil {
			t.Fatalf("QueryScan(%q): %v", expr, err)
		}
		if len(indexed) != len(scanned) {
			t.Errorf("Query(%q): indexed %d vs scan %d", expr, len(indexed), len(scanned))
			continue
		}
		in := map[*tree.Node]bool{}
		for _, n := range indexed {
			in[n] = true
		}
		for _, n := range scanned {
			if !in[n] {
				t.Errorf("Query(%q): node sets differ", expr)
				break
			}
		}
	}
}

// TestQuickIndexedVsScan: randomized queries agree between the indexed and
// scanning evaluators.
func TestQuickIndexedVsScan(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("p%d", i)
		xml := paperXML(key, fmt.Sprintf("A%d", rng.Intn(4)), fmt.Sprintf("T%d", rng.Intn(4)), fmt.Sprint(1995+rng.Intn(5)))
		if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	tags := []string{"inproceedings", "author", "title", "year"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tag := tags[r.Intn(len(tags))]
		var expr string
		switch r.Intn(3) {
		case 0:
			expr = "//" + tag
		case 1:
			expr = fmt.Sprintf("//inproceedings[year='%d']/%s", 1995+r.Intn(5), tag)
		default:
			expr = fmt.Sprintf("//inproceedings[author='A%d']", r.Intn(4))
		}
		indexed, err1 := c.Query(expr)
		scanned, err2 := c.QueryScan(expr)
		if err1 != nil || err2 != nil {
			return false
		}
		return len(indexed) == len(scanned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReads(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, "A", "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Query(`//inproceedings[year='2000']`); err != nil {
					t.Error(err)
					return
				}
				c.Doc("p3")
				c.Keys()
			}
		}()
	}
	wg.Wait()
}

func TestParseErrorDoesNotPollute(t *testing.T) {
	db := New()
	c := db.CreateCollection("x")
	if _, err := c.PutXML("bad", strings.NewReader("<a><b></a>")); err == nil {
		t.Fatal("malformed XML should fail")
	}
	if c.DocCount() != 0 {
		t.Error("failed parse should not store a document")
	}
}

// TestValueIndexRouting: [.='v'] queries route through the value index on
// leaf-only tags, agree with scans, and refuse unsafe cases (interior tags,
// empty literals).
func TestValueIndexRouting(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("p%d", i)
		xml := paperXML(key, fmt.Sprintf("Author %d", i%4), "T", "2000")
		if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	// An interior-node query (inproceedings has children): must not be
	// narrowed away.
	exprs := []string{
		`//author[.='Author 1']`,
		`//author[.='Author 1' or .='Author 3']`,
		`//author[.='absent']`,
		`//inproceedings[.='Author 1 T 2000']`, // TextValue of a mixed tag... paperXML key attr first
	}
	for _, expr := range exprs {
		indexed, err := c.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		scanned, err := c.QueryScan(expr)
		if err != nil {
			t.Fatal(err)
		}
		if len(indexed) != len(scanned) {
			t.Errorf("%s: indexed %d vs scan %d", expr, len(indexed), len(scanned))
		}
	}
	// Empty-literal equality must also agree (no unsafe narrowing).
	emptyDoc := `<inproceedings key="pe"><author></author><title>T</title><year>2000</year></inproceedings>`
	if _, err := c.PutXML("pe", strings.NewReader(emptyDoc)); err != nil {
		t.Fatal(err)
	}
	i2, err := c.Query(`//author[.='']`)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.QueryScan(`//author[.='']`)
	if err != nil {
		t.Fatal(err)
	}
	if len(i2) != len(s2) {
		t.Errorf("empty literal: indexed %d vs scan %d", len(i2), len(s2))
	}
}
