package xmldb

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/tree"
	"repro/internal/xpath"
)

func statPaper(key, author, title, year string) string {
	return fmt.Sprintf(`<paper key=%q><author>%s</author><title>%s</title><year>%s</year></paper>`,
		key, author, title, year)
}

func fillStatCollection(t *testing.T, c *Collection) {
	t.Helper()
	authors := []string{"Ullman", "Ullman", "Ullman", "Widom", "Garcia"}
	for i, a := range authors {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(statPaper(key, a, "Title "+key, "2000"))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatsCounts(t *testing.T) {
	db := New()
	c := db.CreateCollection("s")
	fillStatCollection(t, c)

	st := c.Stats()
	if st.Docs != 5 {
		t.Fatalf("Docs = %d, want 5", st.Docs)
	}
	// Each document: paper + key attribute + author + title + year = 5 nodes.
	if st.Nodes != 25 {
		t.Fatalf("Nodes = %d, want 25", st.Nodes)
	}
	au := st.TagEstimate("author")
	if au.Nodes != 5 || au.Docs != 5 || au.ValueNodes != 5 {
		t.Fatalf("author stats = %+v", au)
	}
	if au.DistinctValues != 3 {
		t.Fatalf("author DistinctValues = %d, want 3", au.DistinctValues)
	}
	if got := au.ValueCount("Ullman"); got != 3 {
		t.Fatalf(`ValueCount("Ullman") = %v, want 3 (exact, in sketch)`, got)
	}
	// Sketch covers all 3 distinct values, so an unseen value estimates to 0.
	if got := au.ValueCount("Nobody"); got != 0 {
		t.Fatalf(`ValueCount("Nobody") = %v, want 0`, got)
	}
	if missing := st.TagEstimate("nosuchtag"); missing.Nodes != 0 {
		t.Fatalf("unknown tag stats = %+v, want zero", missing)
	}
	// paper has no own content but content-bearing children → mixed.
	if !st.TagEstimate("paper").Mixed {
		t.Fatal("paper should be a mixed-value tag")
	}
	if st.TagEstimate("author").Mixed {
		t.Fatal("author should not be mixed")
	}
}

func TestStatsCachedPerGeneration(t *testing.T) {
	db := New()
	c := db.CreateCollection("s")
	fillStatCollection(t, c)

	s1 := c.Stats()
	s2 := c.Stats()
	if s1 != s2 {
		t.Fatal("same generation should return the identical snapshot")
	}
	if _, err := c.PutXML("p9", strings.NewReader(statPaper("p9", "New", "T", "2001"))); err != nil {
		t.Fatal(err)
	}
	s3 := c.Stats()
	if s3 == s1 {
		t.Fatal("mutation must invalidate the stats snapshot")
	}
	if s3.Docs != 6 {
		t.Fatalf("Docs after insert = %d, want 6", s3.Docs)
	}
	if s3.Generation <= s1.Generation {
		t.Fatalf("generation did not advance: %d -> %d", s1.Generation, s3.Generation)
	}
}

func TestValueCountRemainderEstimate(t *testing.T) {
	db := New()
	c := db.CreateCollection("s")
	// 12 distinct authors (> TopValueCount), one frequent.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("f%d", i)
		if _, err := c.PutXML(key, strings.NewReader(statPaper(key, "Frequent", "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 11; i++ {
		key := fmt.Sprintf("r%d", i)
		if _, err := c.PutXML(key, strings.NewReader(statPaper(key, fmt.Sprintf("Rare%d", i), "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	au := c.Stats().TagEstimate("author")
	if au.DistinctValues != 12 {
		t.Fatalf("DistinctValues = %d, want 12", au.DistinctValues)
	}
	if len(au.TopValues) != TopValueCount {
		t.Fatalf("sketch size = %d, want %d", len(au.TopValues), TopValueCount)
	}
	if got := au.ValueCount("Frequent"); got != 4 {
		t.Fatalf(`ValueCount("Frequent") = %v, want 4`, got)
	}
	// A value outside the sketch estimates to the mean of the remainder:
	// 15 value nodes, 4+7 sketched as singles... remainder = (15-11)/4 = 1.
	est := au.ValueCount("Rare999")
	if est <= 0 || est > 2 {
		t.Fatalf("remainder estimate = %v, want ≈1", est)
	}
}

// indexSnapshot flattens the inverted indexes of every shard into a
// comparable form using node IDs (pointer identity differs across rebuilds
// of the same documents, node IDs within one collection do not).
func indexSnapshot(c *Collection) map[string][]tree.NodeID {
	out := map[string][]tree.NodeID{}
	for _, sh := range c.shards {
		sh.mu.RLock()
		for tag, nodes := range sh.tagIndex {
			for _, n := range nodes {
				out["tag\x00"+tag] = append(out["tag\x00"+tag], n.ID)
			}
		}
		for term, nodes := range sh.termIndex {
			for _, n := range nodes {
				out["term\x00"+term] = append(out["term\x00"+term], n.ID)
			}
		}
		for val, nodes := range sh.valueIndex {
			for _, n := range nodes {
				out["val\x00"+val] = append(out["val\x00"+val], n.ID)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// rebuiltSnapshot drops the incrementally maintained indexes and rebuilds
// them from scratch on every shard, returning the snapshot (restoring
// nothing: the rebuild IS the new state, which must equal the incremental
// one).
func rebuiltSnapshot(c *Collection) map[string][]tree.NodeID {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.invalidateIndexes()
		sh.buildIndexesLocked()
		sh.mu.Unlock()
	}
	return indexSnapshot(c)
}

func TestIncrementalIndexMatchesRebuildAfterInsert(t *testing.T) {
	db := New()
	c := db.CreateCollection("inc")
	fillStatCollection(t, c)
	c.BuildIndexes() // build, then mutate incrementally

	for i := 5; i < 9; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(statPaper(key, "Late", "Late Title", "2010"))); err != nil {
			t.Fatal(err)
		}
	}
	incremental := indexSnapshot(c)
	if len(incremental) == 0 {
		t.Fatal("incremental index snapshot is empty — insert dropped the indexes")
	}
	rebuilt := rebuiltSnapshot(c)
	if !reflect.DeepEqual(incremental, rebuilt) {
		t.Fatalf("incremental insert maintenance diverged from full rebuild\nincremental: %v\nrebuilt: %v",
			summarize(incremental), summarize(rebuilt))
	}
}

func TestIncrementalIndexMatchesRebuildAfterDelete(t *testing.T) {
	db := New()
	c := db.CreateCollection("inc")
	fillStatCollection(t, c)
	c.BuildIndexes()

	if !c.Delete("p1") || !c.Delete("p3") {
		t.Fatal("deletes failed")
	}
	incremental := indexSnapshot(c)
	if len(incremental) == 0 {
		t.Fatal("incremental index snapshot is empty — delete dropped the indexes")
	}
	rebuilt := rebuiltSnapshot(c)
	if !reflect.DeepEqual(incremental, rebuilt) {
		t.Fatalf("incremental delete maintenance diverged from full rebuild\nincremental: %v\nrebuilt: %v",
			summarize(incremental), summarize(rebuilt))
	}
}

func TestReplacementFallsBackToRebuild(t *testing.T) {
	db := New()
	c := db.CreateCollection("inc")
	fillStatCollection(t, c)
	c.BuildIndexes()

	// Replace p2 under the same key: indexes must be dropped (rebuild on
	// next query) rather than corrupted.
	if _, err := c.PutXML("p2", strings.NewReader(statPaper("p2", "Replaced", "New", "2020"))); err != nil {
		t.Fatal(err)
	}
	sh := c.shardFor("p2")
	sh.mu.RLock()
	dropped := sh.tagIndex == nil
	sh.mu.RUnlock()
	if !dropped {
		t.Fatal("replacement should invalidate the indexes")
	}
	// And the rebuilt index serves correct queries.
	nodes := c.QueryPath(xpath.MustParse(`//author[.="Replaced"]`))
	if len(nodes) != 1 {
		t.Fatalf("query after replacement rebuild: %d matches, want 1", len(nodes))
	}
}

func summarize(m map[string][]tree.NodeID) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%q:%v ", strings.ReplaceAll(k, "\x00", "/"), m[k])
	}
	return b.String()
}
