package xmldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := New()
	c := db.CreateCollection("dblp")
	docs := map[string]string{
		"p one":   paperXML("p1", "Ullman", "Databases", "1997"),
		"p/two":   paperXML("p2", "Widom", "Streams", "2001"),
		"p.three": paperXML("p3", "Bertino", "Security", "2000"),
	}
	for k, xml := range docs {
		if _, err := c.PutXML(k, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	db2 := New()
	c2 := db2.CreateCollection("dblp")
	if err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if c2.DocCount() != 3 {
		t.Fatalf("loaded %d docs", c2.DocCount())
	}
	// Keys and order restored.
	if strings.Join(c2.Keys(), "|") != strings.Join(c.Keys(), "|") {
		t.Errorf("keys differ: %v vs %v", c2.Keys(), c.Keys())
	}
	for _, k := range c.Keys() {
		if !tree.Equal(c.Doc(k), c2.Doc(k)) {
			t.Errorf("document %q differs after round trip", k)
		}
	}
}

func TestLoadDirWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), []byte("<b/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<a/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := New()
	c := db.CreateCollection("x")
	if err := c.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(c.Keys(), ","); got != "a,b" {
		t.Errorf("keys = %q", got)
	}
}

func TestDBSaveLoad(t *testing.T) {
	dir := t.TempDir()
	db := New()
	a := db.CreateCollection("alpha")
	if _, err := a.PutXML("d1", strings.NewReader("<x>1</x>")); err != nil {
		t.Fatal(err)
	}
	b := db.CreateCollection("beta")
	if _, err := b.PutXML("d2", strings.NewReader("<y>2</y>")); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(db2.CollectionNames()) != 2 {
		t.Fatalf("collections = %v", db2.CollectionNames())
	}
	if db2.Collection("alpha").DocCount() != 1 || db2.Collection("beta").DocCount() != 1 {
		t.Error("documents missing after load")
	}
}

func TestLoadErrors(t *testing.T) {
	db := New()
	c := db.CreateCollection("x")
	if err := c.LoadDir("/nonexistent-path-xyz"); err == nil {
		t.Error("missing dir must fail")
	}
	// Malformed index.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "_index.tsv"), []byte("no-tab-here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDir(dir); err == nil {
		t.Error("malformed index must fail")
	}
	// Index referencing a missing file.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "_index.tsv"), []byte("ghost.xml\tk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDir(dir2); err == nil {
		t.Error("missing file must fail")
	}
}

// TestSaveDirConcurrentWithMutations: SaveDir snapshots keys and documents
// under one read lock, so saving while writers mutate the collection must
// produce a loadable, internally consistent directory (every indexed key has
// its file) and leave no temp files behind.
func TestSaveDirConcurrentWithMutations(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 20; i++ {
		key := "seed" + strings.Repeat("x", i%3) + string(rune('a'+i))
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, "Author", "Title", "2000"))); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := "churn" + string(rune('a'+i%26))
			if i%3 == 2 {
				c.Delete(key)
			} else {
				c.PutXML(key, strings.NewReader(paperXML(key, "Mut", "Churn", "2024")))
			}
			i++
		}
	}()

	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		if err := c.SaveDir(dir); err != nil {
			t.Fatal(err)
		}
		c2 := New().CreateCollection("dblp")
		if err := c2.LoadDir(dir); err != nil {
			t.Fatalf("round %d: snapshot not loadable: %v", round, err)
		}
		if c2.DocCount() < 20 {
			t.Fatalf("round %d: snapshot lost seed docs: %d", round, c2.DocCount())
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") {
				t.Errorf("round %d: leftover temp file %s", round, e.Name())
			}
		}
	}
	close(stop)
	<-done
}

// TestGenerationCounter: every mutation must advance the generation so
// cache keys built from it go stale.
func TestGenerationCounter(t *testing.T) {
	c := New().CreateCollection("g")
	g0 := c.Generation()
	if _, err := c.PutXML("a", strings.NewReader("<a/>")); err != nil {
		t.Fatal(err)
	}
	g1 := c.Generation()
	if g1 <= g0 {
		t.Fatalf("PutXML did not advance generation: %d -> %d", g0, g1)
	}
	if !c.Delete("a") {
		t.Fatal("delete failed")
	}
	if c.Generation() <= g1 {
		t.Fatalf("Delete did not advance generation: %d -> %d", g1, c.Generation())
	}
	if c.Delete("ghost") {
		t.Fatal("deleting a missing key must return false")
	}
}

func TestSanitizeFileName(t *testing.T) {
	if got := sanitizeFileName("a/b c!.xml"); got != "a_b_c_.xml" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeFileName(""); got != "doc" {
		t.Errorf("sanitize empty = %q", got)
	}
}

// listFiles returns every regular file under dir, relative to it, sorted.
func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			rel, _ := filepath.Rel(dir, p)
			out = append(out, rel)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestSaveDirSweepsOrphans: a second, smaller save must remove the document
// files the first save wrote for since-deleted keys, so the directory always
// mirrors exactly the live collection.
func TestSaveDirSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	c := New().CreateCollection("dblp")
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, "A", "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !c.Delete(fmt.Sprintf("doc-%d", i)) {
			t.Fatal("delete failed")
		}
	}
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	xmls := 0
	for _, f := range listFiles(t, dir) {
		if strings.HasSuffix(f, ".xml") {
			xmls++
		}
	}
	if xmls != 2 {
		t.Fatalf("%d xml files on disk after shrinking save, want 2: %v", xmls, listFiles(t, dir))
	}
	c2 := New().CreateCollection("dblp")
	if err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if c2.DocCount() != 2 {
		t.Fatalf("reloaded %d docs, want 2", c2.DocCount())
	}
}

// TestSaveDirSweepsStaleShardDirs: re-saving with fewer shards removes the
// extra shard directories a wider layout left, and a flat save removes the
// sharded manifest (and vice versa), so a reload never resurrects state
// from the superseded layout.
func TestSaveDirSweepsStaleShardDirs(t *testing.T) {
	dir := t.TempDir()
	docs := map[string]string{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("doc-%d", i)
		docs[key] = paperXML(key, "A", "T", "2000")
	}
	wide := newCollection("dblp", 7)
	for k, x := range docs {
		if _, err := wide.PutXML(k, strings.NewReader(x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wide.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	narrow := newCollection("dblp", 2)
	for k, x := range docs {
		if _, err := narrow.PutXML(k, strings.NewReader(x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := narrow.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range listFiles(t, dir) {
		for s := 2; s < 7; s++ {
			if strings.HasPrefix(f, fmt.Sprintf("shard-%03d%c", s, filepath.Separator)) {
				t.Fatalf("stale shard dir survived the narrower save: %s", f)
			}
		}
	}
	reload := newCollection("dblp", 2)
	if err := reload.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if reload.DocCount() != 12 {
		t.Fatalf("reloaded %d docs, want 12", reload.DocCount())
	}

	// Flat save over the sharded layout: manifest and shard dirs must go.
	flat := newCollection("dblp", 1)
	if _, err := flat.PutXML("only", strings.NewReader(paperXML("only", "B", "T", "2001"))); err != nil {
		t.Fatal(err)
	}
	if err := flat.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	files := listFiles(t, dir)
	for _, f := range files {
		if strings.HasPrefix(f, "shard-") || f == "_shards.tsv" {
			t.Fatalf("sharded layout survived the flat save: %v", files)
		}
	}
	reload2 := newCollection("dblp", 1)
	if err := reload2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if reload2.DocCount() != 1 {
		t.Fatalf("reloaded %d docs after flat save, want 1", reload2.DocCount())
	}
}
