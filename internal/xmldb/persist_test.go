package xmldb

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := New()
	c := db.CreateCollection("dblp")
	docs := map[string]string{
		"p one":   paperXML("p1", "Ullman", "Databases", "1997"),
		"p/two":   paperXML("p2", "Widom", "Streams", "2001"),
		"p.three": paperXML("p3", "Bertino", "Security", "2000"),
	}
	for k, xml := range docs {
		if _, err := c.PutXML(k, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	db2 := New()
	c2 := db2.CreateCollection("dblp")
	if err := c2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if c2.DocCount() != 3 {
		t.Fatalf("loaded %d docs", c2.DocCount())
	}
	// Keys and order restored.
	if strings.Join(c2.Keys(), "|") != strings.Join(c.Keys(), "|") {
		t.Errorf("keys differ: %v vs %v", c2.Keys(), c.Keys())
	}
	for _, k := range c.Keys() {
		if !tree.Equal(c.Doc(k), c2.Doc(k)) {
			t.Errorf("document %q differs after round trip", k)
		}
	}
}

func TestLoadDirWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "b.xml"), []byte("<b/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<a/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := New()
	c := db.CreateCollection("x")
	if err := c.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(c.Keys(), ","); got != "a,b" {
		t.Errorf("keys = %q", got)
	}
}

func TestDBSaveLoad(t *testing.T) {
	dir := t.TempDir()
	db := New()
	a := db.CreateCollection("alpha")
	if _, err := a.PutXML("d1", strings.NewReader("<x>1</x>")); err != nil {
		t.Fatal(err)
	}
	b := db.CreateCollection("beta")
	if _, err := b.PutXML("d2", strings.NewReader("<y>2</y>")); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(db2.CollectionNames()) != 2 {
		t.Fatalf("collections = %v", db2.CollectionNames())
	}
	if db2.Collection("alpha").DocCount() != 1 || db2.Collection("beta").DocCount() != 1 {
		t.Error("documents missing after load")
	}
}

func TestLoadErrors(t *testing.T) {
	db := New()
	c := db.CreateCollection("x")
	if err := c.LoadDir("/nonexistent-path-xyz"); err == nil {
		t.Error("missing dir must fail")
	}
	// Malformed index.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "_index.tsv"), []byte("no-tab-here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDir(dir); err == nil {
		t.Error("malformed index must fail")
	}
	// Index referencing a missing file.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "_index.tsv"), []byte("ghost.xml\tk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadDir(dir2); err == nil {
		t.Error("missing file must fail")
	}
}

func TestSanitizeFileName(t *testing.T) {
	if got := sanitizeFileName("a/b c!.xml"); got != "a_b_c_.xml" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitizeFileName(""); got != "doc" {
		t.Errorf("sanitize empty = %q", got)
	}
}
