package xmldb

import "repro/internal/tree"

// DocSnap is one stored document captured by a cursor: the document tree,
// its key, and its global insertion sequence number. Trees are immutable
// once stored (replacement installs a new tree and leaves the old one
// valid), so a DocSnap outlives the shard lock it was taken under.
type DocSnap struct {
	Seq uint64
	Key string
	Doc *tree.Tree
}

// Cursor iterates one shard's documents in shard-local insertion order
// (ascending Seq). A cursor is a snapshot: it sees exactly the documents
// present when it was opened — mutations after ShardCursors returns are
// invisible to it, and a replaced document keeps serving its old tree.
// Cursors are single-consumer; wrap them yourself for concurrent use.
type Cursor struct {
	snaps []DocSnap
	pos   int
}

// Next returns the next document snapshot, or ok=false when exhausted.
func (c *Cursor) Next() (DocSnap, bool) {
	if c.pos >= len(c.snaps) {
		return DocSnap{}, false
	}
	s := c.snaps[c.pos]
	c.pos++
	return s, true
}

// Len is the total number of documents the cursor iterates (independent of
// position).
func (c *Cursor) Len() int { return len(c.snaps) }

// Remaining is the number of documents not yet returned by Next.
func (c *Cursor) Remaining() int { return len(c.snaps) - c.pos }

// ShardCursors opens one cursor per shard over a single consistent cut of
// the collection: every shard's read lock is held simultaneously while the
// snapshots are taken (the same discipline as Docs/Keys), so the union of
// the cursors is exactly one collection state, no matter how long the
// consumer takes to drain them. Merging the cursors by ascending Seq
// reproduces Docs() order exactly; the streaming executor does that merge
// incrementally instead of materializing the sorted slice.
func (c *Collection) ShardCursors() []*Cursor {
	for _, sh := range c.shards {
		sh.mu.RLock()
	}
	out := make([]*Cursor, len(c.shards))
	for i, sh := range c.shards {
		snaps := make([]DocSnap, len(sh.entries))
		for j, e := range sh.entries {
			snaps[j] = DocSnap{Seq: e.seq, Key: e.key, Doc: e.tree}
		}
		out[i] = &Cursor{snaps: snaps}
	}
	for _, sh := range c.shards {
		sh.mu.RUnlock()
	}
	return out
}
