package xmldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/tree"
	"repro/internal/xpath"
)

// shardPaper builds a small paper document with enough value variety to
// exercise the tag, term and value indexes.
func shardPaper(key string, i int) string {
	return fmt.Sprintf(
		`<inproceedings key=%q><author>A%d</author><author>B%d</author><title>Title %d words</title><year>%d</year></inproceedings>`,
		key, i%4, i%3, i, 1995+i%7)
}

func newShardedCollection(t testing.TB, shards, docs int) *Collection {
	t.Helper()
	db := New()
	db.SetDefaultShards(shards)
	c := db.CreateCollection(fmt.Sprintf("c%d", shards))
	if got := c.ShardCount(); got != shards {
		t.Fatalf("ShardCount = %d, want %d", got, shards)
	}
	for i := 0; i < docs; i++ {
		key := fmt.Sprintf("doc-%03d", i)
		if _, err := c.PutXML(key, strings.NewReader(shardPaper(key, i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// shardInvarianceExprs covers every routing route: indexed, value-narrowed
// (single and multi literal, i.e. literal-major order), wildcard scans and
// inner-predicate scans.
var shardInvarianceExprs = []string{
	`//author`,
	`//inproceedings/author`,
	`//author[.='A1']`,
	`//author[.='A1' or .='A3' or .='B0']`,
	`//year[.='1999']`,
	`//*[year='1999']`,
	`//inproceedings[author='A2']/title`,
	`//title`,
	`//nosuchtag`,
	`//author[.='NoSuchAuthor']`,
}

// nodeIDs projects a result list onto node IDs. Documents are inserted in
// the same order at every shard count and share one tree.Collection ID
// space, so equal ID sequences mean equal nodes in equal order.
func nodeIDs(nodes []*tree.Node) []tree.NodeID {
	out := make([]tree.NodeID, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

// TestShardCountInvariance pins the tentpole guarantee: results — including
// order — are identical at any shard count, for every routing route.
func TestShardCountInvariance(t *testing.T) {
	const docs = 40
	base := newShardedCollection(t, 1, docs)
	for _, shards := range []int{2, 4, 7} {
		c := newShardedCollection(t, shards, docs)
		for _, expr := range shardInvarianceExprs {
			want, err := base.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(nodeIDs(got), nodeIDs(want)) {
				t.Errorf("shards=%d %s: got %v, want %v", shards, expr, nodeIDs(got), nodeIDs(want))
			}
		}
		if !reflect.DeepEqual(c.Keys(), base.Keys()) {
			t.Errorf("shards=%d: Keys() order diverged", shards)
		}
	}
}

// TestShardCountInvarianceQuick drives randomized (expr, mutation) sequences
// through 1-vs-5 shard collections under testing/quick.
func TestShardCountInvarianceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		docs := 10 + rng.Intn(30)
		a := newShardedCollection(t, 1, docs)
		b := newShardedCollection(t, 5, docs)
		for i := 0; i < 8; i++ {
			switch rng.Intn(4) {
			case 0: // delete a random key from both
				key := fmt.Sprintf("doc-%03d", rng.Intn(docs))
				if a.Delete(key) != b.Delete(key) {
					return false
				}
			case 1: // replace a random key in both
				key := fmt.Sprintf("doc-%03d", rng.Intn(docs))
				x := shardPaper(key, 100+rng.Intn(50))
				if _, err := a.PutXML(key, strings.NewReader(x)); err != nil {
					t.Fatal(err)
				}
				if _, err := b.PutXML(key, strings.NewReader(x)); err != nil {
					t.Fatal(err)
				}
			}
			expr := shardInvarianceExprs[rng.Intn(len(shardInvarianceExprs))]
			ra, err := a.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(nodeIDs(ra), nodeIDs(rb)) {
				t.Logf("seed %d expr %s: %v vs %v", seed, expr, nodeIDs(ra), nodeIDs(rb))
				return false
			}
		}
		return reflect.DeepEqual(a.Keys(), b.Keys())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShardStatsMerge checks the merged snapshot's additive fields against
// the unsharded collection (distinct counts are documented overestimates).
func TestShardStatsMerge(t *testing.T) {
	base := newShardedCollection(t, 1, 30).Stats()
	st := newShardedCollection(t, 4, 30).Stats()
	if st.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", st.Shards)
	}
	if st.Docs != base.Docs || st.Nodes != base.Nodes {
		t.Fatalf("merged Docs/Nodes = %d/%d, want %d/%d", st.Docs, st.Nodes, base.Docs, base.Nodes)
	}
	for tag, want := range base.Tags {
		got := st.Tags[tag]
		if got.Nodes != want.Nodes || got.Docs != want.Docs || got.ValueNodes != want.ValueNodes {
			t.Errorf("tag %s: merged %+v, unsharded %+v", tag, got, want)
		}
		if got.Mixed != want.Mixed {
			t.Errorf("tag %s: merged Mixed = %v, want %v", tag, got.Mixed, want.Mixed)
		}
		if got.DistinctValues < want.DistinctValues {
			t.Errorf("tag %s: merged DistinctValues = %d undercounts %d", tag, got.DistinctValues, want.DistinctValues)
		}
	}
	if st.DistinctTerms < base.DistinctTerms {
		t.Errorf("merged DistinctTerms = %d undercounts %d", st.DistinctTerms, base.DistinctTerms)
	}
}

// TestShardPersistenceRoundTrip saves a sharded collection and loads it back
// at several shard counts; insertion order and query results must survive.
func TestShardPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := newShardedCollection(t, 4, 25)
	if err := src.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, shardManifestFile)); err != nil {
		t.Fatalf("sharded save is missing the manifest: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-000", "_index.tsv")); err != nil {
		t.Fatalf("sharded save is missing per-shard indexes: %v", err)
	}
	for _, shards := range []int{1, 3, 4} {
		db := New()
		db.SetDefaultShards(shards)
		dst := db.CreateCollection("loaded")
		if err := dst.LoadDir(dir); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dst.Keys(), src.Keys()) {
			t.Fatalf("load at %d shards: keys %v, want %v", shards, dst.Keys(), src.Keys())
		}
		for _, expr := range shardInvarianceExprs {
			want, _ := src.Query(expr)
			got, _ := dst.Query(expr)
			if !reflect.DeepEqual(nodeIDs(got), nodeIDs(want)) {
				t.Fatalf("load at %d shards: %s diverged", shards, expr)
			}
		}
	}
	// Legacy (unsharded) saves load into sharded collections too.
	legacyDir := t.TempDir()
	if err := newShardedCollection(t, 1, 25).SaveDir(legacyDir); err != nil {
		t.Fatal(err)
	}
	db := New()
	db.SetDefaultShards(6)
	dst := db.CreateCollection("legacy")
	if err := dst.LoadDir(legacyDir); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Keys(), src.Keys()) {
		t.Fatalf("legacy load: keys %v, want %v", dst.Keys(), src.Keys())
	}
}

// TestShardInfos checks that per-shard snapshots sum to the collection
// totals and that counters attribute work to the owning shards.
func TestShardInfos(t *testing.T) {
	c := newShardedCollection(t, 4, 20)
	infos := c.ShardInfos()
	if len(infos) != 4 {
		t.Fatalf("ShardInfos length = %d, want 4", len(infos))
	}
	docs, bytes := 0, 0
	for _, si := range infos {
		docs += si.Docs
		bytes += si.Bytes
	}
	if docs != c.DocCount() || bytes != c.ByteSize() {
		t.Fatalf("shard sums docs=%d bytes=%d, want %d/%d", docs, bytes, c.DocCount(), c.ByteSize())
	}
	if _, st := c.QueryPathTraced(xpath.MustParse(`//author`)); st.ShardsTouched == 0 {
		t.Fatal("indexed query touched no shards")
	}
	if _, st := c.QueryPathTraced(xpath.MustParse(`//*[year='1999']`)); st.ShardsTouched == 0 {
		t.Fatal("scan query touched no shards")
	}
	var q uint64
	for _, si := range c.ShardInfos() {
		q += si.Queries
	}
	if q == 0 {
		t.Fatal("per-shard query counters did not advance")
	}
	if key := "doc-007"; c.ShardFor(key) != c.ShardFor(key) {
		t.Fatal("ShardFor must be deterministic")
	}
}

// TestShardConcurrentQueryMutate stress-tests scatter-gather queries racing
// concurrent Put/Delete/replacement on a sharded collection (run with -race).
func TestShardConcurrentQueryMutate(t *testing.T) {
	c := newShardedCollection(t, 8, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("tmp-%d-%03d", w, i%10)
				switch i % 3 {
				case 0:
					if _, err := c.PutXML(key, strings.NewReader(shardPaper(key, i))); err != nil {
						t.Error(err)
						return
					}
				case 1:
					c.Delete(key)
				default: // replace a stable key in place
					stable := fmt.Sprintf("doc-%03d", i%16)
					if _, err := c.PutXML(stable, strings.NewReader(shardPaper(stable, i%16))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				expr := shardInvarianceExprs[(r+i)%len(shardInvarianceExprs)]
				if _, err := c.Query(expr); err != nil {
					t.Error(err)
					return
				}
				c.NodesWithTag("author")
				c.NodesWithTerm("title")
				_ = c.Stats()
			}
		}(r)
	}
	wg.Wait()

	// The 16 stable keys survive, in insertion order, at the front.
	keys := c.Keys()
	if len(keys) < 16 {
		t.Fatalf("only %d keys survived", len(keys))
	}
	for i := 0; i < 16; i++ {
		if want := fmt.Sprintf("doc-%03d", i); keys[i] != want {
			t.Fatalf("keys[%d] = %q, want %q", i, keys[i], want)
		}
	}
	nodes, err := c.Query(`//inproceedings`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != c.DocCount() {
		t.Fatalf("final query found %d docs, DocCount says %d", len(nodes), c.DocCount())
	}
}
