package xmldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/similarity"
	"repro/internal/tree"
)

// simVocab is a deliberately collision-rich value vocabulary: names within
// small edit distances of each other, shared soundex codes, and values reused
// across documents so deletes exercise the refcount path (a value must stay
// probeable while any live document still carries it).
var simVocab = []string{
	"smith", "smyth", "smithe", "schmidt",
	"ullman", "ulman", "ullmann",
	"data", "date", "gate",
	"Robert Kahn", "Robert Cann",
}

func simDoc(key string, i int) string {
	a := simVocab[i%len(simVocab)]
	b := simVocab[(i*5+1)%len(simVocab)]
	return fmt.Sprintf(`<paper key=%q><author>%s</author><title>%s</title><year>%d</year></paper>`,
		key, a, b, 1990+i%9)
}

// simProbeKeys runs a probe and projects the candidate documents onto their
// collection keys (in returned order), the shard- and seq-independent
// signature used to compare collections with different insertion histories.
func simProbeKeys(c *Collection, p SimProbe) []string {
	docs, _ := c.SimCandidateDocs(p)
	byRoot := map[*tree.Node]string{}
	for _, sh := range c.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			byRoot[e.tree.Root] = e.key
		}
		sh.mu.RUnlock()
	}
	keys := make([]string, len(docs))
	for i, d := range docs {
		keys[i] = byRoot[d.Root]
	}
	return keys
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// simTestProbes covers both filter channels: the n-gram channel with a
// Levenshtein verifier at k=1, and the phonetic channel (with slack) with a
// Soundex verifier. Exact cluster terms ride along on the first probe so the
// exact channel is exercised too.
func simTestProbes() []SimProbe {
	lev := func(lit string, k int) func(string) bool {
		return func(term string) bool { return similarity.WithinK(term, lit, k) }
	}
	snd := func(lit string, eps float64) func(string) bool {
		sx := similarity.Soundex{}
		return func(term string) bool { return sx.Distance(term, lit) <= eps }
	}
	return []SimProbe{
		{Tag: "author", Literal: "smith", ExactTerms: []string{"schmidt", "smith"},
			MaxEdit: 1, GramsPerEdit: 2, Verify: lev("smith", 1)},
		{Tag: "title", Literal: "date", MaxEdit: 1, GramsPerEdit: 2, Verify: lev("date", 1)},
		{Tag: "author", Literal: "Robert Kahn", Phonetic: true, PhoneticSlack: true,
			MaxEdit: -1, Verify: snd("Robert Kahn", 1)},
		{Tag: "author", Literal: "nosuchname", MaxEdit: 1, GramsPerEdit: 2, Verify: lev("nosuchname", 1)},
	}
}

// dropSimIndexes simulates an index invalidation: the next probe must rebuild
// every shard's indexes (including the simindex) from the surviving documents.
func dropSimIndexes(c *Collection) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.invalidateIndexes()
		sh.mu.Unlock()
	}
}

// TestSimIncrementalEqualsRebuild is the maintenance-equivalence property:
// after any random Put/Delete sequence applied on top of live indexes
// (incremental Add/Remove with refcount tombstones), every probe must answer
// exactly like (a) the same collection with its indexes dropped and rebuilt
// from scratch, and (b) a fresh collection holding the same final documents.
func TestSimIncrementalEqualsRebuild(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		docs := 8 + rng.Intn(16)
		c := newShardedCollection(t, 3, 0)
		state := map[string]string{}
		put := func(key, xml string) {
			if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
				t.Fatal(err)
			}
			state[key] = xml
		}
		for i := 0; i < docs; i++ {
			key := fmt.Sprintf("doc-%03d", i)
			put(key, simDoc(key, rng.Intn(100)))
		}
		// Force the indexes into existence so subsequent mutations take the
		// incremental maintenance path rather than the build-from-scratch one.
		for _, p := range simTestProbes() {
			simProbeKeys(c, p)
		}
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("doc-%03d", rng.Intn(docs))
			switch rng.Intn(3) {
			case 0:
				c.Delete(key)
				delete(state, key)
			default:
				put(key, simDoc(key, rng.Intn(100)))
			}
		}

		incremental := make([][]string, 0, len(simTestProbes()))
		for _, p := range simTestProbes() {
			incremental = append(incremental, simProbeKeys(c, p))
		}

		// (a) same collection, indexes rebuilt from scratch.
		dropSimIndexes(c)
		for i, p := range simTestProbes() {
			if got := simProbeKeys(c, p); !sameKeys(got, incremental[i]) {
				t.Logf("seed %d probe %d: incremental %v, rebuilt %v", seed, i, incremental[i], got)
				return false
			}
		}

		// (b) fresh collection with the same final documents. A delete-then-
		// reput assigns a new seq, so the two collections can order candidates
		// differently — only the candidate key sets must coincide.
		fresh := newShardedCollection(t, 3, 0)
		for i := 0; i < docs; i++ {
			key := fmt.Sprintf("doc-%03d", i)
			if xml, ok := state[key]; ok {
				if _, err := fresh.PutXML(key, strings.NewReader(xml)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i, p := range simTestProbes() {
			got := simProbeKeys(fresh, p)
			want := append([]string(nil), incremental[i]...)
			sort.Strings(got)
			sort.Strings(want)
			if !sameKeys(got, want) {
				t.Logf("seed %d probe %d: incremental %v, fresh %v", seed, i, want, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSimProbeSurvivesPersistence pins the recovery guarantee: the simindex
// is derived data, so after SaveDir/LoadDir and after WAL crash recovery the
// lazily rebuilt index must answer probes exactly like the original.
func TestSimProbeSurvivesPersistence(t *testing.T) {
	c := newShardedCollection(t, 3, 24)
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("sim-%03d", i)
		if _, err := c.PutXML(key, strings.NewReader(simDoc(key, i))); err != nil {
			t.Fatal(err)
		}
	}
	want := make([][]string, 0, len(simTestProbes()))
	for _, p := range simTestProbes() {
		want = append(want, simProbeKeys(c, p))
	}
	if len(want[0]) == 0 {
		t.Fatal("probe matched nothing — test corpus broken")
	}

	dir := filepath.Join(t.TempDir(), "snap")
	if err := c.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	restored := New().CreateCollection("restored")
	if err := restored.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	for i, p := range simTestProbes() {
		if got := simProbeKeys(restored, p); !sameKeys(got, want[i]) {
			t.Errorf("probe %d after LoadDir: got %v, want %v", i, got, want[i])
		}
	}

	// WAL crash recovery: mutate under a WAL, crash (abandon with the disk
	// state final, per the WAL tests' idiom), and reopen — replay must restore
	// the documents and the next probe rebuilds an equivalent index over them.
	wdir := t.TempDir()
	walc := openWALCollection(t, wdir, 3, crashOpts())
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("sim-%03d", i)
		if _, err := walc.PutXML(key, strings.NewReader(simDoc(key, i))); err != nil {
			t.Fatal(err)
		}
	}
	walWant := make([][]string, 0, len(simTestProbes()))
	for _, p := range simTestProbes() {
		walWant = append(walWant, simProbeKeys(walc, p))
	}
	if err := walc.CloseWAL(); err != nil { // crash: disk state is final
		t.Fatal(err)
	}

	recovered := openWALCollection(t, wdir, 3, crashOpts())
	defer recovered.CloseWAL()
	for i, p := range simTestProbes() {
		if got := simProbeKeys(recovered, p); !sameKeys(got, walWant[i]) {
			t.Errorf("probe %d after WAL recovery: got %v, want %v", i, got, walWant[i])
		}
	}
}

// TestSimIndexCountersTrackProbes checks the observability wiring: probe
// traffic must show up in the collection counters and the index size gauges
// must reflect a built index without forcing a build on an idle collection.
func TestSimIndexCountersTrackProbes(t *testing.T) {
	c := newShardedCollection(t, 2, 12)
	if got := c.SimIndexCounters(); got.Terms != 0 {
		t.Errorf("idle collection reports %d terms — gauge read forced an index build", got.Terms)
	}
	p := simTestProbes()[0]
	docs, st := c.SimCandidateDocs(p)
	if st.Docs != len(docs) {
		t.Errorf("stats docs=%d, returned %d", st.Docs, len(docs))
	}
	ctr := c.SimIndexCounters()
	if ctr.Probes != 1 {
		t.Errorf("Probes=%d, want 1", ctr.Probes)
	}
	if ctr.Terms == 0 || ctr.GramPostings == 0 {
		t.Errorf("size gauges empty after probe: %+v", ctr)
	}
	if ctr.Docs != uint64(st.Docs) || ctr.MatchedTerms != uint64(st.MatchedTerms) {
		t.Errorf("counters %+v do not match probe stats %+v", ctr, st)
	}
	c.ResetCounters()
	if got := c.SimIndexCounters(); got.Probes != 0 || got.Docs != 0 {
		t.Errorf("ResetCounters left sim counters %+v", got)
	}
}
