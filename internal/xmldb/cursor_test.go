package xmldb

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func cursorTestCollection(t *testing.T, shards, docs int) *Collection {
	t.Helper()
	col := newCollection("c", shards)
	for i := 0; i < docs; i++ {
		key := fmt.Sprintf("doc-%03d", i)
		xml := fmt.Sprintf("<paper><title>t%d</title></paper>", i)
		if _, err := col.PutXML(key, strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	return col
}

// drainMerged k-way merges the cursors by ascending seq, the way the
// streaming executor consumes them.
func drainMerged(cursors []*Cursor) []DocSnap {
	var all []DocSnap
	for _, c := range cursors {
		for {
			s, ok := c.Next()
			if !ok {
				break
			}
			all = append(all, s)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all
}

func TestShardCursorsReproduceDocsOrder(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		col := cursorTestCollection(t, shards, 23)
		docs := col.Docs()
		keys := col.Keys()
		merged := drainMerged(col.ShardCursors())
		if len(merged) != len(docs) {
			t.Fatalf("shards=%d: cursor yields %d docs, Docs() has %d", shards, len(merged), len(docs))
		}
		for i, s := range merged {
			if s.Doc != docs[i] || s.Key != keys[i] {
				t.Fatalf("shards=%d: position %d: cursor (%q) disagrees with Docs/Keys (%q)",
					shards, i, s.Key, keys[i])
			}
		}
	}
}

func TestShardCursorSnapshotIsolation(t *testing.T) {
	col := cursorTestCollection(t, 4, 10)
	cursors := col.ShardCursors()
	total := 0
	for _, c := range cursors {
		total += c.Len()
	}
	if total != 10 {
		t.Fatalf("cursors cover %d docs, want 10", total)
	}

	// Mutate after opening: insert, delete, and replace.
	if _, err := col.PutXML("doc-999", strings.NewReader("<paper><title>new</title></paper>")); err != nil {
		t.Fatal(err)
	}
	col.Delete("doc-003")
	if _, err := col.PutXML("doc-005", strings.NewReader("<paper><title>replaced</title></paper>")); err != nil {
		t.Fatal(err)
	}

	merged := drainMerged(cursors)
	if len(merged) != 10 {
		t.Fatalf("cursor sees %d docs after mutations, want the 10 snapshotted", len(merged))
	}
	for _, s := range merged {
		if s.Key == "doc-999" {
			t.Fatal("cursor sees a document inserted after it was opened")
		}
		if s.Key == "doc-005" && strings.Contains(s.Doc.XMLString(), "replaced") {
			t.Fatal("cursor sees the replacement tree instead of the snapshotted one")
		}
	}
}

func TestCursorRemaining(t *testing.T) {
	col := cursorTestCollection(t, 1, 3)
	c := col.ShardCursors()[0]
	if c.Len() != 3 || c.Remaining() != 3 {
		t.Fatalf("fresh cursor: Len=%d Remaining=%d, want 3/3", c.Len(), c.Remaining())
	}
	c.Next()
	if c.Len() != 3 || c.Remaining() != 2 {
		t.Fatalf("after one Next: Len=%d Remaining=%d, want 3/2", c.Len(), c.Remaining())
	}
	c.Next()
	c.Next()
	if _, ok := c.Next(); ok {
		t.Fatal("exhausted cursor still yields documents")
	}
	if c.Remaining() != 0 {
		t.Fatalf("exhausted cursor Remaining=%d, want 0", c.Remaining())
	}
}
