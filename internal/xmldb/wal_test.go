package xmldb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// walMutation is one step of a deterministic mixed workload: fresh puts,
// same-key replacements and deletes, the three shapes the WAL journals.
type walMutation struct {
	op  byte
	key string
	xml string
}

func genMutations(n int) []walMutation {
	rng := rand.New(rand.NewSource(42))
	var live []string
	muts := make([]walMutation, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.6 || len(live) == 0: // fresh put
			key := fmt.Sprintf("doc-%04d", i)
			muts = append(muts, walMutation{walOpPut, key,
				fmt.Sprintf("<doc id=%q><v>%d</v><body>payload %d</body></doc>", key, i, i)})
			live = append(live, key)
		case r < 0.8: // replacement
			key := live[rng.Intn(len(live))]
			muts = append(muts, walMutation{walOpPut, key,
				fmt.Sprintf("<doc id=%q><v>replaced-%d</v></doc>", key, i)})
		default: // delete
			j := rng.Intn(len(live))
			key := live[j]
			live = append(live[:j], live[j+1:]...)
			muts = append(muts, walMutation{walOpDelete, key, ""})
		}
	}
	return muts
}

func applyMutations(t *testing.T, c *Collection, muts []walMutation) {
	t.Helper()
	for _, m := range muts {
		switch m.op {
		case walOpPut:
			if _, err := c.PutXML(m.key, strings.NewReader(m.xml)); err != nil {
				t.Fatalf("put %s: %v", m.key, err)
			}
		case walOpDelete:
			if !c.Delete(m.key) {
				t.Fatalf("delete %s: key missing", m.key)
			}
		}
	}
}

// referenceCollection applies muts to a fresh, WAL-less collection — the
// ground truth a recovered collection must match bit-for-bit.
func referenceCollection(t *testing.T, shards int, muts []walMutation) *Collection {
	t.Helper()
	ref := newCollection("ref", shards)
	applyMutations(t, ref, muts)
	return ref
}

// assertSameState checks keys, insertion order, document content, byte size
// and the generation counters (collection-wide, and per-shard when the
// layouts agree) are identical.
func assertSameState(t *testing.T, got, want *Collection) {
	t.Helper()
	assertSameContent(t, got, want)
	if got.ShardCount() == want.ShardCount() {
		gi, wi := got.ShardInfos(), want.ShardInfos()
		for i := range wi {
			if gi[i].Generation != wi[i].Generation {
				t.Fatalf("shard %d generation %d, want %d", i, gi[i].Generation, wi[i].Generation)
			}
			if gi[i].Docs != wi[i].Docs {
				t.Fatalf("shard %d has %d docs, want %d", i, gi[i].Docs, wi[i].Docs)
			}
		}
	}
}

// assertSameContent checks the layout-independent state: keys, insertion
// order, document content, byte size, and the collection-wide generation.
func assertSameContent(t *testing.T, got, want *Collection) {
	t.Helper()
	gk, wk := got.Keys(), want.Keys()
	if len(gk) != len(wk) {
		t.Fatalf("recovered %d keys, want %d\n got: %v\nwant: %v", len(gk), len(wk), gk, wk)
	}
	for i := range wk {
		if gk[i] != wk[i] {
			t.Fatalf("key %d: got %q, want %q (insertion order diverged)", i, gk[i], wk[i])
		}
		g, w := got.Doc(gk[i]), want.Doc(wk[i])
		if g.XMLString() != w.XMLString() {
			t.Fatalf("doc %q content differs:\n got: %s\nwant: %s", gk[i], g.XMLString(), w.XMLString())
		}
	}
	if got.Generation() != want.Generation() {
		t.Fatalf("generation %d, want %d", got.Generation(), want.Generation())
	}
	if got.ByteSize() != want.ByteSize() {
		t.Fatalf("byte size %d, want %d", got.ByteSize(), want.ByteSize())
	}
}

// crashOpts disables the background goroutines so an abandoned collection
// models a process killed at an arbitrary point: the on-disk bytes are
// exactly what the appends wrote.
func crashOpts() WALOptions {
	return WALOptions{Sync: SyncOff, MaxBytes: -1}
}

func openWALCollection(t *testing.T, dir string, shards int, opts WALOptions) *Collection {
	t.Helper()
	c := newCollection("wal", shards)
	if err := c.OpenWAL(dir, opts); err != nil {
		t.Fatal(err)
	}
	return c
}

func forEachShardCount(t *testing.T, f func(t *testing.T, shards int)) {
	for _, shards := range []int{1, 2, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) { f(t, shards) })
	}
}

// TestWALRecoveryAfterCrash kills the process (simulated: the collection is
// abandoned without a clean close) after a compaction plus a WAL tail, and
// asserts recovery reproduces the reference state exactly — the "kill
// between WAL append and snapshot" case.
func TestWALRecoveryAfterCrash(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		muts := genMutations(200)
		dir := t.TempDir()

		c1 := openWALCollection(t, dir, shards, crashOpts())
		applyMutations(t, c1, muts[:120])
		if err := c1.CompactWAL(); err != nil {
			t.Fatal(err)
		}
		applyMutations(t, c1, muts[120:])
		if err := c1.CloseWAL(); err != nil { // crash: disk state is final
			t.Fatal(err)
		}

		ref := referenceCollection(t, shards, muts)
		c2 := openWALCollection(t, dir, shards, crashOpts())
		assertSameState(t, c2, ref)
		st := c2.WALStats()
		if st.RecoveredGeneration != uint64(len(muts)) {
			t.Fatalf("recovered generation %d, want %d", st.RecoveredGeneration, len(muts))
		}
		if st.ReplayedRecords != uint64(len(muts)-120) {
			t.Fatalf("replayed %d records, want %d", st.ReplayedRecords, len(muts)-120)
		}
		c2.CloseWAL()

		// Read-only recovery: plain LoadDir on the durable dir reproduces
		// the same state without attaching a WAL.
		c3 := newCollection("ro", shards)
		if err := c3.LoadDir(dir); err != nil {
			t.Fatal(err)
		}
		assertSameState(t, c3, ref)
	})
}

// TestWALRecoveryWithoutSnapshot replays the entire history from the WAL
// alone: no compaction ever ran, so there is no CURRENT pointer.
func TestWALRecoveryWithoutSnapshot(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		muts := genMutations(80)
		dir := t.TempDir()
		c1 := openWALCollection(t, dir, shards, crashOpts())
		applyMutations(t, c1, muts)
		c1.CloseWAL()
		if _, err := os.Stat(filepath.Join(dir, walCurrentFile)); !os.IsNotExist(err) {
			t.Fatalf("CURRENT should not exist before the first compaction (err=%v)", err)
		}
		c2 := openWALCollection(t, dir, shards, crashOpts())
		assertSameState(t, c2, referenceCollection(t, shards, muts))
		c2.CloseWAL()
	})
}

// largestWAL returns the current segment with the most bytes (guaranteed to
// hold at least one record after a non-trivial workload).
func largestWAL(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", walFileName))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments under %s (err=%v)", dir, err)
	}
	best, bestSize := "", int64(-1)
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > bestSize {
			best, bestSize = seg, fi.Size()
		}
	}
	if bestSize <= 0 {
		t.Fatal("all wal segments empty")
	}
	return best
}

// assertConsistentPrefix recovers the damaged dir and asserts the result is
// exactly the reference history truncated at the recovered generation — the
// consistent-prefix contract for torn and corrupt logs. It returns the
// recovered collection (WAL still open) and the prefix length.
func assertConsistentPrefix(t *testing.T, dir string, shards int, muts []walMutation) (*Collection, int) {
	t.Helper()
	c := openWALCollection(t, dir, shards, crashOpts())
	gen := int(c.Generation())
	if gen >= len(muts) {
		t.Fatalf("recovered generation %d, want a strict prefix of %d mutations", gen, len(muts))
	}
	assertSameState(t, c, referenceCollection(t, shards, muts[:gen]))
	if st := c.WALStats(); st.Truncations == 0 {
		t.Fatal("expected a truncation to be recorded")
	}
	return c, gen
}

// TestWALTornTailTruncated cuts the last bytes off one shard's wal.log —
// the shape a crash mid-append leaves — and asserts recovery truncates the
// tear, lands on a consistent prefix, and accepts new appends afterwards.
func TestWALTornTailTruncated(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		muts := genMutations(100)
		dir := t.TempDir()
		c1 := openWALCollection(t, dir, shards, crashOpts())
		applyMutations(t, c1, muts)
		c1.CloseWAL()

		seg := largestWAL(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-3); err != nil {
			t.Fatal(err)
		}

		c2, gen := assertConsistentPrefix(t, dir, shards, muts)
		// The torn segment must have been cut back to parseable records.
		if recs, torn, err := parseWALFile(seg); err != nil || torn {
			t.Fatalf("segment still torn after recovery (records=%d, torn=%v, err=%v)", len(recs), torn, err)
		}

		// Life goes on: new mutations append past the recovered point and a
		// further recovery sees them.
		extra := []walMutation{
			{walOpPut, "post-recovery", "<doc id=\"post-recovery\"><v>1</v></doc>"},
		}
		applyMutations(t, c2, extra)
		c2.CloseWAL()
		c3 := openWALCollection(t, dir, shards, crashOpts())
		assertSameState(t, c3, referenceCollection(t, shards, append(append([]walMutation{}, muts[:gen]...), extra...)))
		c3.CloseWAL()
	})
}

// TestWALCorruptCRCTruncated flips a byte inside a mid-file record: the CRC
// no longer matches, replay must stop at the record before it (and, via the
// generation-contiguity rule, drop everything after the hole).
func TestWALCorruptCRCTruncated(t *testing.T) {
	forEachShardCount(t, func(t *testing.T, shards int) {
		muts := genMutations(100)
		dir := t.TempDir()
		c1 := openWALCollection(t, dir, shards, crashOpts())
		applyMutations(t, c1, muts)
		c1.CloseWAL()

		seg := largestWAL(t, dir)
		recs, torn, err := parseWALFile(seg)
		if err != nil || torn || len(recs) < 4 {
			t.Fatalf("want a healthy segment with >=4 records, got %d (torn=%v, err=%v)", len(recs), torn, err)
		}
		victim := recs[len(recs)/2]
		f, err := os.OpenFile(seg, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff}, victim.end-2); err != nil {
			t.Fatal(err)
		}
		f.Close()

		c2, _ := assertConsistentPrefix(t, dir, shards, muts)
		// Recovery must stop strictly before the corrupt record's generation.
		if got := c2.Generation(); got >= victim.gen {
			t.Fatalf("recovered generation %d, want < corrupt record's %d", got, victim.gen)
		}
		c2.CloseWAL()
	})
}

// TestWALBackgroundCompaction drives enough volume through a small MaxBytes
// that the background compactor must fire, then recovers and compares.
func TestWALBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	c1 := openWALCollection(t, dir, 2, WALOptions{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond, MaxBytes: 2048})
	muts := genMutations(150)
	applyMutations(t, c1, muts)
	deadline := time.Now().Add(10 * time.Second)
	for c1.WALStats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never fired (wal bytes=%d)", c1.WALStats().Bytes)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c1.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	c2 := openWALCollection(t, dir, 2, crashOpts())
	assertSameState(t, c2, referenceCollection(t, 2, muts))
	c2.CloseWAL()
}

// TestWALExplicitCompactionCleansUp asserts CompactWAL leaves exactly one
// snapshot, a CURRENT pointer, and no rotated segments.
func TestWALExplicitCompactionCleansUp(t *testing.T) {
	dir := t.TempDir()
	c := openWALCollection(t, dir, 2, crashOpts())
	muts := genMutations(60)
	applyMutations(t, c, muts[:30])
	if err := c.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	applyMutations(t, c, muts[30:])
	if err := c.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if rot, _ := filepath.Glob(filepath.Join(dir, "shard-*", "wal-*.log")); len(rot) != 0 {
		t.Fatalf("rotated segments not cleaned up: %v", rot)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot dir, got %v", snaps)
	}
	// A no-op compaction (no mutations since) must not churn.
	before := c.WALStats().Compactions
	if err := c.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	if got := c.WALStats().Compactions; got != before {
		t.Fatalf("no-op compaction ran (%d -> %d)", before, got)
	}
	c.CloseWAL()

	c2 := openWALCollection(t, dir, 2, crashOpts())
	assertSameState(t, c2, referenceCollection(t, 2, muts))
	c2.CloseWAL()
}

// TestWALRecoveryAcrossShardCounts writes at one shard count and recovers
// at another: records re-hash through the normal Put path, so keys, order
// and content survive re-partitioning (per-shard generations are layout-
// specific and not compared).
func TestWALRecoveryAcrossShardCounts(t *testing.T) {
	muts := genMutations(90)
	dir := t.TempDir()
	c1 := openWALCollection(t, dir, 7, crashOpts())
	applyMutations(t, c1, muts[:50])
	if err := c1.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	applyMutations(t, c1, muts[50:])
	c1.CloseWAL()

	c2 := openWALCollection(t, dir, 2, crashOpts())
	assertSameContent(t, c2, referenceCollection(t, 2, muts))
	c2.CloseWAL()
}

// TestWALConcurrentMutationsAndCompaction exercises the cut/rotation path
// against live writers and readers under -race.
func TestWALConcurrentMutationsAndCompaction(t *testing.T) {
	dir := t.TempDir()
	c := openWALCollection(t, dir, 4, WALOptions{Sync: SyncInterval, SyncInterval: time.Millisecond, MaxBytes: -1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Keys()
				c.Query("//v")
			}
		}
	}()
	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := c.CompactWAL(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	muts := genMutations(300)
	applyMutations(t, c, muts)
	close(stop)
	wg.Wait()
	if err := c.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	c2 := openWALCollection(t, dir, 4, crashOpts())
	assertSameState(t, c2, referenceCollection(t, 4, muts))
	c2.CloseWAL()
}

// TestOpenWALRequiresEmptyCollection: recovery force-sets the generation
// counters, which only makes sense starting from nothing.
func TestOpenWALRequiresEmptyCollection(t *testing.T) {
	c := newCollection("nonempty", 1)
	if _, err := c.PutXML("a", strings.NewReader("<a/>")); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenWAL(t.TempDir(), crashOpts()); err == nil {
		t.Fatal("OpenWAL on a non-empty collection must fail")
	}
}
