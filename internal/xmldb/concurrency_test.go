package xmldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/xpath"
)

// TestPutTreeRejectionPreservesExistingTree: a tree that already belongs to
// the collection (stored under another key) must survive a size-rejected
// PutTree — the failure path may only undo membership changes it made itself.
func TestPutTreeRejectionPreservesExistingTree(t *testing.T) {
	db := New()
	c := db.CreateCollection("x")
	if _, err := c.PutXML("k1", strings.NewReader(`<a><b>hi</b></a>`)); err != nil {
		t.Fatal(err)
	}
	existing := c.Doc("k1")
	// Cap the limit so storing the same tree under a second key is rejected
	// (the second copy would double the byte count).
	c.SetMaxBytes(c.ByteSize())
	if err := c.PutTree("k2", existing); !errors.Is(err, ErrCollectionFull) {
		t.Fatalf("expected ErrCollectionFull, got %v", err)
	}
	if c.Doc("k1") != existing {
		t.Fatal("rejected PutTree dropped the k1 document")
	}
	found := false
	for _, tr := range c.TreeCollection().Trees {
		if tr == existing {
			found = true
		}
	}
	if !found {
		t.Error("rejected PutTree removed a pre-existing tree from the collection")
	}
	if got, _ := c.Query(`//b`); len(got) != 1 {
		t.Errorf("query after rejected PutTree = %d nodes, want 1", len(got))
	}
}

// TestReplaceKeepsInsertionOrder: replacing a document must keep its key at
// the original position in insertion order, not migrate it to the end.
func TestReplaceKeepsInsertionOrder(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, "A", "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PutXML("p2", strings.NewReader(paperXML("p2", "B", "T2", "2001"))); err != nil {
		t.Fatal(err)
	}
	keys := c.Keys()
	for i, k := range keys {
		if k != fmt.Sprintf("p%d", i) {
			t.Fatalf("replacement changed insertion order: %v", keys)
		}
	}
	docs := c.Docs()
	if len(docs) != 5 || docs[2] != c.Doc("p2") {
		t.Error("Docs() order does not follow Keys() after replacement")
	}
	if got := c.Doc("p2").Root.ChildContent("author"); got != "B" {
		t.Errorf("replacement did not take effect: author=%q", got)
	}
}

// TestQueryPathTracedStats: the per-query trace reports the routing decision,
// candidate counts, and value-index narrowing.
func TestQueryPathTracedStats(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, fmt.Sprintf("A%d", i%2), "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}

	p := mustPath(t, `//author`)
	nodes, st := c.QueryPathTraced(p)
	if !st.Indexed || st.IndexTag != "author" {
		t.Errorf("expected index route on author, got %+v", st)
	}
	if st.Candidates != 10 || st.Matches != len(nodes) || len(nodes) != 10 {
		t.Errorf("indexed stats = %+v (%d nodes)", st, len(nodes))
	}
	if st.XPath == "" || st.Elapsed < 0 {
		t.Errorf("missing trace fields: %+v", st)
	}

	nodes, st = c.QueryPathTraced(mustPath(t, `//author[.='A1']`))
	if !st.Indexed || !st.ValueIndexUsed {
		t.Errorf("expected value-index narrowing, got %+v", st)
	}
	if st.Candidates != 5 || len(nodes) != 5 {
		t.Errorf("value-index stats = %+v (%d nodes)", st, len(nodes))
	}

	nodes, st = c.QueryPathTraced(mustPath(t, `//*[year='2000']`))
	if st.Indexed || st.DocsWalked != 10 {
		t.Errorf("expected scan route over 10 docs, got %+v", st)
	}
	if len(nodes) != 10 {
		t.Errorf("scan matches = %d", len(nodes))
	}
}

// TestCounters: cumulative collection counters reflect routing and reset.
func TestCounters(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, fmt.Sprintf("A%d", i%2), "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	c.QueryPath(mustPath(t, `//author`))         // indexed
	c.QueryPath(mustPath(t, `//author[.='A1']`)) // indexed + value index (3 of 6)
	c.QueryPath(mustPath(t, `//*[year='2000']`)) // scan

	got := c.Counters()
	if got.Queries != 3 || got.IndexedQueries != 2 || got.ScanQueries != 1 {
		t.Errorf("routing counters = %+v", got)
	}
	if got.ValueIndexHits != 1 {
		t.Errorf("ValueIndexHits = %d", got.ValueIndexHits)
	}
	if got.DocsWalked != 6 {
		t.Errorf("DocsWalked = %d", got.DocsWalked)
	}
	if got.NodesTested != 6+3 {
		t.Errorf("NodesTested = %d, want 9", got.NodesTested)
	}
	if got.NodesMatched != 6+3+6 {
		t.Errorf("NodesMatched = %d, want 15", got.NodesMatched)
	}
	c.ResetCounters()
	if c.Counters() != (Counters{}) {
		t.Errorf("ResetCounters left %+v", c.Counters())
	}
}

// TestConcurrentQueryMutate stresses the RLock-escalation read path: indexed
// queries, scans, index-backed accessors, puts, replacements, tree puts and
// deletes all interleave. Run under -race; the seed code serialized readers
// behind an exclusive lock and destroyed shared trees on rejected puts.
func TestConcurrentQueryMutate(t *testing.T) {
	db := New()
	c := db.CreateCollection("dblp")
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("p%d", i)
		if _, err := c.PutXML(key, strings.NewReader(paperXML(key, fmt.Sprintf("A%d", i%4), "T", "2000"))); err != nil {
			t.Fatal(err)
		}
	}
	const iters = 60
	var wg sync.WaitGroup
	// Readers: indexed route, value-index route, scan route, accessors.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.QueryPath(mustPath(t, `//author`))
				c.QueryPath(mustPath(t, `//author[.='A1']`))
				c.QueryPath(mustPath(t, `//*[year='2000']`))
				c.NodesWithTag("title")
				c.NodesWithTerm("t")
				c.Keys()
				c.Docs()
				c.Counters()
			}
		}(g)
	}
	// Writers: puts (inserts + replacements), tree puts, deletes.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("w%d-%d", g, i%8)
				xml := paperXML(key, fmt.Sprintf("A%d", i%4), "T", "2001")
				if _, err := c.PutXML(key, strings.NewReader(xml)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					c.Delete(key)
				}
				if i%5 == 0 {
					// Replace a stable key (exercises the in-place order path).
					stable := fmt.Sprintf("p%d", i%16)
					if _, err := c.PutXML(stable, strings.NewReader(paperXML(stable, "R", "T", "2002"))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The 16 stable keys must all still be present, in insertion order.
	keys := c.Keys()
	if len(keys) < 16 {
		t.Fatalf("lost documents: %d keys", len(keys))
	}
	for i := 0; i < 16; i++ {
		if keys[i] != fmt.Sprintf("p%d", i) {
			t.Fatalf("stable key order broken: %v", keys[:16])
		}
	}
	if got, _ := c.Query(`//inproceedings`); len(got) != c.DocCount() {
		t.Errorf("index inconsistent: %d roots vs %d docs", len(got), c.DocCount())
	}
}

func mustPath(t *testing.T, expr string) *xpath.Path {
	t.Helper()
	p, err := xpath.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
