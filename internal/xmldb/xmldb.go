// Package xmldb is the XML database substrate TOSS runs on — the role Apache
// Xindice plays in the paper's prototype. It stores named collections of XML
// documents, executes XPath queries (via internal/xpath) over them with an
// optional tag index for bottom-up evaluation, and enforces Xindice's
// per-collection data-size limit (the paper truncated DBLP to 4,753,774
// bytes "due to the 5MB maximum data size limitation of Xindice").
package xmldb

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/similarity"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// DefaultMaxCollectionBytes mirrors Xindice's 5 MB data-size limitation.
const DefaultMaxCollectionBytes = 5 * 1024 * 1024

// ErrCollectionFull is returned when adding a document would exceed the
// collection's size limit.
var ErrCollectionFull = fmt.Errorf("xmldb: collection size limit exceeded")

// DB is a set of named collections.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
}

// New returns an empty database.
func New() *DB {
	return &DB{collections: map[string]*Collection{}}
}

// CreateCollection creates (or returns the existing) collection with the
// given name, with the default size limit.
func (db *DB) CreateCollection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.collections[name]; ok {
		return c
	}
	c := &Collection{
		name:     name,
		col:      tree.NewCollection(),
		docs:     map[string]*tree.Tree{},
		maxBytes: DefaultMaxCollectionBytes,
	}
	db.collections[name] = c
	return c
}

// Collection returns the named collection, or nil.
func (db *DB) Collection(name string) *Collection {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.collections[name]
}

// DropCollection removes a collection.
func (db *DB) DropCollection(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.collections, name)
}

// CollectionNames lists collection names, sorted.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Collection is a named set of XML documents sharing a tree.Collection (so
// node IDs are unique across documents).
type Collection struct {
	mu       sync.RWMutex
	name     string
	col      *tree.Collection
	docs     map[string]*tree.Tree
	keys     []string // insertion order
	maxBytes int
	curBytes int

	tagIndex  map[string][]*tree.Node
	termIndex map[string][]*tree.Node
	// valueIndex maps tag + "\x00" + exact content to nodes, accelerating
	// the [.='v'] equality predicates the TOSS rewriter emits. It is only
	// consulted for tags in which every node's XPath string value equals its
	// own content (mixedValueTag is false): a content-less interior node's
	// string value joins its descendants' text and is not in the index.
	valueIndex    map[string][]*tree.Node
	mixedValueTag map[string]bool

	// statsCache holds the planner statistics snapshot for the generation it
	// was built at (see Stats); statsMu guards it separately from mu so a
	// stats read never contends with query traffic.
	statsMu    sync.Mutex
	statsCache *Stats

	// generation counts mutations (Put/Delete, including replacements). It
	// lets caches key results on collection state: any entry keyed under an
	// older generation can never be served again, which is how the tossd
	// query-result cache invalidates on writes without a callback seam.
	generation atomic.Uint64

	// Cumulative query counters, updated atomically so the read path never
	// contends on mu for bookkeeping. Snapshot with Counters().
	nQueries        atomic.Uint64
	nIndexed        atomic.Uint64
	nScans          atomic.Uint64
	nValueIndexHits atomic.Uint64
	nDocsWalked     atomic.Uint64
	nNodesTested    atomic.Uint64
	nNodesMatched   atomic.Uint64
}

// Counters is a snapshot of a collection's cumulative query statistics.
type Counters struct {
	Queries        uint64 // path queries served (indexed + scans)
	IndexedQueries uint64 // routed bottom-up through the tag index
	ScanQueries    uint64 // answered by walking every document
	ValueIndexHits uint64 // queries narrowed via the value index
	DocsWalked     uint64 // documents traversed by scanning queries
	NodesTested    uint64 // candidate nodes tested on the indexed path
	NodesMatched   uint64 // nodes returned across all queries
}

// Counters returns the collection's cumulative query counters.
func (c *Collection) Counters() Counters {
	return Counters{
		Queries:        c.nQueries.Load(),
		IndexedQueries: c.nIndexed.Load(),
		ScanQueries:    c.nScans.Load(),
		ValueIndexHits: c.nValueIndexHits.Load(),
		DocsWalked:     c.nDocsWalked.Load(),
		NodesTested:    c.nNodesTested.Load(),
		NodesMatched:   c.nNodesMatched.Load(),
	}
}

// ResetCounters zeroes the cumulative query counters (benchmark harnesses
// reset between runs).
func (c *Collection) ResetCounters() {
	c.nQueries.Store(0)
	c.nIndexed.Store(0)
	c.nScans.Store(0)
	c.nValueIndexHits.Store(0)
	c.nDocsWalked.Store(0)
	c.nNodesTested.Store(0)
	c.nNodesMatched.Store(0)
}

// QueryStats traces how one QueryPath execution was answered: the routing
// decision (tag index vs full scan), how many candidate nodes were
// considered, whether the value index narrowed them, and the wall-clock cost.
type QueryStats struct {
	XPath          string
	Indexed        bool   // routed through the tag index
	IndexTag       string // final-step tag driving the index lookup
	ValueIndexUsed bool   // candidates narrowed by the value index
	Candidates     int    // nodes tested against the path (indexed route)
	DocsWalked     int    // documents traversed (scan route)
	Matches        int    // nodes returned
	Elapsed        time.Duration
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// SetMaxBytes overrides the size limit; v <= 0 disables the limit.
func (c *Collection) SetMaxBytes(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = v
}

// ByteSize returns the stored XML bytes.
func (c *Collection) ByteSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.curBytes
}

// DocCount returns the number of documents.
func (c *Collection) DocCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// PutXML parses an XML document from r and stores it under key. It fails
// with ErrCollectionFull if the document would push the collection past its
// size limit, and replaces any existing document with the same key.
func (c *Collection) PutXML(key string, r io.Reader) (*tree.Tree, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, err := c.col.ParseXML(r)
	if err != nil {
		return nil, err
	}
	// ParseXML appended the tree to c.col; undo on failure paths below.
	if err := c.storeLocked(key, t); err != nil {
		c.removeTree(t)
		return nil, err
	}
	return t, nil
}

// PutTree stores an already-built tree under key. The tree must have been
// created in this collection's tree.Collection (use NewDocument) or is
// cloned in.
func (c *Collection) PutTree(key string, t *tree.Tree) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := false
	if !c.contains(t) {
		t = t.CloneInto(c.col)
		c.col.Add(t)
		added = true
	}
	if err := c.storeLocked(key, t); err != nil {
		// Undo only our own membership change: a tree that already belonged
		// to c.col before the call (e.g. one stored under another key) must
		// survive a rejected put.
		if added {
			c.removeTree(t)
		}
		return err
	}
	return nil
}

// storeLocked installs a tree (already present in c.col) under key,
// enforcing the size limit. If the key is occupied, the old document is
// replaced only when the new one fits.
func (c *Collection) storeLocked(key string, t *tree.Tree) error {
	size := len(t.XMLString())
	oldSize := 0
	old, replacing := c.docs[key]
	if replacing {
		oldSize = len(old.XMLString())
	}
	if c.maxBytes > 0 && c.curBytes-oldSize+size > c.maxBytes {
		return fmt.Errorf("%w: %s at %d bytes, adding %d exceeds %d",
			ErrCollectionFull, c.name, c.curBytes-oldSize, size, c.maxBytes)
	}
	if replacing {
		// Keep the key at its original position in insertion order: a
		// replaced document must not migrate to the end of Docs()/Keys()
		// (and thereby change answer order). Replacement is the one mutation
		// that cannot be folded into the indexes incrementally (the old
		// document's postings sit interleaved with its neighbours'), so it
		// falls back to a full rebuild on the next query.
		c.curBytes -= oldSize
		c.removeTree(old)
		c.invalidateIndexes()
	} else {
		c.keys = append(c.keys, key)
		// A fresh key lands at the end of insertion order, so appending its
		// nodes to the posting lists reproduces exactly what a full rebuild
		// would produce — the indexes (and the planner statistics derived
		// from them) stay warm under insert load.
		c.indexTreeLocked(t)
	}
	c.docs[key] = t
	c.curBytes += size
	c.generation.Add(1)
	return nil
}

// Generation returns the collection's mutation counter: it increments on
// every successful Put/Delete (replacements included), never decrements, and
// is safe to read concurrently. Two reads returning the same value bracket a
// window with no writes.
func (c *Collection) Generation() uint64 { return c.generation.Load() }

func (c *Collection) contains(t *tree.Tree) bool {
	for _, existing := range c.col.Trees {
		if existing == t {
			return true
		}
	}
	return false
}

func (c *Collection) removeTree(t *tree.Tree) {
	for i, existing := range c.col.Trees {
		if existing == t {
			c.col.Trees = append(c.col.Trees[:i], c.col.Trees[i+1:]...)
			return
		}
	}
}

func (c *Collection) removeKey(key string) {
	for i, k := range c.keys {
		if k == key {
			c.keys = append(c.keys[:i], c.keys[i+1:]...)
			return
		}
	}
}

// Delete removes the document stored under key.
func (c *Collection) Delete(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.docs[key]
	if !ok {
		return false
	}
	c.curBytes -= len(t.XMLString())
	delete(c.docs, key)
	c.removeKey(key)
	c.removeTree(t)
	c.unindexTreeLocked(t)
	c.generation.Add(1)
	return true
}

// Doc returns the document stored under key, or nil.
func (c *Collection) Doc(key string) *tree.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs[key]
}

// Keys returns document keys in insertion order.
func (c *Collection) Keys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.keys))
	copy(out, c.keys)
	return out
}

// Docs returns the documents in insertion order.
func (c *Collection) Docs() []*tree.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*tree.Tree, 0, len(c.keys))
	for _, k := range c.keys {
		out = append(out, c.docs[k])
	}
	return out
}

// TreeCollection exposes the underlying tree.Collection (for algebra
// operators that need to allocate nodes with fresh IDs).
func (c *Collection) TreeCollection() *tree.Collection { return c.col }

// ---- indexing ----

func (c *Collection) invalidateIndexes() {
	c.tagIndex = nil
	c.termIndex = nil
	c.valueIndex = nil
}

func valueKey(tag, content string) string { return tag + "\x00" + content }

// BuildIndexes constructs the tag and content-term inverted indexes.
func (c *Collection) BuildIndexes() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildIndexesLocked()
}

func (c *Collection) buildIndexesLocked() {
	if c.tagIndex != nil {
		return
	}
	tagIdx := map[string][]*tree.Node{}
	termIdx := map[string][]*tree.Node{}
	valIdx := map[string][]*tree.Node{}
	mixed := map[string]bool{}
	for _, k := range c.keys {
		c.docs[k].Walk(func(n *tree.Node) bool {
			tagIdx[n.Tag] = append(tagIdx[n.Tag], n)
			if n.Content != "" {
				for _, tok := range similarity.Tokenize(n.Content) {
					termIdx[tok] = append(termIdx[tok], n)
				}
				valIdx[valueKey(n.Tag, n.Content)] = append(valIdx[valueKey(n.Tag, n.Content)], n)
			} else if subtreeHasContent(n) {
				// XPath string value differs from (empty) own content:
				// exclude the tag from value-index routing.
				mixed[n.Tag] = true
			}
			return true
		})
	}
	c.tagIndex = tagIdx
	c.termIndex = termIdx
	c.valueIndex = valIdx
	c.mixedValueTag = mixed
}

// indexTreeLocked folds a newly inserted tree (appended at the end of
// insertion order) into existing indexes. A no-op when the indexes are not
// built: the next query rebuilds them from scratch anyway.
func (c *Collection) indexTreeLocked(t *tree.Tree) {
	if c.tagIndex == nil {
		return
	}
	t.Walk(func(n *tree.Node) bool {
		c.tagIndex[n.Tag] = append(c.tagIndex[n.Tag], n)
		if n.Content != "" {
			for _, tok := range similarity.Tokenize(n.Content) {
				c.termIndex[tok] = append(c.termIndex[tok], n)
			}
			c.valueIndex[valueKey(n.Tag, n.Content)] = append(c.valueIndex[valueKey(n.Tag, n.Content)], n)
		} else if subtreeHasContent(n) {
			c.mixedValueTag[n.Tag] = true
		}
		return true
	})
}

// unindexTreeLocked removes a deleted tree's nodes from the indexes,
// touching only the posting lists the tree contributed to. mixedValueTag is
// left as-is: a deletion can only make a "mixed" verdict stale in the
// conservative direction (value-index routing stays disabled for the tag),
// never unsound.
func (c *Collection) unindexTreeLocked(t *tree.Tree) {
	if c.tagIndex == nil {
		return
	}
	gone := map[*tree.Node]bool{}
	tags := map[string]bool{}
	terms := map[string]bool{}
	vals := map[string]bool{}
	t.Walk(func(n *tree.Node) bool {
		gone[n] = true
		tags[n.Tag] = true
		if n.Content != "" {
			for _, tok := range similarity.Tokenize(n.Content) {
				terms[tok] = true
			}
			vals[valueKey(n.Tag, n.Content)] = true
		}
		return true
	})
	prune := func(idx map[string][]*tree.Node, key string) {
		kept := idx[key][:0]
		for _, n := range idx[key] {
			if !gone[n] {
				kept = append(kept, n)
			}
		}
		if len(kept) == 0 {
			delete(idx, key)
		} else {
			idx[key] = kept
		}
	}
	for tag := range tags {
		prune(c.tagIndex, tag)
	}
	for term := range terms {
		prune(c.termIndex, term)
	}
	for val := range vals {
		prune(c.valueIndex, val)
	}
}

// subtreeHasContent reports whether any proper descendant carries content.
func subtreeHasContent(n *tree.Node) bool {
	found := false
	n.Walk(func(m *tree.Node) bool {
		if found {
			return false
		}
		if m != n && m.Content != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// NodesWithTag returns the indexed nodes carrying the given tag, in document
// order (building indexes on demand). The returned slice is a copy, safe to
// hold across concurrent mutations.
func (c *Collection) NodesWithTag(tag string) []*tree.Node {
	return c.indexLookup(func() []*tree.Node { return c.tagIndex[tag] })
}

// NodesWithTerm returns the indexed nodes whose content contains the given
// (lower-cased) token. The returned slice is a copy.
func (c *Collection) NodesWithTerm(term string) []*tree.Node {
	return c.indexLookup(func() []*tree.Node { return c.termIndex[term] })
}

// indexLookup runs a read against the inverted indexes under the shared lock,
// escalating to the exclusive lock only to (re)build them, and returns a copy
// of the posting list.
func (c *Collection) indexLookup(get func() []*tree.Node) []*tree.Node {
	c.mu.RLock()
	for c.tagIndex == nil {
		c.mu.RUnlock()
		c.mu.Lock()
		c.buildIndexesLocked()
		c.mu.Unlock()
		c.mu.RLock()
	}
	postings := get()
	out := make([]*tree.Node, len(postings))
	copy(out, postings)
	c.mu.RUnlock()
	return out
}

// ---- querying ----

// Query parses and evaluates an XPath expression over every document,
// returning matching nodes in document order. When the expression's final
// step names a concrete tag and no inner step carries predicates, the tag
// index drives a bottom-up evaluation; otherwise each document is walked.
func (c *Collection) Query(expr string) ([]*tree.Node, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return c.QueryPath(p), nil
}

// QueryPath evaluates a parsed path (see Query).
func (c *Collection) QueryPath(p *xpath.Path) []*tree.Node {
	out, _ := c.QueryPathTraced(p)
	return out
}

// QueryPathTraced evaluates a parsed path and reports how it was answered:
// the index-vs-scan routing decision, candidate counts and timing. The
// cumulative collection counters are updated either way.
func (c *Collection) QueryPathTraced(p *xpath.Path) ([]*tree.Node, QueryStats) {
	return c.QueryPathForced(p, false)
}

// QueryPathForced is QueryPathTraced with the routing decision overridable:
// forceScan routes an index-eligible path through the full document walk
// instead. The cost-based planner uses it when the tag's posting list is so
// large that per-candidate ancestor matching would cost more than walking
// every document once.
func (c *Collection) QueryPathForced(p *xpath.Path, forceScan bool) ([]*tree.Node, QueryStats) {
	start := time.Now()
	var out []*tree.Node
	var st QueryStats
	last := p.Steps[len(p.Steps)-1]
	if !forceScan && last.Name != "*" && !p.HasInnerPredicates() {
		out, st = c.queryIndexed(p, last.Name)
		c.nIndexed.Add(1)
		c.nNodesTested.Add(uint64(st.Candidates))
		if st.ValueIndexUsed {
			c.nValueIndexHits.Add(1)
		}
	} else {
		out, st = c.queryScan(p)
		c.nScans.Add(1)
		c.nDocsWalked.Add(uint64(st.DocsWalked))
	}
	st.XPath = p.String()
	st.Matches = len(out)
	st.Elapsed = time.Since(start)
	c.nQueries.Add(1)
	c.nNodesMatched.Add(uint64(len(out)))
	return out, st
}

// QueryScan evaluates the path by walking every document; exported for the
// index ablation benchmark.
func (c *Collection) QueryScan(expr string) ([]*tree.Node, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	out, _ := c.queryScan(p)
	return out, nil
}

func (c *Collection) queryScan(p *xpath.Path) ([]*tree.Node, QueryStats) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*tree.Node
	for _, k := range c.keys {
		out = append(out, p.Eval(c.docs[k].Root)...)
	}
	return out, QueryStats{DocsWalked: len(c.keys)}
}

func (c *Collection) queryIndexed(p *xpath.Path, tag string) ([]*tree.Node, QueryStats) {
	st := QueryStats{Indexed: true, IndexTag: tag}
	// Readers share the lock: escalate to the exclusive lock only to build
	// missing indexes, then downgrade. The loop re-checks because a writer
	// may invalidate the indexes between the two lock acquisitions.
	c.mu.RLock()
	for c.tagIndex == nil {
		c.mu.RUnlock()
		c.mu.Lock()
		c.buildIndexesLocked()
		c.mu.Unlock()
		c.mu.RLock()
	}
	candidates := c.tagIndex[tag]
	// Equality predicates on the final step route through the value index:
	// [.='v'] (or a disjunction of them, the shape of rewritten ~
	// conditions) narrows candidates to the exact-content postings.
	last := p.Steps[len(p.Steps)-1]
	if len(last.Preds) > 0 && !c.mixedValueTag[tag] {
		if lits, ok := xpath.SelfEqualsAnyLiteral(last.Preds[0]); ok {
			var narrowed []*tree.Node
			usable := true
			for _, lit := range lits {
				if lit == "" {
					// The index never holds empty values; nodes with empty
					// string values would be missed.
					usable = false
					break
				}
				narrowed = append(narrowed, c.valueIndex[valueKey(tag, lit)]...)
			}
			if usable && len(narrowed) < len(candidates) {
				candidates = narrowed
				st.ValueIndexUsed = true
			}
		}
	}
	// Copy before unlocking: a concurrent Put/Delete invalidates and rebuilds
	// the index maps, and MatchesUp below runs outside the lock.
	cands := make([]*tree.Node, len(candidates))
	copy(cands, candidates)
	c.mu.RUnlock()
	st.Candidates = len(cands)
	var out []*tree.Node
	for _, n := range cands {
		if p.MatchesUp(n) {
			out = append(out, n)
		}
	}
	return out, st
}
