// Package xmldb is the XML database substrate TOSS runs on — the role Apache
// Xindice plays in the paper's prototype. It stores named collections of XML
// documents, executes XPath queries (via internal/xpath) over them with an
// optional tag index for bottom-up evaluation, and enforces Xindice's
// per-collection data-size limit (the paper truncated DBLP to 4,753,774
// bytes "due to the 5MB maximum data size limitation of Xindice").
//
// A collection is hash-partitioned into N shards by document key. Each shard
// carries its own RWMutex, inverted indexes, generation counter, statistics
// snapshot and query counters; queries scatter across shards on a bounded
// worker pool and gather with an order-stable merge keyed on global insertion
// sequence numbers, so results are byte-identical at any shard count
// (N=1 reproduces the original single-lock layout exactly). See
// docs/SHARDING.md for the design.
package xmldb

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tree"
	"repro/internal/xpath"
)

// DefaultMaxCollectionBytes mirrors Xindice's 5 MB data-size limitation.
const DefaultMaxCollectionBytes = 5 * 1024 * 1024

// ErrCollectionFull is returned when adding a document would exceed the
// collection's size limit.
var ErrCollectionFull = fmt.Errorf("xmldb: collection size limit exceeded")

// DB is a set of named collections.
type DB struct {
	mu            sync.RWMutex
	collections   map[string]*Collection
	defaultShards int
}

// New returns an empty database. Collections are unsharded (one shard) until
// SetDefaultShards raises the default.
func New() *DB {
	return &DB{collections: map[string]*Collection{}, defaultShards: 1}
}

// SetDefaultShards sets the shard count CreateCollection uses for collections
// created after the call; existing collections keep their layout. Values
// below 1 are clamped to 1 (the unsharded layout).
func (db *DB) SetDefaultShards(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 1 {
		n = 1
	}
	db.defaultShards = n
}

// CreateCollection creates (or returns the existing) collection with the
// given name, with the default size limit and shard count.
func (db *DB) CreateCollection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.collections[name]; ok {
		return c
	}
	c := newCollection(name, db.defaultShards)
	db.collections[name] = c
	return c
}

// Collection returns the named collection, or nil.
func (db *DB) Collection(name string) *Collection {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.collections[name]
}

// DropCollection removes a collection.
func (db *DB) DropCollection(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.collections, name)
}

// CollectionNames lists collection names, sorted.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for n := range db.collections {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Collection is a named set of XML documents sharing a tree.Collection (so
// node IDs are unique across documents), hash-partitioned into shards by
// document key.
type Collection struct {
	name   string
	shards []*shard

	// writeMu serializes every mutation. It guards the shared tree.Collection
	// (node-ID allocation and Trees membership), the byte accounting for the
	// collection-wide size cap, and the insertion-sequence counter. Readers
	// never take it: queries synchronize only on the shard locks, so scatter
	// reads across shards proceed concurrently with each other.
	writeMu  sync.Mutex
	col      *tree.Collection
	maxBytes int
	curBytes int
	nextSeq  uint64

	// statsCache holds the merged planner statistics snapshot for the
	// generation it was built at (see Stats); per-shard snapshots are cached
	// on the shards themselves.
	statsMu    sync.Mutex
	statsCache *Stats

	// generation counts mutations (Put/Delete, including replacements). It
	// lets caches key results on collection state: any entry keyed under an
	// older generation can never be served again, which is how the tossd
	// query-result cache invalidates on writes without a callback seam. It
	// is also the WAL's log-sequence number: every record carries the
	// generation of its mutation, totally ordering records across the
	// per-shard logs.
	generation atomic.Uint64

	// wal, when non-nil (OpenWAL), journals every mutation before it is
	// applied; guarded by writeMu. walc holds the cumulative WAL counters
	// (populated by recovery even when no WAL is attached).
	wal  *walSet
	walc walCounters

	// Cumulative collection-wide query counters, updated atomically so the
	// read path never contends on a lock for bookkeeping. Snapshot with
	// Counters(). Per-shard counters live on the shards (ShardInfos).
	nQueries        atomic.Uint64
	nIndexed        atomic.Uint64
	nScans          atomic.Uint64
	nValueIndexHits atomic.Uint64
	nDocsWalked     atomic.Uint64
	nNodesTested    atomic.Uint64
	nNodesMatched   atomic.Uint64

	// Similarity candidate-index probe counters (SimCandidateDocs); snapshot
	// with SimIndexCounters, surfaced as toss_simindex_* metrics.
	nSimProbes         atomic.Uint64
	nSimCandidateTerms atomic.Uint64
	nSimVerifiedTerms  atomic.Uint64
	nSimMatchedTerms   atomic.Uint64
	nSimDocs           atomic.Uint64
}

func newCollection(name string, shards int) *Collection {
	if shards < 1 {
		shards = 1
	}
	c := &Collection{
		name:     name,
		col:      tree.NewCollection(),
		maxBytes: DefaultMaxCollectionBytes,
	}
	for i := 0; i < shards; i++ {
		c.shards = append(c.shards, newShard())
	}
	return c
}

// ShardCount returns the number of hash partitions.
func (c *Collection) ShardCount() int { return len(c.shards) }

// ShardFor returns the index of the shard owning the given document key.
func (c *Collection) ShardFor(key string) int { return c.shardIndex(key) }

func (c *Collection) shardIndex(key string) int {
	if len(c.shards) == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(c.shards)))
}

func (c *Collection) shardFor(key string) *shard { return c.shards[c.shardIndex(key)] }

// ShardInfo is a point-in-time snapshot of one shard, for observability (the
// server's /statz block and toss_shard_* metrics).
type ShardInfo struct {
	Shard        int    `json:"shard"`
	Docs         int    `json:"docs"`
	Bytes        int    `json:"bytes"`
	Generation   uint64 `json:"generation"`
	Queries      uint64 `json:"queries"`
	DocsWalked   uint64 `json:"docs_walked"`
	NodesTested  uint64 `json:"nodes_tested"`
	NodesMatched uint64 `json:"nodes_matched"`
}

// ShardInfos snapshots every shard's size and counters.
func (c *Collection) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.RLock()
		docs, bytes := len(sh.docs), sh.bytes
		sh.mu.RUnlock()
		out[i] = ShardInfo{
			Shard:        i,
			Docs:         docs,
			Bytes:        bytes,
			Generation:   sh.generation.Load(),
			Queries:      sh.nQueries.Load(),
			DocsWalked:   sh.nDocsWalked.Load(),
			NodesTested:  sh.nNodesTested.Load(),
			NodesMatched: sh.nNodesMatched.Load(),
		}
	}
	return out
}

// Counters is a snapshot of a collection's cumulative query statistics.
type Counters struct {
	Queries        uint64 // path queries served (indexed + scans)
	IndexedQueries uint64 // routed bottom-up through the tag index
	ScanQueries    uint64 // answered by walking every document
	ValueIndexHits uint64 // queries narrowed via the value index
	DocsWalked     uint64 // documents traversed by scanning queries
	NodesTested    uint64 // candidate nodes tested on the indexed path
	NodesMatched   uint64 // nodes returned across all queries
}

// Counters returns the collection's cumulative query counters.
func (c *Collection) Counters() Counters {
	return Counters{
		Queries:        c.nQueries.Load(),
		IndexedQueries: c.nIndexed.Load(),
		ScanQueries:    c.nScans.Load(),
		ValueIndexHits: c.nValueIndexHits.Load(),
		DocsWalked:     c.nDocsWalked.Load(),
		NodesTested:    c.nNodesTested.Load(),
		NodesMatched:   c.nNodesMatched.Load(),
	}
}

// ResetCounters zeroes the cumulative query counters, collection-wide and
// per-shard (benchmark harnesses reset between runs).
func (c *Collection) ResetCounters() {
	c.nQueries.Store(0)
	c.nIndexed.Store(0)
	c.nScans.Store(0)
	c.nValueIndexHits.Store(0)
	c.nDocsWalked.Store(0)
	c.nNodesTested.Store(0)
	c.nNodesMatched.Store(0)
	c.nSimProbes.Store(0)
	c.nSimCandidateTerms.Store(0)
	c.nSimVerifiedTerms.Store(0)
	c.nSimMatchedTerms.Store(0)
	c.nSimDocs.Store(0)
	for _, sh := range c.shards {
		sh.resetCounters()
	}
}

// QueryStats traces how one QueryPath execution was answered: the routing
// decision (tag index vs full scan), how many candidate nodes were
// considered, whether the value index narrowed them, and the wall-clock cost.
type QueryStats struct {
	XPath          string
	Indexed        bool   // routed through the tag index
	IndexTag       string // final-step tag driving the index lookup
	ValueIndexUsed bool   // candidates narrowed by the value index
	Candidates     int    // nodes tested against the path (indexed route)
	DocsWalked     int    // documents traversed (scan route)
	Matches        int    // nodes returned
	ShardsTouched  int    // shards that contributed candidates or walked docs
	Elapsed        time.Duration
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// SetMaxBytes overrides the collection-wide size limit; v <= 0 disables it.
func (c *Collection) SetMaxBytes(v int) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.maxBytes = v
}

// ByteSize returns the stored XML bytes across all shards.
func (c *Collection) ByteSize() int {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.curBytes
}

// DocCount returns the number of documents.
func (c *Collection) DocCount() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.docs)
		sh.mu.RUnlock()
	}
	return n
}

// PutXML parses an XML document from r and stores it under key. It fails
// with ErrCollectionFull if the document would push the collection past its
// size limit, and replaces any existing document with the same key.
func (c *Collection) PutXML(key string, r io.Reader) (*tree.Tree, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	t, err := c.col.ParseXML(r)
	if err != nil {
		return nil, err
	}
	// ParseXML appended the tree to c.col; undo on failure paths below.
	if err := c.storeLocked(key, t); err != nil {
		c.removeTree(t)
		return nil, err
	}
	return t, nil
}

// PutXMLAt is PutXML with an explicit global insertion sequence: a fresh key
// is stored at position seq instead of the collection's own counter, and
// nextSeq advances past it. A routing tier uses it to assign cluster-wide
// positions at ingest time, so documents scattered across nodes merge back
// in one total order (docs/CLUSTER.md). Replacing an existing key keeps the
// document's original position, exactly like PutXML.
func (c *Collection) PutXMLAt(key string, r io.Reader, seq uint64) (*tree.Tree, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	t, err := c.col.ParseXML(r)
	if err != nil {
		return nil, err
	}
	if err := c.storeLockedAt(key, t, seq, true); err != nil {
		c.removeTree(t)
		return nil, err
	}
	return t, nil
}

// PutTree stores an already-built tree under key. The tree must have been
// created in this collection's tree.Collection (use NewDocument) or is
// cloned in.
func (c *Collection) PutTree(key string, t *tree.Tree) error {
	return c.putTreeAt(key, t, 0, false)
}

// PutTreeAt is PutTree with an explicit global insertion sequence (see
// PutXMLAt).
func (c *Collection) PutTreeAt(key string, t *tree.Tree, seq uint64) error {
	return c.putTreeAt(key, t, seq, true)
}

func (c *Collection) putTreeAt(key string, t *tree.Tree, seq uint64, explicitSeq bool) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	added := false
	if !c.contains(t) {
		t = t.CloneInto(c.col)
		c.col.Add(t)
		added = true
	}
	if err := c.storeLockedAt(key, t, seq, explicitSeq); err != nil {
		// Undo only our own membership change: a tree that already belonged
		// to c.col before the call (e.g. one stored under another key) must
		// survive a rejected put.
		if added {
			c.removeTree(t)
		}
		return err
	}
	return nil
}

// NextSeq returns the next global insertion sequence the collection would
// assign. A router seeds its cluster-wide sequence counter from the maximum
// NextSeq across nodes.
func (c *Collection) NextSeq() uint64 {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.nextSeq
}

// storeLocked installs a tree (already present in c.col) under key in the
// owning shard, enforcing the collection-wide size limit. If the key is
// occupied, the old document is replaced only when the new one fits. With a
// WAL attached the mutation is journaled after the size check and before
// any in-memory state changes: a failed append rejects the put with the
// collection untouched. Caller holds writeMu.
func (c *Collection) storeLocked(key string, t *tree.Tree) error {
	return c.storeLockedAt(key, t, 0, false)
}

// storeLockedAt is storeLocked with an optional explicit insertion sequence.
// With explicitSeq, a fresh key is stored at position seq (journaled as a
// walOpPutSeq record so recovery reproduces it) and nextSeq advances past
// seq; a replacement keeps the entry's original position either way.
func (c *Collection) storeLockedAt(key string, t *tree.Tree, seq uint64, explicitSeq bool) error {
	xml := t.XMLString()
	size := len(xml)
	si := c.shardIndex(key)
	sh := c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	oldSize := 0
	old, replacing := sh.docs[key]
	if replacing {
		oldSize = old.size
	}
	if c.maxBytes > 0 && c.curBytes-oldSize+size > c.maxBytes {
		return fmt.Errorf("%w: %s at %d bytes, adding %d exceeds %d",
			ErrCollectionFull, c.name, c.curBytes-oldSize, size, c.maxBytes)
	}
	if c.wal != nil {
		var err error
		if explicitSeq && !replacing {
			err = c.wal.appendSeq(&c.walc, si, walOpPutSeq, c.generation.Load()+1, seq, key, xml)
		} else {
			err = c.wal.append(&c.walc, si, walOpPut, c.generation.Load()+1, key, xml)
		}
		if err != nil {
			return fmt.Errorf("xmldb: wal append %s: %w", key, err)
		}
	}
	if replacing {
		// Keep the entry (and its seq) in place: a replaced document must not
		// migrate to the end of Docs()/Keys() (and thereby change answer
		// order). Replacement is the one mutation that cannot be folded into
		// the shard's indexes incrementally (the old document's postings sit
		// interleaved with its neighbours'), so the shard falls back to a
		// full rebuild on its next query.
		c.curBytes -= oldSize
		sh.bytes -= oldSize
		c.removeTree(old.tree)
		delete(sh.byRoot, old.tree.Root)
		sh.invalidateIndexes()
		t.SrcSeq = old.seq
		old.tree = t
		old.size = size
		sh.byRoot[t.Root] = old
	} else {
		newSeq := c.nextSeq
		if explicitSeq {
			newSeq = seq
		}
		t.SrcSeq = newSeq
		e := &docEntry{key: key, seq: newSeq, tree: t, size: size}
		sh.docs[key] = e
		sh.byRoot[t.Root] = e
		if n := len(sh.entries); n > 0 && sh.entries[n-1].seq > newSeq {
			// Out-of-order arrival (only possible with explicit sequencing):
			// insert at the sorted position so cursors and the scatter-gather
			// merge keep seeing ascending sequences, and rebuild the posting
			// lists on the next query — incremental appends assume the new
			// document is last in insertion order.
			at := sort.Search(n, func(i int) bool { return sh.entries[i].seq > newSeq })
			sh.entries = append(sh.entries, nil)
			copy(sh.entries[at+1:], sh.entries[at:])
			sh.entries[at] = e
			sh.invalidateIndexes()
		} else {
			sh.entries = append(sh.entries, e)
			// A fresh key lands at the end of insertion order, so appending its
			// nodes to the posting lists reproduces exactly what a full rebuild
			// would produce — the indexes (and the planner statistics derived
			// from them) stay warm under insert load.
			sh.indexTreeLocked(t)
		}
	}
	if explicitSeq {
		if seq+1 > c.nextSeq {
			c.nextSeq = seq + 1
		}
	} else if !replacing {
		c.nextSeq++
	}
	c.curBytes += size
	sh.bytes += size
	sh.generation.Add(1)
	c.generation.Add(1)
	return nil
}

// Generation returns the collection's mutation counter: it increments on
// every successful Put/Delete (replacements included), never decrements, and
// is safe to read concurrently. Two reads returning the same value bracket a
// window with no writes.
func (c *Collection) Generation() uint64 { return c.generation.Load() }

// contains and removeTree mutate the shared tree.Collection; callers hold
// writeMu.
func (c *Collection) contains(t *tree.Tree) bool {
	for _, existing := range c.col.Trees {
		if existing == t {
			return true
		}
	}
	return false
}

func (c *Collection) removeTree(t *tree.Tree) {
	for i, existing := range c.col.Trees {
		if existing == t {
			c.col.Trees = append(c.col.Trees[:i], c.col.Trees[i+1:]...)
			return
		}
	}
}

// Delete removes the document stored under key. With a WAL attached the
// deletion is journaled first; if the append fails, the document stays (the
// error reaches WALOptions.OnError) so the log never lags the collection.
func (c *Collection) Delete(key string) bool {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	si := c.shardIndex(key)
	sh := c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.docs[key]
	if !ok {
		return false
	}
	if c.wal != nil {
		if err := c.wal.append(&c.walc, si, walOpDelete, c.generation.Load()+1, key, ""); err != nil {
			if c.wal.opts.OnError != nil {
				c.wal.opts.OnError(fmt.Errorf("xmldb: wal append delete %s: %w", key, err))
			}
			return false
		}
	}
	c.curBytes -= e.size
	sh.bytes -= e.size
	delete(sh.docs, key)
	delete(sh.byRoot, e.tree.Root)
	for i, se := range sh.entries {
		if se == e {
			sh.entries = append(sh.entries[:i], sh.entries[i+1:]...)
			break
		}
	}
	c.removeTree(e.tree)
	sh.unindexTreeLocked(e.tree)
	sh.generation.Add(1)
	c.generation.Add(1)
	return true
}

// Doc returns the document stored under key, or nil.
func (c *Collection) Doc(key string) *tree.Tree {
	sh := c.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e := sh.docs[key]; e != nil {
		return e.tree
	}
	return nil
}

// keyDoc is a consistent (key, document) snapshot entry in insertion order.
type keyDoc struct {
	seq  uint64
	key  string
	tree *tree.Tree
}

// snapshotEntries copies every shard's entries under all shard read locks
// held simultaneously (one consistent cut) and returns them merged in global
// insertion order. Writers hold writeMu plus one shard lock, so acquiring
// the read locks in shard order cannot deadlock.
func (c *Collection) snapshotEntries() []keyDoc {
	for _, sh := range c.shards {
		sh.mu.RLock()
	}
	n := 0
	for _, sh := range c.shards {
		n += len(sh.entries)
	}
	all := make([]keyDoc, 0, n)
	for _, sh := range c.shards {
		for _, e := range sh.entries {
			all = append(all, keyDoc{seq: e.seq, key: e.key, tree: e.tree})
		}
	}
	for _, sh := range c.shards {
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

// Keys returns document keys in insertion order.
func (c *Collection) Keys() []string {
	entries := c.snapshotEntries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.key
	}
	return out
}

// Docs returns the documents in insertion order.
func (c *Collection) Docs() []*tree.Tree {
	entries := c.snapshotEntries()
	out := make([]*tree.Tree, len(entries))
	for i, e := range entries {
		out[i] = e.tree
	}
	return out
}

// TreeCollection exposes the underlying tree.Collection (for algebra
// operators that need to allocate nodes with fresh IDs).
func (c *Collection) TreeCollection() *tree.Collection { return c.col }

// ---- indexing ----

func valueKey(tag, content string) string { return tag + "\x00" + content }

// BuildIndexes constructs the tag and content-term inverted indexes on every
// shard.
func (c *Collection) BuildIndexes() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.buildIndexesLocked()
		sh.mu.Unlock()
	}
}

// subtreeHasContent reports whether any proper descendant carries content.
func subtreeHasContent(n *tree.Node) bool {
	found := false
	n.Walk(func(m *tree.Node) bool {
		if found {
			return false
		}
		if m != n && m.Content != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// NodesWithTag returns the indexed nodes carrying the given tag, in document
// order (building indexes on demand). The returned slice is a copy, safe to
// hold across concurrent mutations.
func (c *Collection) NodesWithTag(tag string) []*tree.Node {
	return c.indexLookup(func(sh *shard) []*tree.Node { return sh.tagIndex[tag] })
}

// NodesWithTerm returns the indexed nodes whose content contains the given
// (lower-cased) token. The returned slice is a copy.
func (c *Collection) NodesWithTerm(term string) []*tree.Node {
	return c.indexLookup(func(sh *shard) []*tree.Node { return sh.termIndex[term] })
}

// indexLookup gathers one posting list from every shard (building missing
// indexes on demand) and merges the copies in insertion order.
func (c *Collection) indexLookup(get func(*shard) []*tree.Node) []*tree.Node {
	if len(c.shards) == 1 {
		sh := c.shards[0]
		var out []*tree.Node
		sh.withIndexes(func() {
			postings := get(sh)
			out = make([]*tree.Node, len(postings))
			copy(out, postings)
		})
		return out
	}
	lists := make([][]seqGroup, len(c.shards))
	for i, sh := range c.shards {
		sh.withIndexes(func() { lists[i] = sh.groupPostingsLocked(get(sh)) })
	}
	return mergeGroups(lists)
}

// ---- querying ----

// scatter runs fn(i) for every shard index on a bounded worker pool: at most
// GOMAXPROCS workers, and never more than the shard count. With one shard or
// one worker it runs inline on the caller's goroutine — the unsharded layout
// spawns nothing.
func (c *Collection) scatter(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Query parses and evaluates an XPath expression over every document,
// returning matching nodes in document order. When the expression's final
// step names a concrete tag and no inner step carries predicates, the tag
// index drives a bottom-up evaluation; otherwise each document is walked.
func (c *Collection) Query(expr string) ([]*tree.Node, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	return c.QueryPath(p), nil
}

// QueryPath evaluates a parsed path (see Query).
func (c *Collection) QueryPath(p *xpath.Path) []*tree.Node {
	out, _ := c.QueryPathTraced(p)
	return out
}

// QueryPathTraced evaluates a parsed path and reports how it was answered:
// the index-vs-scan routing decision, candidate counts and timing. The
// cumulative collection counters are updated either way.
func (c *Collection) QueryPathTraced(p *xpath.Path) ([]*tree.Node, QueryStats) {
	return c.QueryPathForced(p, false)
}

// QueryPathForced is QueryPathTraced with the routing decision overridable:
// forceScan routes an index-eligible path through the full document walk
// instead. The cost-based planner uses it when the tag's posting list is so
// large that per-candidate ancestor matching would cost more than walking
// every document once.
func (c *Collection) QueryPathForced(p *xpath.Path, forceScan bool) ([]*tree.Node, QueryStats) {
	start := time.Now()
	var out []*tree.Node
	var st QueryStats
	last := p.Steps[len(p.Steps)-1]
	if !forceScan && last.Name != "*" && !p.HasInnerPredicates() {
		out, st = c.queryIndexed(p, last.Name)
		c.nIndexed.Add(1)
		c.nNodesTested.Add(uint64(st.Candidates))
		if st.ValueIndexUsed {
			c.nValueIndexHits.Add(1)
		}
	} else {
		out, st = c.queryScan(p)
		c.nScans.Add(1)
		c.nDocsWalked.Add(uint64(st.DocsWalked))
	}
	st.XPath = p.String()
	st.Matches = len(out)
	st.Elapsed = time.Since(start)
	c.nQueries.Add(1)
	c.nNodesMatched.Add(uint64(len(out)))
	return out, st
}

// QueryScan evaluates the path by walking every document; exported for the
// index ablation benchmark.
func (c *Collection) QueryScan(expr string) ([]*tree.Node, error) {
	p, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	out, _ := c.queryScan(p)
	return out, nil
}

// docSnap is a document captured for lock-free evaluation: trees are
// immutable once stored, so holding (seq, root) outlives the shard lock.
type docSnap struct {
	seq  uint64
	root *tree.Node
}

func (c *Collection) queryScan(p *xpath.Path) ([]*tree.Node, QueryStats) {
	// Snapshot each shard's documents under its read lock, then evaluate
	// outside any lock: path evaluation only reads the (immutable) trees, and
	// a replaced document's old tree stays valid for in-flight snapshots.
	snaps := make([][]docSnap, len(c.shards))
	total := 0
	for i, sh := range c.shards {
		sh.mu.RLock()
		s := make([]docSnap, len(sh.entries))
		for j, e := range sh.entries {
			s[j] = docSnap{seq: e.seq, root: e.tree.Root}
		}
		sh.mu.RUnlock()
		snaps[i] = s
		total += len(s)
	}
	lists := make([][]seqGroup, len(c.shards))
	c.scatter(len(c.shards), func(i int) {
		snap := snaps[i]
		if len(snap) == 0 {
			return
		}
		sh := c.shards[i]
		groups := make([]seqGroup, 0, len(snap))
		matched := 0
		for _, d := range snap {
			if nodes := p.Eval(d.root); len(nodes) > 0 {
				groups = append(groups, seqGroup{seq: d.seq, nodes: nodes})
				matched += len(nodes)
			}
		}
		lists[i] = groups
		sh.nQueries.Add(1)
		sh.nDocsWalked.Add(uint64(len(snap)))
		sh.nNodesMatched.Add(uint64(matched))
	})
	touched := 0
	for _, s := range snaps {
		if len(s) > 0 {
			touched++
		}
	}
	return mergeGroups(lists), QueryStats{DocsWalked: total, ShardsTouched: touched}
}

func (c *Collection) queryIndexed(p *xpath.Path, tag string) ([]*tree.Node, QueryStats) {
	st := QueryStats{Indexed: true, IndexTag: tag}
	// Equality predicates on the final step can route through the value
	// index: [.='v'] (or a disjunction of them, the shape of rewritten ~
	// conditions) narrows candidates to the exact-content postings.
	var lits []string
	narrowable := false
	last := p.Steps[len(p.Steps)-1]
	if len(last.Preds) > 0 {
		if ls, ok := xpath.SelfEqualsAnyLiteral(last.Preds[0]); ok {
			narrowable = true
			lits = ls
			for _, lit := range ls {
				if lit == "" {
					// The index never holds empty values; nodes with empty
					// string values would be missed.
					narrowable = false
					break
				}
			}
		}
	}

	// Phase 1: snapshot per-shard candidates under the shard read locks.
	// The narrow-or-not decision is made globally from the summed posting
	// sizes — every shard must take the same route, or the merged result
	// order would depend on the partitioning.
	tagGroups := make([][]seqGroup, len(c.shards))
	litGroups := make([][][]seqGroup, len(c.shards)) // [shard][literal]
	tagTotal, litTotal := 0, 0
	mixed := false
	for i, sh := range c.shards {
		sh.withIndexes(func() {
			tagGroups[i] = sh.groupPostingsLocked(sh.tagIndex[tag])
			tagTotal += len(sh.tagIndex[tag])
			if sh.mixedValueTag[tag] {
				mixed = true
			}
			if narrowable {
				per := make([][]seqGroup, len(lits))
				for li, lit := range lits {
					postings := sh.valueIndex[valueKey(tag, lit)]
					per[li] = sh.groupPostingsLocked(postings)
					litTotal += len(postings)
				}
				litGroups[i] = per
			}
		})
	}
	useValue := narrowable && !mixed && litTotal < tagTotal

	// Phase 2: test candidates against the path outside any lock (the groups
	// hold copied node slices), scattering shards over the worker pool, then
	// gather with the order-stable merge.
	tested := make([]int, len(c.shards))
	matched := make([]int, len(c.shards))
	var out []*tree.Node
	if useValue {
		st.ValueIndexUsed = true
		st.Candidates = litTotal
		c.scatter(len(c.shards), func(i int) {
			for li := range litGroups[i] {
				var t, m int
				litGroups[i][li], t, m = filterGroups(p, litGroups[i][li])
				tested[i] += t
				matched[i] += m
			}
		})
		// Narrowed queries answer in literal-major order (the concatenation
		// of per-literal posting lists, each in insertion order) — merge per
		// literal across shards, then concatenate, reproducing the
		// single-shard order exactly.
		for li := range lits {
			lists := make([][]seqGroup, len(c.shards))
			for i := range c.shards {
				if litGroups[i] != nil {
					lists[i] = litGroups[i][li]
				}
			}
			out = append(out, mergeGroups(lists)...)
		}
	} else {
		st.Candidates = tagTotal
		c.scatter(len(c.shards), func(i int) {
			var t, m int
			tagGroups[i], t, m = filterGroups(p, tagGroups[i])
			tested[i] += t
			matched[i] += m
		})
		out = mergeGroups(tagGroups)
	}
	for i, sh := range c.shards {
		if tested[i] == 0 {
			continue
		}
		st.ShardsTouched++
		sh.nQueries.Add(1)
		sh.nNodesTested.Add(uint64(tested[i]))
		sh.nNodesMatched.Add(uint64(matched[i]))
	}
	return out, st
}

// filterGroups keeps the nodes matching the path, dropping emptied groups,
// and returns the filtered groups plus tested/matched counts. It runs
// outside any lock: groupPostingsLocked copied the node slices, and
// MatchesUp only reads immutable trees.
func filterGroups(p *xpath.Path, groups []seqGroup) ([]seqGroup, int, int) {
	tested, matched := 0, 0
	out := groups[:0]
	for _, g := range groups {
		tested += len(g.nodes)
		kept := g.nodes[:0]
		for _, n := range g.nodes {
			if p.MatchesUp(n) {
				kept = append(kept, n)
			}
		}
		if len(kept) > 0 {
			g.nodes = kept
			out = append(out, g)
			matched += len(kept)
		}
	}
	return out, tested, matched
}
