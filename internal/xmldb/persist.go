package xmldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// shardManifestFile marks a sharded on-disk layout: it records the shard
// count the collection was saved at, and its presence tells LoadDir to read
// shard-NNN subdirectories instead of the flat legacy layout.
const shardManifestFile = "_shards.tsv"

// SaveDir writes every document of the collection as an XML file under dir
// (created if needed). An unsharded collection writes the flat legacy layout:
// file names are the document keys, sanitised and suffixed ".xml", plus an
// index file recording the original keys in insertion order. A sharded
// collection writes one shard-NNN subdirectory per shard, each with its own
// index file, plus a _shards.tsv manifest; file names carry the document's
// global insertion position so a later load — at any shard count — replays
// the exact insertion order. Every file, including the indexes and the
// manifest, is written to a temp file and renamed into place, so a crash
// mid-save leaves the previous save intact rather than a torn file.
func (c *Collection) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmldb: save %s: %w", c.name, err)
	}
	entries := c.snapshotEntries()
	if len(c.shards) == 1 {
		var index strings.Builder
		for i, e := range entries {
			file := fmt.Sprintf("%04d-%s.xml", i, sanitizeFileName(e.key))
			if err := writeFileAtomic(filepath.Join(dir, file), []byte(e.tree.XMLString())); err != nil {
				return fmt.Errorf("xmldb: save %s: %w", e.key, err)
			}
			fmt.Fprintf(&index, "%s\t%s\n", file, e.key)
		}
		if err := writeFileAtomic(filepath.Join(dir, "_index.tsv"), []byte(index.String())); err != nil {
			return fmt.Errorf("xmldb: save index: %w", err)
		}
		return nil
	}
	indexes := make([]strings.Builder, len(c.shards))
	for pos, e := range entries {
		si := c.shardIndex(e.key)
		sdir := filepath.Join(dir, shardDirName(si))
		if indexes[si].Len() == 0 {
			if err := os.MkdirAll(sdir, 0o755); err != nil {
				return fmt.Errorf("xmldb: save %s: %w", c.name, err)
			}
		}
		file := fmt.Sprintf("%08d-%s.xml", pos, sanitizeFileName(e.key))
		if err := writeFileAtomic(filepath.Join(sdir, file), []byte(e.tree.XMLString())); err != nil {
			return fmt.Errorf("xmldb: save %s: %w", e.key, err)
		}
		fmt.Fprintf(&indexes[si], "%s\t%s\n", file, e.key)
	}
	for si := range indexes {
		if indexes[si].Len() == 0 {
			continue
		}
		path := filepath.Join(dir, shardDirName(si), "_index.tsv")
		if err := writeFileAtomic(path, []byte(indexes[si].String())); err != nil {
			return fmt.Errorf("xmldb: save shard index: %w", err)
		}
	}
	manifest := fmt.Sprintf("shards\t%d\n", len(c.shards))
	if err := writeFileAtomic(filepath.Join(dir, shardManifestFile), []byte(manifest)); err != nil {
		return fmt.Errorf("xmldb: save manifest: %w", err)
	}
	return nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// writeFileAtomic writes data to a temp file in path's directory and renames
// it over path, so readers (and post-crash loads) see either the old or the
// new content, never a partial write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDir loads documents previously written by SaveDir into the collection
// (replacing same-keyed documents). Either layout — flat legacy or sharded —
// loads into a collection of any shard count: documents re-hash to their new
// owning shards on Put, in the saved insertion order. Without an index file
// it loads every *.xml file with the file name (minus extension) as key,
// sorted.
func (c *Collection) LoadDir(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, shardManifestFile)); err == nil {
		return c.loadShardedDir(dir)
	}
	indexPath := filepath.Join(dir, "_index.tsv")
	data, err := os.ReadFile(indexPath)
	if err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			file, key, ok := strings.Cut(line, "\t")
			if !ok {
				return fmt.Errorf("xmldb: malformed index line %q", line)
			}
			if err := c.loadFile(filepath.Join(dir, file), key); err != nil {
				return err
			}
		}
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		key := strings.TrimSuffix(name, ".xml")
		if err := c.loadFile(filepath.Join(dir, name), key); err != nil {
			return err
		}
	}
	return nil
}

// loadShardedDir reads every shard-NNN subdirectory's index, sorts all
// documents by the global insertion position embedded in their file names,
// and re-puts them in that order.
func (c *Collection) loadShardedDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	type posFile struct {
		pos  int
		path string
		key  string
	}
	var files []posFile
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		sdir := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(filepath.Join(sdir, "_index.tsv"))
		if err != nil {
			return fmt.Errorf("xmldb: load %s: %w", sdir, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			file, key, ok := strings.Cut(line, "\t")
			if !ok {
				return fmt.Errorf("xmldb: malformed index line %q", line)
			}
			prefix, _, _ := strings.Cut(file, "-")
			pos, err := strconv.Atoi(prefix)
			if err != nil {
				return fmt.Errorf("xmldb: malformed shard file name %q", file)
			}
			files = append(files, posFile{pos: pos, path: filepath.Join(sdir, file), key: key})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].pos < files[j].pos })
	for _, f := range files {
		if err := c.loadFile(f.path, f.key); err != nil {
			return err
		}
	}
	return nil
}

func (c *Collection) loadFile(path, key string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	defer f.Close()
	if _, err := c.PutXML(key, f); err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	return nil
}

// sanitizeFileName maps a document key to a safe file-name fragment.
func sanitizeFileName(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "doc"
	}
	return b.String()
}

// SaveDir writes every collection of the database under dir, one
// subdirectory per collection.
func (db *DB) SaveDir(dir string) error {
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).SaveDir(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every collection subdirectory of dir into the database,
// creating collections as needed.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		col := db.CreateCollection(e.Name())
		if err := col.LoadDir(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}
