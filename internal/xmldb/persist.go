package xmldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/tree"
)

// SaveDir writes every document of the collection as an XML file under dir
// (created if needed). File names are the document keys, sanitised and
// suffixed ".xml"; an index file records the original keys in insertion
// order so LoadDir restores them faithfully.
//
// The snapshot of keys and documents is taken under one read lock, so a save
// concurrent with mutations captures a single consistent state (never an
// index entry whose document was replaced mid-save). Every file, including
// the index, is written to a temp file and renamed into place, so a crash
// mid-save leaves the previous save intact rather than a torn file.
func (c *Collection) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmldb: save %s: %w", c.name, err)
	}
	c.mu.RLock()
	keys := append([]string{}, c.keys...)
	docs := make([]*tree.Tree, len(keys))
	for i, k := range keys {
		docs[i] = c.docs[k]
	}
	c.mu.RUnlock()
	var index strings.Builder
	for i, key := range keys {
		if docs[i] == nil {
			continue
		}
		file := fmt.Sprintf("%04d-%s.xml", i, sanitizeFileName(key))
		if err := writeFileAtomic(filepath.Join(dir, file), []byte(docs[i].XMLString())); err != nil {
			return fmt.Errorf("xmldb: save %s: %w", key, err)
		}
		fmt.Fprintf(&index, "%s\t%s\n", file, key)
	}
	if err := writeFileAtomic(filepath.Join(dir, "_index.tsv"), []byte(index.String())); err != nil {
		return fmt.Errorf("xmldb: save index: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to a temp file in path's directory and renames
// it over path, so readers (and post-crash loads) see either the old or the
// new content, never a partial write.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDir loads documents previously written by SaveDir into the collection
// (replacing same-keyed documents). Without an index file it loads every
// *.xml file with the file name (minus extension) as key, sorted.
func (c *Collection) LoadDir(dir string) error {
	indexPath := filepath.Join(dir, "_index.tsv")
	data, err := os.ReadFile(indexPath)
	if err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			file, key, ok := strings.Cut(line, "\t")
			if !ok {
				return fmt.Errorf("xmldb: malformed index line %q", line)
			}
			if err := c.loadFile(filepath.Join(dir, file), key); err != nil {
				return err
			}
		}
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		key := strings.TrimSuffix(name, ".xml")
		if err := c.loadFile(filepath.Join(dir, name), key); err != nil {
			return err
		}
	}
	return nil
}

func (c *Collection) loadFile(path, key string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	defer f.Close()
	if _, err := c.PutXML(key, f); err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	return nil
}

// sanitizeFileName maps a document key to a safe file-name fragment.
func sanitizeFileName(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "doc"
	}
	return b.String()
}

// SaveDir writes every collection of the database under dir, one
// subdirectory per collection.
func (db *DB) SaveDir(dir string) error {
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).SaveDir(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every collection subdirectory of dir into the database,
// creating collections as needed.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		col := db.CreateCollection(e.Name())
		if err := col.LoadDir(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}
