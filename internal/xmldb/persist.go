package xmldb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// shardManifestFile marks a sharded on-disk layout: it records the shard
// count the collection was saved at, and its presence tells LoadDir to read
// shard-NNN subdirectories instead of the flat legacy layout.
const shardManifestFile = "_shards.tsv"

// SaveDir writes every document of the collection as an XML file under dir
// (created if needed). An unsharded collection writes the flat legacy layout:
// file names are the document keys, sanitised and suffixed ".xml", plus an
// index file recording the original keys in insertion order. A sharded
// collection writes one shard-NNN subdirectory per shard, each with its own
// index file, plus a _shards.tsv manifest; file names carry the document's
// global insertion position so a later load — at any shard count — replays
// the exact insertion order. Every file, including the indexes and the
// manifest, is written to a temp file, fsynced and renamed into place, so a
// crash mid-save leaves the previous save intact rather than a torn file.
// Document and index files from an earlier, larger save that the fresh
// indexes no longer reference are swept, so deletions shrink the on-disk
// layout instead of leaving orphans a later load could resurrect.
func (c *Collection) SaveDir(dir string) error {
	return c.saveEntries(dir, c.snapshotEntries())
}

// saveEntries writes a captured (key, document) snapshot in SaveDir's
// layout; the WAL compactor calls it with entries cut under writeMu.
func (c *Collection) saveEntries(dir string, entries []keyDoc) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmldb: save %s: %w", c.name, err)
	}
	if len(c.shards) == 1 {
		var index strings.Builder
		written := map[string]bool{"_index.tsv": true}
		for i, e := range entries {
			file := fmt.Sprintf("%04d-%s.xml", i, sanitizeFileName(e.key))
			if err := writeFileAtomic(filepath.Join(dir, file), []byte(e.tree.XMLString())); err != nil {
				return fmt.Errorf("xmldb: save %s: %w", e.key, err)
			}
			written[file] = true
			fmt.Fprintf(&index, "%s\t%s\tseq:%d\n", file, e.key, e.seq)
		}
		if err := writeFileAtomic(filepath.Join(dir, "_index.tsv"), []byte(index.String())); err != nil {
			return fmt.Errorf("xmldb: save index: %w", err)
		}
		return sweepSaveDir(dir, []map[string]bool{written}, true)
	}
	indexes := make([]strings.Builder, len(c.shards))
	writtenByShard := make([]map[string]bool, len(c.shards))
	for si := range c.shards {
		writtenByShard[si] = map[string]bool{"_index.tsv": true}
		if err := os.MkdirAll(filepath.Join(dir, shardDirName(si)), 0o755); err != nil {
			return fmt.Errorf("xmldb: save %s: %w", c.name, err)
		}
	}
	for pos, e := range entries {
		si := c.shardIndex(e.key)
		file := fmt.Sprintf("%08d-%s.xml", pos, sanitizeFileName(e.key))
		if err := writeFileAtomic(filepath.Join(dir, shardDirName(si), file), []byte(e.tree.XMLString())); err != nil {
			return fmt.Errorf("xmldb: save %s: %w", e.key, err)
		}
		writtenByShard[si][file] = true
		fmt.Fprintf(&indexes[si], "%s\t%s\tseq:%d\n", file, e.key, e.seq)
	}
	// Every shard writes its index, even an empty one: a shard that lost all
	// its documents must not keep serving the previous save's index.
	for si := range indexes {
		path := filepath.Join(dir, shardDirName(si), "_index.tsv")
		if err := writeFileAtomic(path, []byte(indexes[si].String())); err != nil {
			return fmt.Errorf("xmldb: save shard index: %w", err)
		}
	}
	manifest := fmt.Sprintf("shards\t%d\n", len(c.shards))
	if err := writeFileAtomic(filepath.Join(dir, shardManifestFile), []byte(manifest)); err != nil {
		return fmt.Errorf("xmldb: save manifest: %w", err)
	}
	return sweepSaveDir(dir, writtenByShard, false)
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// sweepSaveDir removes layout files a just-completed save no longer
// references: orphaned *.xml document files, a stale _shards.tsv after a
// flat save, stale flat files after a sharded save, and shard-NNN
// directories left from a save at a larger shard count. WAL segments
// (wal*.log) and unrelated files are never touched; a stale shard dir is
// removed only once it is empty.
func sweepSaveDir(dir string, writtenByShard []map[string]bool, flat bool) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	sweepShardDir := func(sdir string, keep map[string]bool) error {
		inner, err := os.ReadDir(sdir)
		if err != nil {
			return err
		}
		for _, e := range inner {
			name := e.Name()
			stale := !e.IsDir() &&
				((strings.HasSuffix(name, ".xml") && (keep == nil || !keep[name])) ||
					(keep == nil && name == "_index.tsv"))
			if stale {
				if err := os.Remove(filepath.Join(sdir, name)); err != nil {
					return err
				}
			}
		}
		if keep == nil {
			os.Remove(sdir) // fails while non-empty (e.g. wal.log present): fine
		}
		return nil
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() && strings.HasPrefix(name, "shard-") {
			idx, aerr := strconv.Atoi(strings.TrimPrefix(name, "shard-"))
			var keep map[string]bool // nil: the whole shard dir is stale
			if aerr == nil && !flat && idx < len(writtenByShard) {
				keep = writtenByShard[idx]
			}
			if err := sweepShardDir(filepath.Join(dir, name), keep); err != nil {
				return err
			}
			continue
		}
		if e.IsDir() {
			continue
		}
		switch {
		case flat && strings.HasSuffix(name, ".xml") && !writtenByShard[0][name]:
			fallthrough
		case flat && name == shardManifestFile:
			fallthrough
		case !flat && (strings.HasSuffix(name, ".xml") || name == "_index.tsv"):
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFileAtomic writes data to a temp file in path's directory, fsyncs
// it, renames it over path, and fsyncs the directory, so readers (and
// post-crash loads) see either the old or the new content, never a partial
// write — and the rename itself survives a power failure. The directory
// fsync is best-effort (not every filesystem supports it).
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadDir loads documents previously written by SaveDir into the collection
// (replacing same-keyed documents). Either layout — flat legacy or sharded —
// loads into a collection of any shard count: documents re-hash to their new
// owning shards on Put, in the saved insertion order. Without an index file
// it loads every *.xml file with the file name (minus extension) as key,
// sorted.
//
// A WAL-managed directory (a CURRENT pointer or shard-NNN/wal*.log
// segments, see OpenWAL) takes the recovery path instead: load the last
// snapshot, then replay the WAL tail past the snapshot's generation,
// truncating torn trailing records. Recovery requires an empty collection —
// it restores the generation counters to the recovered point.
func (c *Collection) LoadDir(dir string) error {
	if hasDurableLayout(dir) {
		return c.recoverDurable(dir)
	}
	if _, err := os.Stat(filepath.Join(dir, shardManifestFile)); err == nil {
		return c.loadShardedDir(dir)
	}
	indexPath := filepath.Join(dir, "_index.tsv")
	data, err := os.ReadFile(indexPath)
	if err == nil {
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			file, rest, ok := strings.Cut(line, "\t")
			if !ok {
				return fmt.Errorf("xmldb: malformed index line %q", line)
			}
			key, seq, hasSeq := cutIndexSeq(rest)
			if err := c.loadFileAt(filepath.Join(dir, file), key, seq, hasSeq); err != nil {
				return err
			}
		}
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		key := strings.TrimSuffix(name, ".xml")
		if err := c.loadFile(filepath.Join(dir, name), key); err != nil {
			return err
		}
	}
	return nil
}

// loadShardedDir reads every shard-NNN subdirectory's index, sorts all
// documents by the global insertion position embedded in their file names,
// and re-puts them in that order.
func (c *Collection) loadShardedDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	type posFile struct {
		pos    int
		path   string
		key    string
		seq    uint64
		hasSeq bool
	}
	var files []posFile
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		sdir := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(filepath.Join(sdir, "_index.tsv"))
		if err != nil {
			return fmt.Errorf("xmldb: load %s: %w", sdir, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			file, rest, ok := strings.Cut(line, "\t")
			if !ok {
				return fmt.Errorf("xmldb: malformed index line %q", line)
			}
			key, seq, hasSeq := cutIndexSeq(rest)
			prefix, _, _ := strings.Cut(file, "-")
			pos, err := strconv.Atoi(prefix)
			if err != nil {
				return fmt.Errorf("xmldb: malformed shard file name %q", file)
			}
			files = append(files, posFile{pos: pos, path: filepath.Join(sdir, file), key: key, seq: seq, hasSeq: hasSeq})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].pos < files[j].pos })
	for _, f := range files {
		if err := c.loadFileAt(f.path, f.key, f.seq, f.hasSeq); err != nil {
			return err
		}
	}
	return nil
}

// cutIndexSeq splits an index line's remainder into the document key and the
// optional trailing "seq:N" column (absent in layouts saved before explicit
// sequencing existed; those load with freshly assigned positions).
func cutIndexSeq(rest string) (key string, seq uint64, hasSeq bool) {
	i := strings.LastIndex(rest, "\tseq:")
	if i < 0 {
		return rest, 0, false
	}
	n, err := strconv.ParseUint(rest[i+len("\tseq:"):], 10, 64)
	if err != nil {
		return rest, 0, false
	}
	return rest[:i], n, true
}

func (c *Collection) loadFile(path, key string) error {
	return c.loadFileAt(path, key, 0, false)
}

func (c *Collection) loadFileAt(path, key string, seq uint64, hasSeq bool) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	defer f.Close()
	if hasSeq {
		_, err = c.PutXMLAt(key, f, seq)
	} else {
		_, err = c.PutXML(key, f)
	}
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", path, err)
	}
	return nil
}

// sanitizeFileName maps a document key to a safe file-name fragment.
func sanitizeFileName(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "doc"
	}
	return b.String()
}

// SaveDir writes every collection of the database under dir, one
// subdirectory per collection.
func (db *DB) SaveDir(dir string) error {
	for _, name := range db.CollectionNames() {
		if err := db.Collection(name).SaveDir(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir loads every collection subdirectory of dir into the database,
// creating collections as needed.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("xmldb: load %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		col := db.CreateCollection(e.Name())
		if err := col.LoadDir(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}
