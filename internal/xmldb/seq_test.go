package xmldb

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func newTestCollection(t *testing.T, shards int) *Collection {
	t.Helper()
	db := New()
	db.SetDefaultShards(shards)
	return db.CreateCollection("c")
}

func docXML(i int) string {
	return fmt.Sprintf("<doc><v>%d</v></doc>", i)
}

func TestSrcSeqStamping(t *testing.T) {
	c := newTestCollection(t, 3)
	for i := 0; i < 6; i++ {
		tr, err := c.PutXML(fmt.Sprintf("k%d", i), strings.NewReader(docXML(i)))
		if err != nil {
			t.Fatal(err)
		}
		if tr.SrcSeq != uint64(i) {
			t.Fatalf("doc %d stamped SrcSeq %d", i, tr.SrcSeq)
		}
	}
	// Replacement keeps the original position.
	tr, err := c.PutXML("k2", strings.NewReader("<doc><v>replaced</v></doc>"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.SrcSeq != 2 {
		t.Fatalf("replacement stamped SrcSeq %d, want 2", tr.SrcSeq)
	}
	if got := c.NextSeq(); got != 6 {
		t.Fatalf("NextSeq = %d, want 6", got)
	}
	for i, d := range c.Docs() {
		if d.SrcSeq != uint64(i) {
			t.Fatalf("Docs()[%d].SrcSeq = %d", i, d.SrcSeq)
		}
	}
}

func TestPutXMLAtExplicitOrder(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := newTestCollection(t, shards)
			// Arrive out of order with gaps, as a router retrying ingest might.
			seqs := []uint64{10, 4, 30, 7, 21}
			for i, s := range seqs {
				tr, err := c.PutXMLAt(fmt.Sprintf("k%d", i), strings.NewReader(docXML(i)), s)
				if err != nil {
					t.Fatal(err)
				}
				if tr.SrcSeq != s {
					t.Fatalf("doc %d stamped SrcSeq %d, want %d", i, tr.SrcSeq, s)
				}
			}
			if got, want := c.Keys(), []string{"k1", "k3", "k0", "k4", "k2"}; fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Keys() = %v, want %v", got, want)
			}
			if got := c.NextSeq(); got != 31 {
				t.Fatalf("NextSeq = %d, want 31", got)
			}
			// Indexes survive the out-of-order inserts: query answers stay in
			// global seq order.
			nodes, err := c.Query("/doc/v")
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, n := range nodes {
				got = append(got, n.Content)
			}
			if want := []string{"1", "3", "0", "4", "2"}; fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("query order %v, want %v", got, want)
			}
			// An implicit put lands after every explicit position.
			if _, err := c.PutXML("late", strings.NewReader(docXML(99))); err != nil {
				t.Fatal(err)
			}
			keys := c.Keys()
			if keys[len(keys)-1] != "late" {
				t.Fatalf("implicit put not last: %v", keys)
			}
		})
	}
}

func TestPutXMLAtWALRecovery(t *testing.T) {
	dir := t.TempDir()
	c := newTestCollection(t, 2)
	if err := c.OpenWAL(dir, WALOptions{Sync: SyncOff}); err != nil {
		t.Fatal(err)
	}
	seqs := []uint64{5, 2, 9}
	for i, s := range seqs {
		if _, err := c.PutXMLAt(fmt.Sprintf("k%d", i), strings.NewReader(docXML(i)), s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PutXML("plain", strings.NewReader(docXML(7))); err != nil {
		t.Fatal(err)
	}
	wantKeys := fmt.Sprint(c.Keys())
	wantNext := c.NextSeq()
	if err := c.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	r := newTestCollection(t, 2)
	if err := r.OpenWAL(dir, WALOptions{Sync: SyncOff}); err != nil {
		t.Fatal(err)
	}
	defer r.CloseWAL()
	if got := fmt.Sprint(r.Keys()); got != wantKeys {
		t.Fatalf("recovered keys %v, want %v", got, wantKeys)
	}
	if got := r.NextSeq(); got != wantNext {
		t.Fatalf("recovered NextSeq %d, want %d", got, wantNext)
	}
	for _, d := range r.Docs() {
		if d.SrcSeq == 0 && d != r.Docs()[0] {
			t.Fatalf("recovered doc lost its SrcSeq")
		}
	}
}

func TestPersistSeqRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			c := newTestCollection(t, shards)
			for i, s := range []uint64{8, 3, 12} {
				if _, err := c.PutXMLAt(fmt.Sprintf("k%d", i), strings.NewReader(docXML(i)), s); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.SaveDir(dir); err != nil {
				t.Fatal(err)
			}
			r := newTestCollection(t, shards)
			if err := r.LoadDir(dir); err != nil {
				t.Fatal(err)
			}
			if got, want := fmt.Sprint(r.Keys()), fmt.Sprint(c.Keys()); got != want {
				t.Fatalf("loaded keys %v, want %v", got, want)
			}
			if got := r.NextSeq(); got != 13 {
				t.Fatalf("loaded NextSeq %d, want 13", got)
			}
		})
	}
}

// Old-format index lines (no seq column) still load, with positions assigned
// in file order.
func TestPersistLegacyIndexWithoutSeq(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/0000-a.xml", []byte("<doc><v>0</v></doc>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/0001-b.xml", []byte("<doc><v>1</v></doc>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/_index.tsv", []byte("0000-a.xml\ta\n0001-b.xml\tb\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newTestCollection(t, 1)
	if err := c.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(c.Keys()); got != "[a b]" {
		t.Fatalf("legacy load keys %v", got)
	}
}
