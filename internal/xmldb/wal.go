package xmldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the durable mutation path: a per-shard write-ahead
// log under shard-NNN/wal.log, crash recovery (snapshot load + WAL tail
// replay), and background snapshot compaction. See docs/DURABILITY.md for
// the on-disk layout, record format and recovery protocol.
//
// Layout of a WAL-managed ("durable") directory:
//
//	dir/
//	  CURRENT                  pointer to the latest complete snapshot +
//	                           the generation it was taken at (written last,
//	                           atomically, so a crash mid-snapshot is invisible)
//	  snap-<gen>/              full SaveDir layout of the snapshot
//	  shard-NNN/wal.log        current WAL segment of shard NNN
//	  shard-NNN/wal-<gen>.log  rotated segment awaiting post-snapshot deletion
//
// Every record carries the collection-wide generation of its mutation;
// generations are assigned under writeMu, so sorting records across shard
// logs by generation reproduces the exact global mutation order. Recovery
// replays the longest contiguous generation run past the snapshot — a torn
// or corrupt record ends one shard's readable log, and the contiguity rule
// turns that into a consistent prefix of history rather than a hole.

// walCurrentFile is the snapshot-pointer file of a durable directory; its
// presence is what marks the layout as WAL-managed.
const walCurrentFile = "CURRENT"

// walFileName is the current (appendable) WAL segment inside a shard dir.
const walFileName = "wal.log"

// walHeaderSize is the fixed per-record header: uint32 payload length +
// uint32 CRC32-C of the payload, both little-endian.
const walHeaderSize = 8

// walMaxRecord bounds a single record's payload; a length prefix beyond it
// is treated as a torn tail rather than an allocation request.
const walMaxRecord = 64 << 20

// WAL record operations. walOpPutSeq is a put carrying an explicit global
// insertion sequence (PutXMLAt); its payload interposes the 8-byte sequence
// between the generation and the key length, and replay restores the
// document at that exact position.
const (
	walOpPut    = byte(1)
	walOpDelete = byte(2)
	walOpPutSeq = byte(3)
)

var walCRCTable = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs dirty WAL segments on a background
	// ticker: bounded data loss on power failure, near-zero append latency.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append, before the mutation is applied
	// in memory: no acknowledged write is ever lost.
	SyncAlways
	// SyncOff never fsyncs; durability is whatever the OS page cache
	// provides. Process crashes (SIGKILL) lose nothing, power failures may.
	SyncOff
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("xmldb: unknown WAL sync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// WALOptions tunes the write-ahead log; zero values select the defaults.
type WALOptions struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 100ms).
	SyncInterval time.Duration
	// MaxBytes triggers background snapshot compaction once any shard's
	// current wal.log exceeds it (default 4MB; negative disables the
	// compactor).
	MaxBytes int64
	// OnError receives background compaction/sync errors and WAL append
	// failures on the Delete path (which has no error return); nil drops
	// them.
	OnError func(error)
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 4 << 20
	}
	return o
}

// walCounters are the cumulative WAL statistics, updated atomically on the
// append/sync/compaction/recovery paths and snapshotted by WALStats.
type walCounters struct {
	appends          atomic.Uint64
	appendErrors     atomic.Uint64
	fsyncs           atomic.Uint64
	fsyncNanos       atomic.Int64
	compactions      atomic.Uint64
	compactionErrors atomic.Uint64
	replayed         atomic.Uint64
	truncations      atomic.Uint64
	recoveredGen     atomic.Uint64
	lastCompactGen   atomic.Uint64
}

// WALStats is a point-in-time snapshot of the write-ahead log, for /statz
// and the toss_wal_* metrics.
type WALStats struct {
	Enabled             bool    `json:"enabled"`
	Appends             uint64  `json:"appends"`
	AppendErrors        uint64  `json:"append_errors"`
	Bytes               int64   `json:"bytes"` // current wal.log segments, all shards
	Fsyncs              uint64  `json:"fsyncs"`
	FsyncSeconds        float64 `json:"fsync_seconds"`
	Compactions         uint64  `json:"compactions"`
	CompactionErrors    uint64  `json:"compaction_errors"`
	ReplayedRecords     uint64  `json:"replayed_records"`
	Truncations         uint64  `json:"truncations"` // torn/stale tails cut at recovery or failed appends rolled back
	RecoveredGeneration uint64  `json:"recovered_generation"`
	LastCompactGen      uint64  `json:"last_compact_generation"`
}

// WALStats snapshots the collection's WAL counters. Enabled is false (with
// recovery counters still populated) when no WAL is attached.
func (c *Collection) WALStats() WALStats {
	st := WALStats{
		Appends:             c.walc.appends.Load(),
		AppendErrors:        c.walc.appendErrors.Load(),
		Fsyncs:              c.walc.fsyncs.Load(),
		FsyncSeconds:        float64(c.walc.fsyncNanos.Load()) / 1e9,
		Compactions:         c.walc.compactions.Load(),
		CompactionErrors:    c.walc.compactionErrors.Load(),
		ReplayedRecords:     c.walc.replayed.Load(),
		Truncations:         c.walc.truncations.Load(),
		RecoveredGeneration: c.walc.recoveredGen.Load(),
		LastCompactGen:      c.walc.lastCompactGen.Load(),
	}
	c.writeMu.Lock()
	if c.wal != nil {
		st.Enabled = true
		for _, w := range c.wal.writers {
			st.Bytes += w.size.Load()
		}
	}
	c.writeMu.Unlock()
	return st
}

// walWriter is one shard's appendable WAL segment. Appends happen under the
// collection's writeMu (mutations are serialized), but the background syncer
// and the compactor's rotation touch the file concurrently, so the handle is
// guarded by its own mutex.
type walWriter struct {
	mu    sync.Mutex
	path  string // .../shard-NNN/wal.log
	f     *os.File
	size  atomic.Int64
	dirty atomic.Bool // appended since the last fsync
}

func (w *walWriter) sync(st *walCounters) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked(st)
}

func (w *walWriter) syncLocked(st *walCounters) error {
	if w.f == nil || !w.dirty.Swap(false) {
		return nil
	}
	start := time.Now()
	err := w.f.Sync()
	st.fsyncs.Add(1)
	st.fsyncNanos.Add(int64(time.Since(start)))
	return err
}

// walSet is the live write-ahead log of a collection: one writer per shard
// plus the background sync and compaction goroutines.
type walSet struct {
	dir     string
	opts    WALOptions
	writers []*walWriter
	poke    chan struct{} // append crossed MaxBytes: wake the compactor
	stop    chan struct{}
	wg      sync.WaitGroup
	// compactMu serializes explicit CompactWAL calls with the background
	// compactor (the cut itself is under writeMu; this keeps the
	// snapshot-write phases from interleaving).
	compactMu sync.Mutex
}

// encodeWALRecord renders one length-prefixed, CRC-checksummed record:
//
//	uint32 LE payload length | uint32 LE CRC32-C(payload) | payload
//	payload = op(1) | generation(8 LE) | key length(4 LE) | key | xml
func encodeWALRecord(op byte, gen uint64, key, xml string) []byte {
	payloadLen := 1 + 8 + 4 + len(key) + len(xml)
	buf := make([]byte, walHeaderSize+payloadLen)
	payload := buf[walHeaderSize:]
	payload[0] = op
	binary.LittleEndian.PutUint64(payload[1:], gen)
	binary.LittleEndian.PutUint32(payload[9:], uint32(len(key)))
	copy(payload[13:], key)
	copy(payload[13+len(key):], xml)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, walCRCTable))
	return buf
}

// encodeWALRecordSeq renders a walOpPutSeq record:
//
//	payload = op(1) | generation(8 LE) | seq(8 LE) | key length(4 LE) | key | xml
func encodeWALRecordSeq(op byte, gen, seq uint64, key, xml string) []byte {
	payloadLen := 1 + 8 + 8 + 4 + len(key) + len(xml)
	buf := make([]byte, walHeaderSize+payloadLen)
	payload := buf[walHeaderSize:]
	payload[0] = op
	binary.LittleEndian.PutUint64(payload[1:], gen)
	binary.LittleEndian.PutUint64(payload[9:], seq)
	binary.LittleEndian.PutUint32(payload[17:], uint32(len(key)))
	copy(payload[21:], key)
	copy(payload[21+len(key):], xml)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, walCRCTable))
	return buf
}

// walRecord is one decoded record plus where it ends in its source file
// (recovery truncates each current segment back to its last applied record).
// seq is meaningful only for walOpPutSeq records.
type walRecord struct {
	op   byte
	gen  uint64
	seq  uint64
	key  string
	xml  string
	file string
	end  int64
}

// parseWALFile reads records sequentially until EOF or the first torn or
// corrupt record (short header, short payload, CRC mismatch, implausible
// length); torn reports whether such a tear cut the scan short. IO errors
// opening or reading the file are returned as err.
func parseWALFile(path string) (recs []walRecord, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	off := 0
	for off < len(data) {
		if len(data)-off < walHeaderSize {
			return recs, true, nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if payloadLen < 13 || payloadLen > walMaxRecord || off+walHeaderSize+payloadLen > len(data) {
			return recs, true, nil
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+payloadLen]
		if crc32.Checksum(payload, walCRCTable) != crc {
			return recs, true, nil
		}
		rec := walRecord{op: payload[0], gen: binary.LittleEndian.Uint64(payload[1:]), file: path}
		// The fixed fields after op+generation depend on the op: walOpPutSeq
		// interposes an 8-byte explicit sequence before the key length.
		body := 13
		if rec.op == walOpPutSeq {
			body = 21
			if payloadLen < body {
				return recs, true, nil
			}
			rec.seq = binary.LittleEndian.Uint64(payload[9:])
		}
		keyLen := int(binary.LittleEndian.Uint32(payload[body-4:]))
		if keyLen < 0 || body+keyLen > payloadLen {
			return recs, true, nil
		}
		off += walHeaderSize + payloadLen
		rec.key = string(payload[body : body+keyLen])
		rec.xml = string(payload[body+keyLen:])
		rec.end = int64(off)
		recs = append(recs, rec)
	}
	return recs, false, nil
}

// walMeta is the decoded CURRENT file: the latest complete snapshot and the
// collection/shard generations it was taken at.
type walMeta struct {
	snap      string
	gen       uint64
	shardGens []uint64
}

func readWALMeta(dir string) (walMeta, error) {
	var m walMeta
	data, err := os.ReadFile(filepath.Join(dir, walCurrentFile))
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return m, err
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		fields := strings.Split(line, "\t")
		switch {
		case len(fields) == 2 && fields[0] == "snap":
			m.snap = fields[1]
		case len(fields) == 2 && fields[0] == "gen":
			if m.gen, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
				return m, fmt.Errorf("xmldb: malformed CURRENT gen line %q", line)
			}
		case len(fields) == 3 && fields[0] == "shardgen":
			g, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return m, fmt.Errorf("xmldb: malformed CURRENT shardgen line %q", line)
			}
			m.shardGens = append(m.shardGens, g)
		}
	}
	if m.snap != "" && (strings.ContainsAny(m.snap, "/\\") || !strings.HasPrefix(m.snap, "snap-")) {
		return m, fmt.Errorf("xmldb: implausible CURRENT snapshot name %q", m.snap)
	}
	return m, nil
}

func writeWALMeta(dir string, snap string, gen uint64, shardGens []uint64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "snap\t%s\ngen\t%d\n", snap, gen)
	for i, g := range shardGens {
		fmt.Fprintf(&b, "shardgen\t%d\t%d\n", i, g)
	}
	return writeFileAtomic(filepath.Join(dir, walCurrentFile), []byte(b.String()))
}

// hasDurableLayout reports whether dir is WAL-managed: a CURRENT pointer or
// any shard WAL segment marks it (legacy SaveDir layouts have neither).
func hasDurableLayout(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, walCurrentFile)); err == nil {
		return true
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "shard-*", "wal*.log"))
	return len(matches) > 0
}

// recoverDurable rebuilds the collection from a WAL-managed directory: load
// the CURRENT snapshot (if any), force the generation counters back to the
// snapshot's cut, then replay the longest contiguous generation run found
// across every shard's WAL segments. Current wal.log segments are truncated
// back to their last applied record, so torn tails and post-gap records can
// never collide with future appends. The collection must be empty.
func (c *Collection) recoverDurable(dir string) error {
	if c.DocCount() != 0 {
		return fmt.Errorf("xmldb: WAL recovery into %s requires an empty collection (have %d docs)", c.name, c.DocCount())
	}
	meta, err := readWALMeta(dir)
	if err != nil {
		return err
	}
	if meta.snap != "" {
		if err := c.LoadDir(filepath.Join(dir, meta.snap)); err != nil {
			return fmt.Errorf("xmldb: loading snapshot %s: %w", meta.snap, err)
		}
	}
	// The snapshot loader re-puts every document, bumping the counters; the
	// recovered state must resume exactly at the snapshot's cut.
	c.generation.Store(meta.gen)
	if len(meta.shardGens) == len(c.shards) {
		for i, g := range meta.shardGens {
			c.shards[i].generation.Store(g)
		}
	}

	segments, err := filepath.Glob(filepath.Join(dir, "shard-*", "wal*.log"))
	if err != nil {
		return err
	}
	sort.Strings(segments)
	var all []walRecord
	for _, seg := range segments {
		recs, torn, err := parseWALFile(seg)
		if err != nil {
			return fmt.Errorf("xmldb: reading WAL %s: %w", seg, err)
		}
		if torn {
			c.walc.truncations.Add(1)
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].gen < all[j].gen })

	expected := meta.gen + 1
	applied := uint64(0)
	for _, r := range all {
		if r.gen < expected {
			continue // already reflected in the snapshot
		}
		if r.gen > expected {
			break // gap: the rest of history is not a consistent prefix
		}
		switch r.op {
		case walOpPut:
			if _, err := c.PutXML(r.key, strings.NewReader(r.xml)); err != nil {
				return fmt.Errorf("xmldb: replaying put %q at generation %d: %w", r.key, r.gen, err)
			}
		case walOpPutSeq:
			if _, err := c.PutXMLAt(r.key, strings.NewReader(r.xml), r.seq); err != nil {
				return fmt.Errorf("xmldb: replaying put %q at generation %d: %w", r.key, r.gen, err)
			}
		case walOpDelete:
			c.Delete(r.key)
		default:
			return fmt.Errorf("xmldb: unknown WAL op %d at generation %d", r.op, r.gen)
		}
		expected++
		applied++
	}
	lastGen := expected - 1
	c.walc.replayed.Add(applied)
	c.walc.recoveredGen.Store(lastGen)

	// Truncate every current segment to its last record with gen <= lastGen:
	// that removes torn tails and any readable records past a gap, which
	// future appends (continuing at lastGen+1) would otherwise duplicate.
	keep := map[string]int64{}
	for _, r := range all {
		if r.gen <= lastGen && r.end > keep[r.file] {
			keep[r.file] = r.end
		}
	}
	for _, seg := range segments {
		if filepath.Base(seg) != walFileName {
			continue // rotated segments are read-only until compaction deletes them
		}
		fi, err := os.Stat(seg)
		if err != nil {
			return err
		}
		if k := keep[seg]; k < fi.Size() {
			if err := os.Truncate(seg, k); err != nil {
				return fmt.Errorf("xmldb: truncating %s: %w", seg, err)
			}
			c.walc.truncations.Add(1)
		}
	}
	return nil
}

// OpenWAL attaches a write-ahead log under dir: it first recovers any state
// already there (snapshot + WAL replay, exactly LoadDir's durable path),
// then opens per-shard wal.log segments and journals every subsequent
// Put/Delete before it mutates in-memory state. Background goroutines
// handle interval fsync and snapshot compaction per opts. The collection
// must be empty (recovered state is the collection).
func (c *Collection) OpenWAL(dir string, opts WALOptions) error {
	opts = opts.withDefaults()
	c.writeMu.Lock()
	open := c.wal != nil
	c.writeMu.Unlock()
	if open {
		return fmt.Errorf("xmldb: collection %s already has an open WAL", c.name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xmldb: open WAL %s: %w", dir, err)
	}
	if err := c.recoverDurable(dir); err != nil {
		return err
	}
	ws := &walSet{
		dir:  dir,
		opts: opts,
		poke: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	for i := range c.shards {
		sdir := filepath.Join(dir, shardDirName(i))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return fmt.Errorf("xmldb: open WAL %s: %w", sdir, err)
		}
		path := filepath.Join(sdir, walFileName)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("xmldb: open WAL %s: %w", path, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		w := &walWriter{path: path, f: f}
		w.size.Store(fi.Size())
		ws.writers = append(ws.writers, w)
	}
	c.writeMu.Lock()
	c.wal = ws
	c.writeMu.Unlock()

	if opts.Sync == SyncInterval {
		ws.wg.Add(1)
		go ws.syncLoop(c)
	}
	if opts.MaxBytes > 0 {
		ws.wg.Add(1)
		go ws.compactLoop(c)
	}
	return nil
}

// CloseWAL stops the background goroutines, fsyncs and closes every shard
// segment, and detaches the log. Safe to call on a collection without one.
func (c *Collection) CloseWAL() error {
	c.writeMu.Lock()
	ws := c.wal
	c.writeMu.Unlock()
	if ws == nil {
		return nil
	}
	close(ws.stop)
	ws.wg.Wait()
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	var firstErr error
	for _, w := range ws.writers {
		w.mu.Lock()
		if w.f != nil {
			w.dirty.Store(true) // force a final fsync regardless of policy
			if err := w.syncLocked(&c.walc); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := w.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			w.f = nil
		}
		w.mu.Unlock()
	}
	c.wal = nil
	return firstErr
}

// append journals one mutation. Called under writeMu (and the owning
// shard's lock), before the in-memory mutation: a failed append leaves
// both the log (rolled back to its pre-append size) and the collection
// unchanged. Under SyncAlways the record is on stable storage when append
// returns.
func (ws *walSet) append(st *walCounters, si int, op byte, gen uint64, key, xml string) error {
	return ws.appendRecord(st, si, encodeWALRecord(op, gen, key, xml))
}

// appendSeq journals a walOpPutSeq mutation (see append).
func (ws *walSet) appendSeq(st *walCounters, si int, op byte, gen, seq uint64, key, xml string) error {
	return ws.appendRecord(st, si, encodeWALRecordSeq(op, gen, seq, key, xml))
}

func (ws *walSet) appendRecord(st *walCounters, si int, rec []byte) error {
	w := ws.writers[si]
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("xmldb: WAL %s is closed", w.path)
	}
	prev := w.size.Load()
	_, err := w.f.Write(rec)
	if err != nil {
		// Roll back a possibly partial write so the tail stays parseable.
		if terr := w.f.Truncate(prev); terr == nil {
			st.truncations.Add(1)
		}
		w.mu.Unlock()
		st.appendErrors.Add(1)
		return err
	}
	w.dirty.Store(true)
	if ws.opts.Sync == SyncAlways {
		if err := w.syncLocked(st); err != nil {
			// The record may or may not be durable; roll it back so the log
			// never holds a mutation the collection did not apply.
			if terr := w.f.Truncate(prev); terr == nil {
				st.truncations.Add(1)
			}
			w.mu.Unlock()
			st.appendErrors.Add(1)
			return err
		}
	}
	size := w.size.Add(int64(len(rec)))
	w.mu.Unlock()
	st.appends.Add(1)
	if ws.opts.MaxBytes > 0 && size > ws.opts.MaxBytes {
		select {
		case ws.poke <- struct{}{}:
		default:
		}
	}
	return nil
}

func (ws *walSet) syncLoop(c *Collection) {
	defer ws.wg.Done()
	tick := time.NewTicker(ws.opts.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-ws.stop:
			return
		case <-tick.C:
			for _, w := range ws.writers {
				if err := w.sync(&c.walc); err != nil && ws.opts.OnError != nil {
					ws.opts.OnError(err)
				}
			}
		}
	}
}

func (ws *walSet) compactLoop(c *Collection) {
	defer ws.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ws.stop:
			return
		case <-ws.poke:
		case <-tick.C:
		}
		over := false
		for _, w := range ws.writers {
			if w.size.Load() > ws.opts.MaxBytes {
				over = true
				break
			}
		}
		if !over {
			continue
		}
		if err := c.CompactWAL(); err != nil && ws.opts.OnError != nil {
			ws.opts.OnError(err)
		}
	}
}

// CompactWAL takes a consistent cut of the collection, rotates every
// shard's wal.log out of the append path, writes a full snapshot of the cut
// (SaveDir's atomic layout, in a fresh snap-<gen> directory), atomically
// flips the CURRENT pointer to it, and deletes the rotated segments and
// older snapshots the pointer no longer references. A crash at any point
// leaves a recoverable state: until CURRENT lands, recovery uses the
// previous snapshot plus the rotated segments.
func (c *Collection) CompactWAL() error {
	c.writeMu.Lock()
	ws := c.wal
	if ws == nil {
		c.writeMu.Unlock()
		return fmt.Errorf("xmldb: collection %s has no open WAL", c.name)
	}
	c.writeMu.Unlock()
	ws.compactMu.Lock()
	defer ws.compactMu.Unlock()

	// Phase 1, under writeMu (no mutations in flight): capture the cut and
	// rotate each shard's segment so post-cut appends land in fresh files.
	c.writeMu.Lock()
	gen := c.generation.Load()
	if gen == c.walc.lastCompactGen.Load() && gen != 0 {
		c.writeMu.Unlock()
		return nil // nothing new since the last snapshot
	}
	entries := c.snapshotEntries()
	shardGens := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		shardGens[i] = sh.generation.Load()
	}
	for _, w := range ws.writers {
		w.mu.Lock()
		if w.f == nil {
			w.mu.Unlock()
			continue
		}
		w.dirty.Store(true)
		if err := w.syncLocked(&c.walc); err != nil {
			w.mu.Unlock()
			c.writeMu.Unlock()
			c.walc.compactionErrors.Add(1)
			return fmt.Errorf("xmldb: compact %s: %w", w.path, err)
		}
		if err := w.f.Close(); err != nil {
			w.mu.Unlock()
			c.writeMu.Unlock()
			c.walc.compactionErrors.Add(1)
			return err
		}
		rotated := filepath.Join(filepath.Dir(w.path), fmt.Sprintf("wal-%016d.log", gen))
		if err := os.Rename(w.path, rotated); err != nil {
			w.f = nil
			w.mu.Unlock()
			c.writeMu.Unlock()
			c.walc.compactionErrors.Add(1)
			return err
		}
		f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			w.f = nil
			w.mu.Unlock()
			c.writeMu.Unlock()
			c.walc.compactionErrors.Add(1)
			return err
		}
		w.f = f
		w.size.Store(0)
		w.mu.Unlock()
	}
	c.writeMu.Unlock()

	// Phase 2, outside all locks (trees are immutable): write the snapshot,
	// then flip CURRENT.
	snapName := fmt.Sprintf("snap-%016d", gen)
	if err := c.saveEntries(filepath.Join(ws.dir, snapName), entries); err != nil {
		c.walc.compactionErrors.Add(1)
		return fmt.Errorf("xmldb: compact snapshot: %w", err)
	}
	if err := writeWALMeta(ws.dir, snapName, gen, shardGens); err != nil {
		c.walc.compactionErrors.Add(1)
		return fmt.Errorf("xmldb: compact CURRENT: %w", err)
	}

	// Phase 3: garbage-collect everything the new CURRENT supersedes —
	// rotated segments (their records are all <= gen), stale shard dirs
	// from runs at a larger shard count, and older snapshots.
	if segs, err := filepath.Glob(filepath.Join(ws.dir, "shard-*", "wal-*.log")); err == nil {
		for _, seg := range segs {
			os.Remove(seg)
		}
	}
	if dirs, err := os.ReadDir(ws.dir); err == nil {
		for _, e := range dirs {
			name := e.Name()
			if e.IsDir() && strings.HasPrefix(name, "snap-") && name != snapName {
				os.RemoveAll(filepath.Join(ws.dir, name))
			}
			if e.IsDir() && strings.HasPrefix(name, "shard-") {
				if idx, err := strconv.Atoi(strings.TrimPrefix(name, "shard-")); err == nil && idx >= len(c.shards) {
					os.RemoveAll(filepath.Join(ws.dir, name))
				}
			}
		}
	}
	c.walc.compactions.Add(1)
	c.walc.lastCompactGen.Store(gen)
	return nil
}

// SyncWAL forces an fsync of every shard segment (exposed for callers that
// want a durability barrier under SyncInterval/SyncOff, e.g. bulk loaders).
func (c *Collection) SyncWAL() error {
	c.writeMu.Lock()
	ws := c.wal
	c.writeMu.Unlock()
	if ws == nil {
		return nil
	}
	var firstErr error
	for _, w := range ws.writers {
		if err := w.sync(&c.walc); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
