package xmldb

import (
	"sort"

	"repro/internal/simindex"
	"repro/internal/tree"
)

// SimProbe describes one similarity candidate probe against a collection:
// find the documents that can possibly satisfy `tag.content ~ literal`.
//
// Candidates come from up to three channels, matching the evaluator's
// satisfaction relation for `~`:
//
//   - ExactTerms: the SEO ε-cluster expansion of the literal (plus the
//     literal itself). These are similar by construction, so they are looked
//     up directly in the value index with no verification.
//   - the n-gram channel (MaxEdit ≥ 0): terms the length+count filter cannot
//     rule out at edit distance MaxEdit, for the dynamic edit-distance
//     fallback.
//   - the phonetic channel (Phonetic): soundex-key bucket lookups, with
//     PhoneticSlack admitting a one-token length difference.
//
// Filter-channel candidates are checked against the value index first (a
// term absent under Tag can't contribute documents) and then passed to
// Verify, which applies the caller's real similarity semantics.
type SimProbe struct {
	Tag           string
	Literal       string
	ExactTerms    []string
	MaxEdit       int // < 0 disables the n-gram channel
	GramsPerEdit  int // grams one edit op can destroy (simindex.GramsPerEdit*)
	Phonetic      bool
	PhoneticSlack bool
	Verify        func(term string) bool
}

// SimProbeStats reports the work one probe did, for plan traces and metrics.
type SimProbeStats struct {
	CandidateTerms int // filter-channel terms proposed (pre-verification)
	VerifiedTerms  int // filter-channel terms that passed Verify
	MatchedTerms   int // terms (any channel) with nodes under Tag
	Nodes          int // value-index postings visited
	Docs           int // distinct documents returned
	ShardsTouched  int
}

// SimCandidateDocs runs a similarity probe and returns the candidate
// documents in global insertion order — a superset of the documents that can
// satisfy the probe's predicate, never a subset. Shards are probed under
// their read locks with the indexes built on demand, exactly like any other
// index lookup.
func (c *Collection) SimCandidateDocs(p SimProbe) ([]*tree.Tree, SimProbeStats) {
	type docHit struct {
		seq  uint64
		tree *tree.Tree
	}
	var all []docHit
	var stats SimProbeStats
	// Verify verdicts are cached across shards: each shard proposes from its
	// own dictionary, and hot terms recur.
	verdicts := map[string]bool{}
	for _, sh := range c.shards {
		var hits []docHit
		sh.withIndexes(func() {
			seenDoc := map[*tree.Node]bool{}
			addNodes := func(nodes []*tree.Node) {
				stats.Nodes += len(nodes)
				for _, n := range nodes {
					r := n.Root()
					if seenDoc[r] {
						continue
					}
					seenDoc[r] = true
					if e := sh.byRoot[r]; e != nil {
						hits = append(hits, docHit{seq: e.seq, tree: e.tree})
					}
				}
			}
			exact := make(map[string]bool, len(p.ExactTerms))
			for _, t := range p.ExactTerms {
				exact[t] = true
				if nodes := sh.valueIndex[valueKey(p.Tag, t)]; len(nodes) > 0 {
					stats.MatchedTerms++
					addNodes(nodes)
				}
			}
			var ids []simindex.TermID
			if p.MaxEdit >= 0 {
				ids = sh.simIdx.CandidatesEdit(p.Literal, p.MaxEdit, p.GramsPerEdit)
			}
			if p.Phonetic {
				ids = append(ids, sh.simIdx.CandidatesPhonetic(p.Literal, p.PhoneticSlack)...)
			}
			seenTerm := map[simindex.TermID]bool{}
			for _, id := range ids {
				if seenTerm[id] {
					continue
				}
				seenTerm[id] = true
				term := sh.simIdx.Term(id)
				if exact[term] {
					continue // already handled by the exact channel
				}
				stats.CandidateTerms++
				nodes := sh.valueIndex[valueKey(p.Tag, term)]
				if len(nodes) == 0 {
					continue // value exists in the shard, but not under Tag
				}
				if p.Verify != nil {
					ok, cached := verdicts[term]
					if !cached {
						ok = p.Verify(term)
						verdicts[term] = ok
					}
					if !ok {
						continue
					}
				}
				stats.VerifiedTerms++
				stats.MatchedTerms++
				addNodes(nodes)
			}
		})
		if len(hits) > 0 {
			stats.ShardsTouched++
			all = append(all, hits...)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	docs := make([]*tree.Tree, len(all))
	for i, h := range all {
		docs[i] = h.tree
	}
	stats.Docs = len(docs)
	c.nSimProbes.Add(1)
	c.nSimCandidateTerms.Add(uint64(stats.CandidateTerms))
	c.nSimVerifiedTerms.Add(uint64(stats.VerifiedTerms))
	c.nSimMatchedTerms.Add(uint64(stats.MatchedTerms))
	c.nSimDocs.Add(uint64(stats.Docs))
	return docs, stats
}

// SimIndexCounters is a snapshot of the collection's similarity-index
// activity and size, for /statz and the toss_simindex_* metrics.
type SimIndexCounters struct {
	Probes         uint64 `json:"probes"`
	CandidateTerms uint64 `json:"candidate_terms"`
	VerifiedTerms  uint64 `json:"verified_terms"`
	MatchedTerms   uint64 `json:"matched_terms"`
	Docs           uint64 `json:"docs"`
	Terms          int    `json:"terms"`
	GramPostings   int    `json:"gram_postings"`
}

// SimIndexCounters snapshots the probe counters plus the index size gauges.
// Size gauges only reflect shards whose indexes are currently built — the
// metrics path never forces an index build.
func (c *Collection) SimIndexCounters() SimIndexCounters {
	out := SimIndexCounters{
		Probes:         c.nSimProbes.Load(),
		CandidateTerms: c.nSimCandidateTerms.Load(),
		VerifiedTerms:  c.nSimVerifiedTerms.Load(),
		MatchedTerms:   c.nSimMatchedTerms.Load(),
		Docs:           c.nSimDocs.Load(),
	}
	for _, sh := range c.shards {
		sh.mu.RLock()
		if sh.simIdx != nil {
			out.Terms += sh.simIdx.Terms()
			out.GramPostings += sh.simIdx.GramPostings()
		}
		sh.mu.RUnlock()
	}
	return out
}
