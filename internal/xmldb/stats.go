package xmldb

import (
	"sort"

	"repro/internal/tree"
)

// TopValueCount caps the per-tag frequent-value sketch kept in TagStats: the
// TopValueCount most frequent exact content values are stored with exact node
// counts, everything rarer is summarised by DistinctValues/ValueNodes.
const TopValueCount = 8

// TagStats summarises one element tag for the query planner.
type TagStats struct {
	// Nodes is the number of nodes carrying the tag.
	Nodes int
	// Docs is the number of documents containing at least one such node.
	Docs int
	// ValueNodes counts the tag's nodes with non-empty content — the
	// population the value index (and value-equality estimates) draws from.
	ValueNodes int
	// DistinctValues is the number of distinct non-empty content values.
	DistinctValues int
	// TopValues maps the TopValueCount most frequent content values to their
	// exact node counts; values outside the sketch are estimated as the mean
	// of the remainder.
	TopValues map[string]int
	// Mixed mirrors the collection's mixedValueTag gate: when set, the tag
	// has content-less interior nodes whose XPath string value differs from
	// their own content, so value-index routing (and exact value estimates)
	// are unavailable.
	Mixed bool
}

// Stats is a point-in-time statistical summary of a collection, derived from
// the inverted indexes and cached per mutation generation: two calls under
// the same Generation() return the same snapshot without rebuilding.
// It is the planner's input for cardinality estimation.
type Stats struct {
	// Generation is the mutation counter the snapshot was taken at.
	Generation uint64
	// Docs and Nodes size the collection.
	Docs  int
	Nodes int
	// DistinctTerms is the number of distinct content tokens in the term
	// index (contains/~ estimates key off it).
	DistinctTerms int
	// Tags maps each element tag to its statistics.
	Tags map[string]TagStats
}

// TagEstimate returns the stats for a tag, zero-valued when the tag never
// occurs (the estimate for an unknown tag is exactly zero rows).
func (s *Stats) TagEstimate(tag string) TagStats { return s.Tags[tag] }

// AvgNodesPerDoc is the mean document size in nodes (1 minimum, so cost
// formulas never divide by zero).
func (s *Stats) AvgNodesPerDoc() float64 {
	if s.Docs == 0 {
		return 1
	}
	v := float64(s.Nodes) / float64(s.Docs)
	if v < 1 {
		return 1
	}
	return v
}

// ValueCount estimates how many nodes with this tag hold exactly the given
// content value. Values inside the TopValues sketch are exact; the remainder
// is estimated as the mean count of the non-sketched values; when the sketch
// covers every distinct value, unseen values estimate to zero.
func (t TagStats) ValueCount(value string) float64 {
	if n, ok := t.TopValues[value]; ok {
		return float64(n)
	}
	rest := t.DistinctValues - len(t.TopValues)
	if rest <= 0 {
		return 0
	}
	sketched := 0
	for _, n := range t.TopValues {
		sketched += n
	}
	return float64(t.ValueNodes-sketched) / float64(rest)
}

// Stats returns the collection's statistics snapshot, building the inverted
// indexes on demand and caching the result until the next mutation (keyed on
// the Generation counter, so a stale snapshot can never be returned).
func (c *Collection) Stats() *Stats {
	gen := c.Generation()
	c.statsMu.Lock()
	if c.statsCache != nil && c.statsCache.Generation == gen {
		st := c.statsCache
		c.statsMu.Unlock()
		return st
	}
	c.statsMu.Unlock()

	st := c.buildStats()
	c.statsMu.Lock()
	if c.statsCache == nil || c.statsCache.Generation < st.Generation {
		c.statsCache = st
	}
	st = c.statsCache
	c.statsMu.Unlock()
	return st
}

// buildStats computes a snapshot from the inverted indexes under the shared
// lock (escalating only to build missing indexes, like indexLookup).
func (c *Collection) buildStats() *Stats {
	c.mu.RLock()
	for c.tagIndex == nil {
		c.mu.RUnlock()
		c.mu.Lock()
		c.buildIndexesLocked()
		c.mu.Unlock()
		c.mu.RLock()
	}
	defer c.mu.RUnlock()

	st := &Stats{
		Generation:    c.generation.Load(),
		Docs:          len(c.docs),
		DistinctTerms: len(c.termIndex),
		Tags:          make(map[string]TagStats, len(c.tagIndex)),
	}
	type valueCount struct {
		value string
		count int
	}
	perTagValues := map[string][]valueCount{}
	for key, nodes := range c.valueIndex {
		tag, value, _ := cutValueKey(key)
		perTagValues[tag] = append(perTagValues[tag], valueCount{value, len(nodes)})
	}
	for tag, nodes := range c.tagIndex {
		ts := TagStats{Nodes: len(nodes), Mixed: c.mixedValueTag[tag]}
		st.Nodes += len(nodes)
		// Document count: distinct roots across the posting list.
		seen := make(map[*tree.Node]bool, 4)
		for _, n := range nodes {
			r := n.Root()
			if !seen[r] {
				seen[r] = true
				ts.Docs++
			}
		}
		st.Tags[tag] = ts
	}
	for tag, vals := range perTagValues {
		ts := st.Tags[tag]
		ts.DistinctValues = len(vals)
		for _, v := range vals {
			ts.ValueNodes += v.count
		}
		sort.Slice(vals, func(i, j int) bool {
			if vals[i].count != vals[j].count {
				return vals[i].count > vals[j].count
			}
			return vals[i].value < vals[j].value
		})
		top := vals
		if len(top) > TopValueCount {
			top = top[:TopValueCount]
		}
		ts.TopValues = make(map[string]int, len(top))
		for _, v := range top {
			ts.TopValues[v.value] = v.count
		}
		st.Tags[tag] = ts
	}
	return st
}

// cutValueKey splits a valueIndex key back into tag and content.
func cutValueKey(key string) (tag, value string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}
