package xmldb

import (
	"sort"

	"repro/internal/tree"
)

// TopValueCount caps the per-tag frequent-value sketch kept in TagStats: the
// TopValueCount most frequent exact content values are stored with exact node
// counts, everything rarer is summarised by DistinctValues/ValueNodes.
const TopValueCount = 8

// TagStats summarises one element tag for the query planner.
type TagStats struct {
	// Nodes is the number of nodes carrying the tag.
	Nodes int
	// Docs is the number of documents containing at least one such node.
	Docs int
	// ValueNodes counts the tag's nodes with non-empty content — the
	// population the value index (and value-equality estimates) draws from.
	ValueNodes int
	// DistinctValues is the number of distinct non-empty content values.
	// Merged across shards it is a sum and can overcount values present in
	// several shards; exact on an unsharded collection.
	DistinctValues int
	// TopValues maps the TopValueCount most frequent content values to their
	// exact node counts; values outside the sketch are estimated as the mean
	// of the remainder.
	TopValues map[string]int
	// Mixed mirrors the collection's mixedValueTag gate: when set, the tag
	// has content-less interior nodes whose XPath string value differs from
	// their own content, so value-index routing (and exact value estimates)
	// are unavailable.
	Mixed bool
}

// Stats is a point-in-time statistical summary of a collection, derived from
// the inverted indexes and cached per mutation generation: two calls under
// the same Generation() return the same snapshot without rebuilding.
// It is the planner's input for cardinality estimation. On a sharded
// collection the snapshot merges per-shard statistics (each cached on its
// shard's own generation): additive fields sum exactly; DistinctTerms and
// per-tag DistinctValues are summed too, a documented overestimate when the
// same term or value occurs in several shards.
type Stats struct {
	// Generation is the mutation counter the snapshot was taken at.
	Generation uint64
	// Shards is the shard count of the collection the snapshot describes
	// (1 for per-shard and unsharded snapshots).
	Shards int
	// Docs and Nodes size the collection.
	Docs  int
	Nodes int
	// DistinctTerms is the number of distinct content tokens in the term
	// index (contains/~ estimates key off it).
	DistinctTerms int
	// Tags maps each element tag to its statistics.
	Tags map[string]TagStats
}

// TagEstimate returns the stats for a tag, zero-valued when the tag never
// occurs (the estimate for an unknown tag is exactly zero rows).
func (s *Stats) TagEstimate(tag string) TagStats { return s.Tags[tag] }

// AvgNodesPerDoc is the mean document size in nodes (1 minimum, so cost
// formulas never divide by zero).
func (s *Stats) AvgNodesPerDoc() float64 {
	if s.Docs == 0 {
		return 1
	}
	v := float64(s.Nodes) / float64(s.Docs)
	if v < 1 {
		return 1
	}
	return v
}

// ValueCount estimates how many nodes with this tag hold exactly the given
// content value. Values inside the TopValues sketch are exact; the remainder
// is estimated as the mean count of the non-sketched values; when the sketch
// covers every distinct value, unseen values estimate to zero.
func (t TagStats) ValueCount(value string) float64 {
	if n, ok := t.TopValues[value]; ok {
		return float64(n)
	}
	rest := t.DistinctValues - len(t.TopValues)
	if rest <= 0 {
		return 0
	}
	sketched := 0
	for _, n := range t.TopValues {
		sketched += n
	}
	return float64(t.ValueNodes-sketched) / float64(rest)
}

// Stats returns the collection's statistics snapshot, building the inverted
// indexes on demand and caching the result until the next mutation (keyed on
// the Generation counter, so a stale snapshot can never be returned).
func (c *Collection) Stats() *Stats {
	gen := c.Generation()
	c.statsMu.Lock()
	if c.statsCache != nil && c.statsCache.Generation == gen {
		st := c.statsCache
		c.statsMu.Unlock()
		return st
	}
	c.statsMu.Unlock()

	per := make([]*Stats, len(c.shards))
	for i, sh := range c.shards {
		per[i] = sh.stats()
	}
	st := mergeStats(per)
	st.Generation = gen
	st.Shards = len(c.shards)
	c.statsMu.Lock()
	if c.statsCache == nil || c.statsCache.Generation < st.Generation {
		c.statsCache = st
	}
	st = c.statsCache
	c.statsMu.Unlock()
	return st
}

// stats returns the shard's statistics snapshot, cached per shard generation.
func (sh *shard) stats() *Stats {
	gen := sh.generation.Load()
	sh.statsMu.Lock()
	if sh.statsCache != nil && sh.statsCache.Generation == gen {
		st := sh.statsCache
		sh.statsMu.Unlock()
		return st
	}
	sh.statsMu.Unlock()

	st := sh.buildStats()
	sh.statsMu.Lock()
	if sh.statsCache == nil || sh.statsCache.Generation < st.Generation {
		sh.statsCache = st
	}
	st = sh.statsCache
	sh.statsMu.Unlock()
	return st
}

// buildStats computes a snapshot from the shard's inverted indexes under the
// shared lock (escalating only to build missing indexes, like withIndexes).
func (sh *shard) buildStats() *Stats {
	var st *Stats
	sh.withIndexes(func() {
		st = &Stats{
			Generation:    sh.generation.Load(),
			Shards:        1,
			Docs:          len(sh.docs),
			DistinctTerms: len(sh.termIndex),
			Tags:          make(map[string]TagStats, len(sh.tagIndex)),
		}
		type valueCount struct {
			value string
			count int
		}
		perTagValues := map[string][]valueCount{}
		for key, nodes := range sh.valueIndex {
			tag, value, _ := cutValueKey(key)
			perTagValues[tag] = append(perTagValues[tag], valueCount{value, len(nodes)})
		}
		for tag, nodes := range sh.tagIndex {
			ts := TagStats{Nodes: len(nodes), Mixed: sh.mixedValueTag[tag]}
			st.Nodes += len(nodes)
			// Document count: distinct roots across the posting list.
			seen := make(map[*tree.Node]bool, 4)
			for _, n := range nodes {
				r := n.Root()
				if !seen[r] {
					seen[r] = true
					ts.Docs++
				}
			}
			st.Tags[tag] = ts
		}
		for tag, vals := range perTagValues {
			ts := st.Tags[tag]
			ts.DistinctValues = len(vals)
			for _, v := range vals {
				ts.ValueNodes += v.count
			}
			sort.Slice(vals, func(i, j int) bool {
				if vals[i].count != vals[j].count {
					return vals[i].count > vals[j].count
				}
				return vals[i].value < vals[j].value
			})
			top := vals
			if len(top) > TopValueCount {
				top = top[:TopValueCount]
			}
			ts.TopValues = make(map[string]int, len(top))
			for _, v := range top {
				ts.TopValues[v.value] = v.count
			}
			st.Tags[tag] = ts
		}
	})
	return st
}

// mergeStats combines per-shard snapshots into one collection-wide snapshot.
// Additive fields sum exactly. DistinctTerms and DistinctValues are summed,
// overcounting terms/values that occur in several shards (exact at one
// shard). Mixed is OR-ed: one shard's mixed verdict disables value routing
// everywhere, matching the global routing decision in queryIndexed. The
// merged TopValues sketch sums per-shard sketch counts and keeps the
// TopValueCount most frequent (count desc, value asc — the per-shard cut
// order).
func mergeStats(per []*Stats) *Stats {
	if len(per) == 1 {
		// Shallow copy: snapshots are immutable, so the Tags map is shared,
		// but Generation/Shards are overwritten by the caller.
		s := *per[0]
		return &s
	}
	out := &Stats{Tags: map[string]TagStats{}}
	topSums := map[string]map[string]int{}
	for _, p := range per {
		out.Docs += p.Docs
		out.Nodes += p.Nodes
		out.DistinctTerms += p.DistinctTerms
		for tag, ts := range p.Tags {
			m := out.Tags[tag]
			m.Nodes += ts.Nodes
			m.Docs += ts.Docs
			m.ValueNodes += ts.ValueNodes
			m.DistinctValues += ts.DistinctValues
			m.Mixed = m.Mixed || ts.Mixed
			out.Tags[tag] = m
			if len(ts.TopValues) > 0 {
				tm := topSums[tag]
				if tm == nil {
					tm = map[string]int{}
					topSums[tag] = tm
				}
				for v, n := range ts.TopValues {
					tm[v] += n
				}
			}
		}
	}
	type valueCount struct {
		value string
		count int
	}
	for tag, tm := range topSums {
		vals := make([]valueCount, 0, len(tm))
		for v, n := range tm {
			vals = append(vals, valueCount{v, n})
		}
		sort.Slice(vals, func(i, j int) bool {
			if vals[i].count != vals[j].count {
				return vals[i].count > vals[j].count
			}
			return vals[i].value < vals[j].value
		})
		if len(vals) > TopValueCount {
			vals = vals[:TopValueCount]
		}
		ts := out.Tags[tag]
		ts.TopValues = make(map[string]int, len(vals))
		for _, v := range vals {
			ts.TopValues[v.value] = v.count
		}
		out.Tags[tag] = ts
	}
	return out
}

// cutValueKey splits a valueIndex key back into tag and content.
func cutValueKey(key string) (tag, value string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i], key[i+1:], true
		}
	}
	return key, "", false
}
