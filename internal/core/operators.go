package core

import (
	"context"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/tax"
	"repro/internal/tree"
	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// scanStream is the leaf operator of the streaming pipeline: a k-way merge
// over per-shard cursors, yielding documents in global insertion order
// (ascending sequence number) — exactly Docs() order — without ever
// materializing the merged snapshot. The cursors were opened under one
// consistent cut, so the stream sees a single collection state no matter how
// slowly it is drained.
type scanStream struct {
	cursors []*xmldb.Cursor
	heads   []xmldb.DocSnap // current head per cursor
	live    []bool
	st      *ExecStats
	// scanned mirrors st.DocsScanned atomically: the scan runs inside the
	// async prefetch goroutine, and the adaptive checkpoint downstream reads
	// the live count from the consumer side (reoptStream.shouldReopt).
	scanned atomic.Int64
}

func newScanStream(cursors []*xmldb.Cursor, st *ExecStats) *scanStream {
	s := &scanStream{
		cursors: cursors,
		heads:   make([]xmldb.DocSnap, len(cursors)),
		live:    make([]bool, len(cursors)),
		st:      st,
	}
	for i, c := range cursors {
		s.heads[i], s.live[i] = c.Next()
	}
	return s
}

func (s *scanStream) Next(ctx context.Context) (*tree.Tree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	min := -1
	for i := range s.cursors {
		if !s.live[i] {
			continue
		}
		if min < 0 || s.heads[i].Seq < s.heads[min].Seq {
			min = i
		}
	}
	if min < 0 {
		return nil, io.EOF
	}
	doc := s.heads[min].Doc
	s.heads[min], s.live[min] = s.cursors[min].Next()
	s.scanned.Add(1)
	if s.st != nil {
		s.st.DocsScanned++
	}
	return doc, nil
}

func (s *scanStream) Close() {}

// filterStream is the streaming pattern pre-filter: a document passes iff
// every rewritten XPath path matches at least one of its nodes — the same
// membership test as the materialized candidate-set intersection
// (candidateDocs), applied per document so the scan can stop early.
type filterStream struct {
	in     DocStream
	paths  []*xpath.Path
	passed int
	st     *ExecStats
}

func newFilterStream(in DocStream, paths []*xpath.Path, st *ExecStats) *filterStream {
	return &filterStream{in: in, paths: paths, st: st}
}

func (s *filterStream) Next(ctx context.Context) (*tree.Tree, error) {
	for {
		d, err := s.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, p := range s.paths {
			if len(p.Eval(d.Root)) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.passed++
		if s.st != nil {
			s.st.CandidateDocs = s.passed
		}
		return d, nil
	}
}

func (s *filterStream) Close() { s.in.Close() }

// evalStream runs the pattern-embedding evaluation per candidate document,
// emitting witness trees one at a time. A document's witnesses are produced
// together (the algebra evaluates whole documents) and buffered, so limit
// pushdown stops pulling candidates as soon as the limit-th witness is out —
// the historical SelectN accounting: the document that produced it has been
// evaluated in full, later candidates not at all.
type evalStream struct {
	in        DocStream
	sys       *System
	p         *pattern.Tree
	sl        []int
	dst       *tree.Collection
	ev        *Evaluator
	buf       []*tree.Tree
	evaluated int
	st        *ExecStats
	closed    bool
}

func newEvalStream(in DocStream, sys *System, p *pattern.Tree, sl []int, st *ExecStats) *evalStream {
	return &evalStream{
		in: in, sys: sys, p: p, sl: sl,
		dst: tree.NewCollection(), ev: sys.Evaluator(), st: st,
	}
}

func (s *evalStream) Next(ctx context.Context) (*tree.Tree, error) {
	for len(s.buf) == 0 {
		doc, err := s.in.Next(ctx)
		if err != nil {
			return nil, err
		}
		res, ops, err := tax.SelectTraced(s.dst, []*tree.Tree{doc}, s.p, s.sl, s.ev)
		if err != nil {
			return nil, err
		}
		s.evaluated++
		if s.st != nil {
			s.st.DocsEvaluated = s.evaluated
			s.st.Embeddings += ops.Embeddings
		}
		s.buf = res
	}
	d := s.buf[0]
	s.buf = s.buf[1:]
	if s.st != nil {
		s.st.Answers++
	}
	return d, nil
}

// Close finalizes the single-worker utilization trace — the same shape the
// sequential limited path always reported (workers=1, all docs on it).
func (s *evalStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.in.Close()
	if s.st != nil {
		s.st.Workers = 1
		s.st.WorkerDocs = []int{s.evaluated}
	}
}

// batchEvalStream is the materialized evaluation operator: on the first pull
// it runs the full parallel embedding search (selectDocs — worker pool,
// per-worker evaluators, answers gathered in document order) and then serves
// the buffered answers. Full-result queries route through it so their
// answers, traces, and parallelism are exactly the pre-streaming behaviour.
type batchEvalStream struct {
	sys    *System
	cands  []*tree.Tree
	p      *pattern.Tree
	sl     []int
	st     *ExecStats
	shards int

	ran bool
	out *sliceStream
}

func newBatchEvalStream(sys *System, cands []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats, shards int) *batchEvalStream {
	return &batchEvalStream{sys: sys, cands: cands, p: p, sl: sl, st: st, shards: shards}
}

func (s *batchEvalStream) Next(ctx context.Context) (*tree.Tree, error) {
	if !s.ran {
		s.ran = true
		out, err := s.sys.selectDocs(ctx, s.cands, s.p, s.sl, s.st, s.shards)
		if err != nil {
			return nil, err
		}
		if s.st != nil {
			s.st.Answers = len(out)
		}
		s.out = newSliceStream(out)
	}
	if s.out == nil {
		return nil, io.EOF
	}
	return s.out.Next(ctx)
}

func (s *batchEvalStream) Close() {}

// joinStream is the streaming condition join: one side is built into a hash
// table (or both kept whole for the nested-loop fallback) up front, and the
// left side is consumed in document order. The static shape always builds on
// the right and probes per left document; an adaptive plan built from actual
// candidate counts may build on the left instead, pre-probing with the right
// side so left documents still drive emission. For each left document its
// matching right partners come out sorted and deduplicated, so pairs are
// emitted in ascending (left, right) index order either way — the exact order
// the materialized join produced after its global sort — and a limited join's
// answers are a strict prefix of the unlimited ones.
type joinStream struct {
	sys   *System
	ldocs []*tree.Tree
	rdocs []*tree.Tree
	p     *pattern.Tree
	sl    []int
	st    *ExecStats
	plan  *planner.JoinPlan // adaptive build-side choice; nil → build right

	atom     *pattern.Atomic // cross-side hash key atom; nil → nested loop
	built    bool
	table    map[string][]int // right-side hash table (build-right only)
	partners [][]int          // per-left-doc partners (build-left only)
	probed   map[string]bool  // distinct probe keys seen (trace)
	trace    *JoinTrace

	dst    *tree.Collection
	ev     *Evaluator
	li     int
	buf    []*tree.Tree
	closed bool
}

func newJoinStream(sys *System, ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats, jp *planner.JoinPlan) *joinStream {
	return &joinStream{
		sys: sys, ldocs: ldocs, rdocs: rdocs, p: p, sl: sl, st: st, plan: jp,
		dst: tree.NewCollection(), ev: sys.Evaluator(),
	}
}

func (s *joinStream) build() {
	s.built = true
	s.atom = s.sys.crossSimAtom(s.p)
	s.trace = &JoinTrace{
		LeftDocs: len(s.ldocs), RightDocs: len(s.rdocs),
		CrossPairs: len(s.ldocs) * len(s.rdocs),
	}
	if s.st != nil {
		s.st.Join = s.trace
	}
	if s.atom == nil {
		return // nested loop: every pair
	}
	s.trace.HashJoin = true
	if s.plan != nil && s.plan.BuildLeft {
		s.buildLeft()
		return
	}
	s.trace.BuildSide = "right"
	if s.plan != nil {
		s.trace.EstLeft, s.trace.EstRight = s.plan.EstLeft, s.plan.EstRight
	}
	s.table = map[string][]int{}
	for i, d := range s.rdocs {
		for _, k := range s.docJoinKeys(d) {
			s.table[k] = append(s.table[k], i)
		}
	}
	s.trace.RightKeys = len(s.table)
	s.probed = map[string]bool{}
}

// buildLeft is the adaptive build side: the left documents key the hash
// table and the right side streams through it up front, accumulating each
// left document's partner list. Right indices are visited in ascending order,
// so every partner list comes out sorted without a per-document sort.
func (s *joinStream) buildLeft() {
	s.trace.BuildSide = "left"
	s.trace.EstLeft, s.trace.EstRight = s.plan.EstLeft, s.plan.EstRight
	lt := map[string][]int{}
	for i, d := range s.ldocs {
		for _, k := range s.docJoinKeys(d) {
			lt[k] = append(lt[k], i)
		}
	}
	s.trace.LeftKeys = len(lt)
	s.partners = make([][]int, len(s.ldocs))
	probed := map[string]bool{}
	for j, d := range s.rdocs {
		for _, k := range s.docJoinKeys(d) {
			probed[k] = true
			for _, li := range lt[k] {
				// j is non-decreasing per left doc, so duplicate keys shared
				// with the same right doc only ever repeat the last element.
				if n := len(s.partners[li]); n > 0 && s.partners[li][n-1] == j {
					continue
				}
				s.partners[li] = append(s.partners[li], j)
			}
		}
	}
	s.trace.RightKeys = len(probed)
	if pl := s.sys.Planner; pl != nil {
		pl.CountReopt("build-side")
	}
	if s.st != nil {
		at := s.st.adaptiveTrace()
		at.Reopts = append(at.Reopts, ReoptEvent{
			Operator: "join", Action: "build-side",
			Est: s.plan.EstLeft, Actual: len(s.ldocs),
		})
	}
}

// docJoinKeys is the per-document key extraction of the hash join (the same
// walk joinPairs uses).
func (s *joinStream) docJoinKeys(d *tree.Tree) []string {
	seen := map[string]bool{}
	var out []string
	d.Walk(func(n *tree.Node) bool {
		if n.Content == "" {
			return true
		}
		for _, k := range s.sys.simKeys(n.Content, s.atom.Op) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		return true
	})
	return out
}

// partnersOf returns the right-side indices the given left document pairs
// with, sorted ascending and deduplicated.
func (s *joinStream) partnersOf(li int) []int {
	if s.atom == nil {
		out := make([]int, len(s.rdocs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	if s.partners != nil {
		return s.partners[li]
	}
	seen := map[int]bool{}
	var out []int
	for _, k := range s.docJoinKeys(s.ldocs[li]) {
		s.probed[k] = true
		for _, ri := range s.table[k] {
			if !seen[ri] {
				seen[ri] = true
				out = append(out, ri)
			}
		}
	}
	sort.Ints(out)
	return out
}

func (s *joinStream) Next(ctx context.Context) (*tree.Tree, error) {
	if !s.built {
		s.build()
	}
	for len(s.buf) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.li >= len(s.ldocs) {
			return nil, io.EOF
		}
		li := s.li
		s.li++
		for _, ri := range s.partnersOf(li) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			prod := tax.Product(s.dst, s.ldocs[li:li+1], s.rdocs[ri:ri+1])
			res, ops, err := tax.SelectTraced(s.dst, prod, s.p, s.sl, s.ev)
			if err != nil {
				return nil, err
			}
			s.trace.PairsTried++
			if s.st != nil {
				s.st.DocsEvaluated++
				s.st.Embeddings += ops.Embeddings
			}
			s.buf = append(s.buf, res...)
		}
	}
	d := s.buf[0]
	s.buf = s.buf[1:]
	if s.st != nil {
		s.st.Answers++
	}
	return d, nil
}

func (s *joinStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.trace != nil && s.trace.HashJoin && s.partners == nil {
		s.trace.LeftKeys = len(s.probed)
	}
	if s.st != nil {
		s.st.Workers = 1
	}
}
