package core

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

const miniDBLP = `<dblp>
  <inproceedings key="d1">
    <author>Jeffrey D. Ullman</author>
    <title>Relational Query Optimization</title>
    <year>1997</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d2">
    <author>J. Ullman</author>
    <title>Index Structures for Databases</title>
    <year>1999</year>
    <booktitle>VLDB</booktitle>
  </inproceedings>
  <inproceedings key="d3">
    <author>Elisa Bertino</author>
    <title>Securing XML Documents</title>
    <year>2000</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>`

const miniSIGMOD = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Securing XML Documents.</title>
      <author>E. Bertino</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2000</confYear>
    </article>
  </articles>
</ProceedingsPage>`

func miniSystem(t *testing.T, eps float64) *System {
	t.Helper()
	s := NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dblp.Col.PutXML("d", strings.NewReader(miniDBLP)); err != nil {
		t.Fatal(err)
	}
	sig, err := s.AddInstance("sigmod")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sig.Col.PutXML("s", strings.NewReader(miniSIGMOD)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, eps); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddInstanceValidation(t *testing.T) {
	s := NewSystem()
	if _, err := s.AddInstance("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddInstance("a"); err == nil {
		t.Error("duplicate instance must fail")
	}
	if s.Instance("a") == nil || s.Instance("b") != nil {
		t.Error("Instance lookup broken")
	}
	if _, err := s.Trees("ghost"); err == nil {
		t.Error("Trees of unknown instance must fail")
	}
}

func TestBuildRequiresInstances(t *testing.T) {
	s := NewSystem()
	if err := s.Build(similarity.Levenshtein{}, 2); err == nil {
		t.Error("Build without instances must fail")
	}
	s2 := NewSystem()
	if err := s2.Fuse(); err == nil {
		t.Error("Fuse without ontologies must fail")
	}
	s3 := NewSystem()
	if err := s3.Enhance(similarity.Levenshtein{}, 2); err == nil {
		t.Error("Enhance without fusion must fail")
	}
}

func TestOntologyMakerStructure(t *testing.T) {
	s := miniSystem(t, 3)
	dblp := s.Instance("dblp")
	part := dblp.Ont.PartOf()
	// Structural part-of: author part-of inproceedings part-of dblp.
	if !part.Leq("author", "inproceedings") || !part.Leq("inproceedings", "dblp") {
		t.Error("structural part-of extraction failed")
	}
	isa := dblp.Ont.Isa()
	// Lexicon chains for tags: inproceedings isa article isa publication.
	if !isa.Leq("inproceedings", "publication") {
		t.Error("lexicon hypernym chain missing")
	}
	// Value terms below their tag.
	if !isa.Leq("Jeffrey D. Ullman", "author") {
		t.Error("author value not ontologized")
	}
	if !isa.Leq("SIGMOD Conference", "booktitle") {
		t.Error("booktitle value not ontologized")
	}
	// Title tokens below lexicon concepts.
	if !isa.Leq("relational", "data model") {
		t.Error("title token chain missing")
	}
	// Synonym bridge: booktitle <= conference <= meeting.
	if !isa.Leq("booktitle", "meeting") {
		t.Error("synonym bridging failed")
	}
}

func TestFusionMergesSchemas(t *testing.T) {
	s := miniSystem(t, 3)
	// booktitle (dblp) and conference (sigmod) fuse via the derived
	// synonym equality constraint.
	b := s.FusedIsa.NodesOf("booktitle")
	c := s.FusedIsa.NodesOf("conference")
	if len(b) == 0 || len(c) == 0 {
		t.Fatal("schema terms missing from fusion")
	}
	same := false
	for _, x := range b {
		for _, y := range c {
			if x == y {
				same = true
			}
		}
	}
	if !same {
		t.Error("booktitle and conference should share a fused node")
	}
	// confYear and year fuse (synonym).
	cy := s.FusedIsa.NodesOf("confYear")
	y := s.FusedIsa.NodesOf("year")
	if len(cy) == 0 || len(y) == 0 {
		t.Fatal("year terms missing")
	}
	if cy[0] != y[0] {
		t.Errorf("confYear %v and year %v should fuse", cy, y)
	}
}

func TestEvaluatorSimilarity(t *testing.T) {
	s := miniSystem(t, 3)
	ev := s.Evaluator()
	cases := []struct {
		cond string
		want bool
	}{
		{`"Jeffrey D. Ullman" ~ "J. Ullman"`, true},
		{`"Jeffrey D. Ullman" ~ "Elisa Bertino"`, false},
		{`"Elisa Bertino" ~ "E. Bertino"`, true},
		{`"x" ~ "x"`, true},
		// Unknown terms fall back to the dynamic measure.
		{`"Brand New Name" ~ "Brand New Nmae"`, true},
		{`"Brand New Name" ~ "Entirely Different"`, false},
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond).(*pattern.Atomic)
		got, err := ev.EvalAtomic(cond, tax.Binding{})
		if err != nil {
			t.Errorf("%s: %v", tc.cond, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
	// Dynamic fallback honours the switch.
	s.DynamicSimilarity = false
	ev2 := s.Evaluator()
	cond := pattern.MustParseCondition(`"Brand New Name" ~ "Brand New Nmae"`).(*pattern.Atomic)
	if got, _ := ev2.EvalAtomic(cond, tax.Binding{}); got {
		t.Error("dynamic fallback should be off")
	}
}

func TestEvaluatorIsaAndPartOf(t *testing.T) {
	s := miniSystem(t, 3)
	ev := s.Evaluator()
	cases := []struct {
		cond string
		want bool
	}{
		{`"SIGMOD Conference" isa "conference"`, true},
		{`"SIGMOD Conference" isa "meeting"`, true},
		{`"Relational Query Optimization" isa "data model"`, true}, // token "relational"
		{`"Securing XML Documents" isa "markup language"`, true},   // token "xml"
		{`"Securing XML Documents" isa "data model"`, false},
		{`"ghost term" isa "conference"`, false},
		{`"SIGMOD Conference" isa "ghost concept"`, false},
		{`"author" part_of "inproceedings"`, true},
		{`"author" part_of "dblp"`, true},
		{`"dblp" part_of "author"`, false},
		{`"x" part_of "x"`, true},
		// Ontologized values participate in below/above through the isa
		// hierarchy (year values are not ontologized, booktitle values are).
		{`"SIGMOD Conference" below "booktitle"`, true},
		{`"booktitle" above "SIGMOD Conference"`, true},
		{`"booktitle" below "SIGMOD Conference"`, false},
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond).(*pattern.Atomic)
		got, err := ev.EvalAtomic(cond, tax.Binding{})
		if err != nil {
			t.Errorf("%s: %v", tc.cond, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestEvaluatorTypesAndComparisons(t *testing.T) {
	s := miniSystem(t, 3)
	ev := s.Evaluator()
	col := tree.NewCollection()
	year := col.NewNode("year", "1999")
	year.ContentType = "int"
	b := tax.BindingOf(map[int]*tree.Node{1: year})
	cases := []struct {
		cond string
		want bool
	}{
		{`#1.content = "1999"`, true},
		{`#1.content <= "2000":int`, true},
		{`#1.content > "200":int`, true}, // numeric via common supertype
		{`#1.content instance_of int`, true},
		{`#1.content instance_of string`, true},
		{`int subtype_of string`, true},
		{`string subtype_of int`, false},
		{`#1.content below int`, true},
		{`int above #1.content`, true},
		{`#1.content = "*"`, true}, // wildcard
		{`#1.content != "1999"`, false},
		{`#1.content contains "99"`, true},
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond).(*pattern.Atomic)
		got, err := ev.EvalAtomic(cond, b)
		if err != nil {
			t.Errorf("%s: %v", tc.cond, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

func TestEvaluatorUnboundAndUnknownOp(t *testing.T) {
	s := miniSystem(t, 3)
	ev := s.Evaluator()
	cond := pattern.MustParseCondition(`#9.content = "x"`).(*pattern.Atomic)
	if _, err := ev.EvalAtomic(cond, tax.Binding{}); err == nil {
		t.Error("unbound node must error")
	}
	bad := &pattern.Atomic{X: pattern.Value("a"), Op: "??", Y: pattern.Value("b")}
	if _, err := ev.EvalAtomic(bad, tax.Binding{}); err == nil {
		t.Error("unknown operator must error")
	}
}

func TestSelectMatchesUnfilteredTAX(t *testing.T) {
	// The XPath pre-filter must not change answers: System.Select equals
	// plain tax.Select over all documents with the same TOSS evaluator.
	s := miniSystem(t, 3)
	pats := []string{
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content isa "access method"`,
		`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "year" & #3.tag = "booktitle" & #3.content isa "conference" & #2.content <= "1999"`,
		`#1 ad #2 :: #1.tag = "dblp" & #2.tag = "author"`,
		`#1 pc #2 :: #1.tag = "inproceedings" & (#2.tag = "author" | #2.tag = "title")`,
	}
	docs, err := s.Trees("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range pats {
		p := pattern.MustParse(src)
		fast, err := s.Select("dblp", p, []int{1})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		slow, err := tax.Select(tree.NewCollection(), docs, p, []int{1}, s.Evaluator())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(fast) != len(slow) {
			t.Errorf("%s: filtered %d vs unfiltered %d answers", src, len(fast), len(slow))
			continue
		}
		for i := range fast {
			if !tree.Equal(fast[i], slow[i]) {
				t.Errorf("%s: answer %d differs", src, i)
			}
		}
	}
}

func TestRewritePattern(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2, #1 ad #3 :: #1.tag = "inproceedings" & #2.tag = "author" & ` +
		`#2.content ~ "Jeffrey D. Ullman" & #3.tag = "year" & #3.content = "1999"`)
	strs := s.RewriteToXPathStrings(p)
	if len(strs) != 3 {
		t.Fatalf("rewritten %d paths, want 3: %v", len(strs), strs)
	}
	joined := strings.Join(strs, "\n")
	if !strings.Contains(joined, "//inproceedings/author[") {
		t.Errorf("author path missing similarity expansion: %v", strs)
	}
	if !strings.Contains(joined, "J. Ullman") {
		t.Errorf("expansion should include the similar variant: %v", strs)
	}
	if !strings.Contains(joined, "//inproceedings//year[.='1999']") {
		t.Errorf("ad edge should become descendant axis: %v", strs)
	}
	// Or-conditions are not compiled into the filter (soundness).
	p2 := pattern.MustParse(`#1 :: #1.tag = "inproceedings" | #1.tag = "article"`)
	if got := s.RewriteToXPathStrings(p2); len(got) != 0 {
		t.Errorf("disjunctive condition must not produce filters: %v", got)
	}
	// Wildcard equality is not compiled in.
	p3 := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content = "*"`)
	for _, q := range s.RewriteToXPathStrings(p3) {
		if strings.Contains(q, "*'") {
			t.Errorf("wildcard leaked into filter: %q", q)
		}
	}
}

func TestJoinEqualsNestedLoop(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	fast, err := s.Join("dblp", "sigmod", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ldocs, _ := s.Trees("dblp")
	rdocs, _ := s.Trees("sigmod")
	slow, err := s.NestedLoopJoinTrees(ldocs, rdocs, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("join paths disagree: %d vs %d", len(fast), len(slow))
	}
	if len(fast) != 1 {
		t.Errorf("expected exactly the Bertino paper pair, got %d", len(fast))
	}
	if _, err := s.Join("dblp", "ghost", p, nil); err == nil {
		t.Error("join with unknown instance must fail")
	}
}

func TestProjectAndSetOps(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	authors, err := s.Project("dblp", p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(authors) != 3 {
		t.Fatalf("projection returned %d author trees, want 3", len(authors))
	}
	u := s.Union(authors[:2], authors[1:])
	if len(u) != 3 {
		t.Errorf("union = %d, want 3", len(u))
	}
	i := s.Intersect(authors[:2], authors[1:])
	if len(i) != 1 {
		t.Errorf("intersection = %d, want 1", len(i))
	}
	d := s.Difference(authors, authors[:1])
	if len(d) != 2 {
		t.Errorf("difference = %d, want 2", len(d))
	}
	prod := s.Product(authors[:2], authors[:2])
	if len(prod) != 4 {
		t.Errorf("product = %d, want 4", len(prod))
	}
	if _, err := s.Project("ghost", p, []int{2}); err == nil {
		t.Error("projection on unknown instance must fail")
	}
	if _, err := s.Select("ghost", p, nil); err == nil {
		t.Error("selection on unknown instance must fail")
	}
}

func TestExtraConstraints(t *testing.T) {
	// A DBA constraint merges otherwise-unrelated terms.
	s := NewSystem()
	a, err := s.AddInstance("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Col.PutXML("a", strings.NewReader(`<root><alpha>x</alpha></root>`)); err != nil {
		t.Fatal(err)
	}
	b, err := s.AddInstance("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Col.PutXML("b", strings.NewReader(`<root><beta>y</beta></root>`)); err != nil {
		t.Fatal(err)
	}
	s.AddConstraint(ontology.RelIsa, ontology.Equal("alpha", 1, "beta", 2))
	if err := s.Build(similarity.Levenshtein{}, 0); err != nil {
		t.Fatal(err)
	}
	na := s.FusedIsa.NodesOf("alpha")
	nb := s.FusedIsa.NodesOf("beta")
	if len(na) != 1 || len(nb) != 1 || na[0] != nb[0] {
		t.Errorf("DBA constraint not honoured: %v vs %v", na, nb)
	}
}

func TestSimilarStrings(t *testing.T) {
	s := miniSystem(t, 3)
	got := s.SimilarStrings("Jeffrey D. Ullman")
	found := false
	for _, v := range got {
		if v == "J. Ullman" {
			found = true
		}
	}
	if !found {
		t.Errorf("SimilarStrings missing variant: %v", got)
	}
	// Unknown strings return themselves.
	if got := s.SimilarStrings("zzz"); len(got) != 1 || got[0] != "zzz" {
		t.Errorf("SimilarStrings(unknown) = %v", got)
	}
}

func TestValueTruncationDisablesSimPrefilter(t *testing.T) {
	s := NewSystem()
	s.MakerConfig.MaxValueTerms = 1
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dblp.Col.PutXML("d", strings.NewReader(miniDBLP)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "J. Ullman"`)
	// With truncated values the ~ expansion would be incomplete; the
	// rewriter must not emit an author-value predicate...
	for _, q := range s.RewriteToXPathStrings(p) {
		if strings.Contains(q, "Ullman") {
			t.Errorf("truncated ontology must not pre-filter ~: %q", q)
		}
	}
	// ...and the answers still come from the dynamic fallback.
	res, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("expected both Ullman papers, got %d", len(res))
	}
}

func TestEvaluatorUnknownTypeFallback(t *testing.T) {
	// Values typed with a type the system does not know fall back to
	// integer-aware string comparison rather than failing.
	s := miniSystem(t, 3)
	ev := s.Evaluator()
	col := tree.NewCollection()
	n := col.NewNode("year", "1999")
	n.ContentType = "mystery"
	b := tax.BindingOf(map[int]*tree.Node{1: n})
	cases := []struct {
		cond string
		want bool
	}{
		{`#1.content <= "2000"`, true},
		{`#1.content > "200"`, true}, // numeric fallback
		{`#1.content = "1999"`, true},
	}
	for _, tc := range cases {
		cond := pattern.MustParseCondition(tc.cond).(*pattern.Atomic)
		got, err := ev.EvalAtomic(cond, b)
		if err != nil {
			t.Fatalf("%s: %v", tc.cond, err)
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.cond, got, tc.want)
		}
	}
}

// TestContainsPrefilterSoundness is the regression test for a pre-filter
// bug: XPath contains() is case-sensitive while the algebra's contains folds
// case, so compiling contains into the pre-filter dropped valid answers.
func TestContainsPrefilterSoundness(t *testing.T) {
	s := miniSystem(t, 3)
	// "xml" (lower case) must match "Securing XML Documents".
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content contains "xml"`)
	res, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("case-folded contains = %d answers, want 1", len(res))
	}
	docs, _ := s.Trees("dblp")
	slow, err := tax.Select(tree.NewCollection(), docs, p, []int{1}, s.Evaluator())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(slow) {
		t.Fatalf("pre-filtered %d vs unfiltered %d", len(res), len(slow))
	}
}
