package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// Expr is a TOSS algebra expression (the inductive [Exp]_F of Section
// 5.1.2): an instance reference, a selection, a projection, a cross product,
// a condition join, or a set operation over sub-expressions. Expressions are
// evaluated against a built System with Eval (or EvalContext when the caller
// needs cancellation, e.g. a server enforcing per-request deadlines).
type Expr interface {
	// Eval produces the expression's tree collection.
	Eval(s *System) ([]*tree.Tree, error)
	// EvalContext is Eval with cancellation: evaluation checks ctx between
	// operators and inside the selection/join scan loops.
	EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error)
	// String renders the expression in the syntax accepted by ParseExpr.
	String() string
}

// InstanceExpr references a registered instance by name; it evaluates to the
// instance's documents (lifted into the SEO context, per the base case of
// the inductive definition).
type InstanceExpr struct {
	Name string
}

// Eval implements Expr.
func (e *InstanceExpr) Eval(s *System) ([]*tree.Tree, error) {
	return s.Trees(e.Name)
}

// EvalContext implements Expr.
func (e *InstanceExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Trees(e.Name)
}

func (e *InstanceExpr) String() string { return e.Name }

// SelectExpr is σ_{P,SL}(Sub).
type SelectExpr struct {
	Pattern *pattern.Tree
	SL      []int
	Sub     Expr
}

// Eval implements Expr. When the sub-expression is a plain instance
// reference, the XPath candidate pre-filter applies; otherwise the selection
// runs over the materialised sub-result.
func (e *SelectExpr) Eval(s *System) ([]*tree.Tree, error) {
	return e.EvalContext(context.Background(), s)
}

// EvalContext implements Expr.
func (e *SelectExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	if in, ok := e.Sub.(*InstanceExpr); ok {
		return s.SelectContext(ctx, in.Name, e.Pattern, e.SL)
	}
	sub, err := e.Sub.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return s.SelectTreesContext(ctx, sub, e.Pattern, e.SL)
}

func (e *SelectExpr) String() string {
	return fmt.Sprintf("select[%s; %s](%s)", e.Pattern, intsString(e.SL), e.Sub)
}

// ProjectExpr is π_{P,PL}(Sub).
type ProjectExpr struct {
	Pattern *pattern.Tree
	PL      []int
	Sub     Expr
}

// Eval implements Expr.
func (e *ProjectExpr) Eval(s *System) ([]*tree.Tree, error) {
	return e.EvalContext(context.Background(), s)
}

// EvalContext implements Expr.
func (e *ProjectExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	if in, ok := e.Sub.(*InstanceExpr); ok {
		return s.ProjectContext(ctx, in.Name, e.Pattern, e.PL)
	}
	sub, err := e.Sub.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return s.ProjectTreesContext(ctx, sub, e.Pattern, e.PL)
}

func (e *ProjectExpr) String() string {
	return fmt.Sprintf("project[%s; %s](%s)", e.Pattern, intsString(e.PL), e.Sub)
}

// ProductExpr is Left × Right.
type ProductExpr struct {
	Left, Right Expr
}

// Eval implements Expr.
func (e *ProductExpr) Eval(s *System) ([]*tree.Tree, error) {
	return e.EvalContext(context.Background(), s)
}

// EvalContext implements Expr.
func (e *ProductExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	l, err := e.Left.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	r, err := e.Right.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Product(l, r), nil
}

func (e *ProductExpr) String() string {
	return fmt.Sprintf("product(%s, %s)", e.Left, e.Right)
}

// JoinExpr is the condition join σ_{P,SL}(Left × Right), executed with the
// similarity hash-join optimisation when applicable.
type JoinExpr struct {
	Pattern     *pattern.Tree
	SL          []int
	Left, Right Expr
}

// Eval implements Expr.
func (e *JoinExpr) Eval(s *System) ([]*tree.Tree, error) {
	return e.EvalContext(context.Background(), s)
}

// EvalContext implements Expr.
func (e *JoinExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	l, err := e.Left.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	r, err := e.Right.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return s.JoinTreesContext(ctx, l, r, e.Pattern, e.SL)
}

func (e *JoinExpr) String() string {
	return fmt.Sprintf("join[%s; %s](%s, %s)", e.Pattern, intsString(e.SL), e.Left, e.Right)
}

// SetExpr is Left op Right for op ∈ {union, intersect, difference}.
type SetExpr struct {
	Op          string // "union", "intersect", "difference"
	Left, Right Expr
}

// Eval implements Expr.
func (e *SetExpr) Eval(s *System) ([]*tree.Tree, error) {
	return e.EvalContext(context.Background(), s)
}

// EvalContext implements Expr.
func (e *SetExpr) EvalContext(ctx context.Context, s *System) ([]*tree.Tree, error) {
	l, err := e.Left.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	r, err := e.Right.EvalContext(ctx, s)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch e.Op {
	case "union":
		return s.Union(l, r), nil
	case "intersect":
		return s.Intersect(l, r), nil
	case "difference":
		return s.Difference(l, r), nil
	default:
		return nil, fmt.Errorf("core: unknown set operator %q", e.Op)
	}
}

func (e *SetExpr) String() string {
	return fmt.Sprintf("%s(%s, %s)", e.Op, e.Left, e.Right)
}

func intsString(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// ProjectTrees runs TOSS projection over an explicit tree set.
func (s *System) ProjectTrees(db []*tree.Tree, p *pattern.Tree, pl []int) ([]*tree.Tree, error) {
	return s.ProjectTreesContext(context.Background(), db, p, pl)
}

// ProjectTreesContext is ProjectTrees with cancellation, checking the
// context between input trees.
func (s *System) ProjectTreesContext(ctx context.Context, db []*tree.Tree, p *pattern.Tree, pl []int) ([]*tree.Tree, error) {
	dst := tree.NewCollection()
	ev := s.Evaluator()
	var out []*tree.Tree
	for _, doc := range db {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := tax.Project(dst, []*tree.Tree{doc}, p, pl, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// ---- expression parser ----
//
// Grammar (whitespace-insensitive; pattern text runs to the matching ']'):
//
//	expr    := name
//	         | "select"  "[" pattern (";" ints)? "]" "(" expr ")"
//	         | "project" "[" pattern (";" ints)? "]" "(" expr ")"
//	         | "join"    "[" pattern (";" ints)? "]" "(" expr "," expr ")"
//	         | "product" "(" expr "," expr ")"
//	         | ("union" | "intersect" | "difference") "(" expr "," expr ")"
//	ints    := int ("," int)*

// ParseExpr parses the textual algebra-expression syntax, e.g.
//
//	select[#1 pc #2 :: #1.tag = "inproceedings" & #2.content ~ "J. Ullman"; 1](dblp)
//	union(select[...](dblp), select[...](sigmod))
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("core: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

// MustParseExpr is ParseExpr but panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *exprParser) parse() (Expr, error) {
	p.skipSpace()
	name := p.readName()
	if name == "" {
		return nil, fmt.Errorf("core: expected expression at offset %d", p.pos)
	}
	switch name {
	case "select", "project", "join":
		pat, sl, err := p.readBracketArgs()
		if err != nil {
			return nil, err
		}
		args, err := p.readParenExprs()
		if err != nil {
			return nil, err
		}
		switch name {
		case "select":
			if len(args) != 1 {
				return nil, fmt.Errorf("core: select takes 1 sub-expression, got %d", len(args))
			}
			return &SelectExpr{Pattern: pat, SL: sl, Sub: args[0]}, nil
		case "project":
			if len(args) != 1 {
				return nil, fmt.Errorf("core: project takes 1 sub-expression, got %d", len(args))
			}
			return &ProjectExpr{Pattern: pat, PL: sl, Sub: args[0]}, nil
		default:
			if len(args) != 2 {
				return nil, fmt.Errorf("core: join takes 2 sub-expressions, got %d", len(args))
			}
			return &JoinExpr{Pattern: pat, SL: sl, Left: args[0], Right: args[1]}, nil
		}
	case "product", "union", "intersect", "difference":
		args, err := p.readParenExprs()
		if err != nil {
			return nil, err
		}
		if len(args) != 2 {
			return nil, fmt.Errorf("core: %s takes 2 sub-expressions, got %d", name, len(args))
		}
		if name == "product" {
			return &ProductExpr{Left: args[0], Right: args[1]}, nil
		}
		return &SetExpr{Op: name, Left: args[0], Right: args[1]}, nil
	default:
		return &InstanceExpr{Name: name}, nil
	}
}

func (p *exprParser) readName() string {
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if ch == '_' || ch == '-' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

// readBracketArgs reads "[pattern (; ints)?]". The pattern text runs to the
// matching close bracket, skipping string literals.
func (p *exprParser) readBracketArgs() (*pattern.Tree, []int, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '[' {
		return nil, nil, fmt.Errorf("core: expected [ at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	depth := 1
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '"':
			p.pos++
			for p.pos < len(p.src) && p.src[p.pos] != '"' {
				if p.src[p.pos] == '\\' {
					p.pos++
				}
				p.pos++
			}
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				inner := p.src[start:p.pos]
				p.pos++
				return parseBracketInner(inner)
			}
		}
		p.pos++
	}
	return nil, nil, fmt.Errorf("core: unterminated [ starting at offset %d", start-1)
}

func parseBracketInner(inner string) (*pattern.Tree, []int, error) {
	patSrc := inner
	var labels []int
	// The label list follows the last ';' that is outside any string.
	if i := lastTopLevelSemicolon(inner); i >= 0 {
		patSrc = inner[:i]
		for _, part := range strings.Split(inner[i+1:], ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			var n int
			if _, err := fmt.Sscanf(part, "%d", &n); err != nil {
				return nil, nil, fmt.Errorf("core: bad label %q in expression", part)
			}
			labels = append(labels, n)
		}
	}
	pat, err := pattern.Parse(patSrc)
	if err != nil {
		return nil, nil, err
	}
	return pat, labels, nil
}

func lastTopLevelSemicolon(s string) int {
	inStr := false
	last := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case ';':
			if !inStr {
				last = i
			}
		}
	}
	return last
}

func (p *exprParser) readParenExprs() ([]Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, fmt.Errorf("core: expected ( at offset %d", p.pos)
	}
	p.pos++
	var out []Expr
	for {
		e, err := p.parse()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("core: unterminated ( in expression")
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return out, nil
		default:
			return nil, fmt.Errorf("core: expected , or ) at offset %d", p.pos)
		}
	}
}
