package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ontology"
	"repro/internal/seo"
	"repro/internal/similarity"
)

// OntologySnapshot is one immutable version of the system's ontology state:
// the fused hierarchies, the similarity enhancement, the measure/ε they were
// built with, and the Ontology Maker byproducts queries consult. A snapshot
// is never mutated after installation — mutations build a successor with
// Version+1 and swap the atomic pointer, so any reader that pinned version N
// (System.Query pins at entry) keeps a consistent view while N+1 serves new
// arrivals. Caches embed Version in their keys, making invalidation a matter
// of key construction, exactly like collection generations.
type OntologySnapshot struct {
	// Version counts installs, starting at 1 for the first Build/Enhance.
	Version uint64

	FusedIsa  *ontology.Fusion
	FusedPart *ontology.Fusion
	SEO       *seo.SEO
	Measure   similarity.Measure
	Epsilon   float64

	// valueTags / valueTruncated are the Ontology Maker byproducts that used
	// to live as racily re-assigned System fields: per-tag "content values
	// were ontologized" marks (they make XPath similarity pre-filters sound)
	// and the MaxValueTerms truncation flag.
	valueTags      map[string]bool
	valueTruncated bool
}

// ValueTagged reports whether the Ontology Maker ontologized the content
// values of tag (which makes similarity pre-filters on that tag sound).
func (o *OntologySnapshot) ValueTagged(tag string) bool { return o.valueTags[tag] }

// ValueTruncated reports whether MaxValueTerms capped value ontologization.
func (o *OntologySnapshot) ValueTruncated() bool { return o.valueTruncated }

// ontoState is the shared, mutable cell behind a System's snapshot lineage.
// It lives behind a pointer so shallow System copies (query pinning,
// NoPlanner, server variants) all observe the same lineage; the atomic
// pointer itself must not be copied.
type ontoState struct {
	mu  sync.Mutex // serialises mutations; installs happen under it
	cur atomic.Pointer[OntologySnapshot]

	mutations        atomic.Uint64
	reclusterNanos   atomic.Int64
	reclusteredNodes atomic.Uint64
	lastComponent    atomic.Uint64
	lastDirty        atomic.Uint64
}

// OntologyCounters aggregates the live-mutation activity of a System, for
// /metrics and /v1/ontology.
type OntologyCounters struct {
	Mutations        uint64
	ReclusterSeconds float64
	ReclusteredNodes uint64
	LastComponent    uint64
	LastDirty        uint64
}

// Ontology returns the ontology snapshot this System view reads: the pinned
// snapshot inside a running query, otherwise the latest installed one. Nil
// before the first successful Build/Enhance.
func (s *System) Ontology() *OntologySnapshot {
	if s.pinned != nil {
		return s.pinned
	}
	if s.onto == nil {
		return nil
	}
	return s.onto.cur.Load()
}

// OntologyVersion returns the version of the snapshot this view reads, 0
// before the first Build.
func (s *System) OntologyVersion() uint64 {
	if snap := s.Ontology(); snap != nil {
		return snap.Version
	}
	return 0
}

// OntologyCounters returns cumulative live-mutation counters.
func (s *System) OntologyCounters() OntologyCounters {
	if s.onto == nil {
		return OntologyCounters{}
	}
	return OntologyCounters{
		Mutations:        s.onto.mutations.Load(),
		ReclusterSeconds: time.Duration(s.onto.reclusterNanos.Load()).Seconds(),
		ReclusteredNodes: s.onto.reclusteredNodes.Load(),
		LastComponent:    s.onto.lastComponent.Load(),
		LastDirty:        s.onto.lastDirty.Load(),
	}
}

// WithSnapshot returns a System view pinned to snap: Ontology() and the
// deprecated mirror fields read snap regardless of later installs. The view
// shares every other structure (database, planner, instances) with s. Query
// uses it to pin at entry; the server uses it for per-request measure/ε
// overlay variants.
func (s *System) WithSnapshot(snap *OntologySnapshot) *System {
	if snap == nil {
		return s
	}
	// Field-by-field rather than *s: the mirror fields of a live System are
	// rewritten by installs, so a whole-struct copy would race with them.
	return &System{
		DB:                s.DB,
		Types:             s.Types,
		Lexicon:           s.Lexicon,
		Instances:         s.Instances,
		ExtraConstraints:  s.ExtraConstraints,
		SEAOptions:        s.SEAOptions,
		MakerConfig:       s.MakerConfig,
		Parallelism:       s.Parallelism,
		Planner:           s.Planner,
		AdaptiveDisabled:  s.AdaptiveDisabled,
		DynamicSimilarity: s.DynamicSimilarity,
		onto:              s.onto,
		pinned:            snap,
		FusedIsa:          snap.FusedIsa,
		FusedPart:         snap.FusedPart,
		SEO:               snap.SEO,
		Measure:           snap.Measure,
		Epsilon:           snap.Epsilon,
		valueTags:         snap.valueTags,
		valueTruncated:    snap.valueTruncated,
	}
}

// installSnapshot publishes snap as the live state and syncs the deprecated
// mirror fields. Callers either hold s.onto.mu (live mutations) or are in
// the single-threaded build phase (Build/Enhance); concurrent queries never
// read the live System's mirror fields — they pin first.
func (s *System) installSnapshot(snap *OntologySnapshot) {
	if s.onto == nil {
		s.onto = &ontoState{}
	}
	s.onto.cur.Store(snap)
	s.FusedIsa = snap.FusedIsa
	s.FusedPart = snap.FusedPart
	s.SEO = snap.SEO
	s.Measure = snap.Measure
	s.Epsilon = snap.Epsilon
	s.valueTags = snap.valueTags
	s.valueTruncated = snap.valueTruncated
}

// SnapshotVariant re-enhances snap's fused isa hierarchy under a different
// measure/ε, returning a derived snapshot that keeps snap's version and
// fusions. Nothing is installed — variants are per-request overlays (the
// server caches them keyed by (Version, measure, ε), so a version bump
// invalidates them by key construction).
func (s *System) SnapshotVariant(snap *OntologySnapshot, m similarity.Measure, eps float64) (*OntologySnapshot, error) {
	if snap == nil || snap.FusedIsa == nil {
		return nil, fmt.Errorf("core: no fused ontology; run Build first")
	}
	opts := s.SEAOptions
	opts.Strings = fusedStringsOf(snap.FusedIsa)
	opts.CompatibilityFilter = true
	enhanced, err := seo.Enhance(snap.FusedIsa.Hierarchy, m, eps, opts)
	if err != nil {
		return nil, fmt.Errorf("core: similarity enhancement: %w", err)
	}
	v := *snap
	v.SEO = enhanced
	v.Measure = m
	v.Epsilon = eps
	return &v, nil
}

// MutationResult reports what one live ontology mutation did: the version it
// installed and the incremental-recluster work it took.
type MutationResult struct {
	// Version is the snapshot version after the mutation (unchanged when
	// Changed is false).
	Version uint64
	// Relation and Op echo the mutation ("isa"/"part-of"; "add-edge",
	// "retract-edge", "merge", "constraint").
	Relation string
	Op       string
	// Changed is false for no-op mutations (e.g. adding an existing edge).
	Changed bool
	// Recluster work (isa mutations only; part-of changes skip the SEA).
	DirtyNodes      int
	ComponentNodes  int
	TotalNodes      int
	ReusedClusters  int
	RebuiltClusters int
	SimChecks       int
	PairChecks      int
	// SEONodes is the cluster count of the new snapshot's SEO.
	SEONodes int
	Duration time.Duration
}

// AddEdge adds child ≤ parent to the named relation's fused hierarchy at
// runtime. Unknown terms enter the hierarchy as fresh runtime terms. For the
// isa relation the SEO is incrementally re-clustered (only the affected
// similarity component is re-examined); part-of edges update the fused
// part-of DAG only. A cycle-creating edge is an error and installs nothing.
func (s *System) AddEdge(relation, child, parent string) (*MutationResult, error) {
	return s.mutateOntology(relation, "add-edge", func(f *ontology.Fusion) (seo.Delta, bool, error) {
		nc, np, changed, err := f.AddTermEdge(child, parent, ontology.RuntimeSource)
		if err != nil || !changed {
			return seo.Delta{}, false, err
		}
		// Reachability changed only for pairs (u, v) with u ≤ nc, np ≤ v —
		// both endpoints inside Below(nc) ∪ Above(np) of the new hierarchy.
		dirty := append(f.Hierarchy.Below(nc), f.Hierarchy.Above(np)...)
		return seo.Delta{Dirty: dirty}, true, nil
	})
}

// RetractEdge removes the direct edge child ≤ parent from the named
// relation's fused hierarchy. Only Hasse edges can be retracted; an order
// that holds through intermediate terms keeps holding.
func (s *System) RetractEdge(relation, child, parent string) (*MutationResult, error) {
	return s.mutateOntology(relation, "retract-edge", func(f *ontology.Fusion) (seo.Delta, bool, error) {
		// The dirty set must cover pairs that LOSE reachability, so it is
		// computed on the pre-retraction hierarchy.
		nc, ok, err := resolveTerm(f, child)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("core: unknown term %q", child)
			}
			return seo.Delta{}, false, err
		}
		np, ok, err := resolveTerm(f, parent)
		if err != nil || !ok {
			if err == nil {
				err = fmt.Errorf("core: unknown term %q", parent)
			}
			return seo.Delta{}, false, err
		}
		dirty := append(f.Hierarchy.Below(nc), f.Hierarchy.Above(np)...)
		if _, _, err := f.RetractTermEdge(child, parent); err != nil {
			return seo.Delta{}, false, err
		}
		return seo.Delta{Dirty: dirty}, true, nil
	})
}

// AddConstraintLive applies one interoperation constraint to the live fused
// ontology: x ≤ y adds an edge, x = y merges the two fused nodes (with every
// node between them, as a re-Fuse would), and x ≠ y verifies the current
// fusion satisfies it (it changes nothing; a violated ≠ is an error). Unlike
// AddConstraint — which stages DBA constraints for the next full Build —
// this takes effect immediately on the snapshot lineage; a later full Build
// re-derives state from the documents and staged constraints only.
func (s *System) AddConstraintLive(relation string, c ontology.Constraint) (*MutationResult, error) {
	op := "constraint"
	return s.mutateOntology(relation, op, func(f *ontology.Fusion) (seo.Delta, bool, error) {
		switch {
		case c.Neq:
			nx, okx, err := resolveTerm(f, c.X.Term)
			if err != nil {
				return seo.Delta{}, false, err
			}
			ny, oky, err := resolveTerm(f, c.Y.Term)
			if err != nil {
				return seo.Delta{}, false, err
			}
			if okx && oky && nx == ny {
				return seo.Delta{}, false, fmt.Errorf("core: constraint %v violated: both terms sit in fused node %q", c, nx)
			}
			return seo.Delta{}, false, nil
		case c.Eq:
			merged, removed, err := f.MergeTerms(c.X.Term, c.Y.Term)
			if err != nil {
				return seo.Delta{}, false, err
			}
			// Any node whose ancestor/descendant name set changed is ordered
			// against the merged node (contraction only adds order).
			dirty := append(f.Hierarchy.Below(merged), f.Hierarchy.Above(merged)...)
			return seo.Delta{Dirty: dirty, Removed: removed}, true, nil
		default:
			src := c.X.Source
			if src < 0 {
				src = ontology.RuntimeSource
			}
			nc, np, changed, err := f.AddTermEdge(c.X.Term, c.Y.Term, src)
			if err != nil || !changed {
				return seo.Delta{}, false, err
			}
			dirty := append(f.Hierarchy.Below(nc), f.Hierarchy.Above(np)...)
			return seo.Delta{Dirty: dirty}, true, nil
		}
	})
}

func resolveTerm(f *ontology.Fusion, term string) (string, bool, error) {
	ns := f.NodesOf(term)
	switch len(ns) {
	case 0:
		return "", false, nil
	case 1:
		return ns[0], true, nil
	}
	return "", false, fmt.Errorf("core: term %q is ambiguous across fused nodes", term)
}

// mutateOntology is the shared live-mutation path: clone the relation's
// fusion, apply the change, incrementally re-cluster (isa only), and install
// the successor snapshot — all under the mutation lock, so concurrent
// mutations serialise while queries keep reading their pinned snapshots.
func (s *System) mutateOntology(relation, op string, apply func(*ontology.Fusion) (seo.Delta, bool, error)) (*MutationResult, error) {
	if s.pinned != nil {
		return nil, fmt.Errorf("core: cannot mutate a pinned snapshot view")
	}
	if relation != ontology.RelIsa && relation != ontology.RelPartOf {
		return nil, fmt.Errorf("core: unknown relation %q (want %q or %q)", relation, ontology.RelIsa, ontology.RelPartOf)
	}
	if s.onto == nil {
		return nil, fmt.Errorf("core: system not built (run Build first)")
	}
	s.onto.mu.Lock()
	defer s.onto.mu.Unlock()
	snap := s.onto.cur.Load()
	if snap == nil || snap.SEO == nil {
		return nil, fmt.Errorf("core: system not built (run Build first)")
	}
	t0 := time.Now()

	base := snap.FusedIsa
	if relation == ontology.RelPartOf {
		base = snap.FusedPart
	}
	f := base.Clone()
	delta, changed, err := apply(f)
	if err != nil {
		return nil, err
	}
	res := &MutationResult{
		Version:  snap.Version,
		Relation: relation,
		Op:       op,
		Changed:  changed,
		SEONodes: snap.SEO.NodeCount(),
	}
	if !changed {
		res.Duration = time.Since(t0)
		return res, nil
	}

	next := *snap
	next.Version = snap.Version + 1
	if relation == ontology.RelPartOf {
		// part-of does not feed the SEA; the fused DAG swap is the whole change.
		next.FusedPart = f
	} else {
		next.FusedIsa = f
		opts := s.SEAOptions
		opts.Strings = fusedStringsOf(f)
		opts.CompatibilityFilter = true
		enhanced, rst, err := seo.Recluster(snap.SEO, f.Hierarchy, snap.Measure, snap.Epsilon, opts, delta)
		if err != nil {
			return nil, fmt.Errorf("core: incremental similarity enhancement: %w", err)
		}
		next.SEO = enhanced
		res.DirtyNodes = rst.DirtyNodes
		res.ComponentNodes = rst.ComponentNodes
		res.TotalNodes = rst.TotalNodes
		res.ReusedClusters = rst.ReusedClusters
		res.RebuiltClusters = rst.RebuiltClusters
		res.SimChecks = rst.SimChecks
		res.PairChecks = rst.PairChecks
		res.SEONodes = enhanced.NodeCount()
		s.onto.reclusteredNodes.Add(uint64(rst.ComponentNodes))
		s.onto.lastComponent.Store(uint64(rst.ComponentNodes))
		s.onto.lastDirty.Store(uint64(rst.DirtyNodes))
	}
	s.installSnapshot(&next)
	res.Version = next.Version
	res.Duration = time.Since(t0)
	s.onto.mutations.Add(1)
	s.onto.reclusterNanos.Add(int64(res.Duration))
	return res, nil
}

// fusedStringsOf maps every fused node to the distinct bare terms it merged —
// the "set of strings contained in a node" of Definition 7.
func fusedStringsOf(f *ontology.Fusion) map[string][]string {
	out := make(map[string][]string, len(f.Members))
	for name, members := range f.Members {
		seen := map[string]bool{}
		for _, q := range members {
			if !seen[q.Term] {
				seen[q.Term] = true
				out[name] = append(out[name], q.Term)
			}
		}
	}
	return out
}
