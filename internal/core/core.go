// Package core is the TOSS system itself — the paper's primary contribution.
// It wires the substrates together exactly as the architecture of Section 3
// describes:
//
//   - the Ontology Maker (maker.go) associates an ontology with each
//     semistructured instance using the WordNet-lite lexicon and DBA rules,
//     derives interoperation constraints, and fuses the per-instance
//     ontologies into one canonical ontology (internal/ontology);
//   - the Similarity Enhancer (this file, Enhance) runs the SEA algorithm
//     (internal/seo) over the fused isa hierarchy to precompute the
//     similarity enhanced ontology;
//   - the Query Executor (exec.go, eval.go) implements the TOSS algebra of
//     Section 5.1 on top of the XML database (internal/xmldb), rewriting
//     pattern trees into XPath queries, executing them, and evaluating the
//     ontology- and similarity-aware selection conditions on the results.
package core

import (
	"fmt"

	"repro/internal/ontology"
	"repro/internal/planner"
	"repro/internal/seo"
	"repro/internal/similarity"
	"repro/internal/tree"
	"repro/internal/types"
	"repro/internal/wordnet"
	"repro/internal/xmldb"
)

// Instance is an ontology extended semistructured instance: a collection of
// XML documents plus its associated ontology (Section 5's OES instance; the
// ontology is attached by the Ontology Maker).
type Instance struct {
	Name string
	Col  *xmldb.Collection
	Ont  *ontology.Ontology
}

// System is a TOSS deployment: a set of instances over an XML database, the
// fused ontology, its similarity enhancement, and a type system.
type System struct {
	DB        *xmldb.DB
	Types     *types.System
	Lexicon   *wordnet.Lexicon
	Instances []*Instance

	// DBA-supplied interoperation constraints, appended to the derived
	// ones; keyed by relation name ("isa", "part-of").
	ExtraConstraints map[string][]ontology.Constraint

	// Fusion products (per relation) and the similarity enhancement of the
	// fused isa hierarchy.
	//
	// Deprecated: these are read-only mirrors of the snapshot last installed
	// by Build/Enhance, kept for source compatibility. They do not follow
	// live mutations observed by a concurrent reader — use Ontology() (or
	// the pinned view Query creates) instead; see snapshot.go.
	FusedIsa *ontology.Fusion
	// Deprecated: mirror of Ontology().FusedPart; see FusedIsa.
	FusedPart *ontology.Fusion
	// Deprecated: mirror of Ontology().SEO; see FusedIsa.
	SEO *seo.SEO
	// Deprecated: mirror of Ontology().Measure; see FusedIsa.
	Measure similarity.Measure
	// Deprecated: mirror of Ontology().Epsilon; see FusedIsa.
	Epsilon     float64
	SEAOptions  seo.Options
	MakerConfig MakerConfig

	// Parallelism caps the worker count for fan-out over candidate
	// documents during selection; values ≤ 1 keep evaluation sequential.
	// Results are identical either way (document order is preserved).
	Parallelism int

	// Planner drives cost-based execution decisions (candidate-intersection
	// order, index-vs-scan routing, join build side) from collection
	// statistics. On by default; set to nil to fall back to the fixed
	// heuristics (rewrite order, always-index, key-both-sides). Either way
	// the answer set is identical — the planner only reorders work.
	Planner *planner.Planner

	// AdaptiveDisabled turns off feedback-driven planning and mid-stream
	// re-optimization while keeping the static cost-based planner: estimates
	// come from statistics alone, no corrections are learned or applied, and
	// the streaming operators never re-plan. The escape hatch behind
	// `tossd -no-adaptive` and QueryRequest.NoAdaptive; answers are identical
	// either way — adaptivity only moves work.
	AdaptiveDisabled bool

	// DynamicSimilarity allows the ~ operator to fall back to a direct
	// measure comparison for terms the ontology does not know. It keeps the
	// operator total on ad-hoc strings (default), at the cost of disabling
	// the similarity hash join and some XPath pre-filters, which require
	// the SEO to enumerate all possible matches.
	DynamicSimilarity bool

	// valueTags records, per tag, that the Ontology Maker ontologized that
	// tag's content values — which makes XPath similarity pre-filters sound.
	// Mirror of the snapshot's set (the authoritative copy lives there so a
	// re-Build cannot race in-flight queries).
	valueTags map[string]bool
	// valueTruncated is set when MaxValueTerms capped value ontologization,
	// invalidating completeness-dependent optimisations.
	valueTruncated bool

	// onto is the shared snapshot lineage (see snapshot.go); pinned, when
	// non-nil, fixes this view to one snapshot for the duration of a query.
	onto   *ontoState
	pinned *OntologySnapshot
}

// NewSystem returns a system with an empty database, default type system and
// the default lexicon.
func NewSystem() *System {
	return &System{
		DB:                xmldb.New(),
		Types:             types.NewSystem(),
		Lexicon:           wordnet.Default(),
		ExtraConstraints:  map[string][]ontology.Constraint{},
		MakerConfig:       DefaultMakerConfig(),
		DynamicSimilarity: true,
		Planner:           planner.New(0),
		valueTags:         map[string]bool{},
		onto:              &ontoState{},
	}
}

// adaptive reports whether feedback-driven planning applies to this view:
// the planner is on and the adaptive layer has not been disabled (system-wide
// or per-query via QueryRequest.NoAdaptive).
func (s *System) adaptive() bool {
	return s.Planner != nil && !s.AdaptiveDisabled
}

// AddInstance creates a collection with the given name and registers it as
// an instance. Documents are added with the returned instance's Col.
func (s *System) AddInstance(name string) (*Instance, error) {
	for _, in := range s.Instances {
		if in.Name == name {
			return nil, fmt.Errorf("core: duplicate instance %q", name)
		}
	}
	in := &Instance{Name: name, Col: s.DB.CreateCollection(name)}
	s.Instances = append(s.Instances, in)
	return in, nil
}

// Instance returns the named instance, or nil.
func (s *System) Instance(name string) *Instance {
	for _, in := range s.Instances {
		if in.Name == name {
			return in
		}
	}
	return nil
}

// AddConstraint registers a DBA-supplied interoperation constraint for the
// given relation ("isa" or "part-of"). Sources are 1-based instance indices
// in registration order, matching the paper's x:i notation.
func (s *System) AddConstraint(relation string, c ontology.Constraint) {
	s.ExtraConstraints[relation] = append(s.ExtraConstraints[relation], c)
}

// Build runs the full precomputation pipeline: Ontology Maker on every
// instance, constraint derivation, fusion, and similarity enhancement with
// the given measure and threshold.
func (s *System) Build(measure similarity.Measure, epsilon float64) error {
	if err := s.MakeOntologies(); err != nil {
		return err
	}
	if err := s.Fuse(); err != nil {
		return err
	}
	return s.Enhance(measure, epsilon)
}

// MakeOntologies runs the Ontology Maker over every instance (see maker.go).
// It is re-runnable: adding documents after a Build and calling Build again
// refreshes the ontologies, the fusion and the SEO. The maker byproducts are
// accumulated in fresh maps and assigned once at the end, so a query running
// against the previous snapshot never observes a half-built value-tag set.
func (s *System) MakeOntologies() error {
	if len(s.Instances) == 0 {
		return fmt.Errorf("core: no instances registered")
	}
	mk := &makerState{valueTags: map[string]bool{}}
	for _, in := range s.Instances {
		in.Ont = s.makeOntology(in, mk)
	}
	s.valueTags = mk.valueTags
	s.valueTruncated = mk.valueTruncated
	return nil
}

// Fuse derives interoperation constraints and fuses the per-instance isa
// and part-of hierarchies into canonical fusions.
func (s *System) Fuse() error {
	if len(s.Instances) == 0 {
		return fmt.Errorf("core: no instances to fuse")
	}
	var isaH, partH []*ontology.Hierarchy
	for _, in := range s.Instances {
		if in.Ont == nil {
			return fmt.Errorf("core: instance %q has no ontology; run MakeOntologies first", in.Name)
		}
		isaH = append(isaH, in.Ont.Isa())
		partH = append(partH, in.Ont.PartOf())
	}
	isaC := append(s.deriveConstraints(isaH), s.ExtraConstraints[ontology.RelIsa]...)
	partC := append(s.deriveConstraints(partH), s.ExtraConstraints[ontology.RelPartOf]...)
	var err error
	if s.FusedIsa, err = ontology.Fuse(isaH, isaC); err != nil {
		return fmt.Errorf("core: fusing isa hierarchies: %w", err)
	}
	if s.FusedPart, err = ontology.Fuse(partH, partC); err != nil {
		return fmt.Errorf("core: fusing part-of hierarchies: %w", err)
	}
	return nil
}

// Enhance runs the Similarity Enhancer (SEA algorithm) over the fused isa
// hierarchy and installs the result as a new ontology snapshot (bumping the
// version; in-flight queries keep the snapshot they pinned). Build-phase
// only — it is not safe to run concurrently with other mutators; for
// runtime evolution use AddEdge/RetractEdge/AddConstraintLive.
func (s *System) Enhance(measure similarity.Measure, epsilon float64) error {
	if s.pinned != nil {
		return fmt.Errorf("core: cannot Enhance a pinned snapshot view (use SnapshotVariant)")
	}
	if s.FusedIsa == nil {
		return fmt.Errorf("core: no fused ontology; run Fuse first")
	}
	opts := s.SEAOptions
	opts.Strings = s.fusedNodeStrings()
	// The production pipeline clusters only order-compatible terms, which
	// guarantees a consistent enhancement exists (see seo.Options); callers
	// wanting the paper's strict Definition 8 semantics can run seo.Enhance
	// directly.
	opts.CompatibilityFilter = true
	enhanced, err := seo.Enhance(s.FusedIsa.Hierarchy, measure, epsilon, opts)
	if err != nil {
		return fmt.Errorf("core: similarity enhancement: %w", err)
	}
	s.installSnapshot(&OntologySnapshot{
		Version:        s.OntologyVersion() + 1,
		FusedIsa:       s.FusedIsa,
		FusedPart:      s.FusedPart,
		SEO:            enhanced,
		Measure:        measure,
		Epsilon:        epsilon,
		valueTags:      s.valueTags,
		valueTruncated: s.valueTruncated,
	})
	return nil
}

// fusedNodeStrings maps every fused isa node to the distinct bare terms it
// merged — the "set of strings contained in a node" of Definition 7.
func (s *System) fusedNodeStrings() map[string][]string {
	return fusedStringsOf(s.FusedIsa)
}

// VerifySEO independently checks the current SEO against Definition 8's
// conditions (see seo.Verify). Useful as a post-Build self-check and in
// tests.
func (s *System) VerifySEO() error {
	if s.SEO == nil || s.FusedIsa == nil {
		return fmt.Errorf("core: no SEO built")
	}
	return seo.Verify(s.FusedIsa.Hierarchy, s.Measure, s.Epsilon, s.SEO, s.fusedNodeStrings())
}

// OntologyTermCount reports the size of the fused isa ontology in terms, the
// quantity the paper's scalability experiments vary.
func (s *System) OntologyTermCount() int {
	if s.FusedIsa == nil {
		return 0
	}
	return s.FusedIsa.Hierarchy.NodeCount()
}

// NewTFIDFMeasure builds a corpus-weighted cosine measure from the contents
// of the given tags across every instance (all content when no tags are
// given). The returned measure can then be passed to Build or Enhance, so
// title-similarity queries weight rare words more than ubiquitous ones.
func (s *System) NewTFIDFMeasure(scale float64, tags ...string) *similarity.TFIDF {
	want := map[string]bool{}
	for _, t := range tags {
		want[t] = true
	}
	var docs []string
	for _, in := range s.Instances {
		for _, doc := range in.Col.Docs() {
			doc.Walk(func(n *tree.Node) bool {
				if n.Content != "" && (len(want) == 0 || want[n.Tag]) {
					docs = append(docs, n.Content)
				}
				return true
			})
		}
	}
	return similarity.NewTFIDF(scale, docs)
}

// Trees returns the document trees of the named instance.
func (s *System) Trees(instance string) ([]*tree.Tree, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	return in.Col.Docs(), nil
}
