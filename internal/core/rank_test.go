package core

import (
	"testing"

	"repro/internal/pattern"
)

func TestSelectRanked(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	ranked, err := s.SelectRanked("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked answers = %d, want 2 (both Ullman papers)", len(ranked))
	}
	// The exact-match paper ranks first with score 0; the J. Ullman variant
	// follows with a positive score.
	if ranked[0].Score != 0 {
		t.Errorf("best score = %g, want 0", ranked[0].Score)
	}
	if ranked[1].Score <= 0 {
		t.Errorf("second score = %g, want > 0", ranked[1].Score)
	}
	if got := ranked[0].Tree.Root.ChildContent("author"); got != "Jeffrey D. Ullman" {
		t.Errorf("best answer author = %q", got)
	}
	if got := ranked[1].Tree.Root.ChildContent("author"); got != "J. Ullman" {
		t.Errorf("second answer author = %q", got)
	}
	// Scores ascend.
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score < ranked[i-1].Score {
			t.Error("scores not ascending")
		}
	}
}

func TestSelectRankedNoSimCondition(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year"`)
	ranked, err := s.SelectRanked("dblp", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d, want 3", len(ranked))
	}
	for _, r := range ranked {
		if r.Score != 0 {
			t.Errorf("score without ~ conditions = %g, want 0", r.Score)
		}
	}
}

func TestSelectRankedErrors(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 :: #1.tag = "inproceedings"`)
	if _, err := s.SelectRanked("ghost", p, nil); err == nil {
		t.Error("unknown instance must fail")
	}
	unbuilt := NewSystem()
	if _, err := unbuilt.AddInstance("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := unbuilt.SelectRanked("x", p, nil); err == nil {
		t.Error("unbuilt system must fail")
	}
}

func TestSelectRankedAgreesWithSelect(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Elisa Bertino"`)
	ranked, err := s.SelectRanked("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(plain) {
		t.Errorf("ranked %d vs plain %d answers", len(ranked), len(plain))
	}
}
