package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/tree"
)

// Plan describes how the Query Executor will run a selection: the rewritten
// XPath pre-filters, how many documents survive them, and which conditions
// are enforced only by the algebra-level post-filter.
type Plan struct {
	Instance      string
	Pattern       string
	XPaths        []string
	TotalDocs     int
	CandidateDocs int
	// PostFilterAtoms lists the atomic conditions the rewrite could not
	// compile into XPath (they are checked during embedding search).
	PostFilterAtoms []string
	// SimilarityExpansions maps each ~ literal that was expanded to the
	// number of SEO-cluster strings it expanded into.
	SimilarityExpansions map[string]int
	// TypeErrors carries static well-typedness findings (advisory).
	TypeErrors []TypeError
}

// Explain builds the execution plan for a selection without running it.
func (s *System) Explain(instance string, p *pattern.Tree) (*Plan, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	paths := s.RewritePattern(p)
	plan := s.planSkeleton(instance, p)
	plan.TotalDocs = in.Col.DocCount()
	for _, path := range paths {
		plan.XPaths = append(plan.XPaths, path.String())
	}
	plan.CandidateDocs = len(s.CandidateDocs(in.Col, paths))
	return plan, nil
}

// planSkeleton fills the static (execution-free) parts of a plan: pattern
// rendering, post-filter analysis, expansion sizes and type warnings.
func (s *System) planSkeleton(instance string, p *pattern.Tree) *Plan {
	plan := &Plan{
		Instance:             instance,
		Pattern:              p.String(),
		SimilarityExpansions: map[string]int{},
		TypeErrors:           s.CheckWellTyped(p),
	}
	compiled := map[string]bool{}
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		attr, lit, op, ok := normalizeAtom(a)
		if !ok {
			continue
		}
		switch {
		case attr == "tag" && op == pattern.OpEq:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpEq && lit != Wildcard:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpSim && s.simRewriteSound("", lit):
			// Tag-specific soundness was already decided during rewriting;
			// report the expansion size regardless so the plan shows what
			// the SEO knows about the literal.
		}
		if op == pattern.OpSim {
			plan.SimilarityExpansions[lit] = len(s.SimilarStrings(lit))
		}
	}
	for _, a := range pattern.Atoms(p.Cond) {
		if !compiled[a.String()] {
			plan.PostFilterAtoms = append(plan.PostFilterAtoms, a.String())
		}
	}
	return plan
}

// AnalyzedPlan pairs the static plan with the actual execution statistics of
// one run — the executor's EXPLAIN ANALYZE.
type AnalyzedPlan struct {
	Plan  *Plan
	Stats *ExecStats
}

// ExplainAnalyze runs the selection and returns the plan annotated with
// actuals (routing decisions, candidate counts, selectivity, timings)
// alongside the answers.
func (s *System) ExplainAnalyze(instance string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	return s.ExplainAnalyzeContext(context.Background(), instance, p, sl)
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation (see
// SelectContext).
func (s *System) ExplainAnalyzeContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	out, st, err := s.SelectTracedContext(ctx, instance, p, sl)
	if err != nil {
		return nil, nil, err
	}
	plan := s.planSkeleton(instance, p)
	plan.TotalDocs = st.TotalDocs
	plan.CandidateDocs = st.CandidateDocs
	for _, pt := range st.Paths {
		plan.XPaths = append(plan.XPaths, pt.XPath)
	}
	return &AnalyzedPlan{Plan: plan, Stats: st}, out, nil
}

// ExplainAnalyzeJoin runs a condition join and returns the annotated plan
// (per-side pre-filter stats, pairing counts, timings) alongside the answers.
func (s *System) ExplainAnalyzeJoin(left, right string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	return s.ExplainAnalyzeJoinContext(context.Background(), left, right, p, sl)
}

// ExplainAnalyzeJoinContext is ExplainAnalyzeJoin with cancellation (see
// JoinContext).
func (s *System) ExplainAnalyzeJoinContext(ctx context.Context, left, right string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	out, st, err := s.JoinTracedContext(ctx, left, right, p, sl)
	if err != nil {
		return nil, nil, err
	}
	plan := s.planSkeleton(left+"⨝"+right, p)
	plan.TotalDocs = st.TotalDocs
	plan.CandidateDocs = st.CandidateDocs
	for _, pt := range st.Paths {
		plan.XPaths = append(plan.XPaths, pt.XPath)
	}
	return &AnalyzedPlan{Plan: plan, Stats: st}, out, nil
}

// String renders the analyzed plan: the static plan context followed by the
// execution trace with actual counts and per-stage timings.
func (ap *AnalyzedPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE: %s on %s\n", ap.Stats.Op, ap.Plan.Instance)
	fmt.Fprintf(&b, "pattern: %s\n", ap.Plan.Pattern)
	b.WriteString(ap.Stats.String())
	if len(ap.Plan.PostFilterAtoms) > 0 {
		b.WriteString("post-filtered conditions:\n")
		for _, a := range ap.Plan.PostFilterAtoms {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	for _, e := range ap.Plan.TypeErrors {
		fmt.Fprintf(&b, "type warning: %s\n", e)
	}
	return b.String()
}

// String renders the plan for humans.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "selection on %s\n", p.Instance)
	fmt.Fprintf(&b, "pattern: %s\n", p.Pattern)
	if len(p.XPaths) == 0 {
		b.WriteString("pre-filter: none (full scan)\n")
	} else {
		b.WriteString("pre-filter XPath queries:\n")
		for _, q := range p.XPaths {
			fmt.Fprintf(&b, "  %s\n", q)
		}
	}
	fmt.Fprintf(&b, "candidate documents: %d of %d\n", p.CandidateDocs, p.TotalDocs)
	if len(p.SimilarityExpansions) > 0 {
		b.WriteString("similarity expansions:\n")
		for lit, n := range p.SimilarityExpansions {
			fmt.Fprintf(&b, "  %q -> %d cluster string(s)\n", lit, n)
		}
	}
	if len(p.PostFilterAtoms) > 0 {
		b.WriteString("post-filtered conditions:\n")
		for _, a := range p.PostFilterAtoms {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	for _, e := range p.TypeErrors {
		fmt.Fprintf(&b, "type warning: %s\n", e)
	}
	return b.String()
}
