package core

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// Plan describes how the Query Executor will run a selection: the rewritten
// XPath pre-filters, how many documents survive them, and which conditions
// are enforced only by the algebra-level post-filter.
type Plan struct {
	Instance      string
	Pattern       string
	XPaths        []string
	TotalDocs     int
	CandidateDocs int
	// PostFilterAtoms lists the atomic conditions the rewrite could not
	// compile into XPath (they are checked during embedding search).
	PostFilterAtoms []string
	// SimilarityExpansions maps each ~ literal that was expanded to the
	// number of SEO-cluster strings it expanded into.
	SimilarityExpansions map[string]int
	// TypeErrors carries static well-typedness findings (advisory).
	TypeErrors []TypeError
}

// Explain builds the execution plan for a selection without running it.
func (s *System) Explain(instance string, p *pattern.Tree) (*Plan, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	paths := s.RewritePattern(p)
	plan := &Plan{
		Instance:             instance,
		Pattern:              p.String(),
		TotalDocs:            in.Col.DocCount(),
		SimilarityExpansions: map[string]int{},
		TypeErrors:           s.CheckWellTyped(p),
	}
	for _, path := range paths {
		plan.XPaths = append(plan.XPaths, path.String())
	}
	plan.CandidateDocs = len(s.CandidateDocs(in.Col, paths))

	compiled := map[string]bool{}
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		attr, lit, op, ok := normalizeAtom(a)
		if !ok {
			continue
		}
		switch {
		case attr == "tag" && op == pattern.OpEq:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpEq && lit != Wildcard:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpSim && s.simRewriteSound("", lit):
			// Tag-specific soundness was already decided during rewriting;
			// report the expansion size regardless so the plan shows what
			// the SEO knows about the literal.
		}
		if op == pattern.OpSim {
			plan.SimilarityExpansions[lit] = len(s.SimilarStrings(lit))
		}
	}
	for _, a := range pattern.Atoms(p.Cond) {
		if !compiled[a.String()] {
			plan.PostFilterAtoms = append(plan.PostFilterAtoms, a.String())
		}
	}
	return plan, nil
}

// String renders the plan for humans.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "selection on %s\n", p.Instance)
	fmt.Fprintf(&b, "pattern: %s\n", p.Pattern)
	if len(p.XPaths) == 0 {
		b.WriteString("pre-filter: none (full scan)\n")
	} else {
		b.WriteString("pre-filter XPath queries:\n")
		for _, q := range p.XPaths {
			fmt.Fprintf(&b, "  %s\n", q)
		}
	}
	fmt.Fprintf(&b, "candidate documents: %d of %d\n", p.CandidateDocs, p.TotalDocs)
	if len(p.SimilarityExpansions) > 0 {
		b.WriteString("similarity expansions:\n")
		for lit, n := range p.SimilarityExpansions {
			fmt.Fprintf(&b, "  %q -> %d cluster string(s)\n", lit, n)
		}
	}
	if len(p.PostFilterAtoms) > 0 {
		b.WriteString("post-filtered conditions:\n")
		for _, a := range p.PostFilterAtoms {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	for _, e := range p.TypeErrors {
		fmt.Fprintf(&b, "type warning: %s\n", e)
	}
	return b.String()
}
