package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/tree"
)

// Plan describes how the Query Executor will run a selection: the rewritten
// XPath pre-filters, how many documents survive them, and which conditions
// are enforced only by the algebra-level post-filter.
type Plan struct {
	Instance      string
	Pattern       string
	XPaths        []string
	TotalDocs     int
	CandidateDocs int
	// PostFilterAtoms lists the atomic conditions the rewrite could not
	// compile into XPath (they are checked during embedding search).
	PostFilterAtoms []string
	// SimilarityExpansions maps each ~ literal that was expanded to the
	// number of SEO-cluster strings it expanded into.
	SimilarityExpansions map[string]int
	// NodeEstimates maps each pattern-node label to the planner's estimate
	// of how many stored nodes can be its image (tag atoms fix the tag,
	// content conditions narrow it; ~ literals count their SEO cluster).
	// Nil when the planner is off or the instance is unknown (joins).
	NodeEstimates map[int]float64
	// TypeErrors carries static well-typedness findings (advisory).
	TypeErrors []TypeError
}

// Explain builds the execution plan for a selection without running it.
func (s *System) Explain(instance string, p *pattern.Tree) (*Plan, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	paths := s.RewritePattern(p)
	plan := s.planSkeleton(instance, p)
	plan.NodeEstimates = s.estimatePatternNodes(in, p)
	plan.TotalDocs = in.Col.DocCount()
	for _, path := range paths {
		plan.XPaths = append(plan.XPaths, path.String())
	}
	plan.CandidateDocs = len(s.CandidateDocs(in.Col, paths))
	return plan, nil
}

// planSkeleton fills the static (execution-free) parts of a plan: pattern
// rendering, post-filter analysis, expansion sizes and type warnings.
func (s *System) planSkeleton(instance string, p *pattern.Tree) *Plan {
	plan := &Plan{
		Instance:             instance,
		Pattern:              p.String(),
		SimilarityExpansions: map[string]int{},
		TypeErrors:           s.CheckWellTyped(p),
	}
	compiled := map[string]bool{}
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		attr, lit, op, ok := normalizeAtom(a)
		if !ok {
			continue
		}
		switch {
		case attr == "tag" && op == pattern.OpEq:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpEq && lit != Wildcard:
			compiled[a.String()] = true
		case attr == "content" && op == pattern.OpSim && s.simRewriteSound("", lit):
			// Tag-specific soundness was already decided during rewriting;
			// report the expansion size regardless so the plan shows what
			// the SEO knows about the literal.
		}
		if op == pattern.OpSim {
			plan.SimilarityExpansions[lit] = len(s.SimilarStrings(lit))
		}
	}
	for _, a := range pattern.Atoms(p.Cond) {
		if !compiled[a.String()] {
			plan.PostFilterAtoms = append(plan.PostFilterAtoms, a.String())
		}
	}
	return plan
}

// estimatePatternNodes runs the planner's per-condition cardinality
// estimator over the pattern's conjunctive spine: each labelled node starts
// at the node count of its tag (every node for an unconstrained label) and
// content conditions narrow it via planner.CondEstimate — with ~ literals
// expanded to their SEO clusters first, so the cluster size drives the
// estimate. Returns nil when the planner is off.
func (s *System) estimatePatternNodes(in *Instance, p *pattern.Tree) map[int]float64 {
	if s.Planner == nil || in == nil {
		return nil
	}
	st := in.Col.Stats()
	tags := map[int]string{}
	labels := p.Labels()
	for _, l := range labels {
		tags[l] = "*"
	}
	type contentCond struct {
		label int
		op    pattern.Op
		lit   string
	}
	var conds []contentCond
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		attr, lit, op, ok := normalizeAtom(a)
		if !ok || a.X.Kind != pattern.TermAttr {
			continue
		}
		switch attr {
		case "tag":
			if op == pattern.OpEq {
				tags[a.X.Label] = lit
			}
		case "content":
			conds = append(conds, contentCond{a.X.Label, op, lit})
		}
	}
	out := make(map[int]float64, len(labels))
	for _, l := range labels {
		tag := tags[l]
		base := float64(st.Nodes)
		if tag != "*" {
			base = float64(st.TagEstimate(tag).Nodes)
		}
		out[l] = base
	}
	for _, c := range conds {
		tag := tags[c.label]
		lits := []string{c.lit}
		if c.op == pattern.OpSim {
			if exp := s.SimilarStrings(c.lit); len(exp) > 0 {
				lits = exp
			}
		}
		est := planner.CondEstimate(st, tag, string(c.op), lits)
		if est < out[c.label] {
			out[c.label] = est
		}
	}
	return out
}

// AnalyzedPlan pairs the static plan with the actual execution statistics of
// one run — the executor's EXPLAIN ANALYZE.
type AnalyzedPlan struct {
	Plan  *Plan
	Stats *ExecStats
}

// ExplainAnalyze runs the selection and returns the plan annotated with
// actuals (routing decisions, candidate counts, selectivity, timings)
// alongside the answers.
//
// Deprecated: use Query with Analyze set.
func (s *System) ExplainAnalyze(instance string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	return s.ExplainAnalyzeContext(context.Background(), instance, p, sl)
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation.
//
// Deprecated: use Query with Analyze set.
func (s *System) ExplainAnalyzeContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Analyze: true})
	if err != nil {
		return nil, nil, err
	}
	return &AnalyzedPlan{Plan: res.Plan, Stats: res.Stats}, res.Answers, nil
}

// ExplainAnalyzeJoin runs a condition join and returns the annotated plan
// (per-side pre-filter stats, pairing counts, timings) alongside the answers.
//
// Deprecated: use Query with Right and Analyze set.
func (s *System) ExplainAnalyzeJoin(left, right string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	return s.ExplainAnalyzeJoinContext(context.Background(), left, right, p, sl)
}

// ExplainAnalyzeJoinContext is ExplainAnalyzeJoin with cancellation.
//
// Deprecated: use Query with Right and Analyze set.
func (s *System) ExplainAnalyzeJoinContext(ctx context.Context, left, right string, p *pattern.Tree, sl []int) (*AnalyzedPlan, []*tree.Tree, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: left, Right: right, Adorn: sl, Analyze: true})
	if err != nil {
		return nil, nil, err
	}
	return &AnalyzedPlan{Plan: res.Plan, Stats: res.Stats}, res.Answers, nil
}

// String renders the analyzed plan: the static plan context followed by the
// execution trace with actual counts and per-stage timings.
func (ap *AnalyzedPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE: %s on %s\n", ap.Stats.Op, ap.Plan.Instance)
	fmt.Fprintf(&b, "pattern: %s\n", ap.Plan.Pattern)
	writeNodeEstimates(&b, ap.Plan.NodeEstimates)
	b.WriteString(ap.Stats.String())
	if len(ap.Plan.PostFilterAtoms) > 0 {
		b.WriteString("post-filtered conditions:\n")
		for _, a := range ap.Plan.PostFilterAtoms {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	for _, e := range ap.Plan.TypeErrors {
		fmt.Fprintf(&b, "type warning: %s\n", e)
	}
	return b.String()
}

// writeNodeEstimates renders the per-pattern-node cardinality estimates as
// "plan:" lines (one per label, sorted).
func writeNodeEstimates(b *strings.Builder, est map[int]float64) {
	if len(est) == 0 {
		return
	}
	labels := make([]int, 0, len(est))
	for l := range est {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("#%d≈%.1f", l, est[l])
	}
	fmt.Fprintf(b, "plan: node estimates (matching nodes): %s\n", strings.Join(parts, " "))
}

// String renders the plan for humans.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "selection on %s\n", p.Instance)
	fmt.Fprintf(&b, "pattern: %s\n", p.Pattern)
	if len(p.XPaths) == 0 {
		b.WriteString("pre-filter: none (full scan)\n")
	} else {
		b.WriteString("pre-filter XPath queries:\n")
		for _, q := range p.XPaths {
			fmt.Fprintf(&b, "  %s\n", q)
		}
	}
	fmt.Fprintf(&b, "candidate documents: %d of %d\n", p.CandidateDocs, p.TotalDocs)
	writeNodeEstimates(&b, p.NodeEstimates)
	if len(p.SimilarityExpansions) > 0 {
		b.WriteString("similarity expansions:\n")
		for lit, n := range p.SimilarityExpansions {
			fmt.Fprintf(&b, "  %q -> %d cluster string(s)\n", lit, n)
		}
	}
	if len(p.PostFilterAtoms) > 0 {
		b.WriteString("post-filtered conditions:\n")
		for _, a := range p.PostFilterAtoms {
			fmt.Fprintf(&b, "  %s\n", a)
		}
	}
	for _, e := range p.TypeErrors {
		fmt.Fprintf(&b, "type warning: %s\n", e)
	}
	return b.String()
}
