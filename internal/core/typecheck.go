package core

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// TypeError describes one ill-typed atomic condition.
type TypeError struct {
	Atom   string
	Reason string
}

func (e TypeError) String() string { return e.Atom + ": " + e.Reason }

// CheckWellTyped statically checks a pattern's selection condition against
// the system's type system, per Section 5.1.1: a comparison X op Y with op ∈
// {=, ≠, ≤, ≥, <, >} is well-typed iff X and Y have a least common supertype
// τ and the conversion functions type(X)→τ and type(Y)→τ exist; conditions
// with other operators are always well-typed, except that instance_of /
// subtype_of need their type operand to name a registered type. Atoms
// involving node attributes are skipped statically — an attribute's type
// comes from the instance, so the same rules apply dynamically during
// evaluation instead.
//
// A nil return means the condition is well-typed.
func (s *System) CheckWellTyped(p *pattern.Tree) []TypeError {
	var errs []TypeError
	for _, a := range pattern.Atoms(p.Cond) {
		switch a.Op {
		case pattern.OpEq, pattern.OpNe, pattern.OpLe, pattern.OpGe, pattern.OpLt, pattern.OpGt:
			tx := s.staticType(a.X)
			ty := s.staticType(a.Y)
			if tx == "" || ty == "" {
				// A node attribute's type is only known at evaluation time;
				// the dynamic path re-checks there.
				continue
			}
			if !s.Types.Has(tx) {
				errs = append(errs, TypeError{a.String(), fmt.Sprintf("unknown type %q", tx)})
				continue
			}
			if !s.Types.Has(ty) {
				errs = append(errs, TypeError{a.String(), fmt.Sprintf("unknown type %q", ty)})
				continue
			}
			common, ok := s.Types.LeastCommonSupertype(tx, ty)
			if !ok {
				errs = append(errs, TypeError{a.String(), fmt.Sprintf("no least common supertype of %q and %q", tx, ty)})
				continue
			}
			if !s.Types.CanConvert(tx, common) || !s.Types.CanConvert(ty, common) {
				errs = append(errs, TypeError{a.String(), fmt.Sprintf("missing conversion into common supertype %q", common)})
			}
			// Typed literals must lie in their declared domain.
			for _, term := range []pattern.Term{a.X, a.Y} {
				if term.Kind == pattern.TermValue && term.Type != "" && term.Type != "string" &&
					!s.Types.InDomain(term.Value, term.Type) {
					errs = append(errs, TypeError{a.String(), fmt.Sprintf("literal %q is not in dom(%s)", term.Value, term.Type)})
				}
			}
		case pattern.OpInstanceOf, pattern.OpSubtypeOf:
			if name, ok := typeName(a.Y); ok && !s.Types.Has(name) {
				errs = append(errs, TypeError{a.String(), fmt.Sprintf("right operand %q is not a registered type", name)})
			}
			if a.Op == pattern.OpSubtypeOf {
				if name, ok := typeName(a.X); ok && !s.Types.Has(name) {
					errs = append(errs, TypeError{a.String(), fmt.Sprintf("left operand %q is not a registered type", name)})
				}
			}
		}
	}
	return errs
}

// staticType returns the statically-known type of a term; node attributes
// have none (their types come from the instance at evaluation time).
func (s *System) staticType(t pattern.Term) string {
	switch t.Kind {
	case pattern.TermValue:
		if t.Type == "" {
			return "string"
		}
		return t.Type
	case pattern.TermType:
		return t.Type
	default: // TermAttr
		return ""
	}
}

// typeName extracts the type name a term denotes statically, when it does.
func typeName(t pattern.Term) (string, bool) {
	switch t.Kind {
	case pattern.TermType:
		return t.Type, true
	case pattern.TermValue:
		return t.Value, true
	default:
		return "", false
	}
}

// FormatTypeErrors renders the error list, one per line.
func FormatTypeErrors(errs []TypeError) string {
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.String()
	}
	return strings.Join(parts, "\n")
}
