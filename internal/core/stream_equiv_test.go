package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// TestStreamedEqualsMaterializedQuick is the streaming-equivalence property:
// for random patterns, at shard counts 1, 2 and 7, planner on and off, the
// streamed execution must return the same documents in the same order as the
// materialized path, and a limited query must return exactly the prefix of
// the unlimited answer list (with LimitHit reporting whether the limit-th
// answer exists). The corpora are large enough (40 documents) that limited
// runs cross MinStreamScanDocs and actually exercise the stream-scan
// pipeline, not just the materialized limit operator.
func TestStreamedEqualsMaterializedQuick(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	systems := make([]*System, len(shardCounts))
	var corpus *datagen.Corpus
	for i, n := range shardCounts {
		systems[i], corpus = buildShardedJoinSystem(t, 40, 1, n)
	}
	authors := make([]string, 0, len(corpus.Authors))
	for _, a := range corpus.Authors {
		authors = append(authors, a.Canonical())
	}
	years := []string{"1999", "2000", "2001", "2002", "2003"}
	ctx := context.Background()

	f := func(aIdx, yIdx, opSel, shape, limSel uint8) bool {
		author := authors[int(aIdx)%len(authors)]
		year := years[int(yIdx)%len(years)]
		ops := []string{"=", "~", "contains"}
		op := ops[int(opSel)%len(ops)]

		var src string
		switch shape % 3 {
		case 0:
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content %s %q`, op, author)
		case 1:
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content %s %q & #3.content = %q`, op, author, year)
		default:
			// Unselective: every document answers, so limit pushdown has a
			// long prefix to cut.
			src = `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`
		}
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}

		ref, err := systems[0].Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
		if err != nil {
			t.Fatalf("%s: reference: %v", src, err)
		}
		for i, s := range systems {
			for _, noPlanner := range []bool{false, true} {
				base := QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoPlanner: noPlanner}

				// Streamed full result ≡ materialized full result.
				streamReq := base
				streamReq.Stream = true
				res, err := s.Query(ctx, streamReq)
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t stream: %v", src, shardCounts[i], noPlanner, err)
				}
				got, err := drainStream(ctx, res.Stream)
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t drain: %v", src, shardCounts[i], noPlanner, err)
				}
				if !sameTrees(ref.Answers, got) {
					t.Logf("%s: shards=%d noPlanner=%t: streamed %d answers vs materialized %d",
						src, shardCounts[i], noPlanner, len(got), len(ref.Answers))
					return false
				}

				// Limited ≡ prefix of unlimited, at a random limit.
				limit := 1 + int(limSel)%(len(ref.Answers)+2)
				limReq := base
				limReq.Limit = limit
				lres, err := s.Query(ctx, limReq)
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t limit=%d: %v", src, shardCounts[i], noPlanner, limit, err)
				}
				want := ref.Answers
				if limit < len(want) {
					want = want[:limit]
				}
				if !sameTrees(want, lres.Answers) {
					t.Logf("%s: shards=%d noPlanner=%t limit=%d: %d answers, want prefix of %d",
						src, shardCounts[i], noPlanner, limit, len(lres.Answers), len(ref.Answers))
					return false
				}
				if wantHit := len(ref.Answers) >= limit; lres.LimitHit != wantHit {
					t.Logf("%s: shards=%d noPlanner=%t limit=%d: LimitHit=%t, want %t",
						src, shardCounts[i], noPlanner, limit, lres.LimitHit, wantHit)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(43)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedJoinEqualsMaterialized drives the same property through the
// join path: streamed (probe-side streaming, right side built) joins must
// produce the materialized join's answers in its order, and a limited join
// is a strict prefix.
func TestStreamedJoinEqualsMaterialized(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	joinSrc := fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag)
	jp := pattern.MustParse(joinSrc)
	ctx := context.Background()

	var ref []*tree.Tree
	for _, n := range shardCounts {
		s, _ := buildShardedJoinSystem(t, 40, 2, n)
		full, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(full.Answers) == 0 {
			t.Fatal("join matched nothing — test corpus broken")
		}
		if ref == nil {
			ref = full.Answers
		} else if !sameTrees(ref, full.Answers) {
			t.Fatalf("shards=%d: materialized join differs from 1-shard reference", n)
		}

		for _, noPlanner := range []bool{false, true} {
			sres, err := s.Query(ctx, QueryRequest{
				Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3},
				NoPlanner: noPlanner, Stream: true,
			})
			if err != nil {
				t.Fatalf("shards=%d noPlanner=%t stream: %v", n, noPlanner, err)
			}
			got, err := drainStream(ctx, sres.Stream)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTrees(ref, got) {
				t.Errorf("shards=%d noPlanner=%t: streamed join %d answers differ from materialized %d",
					n, noPlanner, len(got), len(ref))
			}

			for _, limit := range []int{1, 2, len(ref), len(ref) + 3} {
				lres, err := s.Query(ctx, QueryRequest{
					Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3},
					NoPlanner: noPlanner, Limit: limit,
				})
				if err != nil {
					t.Fatalf("shards=%d limit=%d: %v", n, limit, err)
				}
				want := ref
				if limit < len(want) {
					want = want[:limit]
				}
				if !sameTrees(want, lres.Answers) {
					t.Errorf("shards=%d noPlanner=%t limit=%d: limited join is not a prefix (%d answers, ref %d)",
						n, noPlanner, limit, len(lres.Answers), len(ref))
				}
				if wantHit := len(ref) >= limit; lres.LimitHit != wantHit {
					t.Errorf("shards=%d noPlanner=%t limit=%d: LimitHit=%t want %t",
						n, noPlanner, limit, lres.LimitHit, wantHit)
				}
			}
		}
	}
}

// TestRankedTopKEqualsFullSort: the bounded top-K heap must return exactly
// the prefix of the full stable-sorted ranking — same trees, same scores,
// same tie-breaks.
func TestRankedTopKEqualsFullSort(t *testing.T) {
	s, corpus := buildShardedJoinSystem(t, 40, 2, 4)
	author := corpus.Authors[0].Canonical()
	p := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author))
	ctx := context.Background()

	full, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Ranked) < 2 {
		t.Fatalf("want >= 2 ranked answers, got %d", len(full.Ranked))
	}
	for _, limit := range []int{1, 2, len(full.Ranked), len(full.Ranked) + 5} {
		lim, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		want := full.Ranked
		if limit < len(want) {
			want = want[:limit]
		}
		if len(lim.Ranked) != len(want) {
			t.Fatalf("limit=%d: got %d ranked answers, want %d", limit, len(lim.Ranked), len(want))
		}
		for i := range want {
			if lim.Ranked[i].Score != want[i].Score || !tree.Equal(lim.Ranked[i].Tree, want[i].Tree) {
				t.Fatalf("limit=%d: rank %d differs (score %g vs %g)", limit, i, lim.Ranked[i].Score, want[i].Score)
			}
		}
		if wantHit := len(full.Ranked) > limit; lim.LimitHit != wantHit {
			t.Errorf("limit=%d: LimitHit=%t, want %t", limit, lim.LimitHit, wantHit)
		}
	}
}

// TestStreamScanEngagesAndScansFewerDocs pins the point of the whole
// refactor: a limit-10 selection over a large collection must route through
// the streaming shard scan, stop well short of the full collection, and
// report per-operator estimated-vs-actual rows in the trace.
func TestStreamScanEngagesAndScansFewerDocs(t *testing.T) {
	s, _ := buildShardedJoinSystem(t, 60, 1, 4)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`)
	ctx := context.Background()

	for _, noPlanner := range []bool{false, true} {
		res, err := s.Query(ctx, QueryRequest{
			Pattern: p, Instance: "dblp", Adorn: []int{1},
			Limit: 10, Trace: true, NoPlanner: noPlanner,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if st.ScanMode != ScanModeStream {
			t.Fatalf("noPlanner=%t: scan mode %q, want %q", noPlanner, st.ScanMode, ScanModeStream)
		}
		if len(res.Answers) != 10 || !res.LimitHit {
			t.Fatalf("noPlanner=%t: %d answers, hit=%t", noPlanner, len(res.Answers), res.LimitHit)
		}
		if st.DocsScanned >= st.TotalDocs {
			t.Errorf("noPlanner=%t: scanned %d of %d docs — limit pushdown did not cut the scan",
				noPlanner, st.DocsScanned, st.TotalDocs)
		}
		if len(st.Operators) == 0 {
			t.Error("stream-scan trace missing per-operator rows")
		}
		for _, op := range st.Operators {
			if op.Name == "limit" && op.Actual != 10 {
				t.Errorf("limit operator actual=%d, want 10", op.Actual)
			}
		}
		rendered := st.String()
		if !strings.Contains(rendered, "stream: mode=stream-scan") ||
			!strings.Contains(rendered, "estimated=") {
			t.Errorf("stream-scan trace rendering incomplete:\n%s", rendered)
		}
	}
}

// TestLimitTraceRendersIdentically pins the satellite requirement that the
// materialized limit path (unsharded, small collection — below
// MinStreamScanDocs) still renders the exact LimitHit trace the historical
// SelectN produced: sequential evaluation on one worker, the same
// per-counter values, the same "limit N hit" line, and no streaming lines.
// The expected counters are recomputed by an inline reference implementation
// of the old algorithm.
func TestLimitTraceRendersIdentically(t *testing.T) {
	s := NewSystem()
	in, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	// 10 single-paper documents (< MinStreamScanDocs), unsharded.
	for i := 0; i < 10; i++ {
		doc := fmt.Sprintf(`<dblp><inproceedings key="d%d"><author>Author %d</author><title>Title %d</title></inproceedings></dblp>`, i, i, i)
		if _, err := in.Col.PutXML(fmt.Sprintf("d%d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	const limit = 4
	ctx := context.Background()

	// Reference: the historical SelectN loop — sequential evaluation over the
	// materialized candidate set, stopping at the limit.
	paths := s.RewritePattern(p)
	cands := s.CandidateDocs(in.Col, paths)
	dst := tree.NewCollection()
	ev := s.Evaluator()
	wantEvaluated, wantEmbeddings, wantAnswers := 0, 0, 0
	for _, doc := range cands {
		res, ops, err := tax.SelectTraced(dst, []*tree.Tree{doc}, p, []int{1}, ev)
		if err != nil {
			t.Fatal(err)
		}
		wantEvaluated++
		wantEmbeddings += ops.Embeddings
		wantAnswers += len(res)
		if wantAnswers >= limit {
			wantAnswers = limit
			break
		}
	}

	lres, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: limit, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	st := lres.Stats
	if st.ScanMode != "" || st.DocsScanned != 0 {
		t.Fatalf("small unsharded limit run must stay materialized, got mode=%q scanned=%d", st.ScanMode, st.DocsScanned)
	}
	if st.Workers != 1 || len(st.WorkerDocs) != 1 || st.WorkerDocs[0] != wantEvaluated {
		t.Errorf("worker trace: workers=%d workerDocs=%v, want 1/[%d]", st.Workers, st.WorkerDocs, wantEvaluated)
	}
	if st.DocsEvaluated != wantEvaluated || st.Embeddings != wantEmbeddings || st.Answers != wantAnswers {
		t.Errorf("counters: evaluated=%d embeddings=%d answers=%d, want %d/%d/%d",
			st.DocsEvaluated, st.Embeddings, st.Answers, wantEvaluated, wantEmbeddings, wantAnswers)
	}
	if !st.LimitHit || !lres.LimitHit {
		t.Error("limit must register as hit")
	}

	rendered := st.String()
	wantLimitLine := fmt.Sprintf("  limit %d hit after %d of %d candidate doc(s) (early exit)\n",
		limit, wantEvaluated, len(cands))
	if !strings.Contains(rendered, wantLimitLine) {
		t.Errorf("trace missing the historical limit line %q:\n%s", wantLimitLine, rendered)
	}
	wantEvalTail := fmt.Sprintf("workers=1 docs=%d embeddings=%d answers=%d\n",
		wantEvaluated, wantEmbeddings, wantAnswers)
	if !strings.Contains(rendered, wantEvalTail) {
		t.Errorf("trace missing the historical eval line tail %q:\n%s", wantEvalTail, rendered)
	}
	if strings.Contains(rendered, "stream:") {
		t.Errorf("materialized limit trace must not contain streaming lines:\n%s", rendered)
	}
}
