package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

// buildAntiCorrelatedSystem builds a corpus whose two predicates are strongly
// anti-correlated — exactly the workload the independence assumption
// misestimates and the feedback loop corrects. alice2021 documents carrying
// the (Alice, 2021) conjunction are appended LAST in insertion order, so a
// streaming scan only reaches them after walking everything the planner
// thought it would not need.
func buildAntiCorrelatedSystem(t *testing.T, alice2020, bob2021, alice2021, shards int) *System {
	t.Helper()
	s := NewSystem()
	s.DB.SetDefaultShards(shards)
	in, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	put := func(i int, author, year string) {
		doc := fmt.Sprintf(`<dblp><inproceedings key="p%d"><author>%s</author><year>%s</year></inproceedings></dblp>`, i, author, year)
		if _, err := in.Col.PutXML(fmt.Sprintf("d%04d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for i := 0; i < alice2020; i++ {
		put(n, "Alice", "2020")
		n++
	}
	for i := 0; i < bob2021; i++ {
		put(n, "Bob", "2021")
		n++
	}
	for i := 0; i < alice2021; i++ {
		put(n, "Alice", "2021")
		n++
	}
	s.DynamicSimilarity = false
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	return s
}

var antiCorrelatedPattern = `#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content = "Alice" & #3.content = "2021"`

// TestAdaptiveEqualsStaticQuick is the adaptive-equivalence property: for
// random patterns at shard counts 1, 2 and 7, the feedback-driven executor —
// cold, warm (corrections learned, plans re-sorted), and with re-optimization
// forced on any overrun (ReoptFactor 1) — must return byte-identical answers
// to the static planner and to the planner-off heuristics, streamed, limited
// and ranked alike. Systems persist across iterations, so corrections
// accumulate and drift plans mid-property; the answers must never move.
func TestAdaptiveEqualsStaticQuick(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	adaptive := make([]*System, len(shardCounts))
	forced := make([]*System, len(shardCounts)) // reopt on any overrun
	for i, n := range shardCounts {
		adaptive[i], _ = buildShardedJoinSystem(t, 40, 1, n)
		forced[i], _ = buildShardedJoinSystem(t, 40, 1, n)
		forced[i].Planner.SetReoptFactor(1.0)
	}
	var corpus = func() []string {
		_, c := buildShardedJoinSystem(t, 40, 1, 1)
		out := make([]string, 0, len(c.Authors))
		for _, a := range c.Authors {
			out = append(out, a.Canonical())
		}
		return out
	}()
	years := []string{"1999", "2000", "2001", "2002", "2003"}
	ctx := context.Background()

	f := func(aIdx, yIdx, opSel, shape, limSel uint8) bool {
		author := corpus[int(aIdx)%len(corpus)]
		year := years[int(yIdx)%len(years)]
		ops := []string{"=", "~", "contains"}
		op := ops[int(opSel)%len(ops)]
		var src string
		switch shape % 3 {
		case 0:
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content %s %q`, op, author)
		case 1:
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content %s %q & #3.content = %q`, op, author, year)
		default:
			src = `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`
		}
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}

		// Reference: static planner (adaptive layer off) on the 1-shard system.
		ref, err := adaptive[0].Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoAdaptive: true})
		if err != nil {
			t.Fatalf("%s: reference: %v", src, err)
		}
		limit := 1 + int(limSel)%(len(ref.Answers)+2)
		wantLim := ref.Answers
		if limit < len(wantLim) {
			wantLim = wantLim[:limit]
		}

		for i, s := range adaptive {
			// Adaptive streamed ≡ static materialized.
			res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Stream: true})
			if err != nil {
				t.Fatalf("%s: shards=%d stream: %v", src, shardCounts[i], err)
			}
			got, err := drainStream(ctx, res.Stream)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTrees(ref.Answers, got) {
				t.Logf("%s: shards=%d: adaptive streamed %d answers vs static %d", src, shardCounts[i], len(got), len(ref.Answers))
				return false
			}

			// Adaptive limited, planner-off limited, and forced-reopt limited
			// must all be the same prefix with the same LimitHit.
			for _, mode := range []struct {
				name string
				sys  *System
				req  QueryRequest
			}{
				{"adaptive", s, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: limit}},
				{"no-planner", s, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: limit, NoPlanner: true}},
				{"forced-reopt", forced[i], QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: limit}},
			} {
				lres, err := mode.sys.Query(ctx, mode.req)
				if err != nil {
					t.Fatalf("%s: shards=%d %s limit=%d: %v", src, shardCounts[i], mode.name, limit, err)
				}
				if !sameTrees(wantLim, lres.Answers) {
					t.Logf("%s: shards=%d %s limit=%d: not the static prefix (%d answers, ref %d)",
						src, shardCounts[i], mode.name, limit, len(lres.Answers), len(ref.Answers))
					return false
				}
				if wantHit := len(ref.Answers) >= limit; lres.LimitHit != wantHit {
					t.Logf("%s: shards=%d %s limit=%d: LimitHit=%t want %t",
						src, shardCounts[i], mode.name, limit, lres.LimitHit, wantHit)
					return false
				}
			}

			// Ranked: adaptive must produce the static ranking, score for score.
			if shape%3 == 0 {
				rref, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true, NoAdaptive: true})
				if err != nil {
					t.Fatal(err)
				}
				rgot, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true})
				if err != nil {
					t.Fatal(err)
				}
				if len(rref.Ranked) != len(rgot.Ranked) {
					t.Logf("%s: shards=%d ranked: %d vs %d answers", src, shardCounts[i], len(rgot.Ranked), len(rref.Ranked))
					return false
				}
				for j := range rref.Ranked {
					if rref.Ranked[j].Score != rgot.Ranked[j].Score || !tree.Equal(rref.Ranked[j].Tree, rgot.Ranked[j].Tree) {
						t.Logf("%s: shards=%d ranked: rank %d differs", src, shardCounts[i], j)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 20,
		Rand:     rand.New(rand.NewSource(47)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveJoinEquivalence drives the property through the join path at
// shard counts 1, 2 and 7: adaptive joins (including the feedback-chosen
// build side) must match the static join's answers and order, streamed and
// limited, warm or cold.
func TestAdaptiveJoinEquivalence(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	joinSrc := fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag)
	jp := pattern.MustParse(joinSrc)
	ctx := context.Background()

	for _, n := range shardCounts {
		s, _ := buildShardedJoinSystem(t, 40, 2, n)
		ref, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}, NoAdaptive: true})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(ref.Answers) == 0 {
			t.Fatal("join matched nothing — test corpus broken")
		}
		// Three passes so the second and third run against learned corrections.
		for pass := 0; pass < 3; pass++ {
			sres, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}, Stream: true})
			if err != nil {
				t.Fatalf("shards=%d pass=%d: %v", n, pass, err)
			}
			got, err := drainStream(ctx, sres.Stream)
			if err != nil {
				t.Fatal(err)
			}
			if !sameTrees(ref.Answers, got) {
				t.Errorf("shards=%d pass=%d: adaptive streamed join differs (%d vs %d answers)", n, pass, len(got), len(ref.Answers))
			}
			for _, limit := range []int{1, len(ref.Answers), len(ref.Answers) + 3} {
				lres, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}, Limit: limit})
				if err != nil {
					t.Fatal(err)
				}
				want := ref.Answers
				if limit < len(want) {
					want = want[:limit]
				}
				if !sameTrees(want, lres.Answers) {
					t.Errorf("shards=%d pass=%d limit=%d: adaptive limited join is not the static prefix", n, pass, limit)
				}
			}
		}
	}
}

// TestAdaptiveJoinBuildSide pins the build-side re-planning: when the LEFT
// side's post-prefilter candidate set is the small one, the adaptive
// streaming join builds its hash table there (the static shape always builds
// right), the trace says so, the re-plan counter moves — and the answers are
// byte-identical to the static build.
func TestAdaptiveJoinBuildSide(t *testing.T) {
	// proc (6 docs) joined against dblp (20 docs): left is the cheap build.
	joinSrc := fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "ProceedingsPage" & #3.tag = "dblp" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag)
	jp := pattern.MustParse(joinSrc)
	ctx := context.Background()
	s, _ := buildShardedJoinSystem(t, 40, 2, 4)

	ref, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "proc", Right: "dblp", Adorn: []int{2, 3}, NoAdaptive: true, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainStream(ctx, ref.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("join matched nothing — test corpus broken")
	}

	before := s.Planner.Counters().ReoptBuildSide
	res, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "proc", Right: "dblp", Adorn: []int{2, 3}, Stream: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainStream(ctx, res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(want, got) {
		t.Fatalf("build-left join differs from build-right: %d vs %d answers", len(got), len(want))
	}
	if res.Stats == nil || res.Stats.Join == nil {
		t.Fatal("traced join left no join trace")
	}
	if res.Stats.Join.BuildSide != "left" {
		t.Fatalf("BuildSide = %q, want \"left\" (left side is the small build)", res.Stats.Join.BuildSide)
	}
	if after := s.Planner.Counters().ReoptBuildSide; after <= before {
		t.Fatalf("reopt_build_side counter did not move (%d -> %d)", before, after)
	}
	if res.Stats.Adaptive == nil || len(res.Stats.Adaptive.Reopts) == 0 {
		t.Fatal("build-side re-plan missing from the adaptive trace")
	}
}

// TestReoptMaterializeEquivalence pins mid-stream re-optimization: the
// planner's independence estimate says a short scan prefix will satisfy the
// limit, but the matching documents sit at the very END of insertion order.
// With ReoptFactor forced to 1 the scan overruns immediately, the remainder
// is re-planned to the materialized shape — and the answers must still be
// exactly the static prefix.
func TestReoptMaterializeEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		s := buildAntiCorrelatedSystem(t, 50, 60, 10, shards)
		s.Planner.SetReoptFactor(1.0)
		p := pattern.MustParse(antiCorrelatedPattern)
		ctx := context.Background()

		ref, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: 2, NoAdaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Answers) != 2 || !ref.LimitHit {
			t.Fatalf("shards=%d: static reference got %d answers (hit=%t), want 2", shards, len(ref.Answers), ref.LimitHit)
		}

		before := s.Planner.Counters().ReoptMaterialize
		res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: 2, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTrees(ref.Answers, res.Answers) || res.LimitHit != ref.LimitHit {
			t.Fatalf("shards=%d: re-optimized answers differ from static (%d vs %d, hit %t vs %t)",
				shards, len(res.Answers), len(ref.Answers), res.LimitHit, ref.LimitHit)
		}
		if res.Stats.ScanMode != ScanModeStream {
			t.Fatalf("shards=%d: scan mode %q — the misestimate must route through the streaming scan", shards, res.Stats.ScanMode)
		}
		after := s.Planner.Counters().ReoptMaterialize
		if after <= before {
			t.Fatalf("shards=%d: streaming scan overran but reopt_materialize did not move (%d -> %d)", shards, before, after)
		}
		if res.Stats.Adaptive == nil || len(res.Stats.Adaptive.Reopts) == 0 {
			t.Fatalf("shards=%d: re-optimization fired but left no reopt trace", shards)
		}
		rendered := res.Stats.String()
		if !strings.Contains(rendered, "reopt: [scan] materialize") {
			t.Errorf("shards=%d: trace missing the reopt line:\n%s", shards, rendered)
		}
	}
}

// TestAdaptiveCorrectionsLearnAndReset is the invalidation regression: a
// misestimated query warms the correction store (second run shows corrections
// in its trace); a data write moves the collection generation and a live
// ontology mutation moves the snapshot version — each must silently retire
// the learned factors (fresh keys), so the next run plans cold again.
func TestAdaptiveCorrectionsLearnAndReset(t *testing.T) {
	s := buildAntiCorrelatedSystem(t, 50, 50, 0, 1)
	p := pattern.MustParse(antiCorrelatedPattern)
	ctx := context.Background()
	run := func(label string) *ExecStats {
		t.Helper()
		res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Trace: true})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(res.Answers) != 0 {
			t.Fatalf("%s: anti-correlated query matched %d docs, want 0", label, len(res.Answers))
		}
		return res.Stats
	}

	// Cold: no corrections exist, the trace carries no adaptive line.
	if st := run("cold"); st.Adaptive != nil {
		t.Fatalf("cold run carries an adaptive trace: %+v", st.Adaptive)
	}
	c := s.Planner.Counters()
	if c.CorrectionsRecorded == 0 {
		t.Fatal("cold run recorded no corrections")
	}
	if c.CorrectionEpoch == 0 {
		t.Fatal("a 64x misestimate must bump the correction epoch")
	}

	// Warm: the epoch moved, the cached plan is invalidated, the rebuild
	// applies the learned factor and says so in the trace.
	st := run("warm")
	if st.Adaptive == nil || st.Adaptive.CorrectionsApplied == 0 {
		t.Fatalf("warm run applied no corrections: %+v", st.Adaptive)
	}
	if got := s.Planner.Counters().EpochInvalidations; got == 0 {
		t.Fatal("epoch move did not invalidate the cached adaptive plan")
	}

	// A data write bumps the generation: fresh keys, cold plan again.
	in := s.Instance("dblp")
	if _, err := in.Col.PutXML("extra", strings.NewReader(`<dblp><inproceedings key="x"><author>Carol</author><year>1990</year></inproceedings></dblp>`)); err != nil {
		t.Fatal(err)
	}
	if st := run("post-write"); st.Adaptive != nil {
		t.Fatalf("corrections survived a generation bump: %+v", st.Adaptive)
	}
	// …and they re-learn under the new generation.
	if st := run("post-write warm"); st.Adaptive == nil || st.Adaptive.CorrectionsApplied == 0 {
		t.Fatal("corrections did not re-learn after the write")
	}

	// A live ontology mutation bumps the snapshot version: same reset.
	if _, err := s.AddEdge("isa", "festschrift", "inproceedings"); err != nil {
		t.Fatal(err)
	}
	if st := run("post-mutation"); st.Adaptive != nil {
		t.Fatalf("corrections survived an ontology-version bump: %+v", st.Adaptive)
	}
	if st := run("post-mutation warm"); st.Adaptive == nil || st.Adaptive.CorrectionsApplied == 0 {
		t.Fatal("corrections did not re-learn after the ontology mutation")
	}
}

// TestNoAdaptiveEscapeHatch: with AdaptiveDisabled (the -no-adaptive flag) or
// QueryRequest.NoAdaptive, the static planner runs, nothing is learned and
// nothing is corrected.
func TestNoAdaptiveEscapeHatch(t *testing.T) {
	s := buildAntiCorrelatedSystem(t, 50, 50, 0, 1)
	p := pattern.MustParse(antiCorrelatedPattern)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoAdaptive: true}); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Planner.Counters(); c.CorrectionsRecorded != 0 || c.CorrectionsApplied != 0 {
		t.Fatalf("NoAdaptive queries touched the feedback store: %+v", c)
	}

	s.AdaptiveDisabled = true
	for i := 0; i < 3; i++ {
		if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}}); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Planner.Counters(); c.CorrectionsRecorded != 0 {
		t.Fatalf("AdaptiveDisabled system recorded corrections: %+v", c)
	}
}
