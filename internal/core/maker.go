package core

import (
	"strings"

	"repro/internal/ontology"
	"repro/internal/similarity"
	"repro/internal/tree"
	"repro/internal/xpath"
)

// MakerConfig controls the Ontology Maker.
type MakerConfig struct {
	// ValueTags lists element tags whose content values are added to the
	// isa hierarchy as instance terms below the tag (e.g. author names
	// below "author"). The paper treats values as types below their type
	// (Section 5, "each value of a type may also be viewed as a type").
	ValueTags []string
	// TokenTags lists element tags whose content is tokenized and whose
	// lexicon-known tokens are added below their hypernym chains (e.g.
	// title words such as "relational" below "data model").
	TokenTags []string
	// MaxValueTerms caps how many distinct content values per tag enter the
	// ontology (0 = unlimited). The scalability experiments use this to
	// control ontology size the way the paper varies it.
	MaxValueTerms int
	// IncludeAttributes adds @attr pseudo-tags to the part-of hierarchy.
	IncludeAttributes bool
}

// DefaultMakerConfig ontologizes the bibliographic value and token tags used
// throughout the paper's examples.
func DefaultMakerConfig() MakerConfig {
	return MakerConfig{
		ValueTags: []string{"author", "editor", "booktitle", "conference", "journal", "affiliation"},
		TokenTags: []string{"title"},
	}
}

// makerState accumulates the run-wide Ontology Maker byproducts; a fresh one
// per MakeOntologies keeps half-built sets out of the live System (the
// snapshot carries the finished maps).
type makerState struct {
	valueTags      map[string]bool
	valueTruncated bool
}

// makeOntology implements the Ontology Maker for one instance: structural
// part-of extraction, lexicon-driven isa/part-of edges, and value/token
// instance terms.
func (s *System) makeOntology(in *Instance, mk *makerState) *ontology.Ontology {
	cfg := s.MakerConfig
	ont := ontology.NewOntology()
	isa := ont.Isa()
	part := ont.PartOf()

	valueTag := map[string]bool{}
	for _, t := range cfg.ValueTags {
		valueTag[t] = true
		mk.valueTags[t] = true
	}
	tokenTag := map[string]bool{}
	for _, t := range cfg.TokenTags {
		tokenTag[t] = true
	}

	valueCount := map[string]int{}
	seenValue := map[[2]string]bool{}
	seenToken := map[string]bool{}

	for _, doc := range in.Col.Docs() {
		doc.Walk(func(n *tree.Node) bool {
			tag := n.Tag
			if !cfg.IncludeAttributes && len(tag) > 0 && tag[0] == '@' {
				return true
			}
			// Structural part-of: child tag is part of parent tag
			// (author part-of article, as in the paper's Example 7).
			part.AddNode(tag)
			isa.AddNode(tag)
			if n.Parent != nil {
				ptag := n.Parent.Tag
				if ptag != tag {
					_ = part.AddEdge(tag, ptag) // cycle-safe: skip on error
				}
			}
			// Value instance terms below their tag; lexicon-known values
			// additionally get their hypernym (isa) and holonym (part-of)
			// chains, which is what answers the paper's "authors from the
			// US government" motivating query.
			if valueTag[tag] && n.Content != "" {
				key := [2]string{tag, n.Content}
				if !seenValue[key] {
					if cfg.MaxValueTerms > 0 && valueCount[tag] >= cfg.MaxValueTerms {
						mk.valueTruncated = true
					} else {
						seenValue[key] = true
						valueCount[tag]++
						_ = isa.AddEdge(n.Content, tag)
						s.addHypernymChain(isa, n.Content)
						if len(s.Lexicon.Holonyms(n.Content)) > 0 {
							part.AddNode(n.Content)
							s.addHolonymChain(part, n.Content)
						}
					}
				}
			}
			// Token terms below their lexicon hypernym chains.
			if tokenTag[tag] && n.Content != "" {
				for _, tok := range similarity.Tokenize(xpath.TextValue(n)) {
					if seenToken[tok] {
						continue
					}
					seenToken[tok] = true
					s.addHypernymChain(isa, tok)
				}
			}
			return true
		})
	}

	// Lexicon-driven edges between the tags present in this instance. A
	// tag's lexicon synonym is bridged in as a superterm (booktitle ≤
	// conference): hierarchies are acyclic, so within one instance the
	// equivalence is represented one-directionally; across instances the
	// derived equality constraints merge synonyms properly at fusion time.
	for _, tag := range in.Col.TreeCollection().Tags() {
		if len(tag) > 0 && tag[0] == '@' {
			continue
		}
		s.addHypernymChain(isa, tag)
		for _, syn := range s.Lexicon.Synonyms(tag) {
			isa.AddNode(tag)
			isa.AddNode(syn)
			_ = isa.AddEdge(tag, syn)
			s.addHypernymChain(isa, syn)
		}
		for _, whole := range s.Lexicon.Holonyms(tag) {
			part.AddNode(whole)
			_ = part.AddEdge(tag, whole)
			s.addHolonymChain(part, whole)
		}
	}
	return ont
}

// addHypernymChain inserts term and its transitive hypernym chain into the
// isa hierarchy (when the lexicon knows the term).
func (s *System) addHypernymChain(isa *ontology.Hierarchy, term string) {
	sups := s.Lexicon.Hypernyms(term)
	if len(sups) == 0 {
		return
	}
	isa.AddNode(term)
	stack := []string{term}
	seen := map[string]bool{term: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sup := range s.Lexicon.Hypernyms(cur) {
			isa.AddNode(sup)
			_ = isa.AddEdge(cur, sup)
			if !seen[sup] {
				seen[sup] = true
				stack = append(stack, sup)
			}
		}
	}
}

// addHolonymChain inserts the transitive holonym chain above term into the
// part-of hierarchy.
func (s *System) addHolonymChain(part *ontology.Hierarchy, term string) {
	stack := []string{term}
	seen := map[string]bool{term: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, whole := range s.Lexicon.Holonyms(cur) {
			part.AddNode(whole)
			_ = part.AddEdge(cur, whole)
			if !seen[whole] {
				seen[whole] = true
				stack = append(stack, whole)
			}
		}
	}
}

// deriveConstraints implements the automatic part of interoperation
// constraint discovery (the paper: WordNet identifies "isa, equivalent, and
// part-of relationships ... these lead to a set of interoperation
// constraints"): identical terms in different hierarchies are constrained
// equal; lexicon synonyms are constrained equal; lexicon-known isa pairs
// between tags are constrained ≤.
func (s *System) deriveConstraints(hs []*ontology.Hierarchy) []ontology.Constraint {
	var out []ontology.Constraint
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			// Case-normalised index of hierarchy j's terms.
			normJ := map[string][]string{}
			for _, n := range hs[j].Nodes() {
				k := strings.ToLower(n)
				normJ[k] = append(normJ[k], n)
			}
			seen := map[[2]string]bool{}
			emit := func(x, y string) {
				key := [2]string{x, y}
				if !seen[key] {
					seen[key] = true
					out = append(out, ontology.Equal(x, i+1, y, j+1))
				}
			}
			for _, x := range hs[i].Nodes() {
				if hs[j].HasNode(x) {
					emit(x, x)
				}
				// Synonyms in both directions: x's synonyms found in j, and
				// j-terms whose synonyms include x (the lexicon is
				// symmetric, so one lookup per x suffices once we match by
				// normalised form).
				for _, syn := range s.Lexicon.Synonyms(x) {
					for _, y := range normJ[syn] {
						emit(x, y)
					}
				}
			}
		}
	}
	return out
}
