package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/tax"
	"repro/internal/tree"
	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// maxXPathExpansion caps how many disjuncts a rewritten ~ or isa condition
// may contribute to an XPath predicate; beyond it the predicate is dropped
// (the post-filter still enforces the condition, the pre-filter just stops
// helping).
const maxXPathExpansion = 64

// RewritePattern rewrites a pattern tree into XPath queries, one per pattern
// node, each a necessary condition for that node's image (the paper's Query
// Executor "transforms a user query into a query that takes the single
// similarity enhanced (fused) ontology into account" and rewrites it to
// XPath for Xindice). Only atoms on the top-level conjunctive spine are
// compiled in; everything else is left to the algebra-level post-filter, so
// the rewrite is always sound.
func (s *System) RewritePattern(p *pattern.Tree) []*xpath.Path {
	return s.rewritePattern(p, nil)
}

// rewritePattern is RewritePattern with an optional execution trace recording
// path/predicate counts and the fate of every ~ expansion.
func (s *System) rewritePattern(p *pattern.Tree, st *ExecStats) []*xpath.Path {
	spine := map[int][]*pattern.Atomic{}
	for _, atom := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		labels := atom.Labels(nil)
		if len(labels) == 1 {
			spine[labels[0]] = append(spine[labels[0]], atom)
		} else if len(labels) == 2 && labels[0] == labels[1] {
			spine[labels[0]] = append(spine[labels[0]], atom)
		}
	}
	tagOf := func(label int) string {
		for _, a := range spine[label] {
			if a.Op == pattern.OpEq && a.X.Kind == pattern.TermAttr && a.X.Attr == "tag" &&
				a.Y.Kind == pattern.TermValue && a.Y.Value != Wildcard {
				return a.Y.Value
			}
		}
		return "*"
	}

	var paths []*xpath.Path
	for _, pn := range p.Nodes() {
		path := &xpath.Path{}
		// Chain of steps from the pattern root down to pn. The root itself
		// may embed anywhere in a document, hence a descendant first step.
		chain := []*pattern.PNode{}
		for cur := pn; cur != nil; cur = cur.Parent {
			chain = append(chain, cur)
		}
		for i := len(chain) - 1; i >= 0; i-- {
			n := chain[i]
			axis := xpath.AxisDescendant
			if i < len(chain)-1 && n.EdgeIn == pattern.PC {
				axis = xpath.AxisChild
			}
			step := xpath.Step{Axis: axis, Name: tagOf(n.Label)}
			if i == 0 {
				step.Preds = s.contentPreds(step.Name, spine[n.Label], st)
			}
			path.Steps = append(path.Steps, step)
		}
		// A bare //* query filters nothing; skip it.
		if pathIsTrivial(path) {
			continue
		}
		paths = append(paths, path)
	}
	if st != nil {
		st.Rewrite.Paths = len(paths)
		for _, p := range paths {
			for _, step := range p.Steps {
				st.Rewrite.Predicates += len(step.Preds)
			}
		}
	}
	return paths
}

// conjunctiveOnly strips Or/Not branches, keeping only the conjunctive
// spine (necessary conditions).
func conjunctiveOnly(c pattern.Condition) pattern.Condition {
	switch v := c.(type) {
	case *pattern.Atomic:
		return v
	case *pattern.And:
		out := &pattern.And{}
		for _, s := range v.Conds {
			if kept := conjunctiveOnly(s); kept != nil {
				out.Conds = append(out.Conds, kept)
			}
		}
		if len(out.Conds) == 0 {
			return nil
		}
		return out
	default:
		return nil
	}
}

// contentPreds compiles a node's content atoms into XPath predicates. Only
// predicates that are *necessary* for the atom are emitted, so the rewrite
// never loses answers. When st is non-nil the fate of every ~ expansion is
// recorded.
func (s *System) contentPreds(tag string, atoms []*pattern.Atomic, st *ExecStats) []xpath.Pred {
	var out []xpath.Pred
	for _, a := range atoms {
		// Normalise to attr-op-literal with the attribute on the left.
		attr, lit, op, ok := normalizeAtom(a)
		if !ok || attr != "content" || lit == Wildcard {
			continue
		}
		switch op {
		case pattern.OpEq:
			// Sound only for plain strings (typed values may compare equal
			// across different spellings).
			out = append(out, xpath.EqualsSelf(lit))
		// OpContains is deliberately NOT compiled into an XPath predicate:
		// the algebra operator folds case while XPath contains() does not,
		// so the pre-filter would drop answers whose case differs.
		case pattern.OpSim:
			// ~ expands to the literal's full SEO cluster. The expansion is
			// a complete enumeration of possible matches only when (a) the
			// node's tag is a value tag, so every DB value under it is in
			// the ontology, (b) the Ontology Maker did not truncate value
			// terms, and (c) the literal itself is a known term — otherwise
			// the evaluator's dynamic-similarity fallback could match
			// values outside the expansion and the pre-filter would be
			// unsound, so we emit nothing.
			if !s.simRewriteSound(tag, lit) {
				if st != nil {
					st.recordExpansion(lit, len(s.SimilarStrings(lit)), ExpansionDroppedUnsound)
				}
				continue
			}
			vals := s.SimilarStrings(lit)
			switch {
			case len(vals) == 0:
				st.recordExpansion(lit, 0, ExpansionDroppedEmpty)
			case len(vals) > maxXPathExpansion:
				st.recordExpansion(lit, len(vals), ExpansionDroppedOverCap)
			default:
				st.recordExpansion(lit, len(vals), ExpansionEmitted)
				out = append(out, xpath.AnyEqualsSelf(vals))
			}
		}
	}
	return out
}

// simRewriteSound reports whether a ~ condition on a node with the given tag
// and literal may be pre-filtered by SEO expansion (see contentPreds).
func (s *System) simRewriteSound(tag, lit string) bool {
	return s.SEO != nil && s.valueTags[tag] && !s.valueTruncated &&
		len(s.FusedIsa.NodesOf(lit)) > 0
}

func normalizeAtom(a *pattern.Atomic) (attr, lit string, op pattern.Op, ok bool) {
	x, y := a.X, a.Y
	op = a.Op
	if x.Kind == pattern.TermValue && y.Kind == pattern.TermAttr {
		// literal op attr: symmetric ops only.
		switch op {
		case pattern.OpEq, pattern.OpSim:
			x, y = y, x
		default:
			return "", "", op, false
		}
	}
	if x.Kind != pattern.TermAttr || y.Kind != pattern.TermValue {
		return "", "", op, false
	}
	if y.Type != "" && y.Type != "string" {
		return "", "", op, false
	}
	return x.Attr, y.Value, op, true
}

func pathIsTrivial(p *xpath.Path) bool {
	for _, s := range p.Steps {
		if s.Name != "*" || len(s.Preds) > 0 {
			return false
		}
	}
	return true
}

// CandidateDocs returns the documents of the collection that match every
// rewritten XPath query — the candidate set the algebra then runs over.
func (s *System) CandidateDocs(col *xmldb.Collection, paths []*xpath.Path) []*tree.Tree {
	out, _ := s.candidateDocs(context.Background(), col, paths, nil)
	return out
}

// candidateDocs is CandidateDocs with an optional execution trace recording,
// per path, the routing decision, candidate counts and timing, plus the
// overall pre-filter selectivity. The context is checked between XPath
// queries, so a cancelled request stops pre-filtering early.
func (s *System) candidateDocs(ctx context.Context, col *xmldb.Collection, paths []*xpath.Path, st *ExecStats) ([]*tree.Tree, error) {
	docs := col.Docs()
	if st != nil {
		st.TotalDocs += len(docs)
	}
	if len(paths) == 0 {
		if st != nil {
			st.CandidateDocs += len(docs)
		}
		return docs, nil
	}
	rootDoc := make(map[*tree.Node]*tree.Tree, len(docs))
	for _, d := range docs {
		rootDoc[d.Root] = d
	}

	// Cost-based planning: order the intersection most-selective-first and
	// let the plan route each path (index / value index / full scan). The
	// final intersection is order-independent and the output loop below
	// iterates in document order, so planning can never change the answer
	// set — only the work done to reach it.
	var plan *planner.SelectPlan
	var planTrace *PlanTrace
	adaptive := s.adaptive()
	var feedbackGen uint64 // stats generation the feedback keys are built on
	order := make([]int, len(paths))
	for i := range order {
		order[i] = i
	}
	if s.Planner != nil {
		var hit bool
		if adaptive {
			feedbackGen = col.Stats().Generation
			plan, hit = s.Planner.PlanSelectAdaptive(col, s.OntologyVersion(), paths)
		} else {
			plan, hit = s.Planner.PlanSelect(col, s.OntologyVersion(), paths)
		}
		order = plan.Order
		planTrace = &PlanTrace{
			Collection:    col.Name(),
			CacheHit:      hit,
			Reordered:     plan.Reordered,
			EstCandidates: plan.EstCandidates,
		}
		if st != nil {
			st.Plans = append(st.Plans, planTrace)
			if adaptive && plan.CorrectionsApplied > 0 {
				at := st.adaptiveTrace()
				at.CorrectionsApplied += plan.CorrectionsApplied
				at.Epoch = plan.FeedbackEpoch
			}
		}
	}

	var surviving map[*tree.Tree]bool
	for k, idx := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := paths[idx]
		var est planner.PathEstimate
		if plan != nil {
			est = plan.Paths[k]
		}
		hits := map[*tree.Tree]bool{}
		var qs xmldb.QueryStats
		step := PlanStep{
			XPath: p.String(), Access: est.Access,
			EstDocs: est.EstDocs, EstNodes: est.EstNodes, EstShards: est.EstShards,
		}
		if plan != nil && surviving != nil && plan.ShouldRestrict(k, len(surviving)) {
			// Few enough survivors that walking just those documents beats
			// querying the whole collection for this path.
			t0 := time.Now()
			matched := 0
			for _, d := range docs {
				if !surviving[d] {
					continue
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if m := len(p.Eval(d.Root)); m > 0 {
					hits[d] = true
					matched += m
				}
			}
			qs = xmldb.QueryStats{
				XPath: p.String(), DocsWalked: len(surviving),
				Matches: matched, Elapsed: time.Since(t0),
			}
			step.Access = planner.AccessRestricted
			step.TestedDocs = len(surviving)
			step.ActualNodes = matched
		} else {
			var nodes []*tree.Node
			nodes, qs = col.QueryPathForced(p, plan != nil && est.Access == planner.AccessScan)
			for _, n := range nodes {
				if d := rootDoc[n.Root()]; d != nil {
					hits[d] = true
				}
			}
			step.ActualNodes = len(nodes)
			step.ActualShards = qs.ShardsTouched
			if plan != nil {
				s.Planner.Observe(est.EstDocs, float64(len(hits)))
				if adaptive {
					// Per-path feedback: the whole collection was queried, so
					// the document count is exact. Learned against the raw
					// estimate so re-applied factors cannot compound.
					k := planner.FeedbackKey(col.Name(), feedbackGen, s.OntologyVersion(), planner.PathShape(est.XPath))
					s.Planner.Learn(k, est.RawDocs, float64(len(hits)))
				}
			}
		}
		step.ActualDocs = len(hits)
		if planTrace != nil {
			planTrace.Steps = append(planTrace.Steps, step)
		}
		if st != nil {
			st.Paths = append(st.Paths, PathTrace{QueryStats: qs, DocsMatched: len(hits)})
		}
		if surviving == nil {
			surviving = hits
		} else {
			for d := range surviving {
				if !hits[d] {
					delete(surviving, d)
				}
			}
		}
		if len(surviving) == 0 {
			if adaptive && plan != nil {
				k := planner.FeedbackKey(col.Name(), feedbackGen, s.OntologyVersion(), planner.SelectShape(paths))
				s.Planner.Learn(k, plan.RawCandidates, 0)
			}
			return nil, nil
		}
	}
	var out []*tree.Tree
	for _, d := range docs { // preserve document order
		if surviving[d] {
			out = append(out, d)
		}
	}
	if planTrace != nil {
		planTrace.ActualCandidates = len(out)
	}
	if adaptive && plan != nil {
		// Whole-plan feedback: the intersection ran to completion, so the
		// final candidate count is exact — the correlation signal the
		// per-path independence product cannot see.
		k := planner.FeedbackKey(col.Name(), feedbackGen, s.OntologyVersion(), planner.SelectShape(paths))
		s.Planner.Learn(k, plan.RawCandidates, float64(len(out)))
	}
	if st != nil {
		st.CandidateDocs += len(out)
	}
	return out, nil
}

// Select executes TOSS selection σ_{P,SL} against the named instance.
//
// Deprecated: use Query with QueryRequest{Pattern, Instance, Adorn}.
func (s *System) Select(instance string, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	return s.SelectContext(context.Background(), instance, p, sl)
}

// SelectContext is Select with cancellation.
//
// Deprecated: use Query with QueryRequest{Pattern, Instance, Adorn}.
func (s *System) SelectContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// SelectTraced runs TOSS selection with an execution trace.
//
// Deprecated: use Query with Trace set.
func (s *System) SelectTraced(instance string, p *pattern.Tree, sl []int) ([]*tree.Tree, *ExecStats, error) {
	return s.SelectTracedContext(context.Background(), instance, p, sl)
}

// SelectTracedContext is SelectTraced with cancellation.
//
// Deprecated: use Query with Trace set.
func (s *System) SelectTracedContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) ([]*tree.Tree, *ExecStats, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Trace: true})
	if err != nil {
		return nil, nil, err
	}
	return res.Answers, res.Stats, nil
}

// SelectN runs TOSS selection but stops after collecting limit answers
// (limit ≤ 0 means no limit).
//
// Deprecated: use Query with Limit set.
func (s *System) SelectN(instance string, p *pattern.Tree, sl []int, limit int) ([]*tree.Tree, error) {
	return s.SelectNContext(context.Background(), instance, p, sl, limit)
}

// SelectNContext is SelectN with cancellation.
//
// Deprecated: use Query with Limit set.
func (s *System) SelectNContext(ctx context.Context, instance string, p *pattern.Tree, sl []int, limit int) ([]*tree.Tree, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Limit: limit})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// SelectNTracedContext is SelectNContext with an execution trace.
//
// Deprecated: use Query with Limit and Trace set.
func (s *System) SelectNTracedContext(ctx context.Context, instance string, p *pattern.Tree, sl []int, limit int) ([]*tree.Tree, *ExecStats, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Limit: limit, Trace: true})
	if err != nil {
		return nil, nil, err
	}
	return res.Answers, res.Stats, nil
}

// SelectTrees runs TOSS selection over an explicit tree set (used for
// composed algebra expressions whose inputs are intermediate results).
func (s *System) SelectTrees(db []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	return s.SelectTreesContext(context.Background(), db, p, sl)
}

// SelectTreesContext is SelectTrees with cancellation, checking the context
// between input trees.
func (s *System) SelectTreesContext(ctx context.Context, db []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	dst := tree.NewCollection()
	ev := s.Evaluator()
	var out []*tree.Tree
	for _, doc := range db {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := tax.Select(dst, []*tree.Tree{doc}, p, sl, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// Project executes TOSS projection π_{P,PL} against the named instance.
func (s *System) Project(instance string, p *pattern.Tree, pl []int) ([]*tree.Tree, error) {
	return s.ProjectContext(context.Background(), instance, p, pl)
}

// ProjectContext is Project with cancellation, checking the context between
// candidate documents.
func (s *System) ProjectContext(ctx context.Context, instance string, p *pattern.Tree, pl []int) ([]*tree.Tree, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	cands, err := s.candidateDocs(ctx, in.Col, s.RewritePattern(p), nil)
	if err != nil {
		return nil, err
	}
	return s.ProjectTreesContext(ctx, cands, p, pl)
}

// Product returns the TOSS cross product of two tree sets.
func (s *System) Product(a, b []*tree.Tree) []*tree.Tree {
	dst := tree.NewCollection()
	return tax.Product(dst, a, b)
}

// Join executes a condition join of two instances: product followed by
// selection (Section 5.1.2), with the XPath pre-filter applied per side.
// When the join condition contains a cross-tree ~ or = atom on content, a
// similarity hash join pairs only documents sharing an SEO cluster key,
// preserving the result while skipping hopeless pairs.
//
// Deprecated: use Query with QueryRequest{Pattern, Instance, Right, Adorn}.
func (s *System) Join(left, right string, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	return s.JoinContext(context.Background(), left, right, p, sl)
}

// JoinContext is Join with cancellation.
//
// Deprecated: use Query with QueryRequest{Pattern, Instance, Right, Adorn}.
func (s *System) JoinContext(ctx context.Context, left, right string, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: left, Right: right, Adorn: sl})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// JoinTraced runs a condition join with an execution trace.
//
// Deprecated: use Query with Right and Trace set.
func (s *System) JoinTraced(left, right string, p *pattern.Tree, sl []int) ([]*tree.Tree, *ExecStats, error) {
	return s.JoinTracedContext(context.Background(), left, right, p, sl)
}

// JoinTracedContext is JoinTraced with cancellation.
//
// Deprecated: use Query with Right and Trace set.
func (s *System) JoinTracedContext(ctx context.Context, left, right string, p *pattern.Tree, sl []int) ([]*tree.Tree, *ExecStats, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: left, Right: right, Adorn: sl, Trace: true})
	if err != nil {
		return nil, nil, err
	}
	return res.Answers, res.Stats, nil
}

func (s *System) join(ctx context.Context, left, right string, p *pattern.Tree, sl []int, traced bool) ([]*tree.Tree, *ExecStats, error) {
	li := s.Instance(left)
	ri := s.Instance(right)
	if li == nil || ri == nil {
		return nil, nil, fmt.Errorf("core: unknown instance in join (%q, %q)", left, right)
	}
	var st *ExecStats
	if traced {
		st = newExecStats("join", left+"⨝"+right)
	}
	t0 := time.Now()
	ldocs := li.Col.Docs()
	rdocs := ri.Col.Docs()
	// Side-aware pre-filtering: a product-rooted pattern splits into one
	// sub-pattern per side, each a necessary condition for documents of
	// that side, so hopeless documents never enter the pairing at all.
	if lp, rp, ok := SplitJoinPattern(p); ok {
		t1 := time.Now()
		lpaths := s.rewritePattern(lp, st)
		rpaths := s.rewritePattern(rp, st)
		if st != nil {
			st.RewriteTime = time.Since(t1)
		}
		t2 := time.Now()
		var lerr, rerr error
		ldocs, lerr = s.candidateDocs(ctx, li.Col, lpaths, st)
		if lerr != nil {
			return nil, nil, lerr
		}
		rdocs, rerr = s.candidateDocs(ctx, ri.Col, rpaths, st)
		if rerr != nil {
			return nil, nil, rerr
		}
		if st != nil {
			st.PrefilterTime = time.Since(t2)
		}
	} else if st != nil {
		st.TotalDocs = len(ldocs) + len(rdocs)
		st.CandidateDocs = st.TotalDocs
	}
	// Cost-based build-side choice: the side with fewer estimated hash
	// entries builds the table, the other probes. Pair output is sorted by
	// (left, right) document index either way, so the choice cannot change
	// the answer set.
	var jp *planner.JoinPlan
	if s.Planner != nil {
		jp = planner.PlanJoinSides(li.Col.Stats(), ri.Col.Stats(), len(ldocs), len(rdocs))
	}
	t3 := time.Now()
	out, err := s.joinTreesPlanned(ctx, ldocs, rdocs, p, sl, st, jp,
		li.Col.ShardCount(), ri.Col.ShardCount())
	if st != nil {
		st.EvalTime = time.Since(t3)
		st.TotalTime = time.Since(t0)
		st.Answers = len(out)
		st.Workers = 1
	}
	return out, st, err
}

// SplitJoinPattern splits a product-rooted join pattern into its two side
// sub-patterns: the pattern root must be constrained (on the conjunctive
// spine) to the product root tag and have exactly two child subtrees. Each
// returned pattern carries the original structure of its side plus the
// conjunctive-spine atoms that mention only that side's labels — necessary
// conditions for any embedding, hence sound pre-filters.
func SplitJoinPattern(p *pattern.Tree) (left, right *pattern.Tree, ok bool) {
	root := p.Root
	if root == nil || len(root.Children) != 2 {
		return nil, nil, false
	}
	rootIsProd := false
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		if a.Op == pattern.OpEq && a.X.Kind == pattern.TermAttr &&
			a.X.Label == root.Label && a.X.Attr == "tag" &&
			a.Y.Kind == pattern.TermValue && a.Y.Value == tax.ProdRootTag {
			rootIsProd = true
		}
	}
	if !rootIsProd {
		return nil, nil, false
	}
	build := func(top *pattern.PNode) *pattern.Tree {
		t := pattern.New(top.Label)
		labels := map[int]bool{top.Label: true}
		var rec func(parent *pattern.PNode)
		rec = func(parent *pattern.PNode) {
			for _, c := range parent.Children {
				t.MustAddChild(parent.Label, c.Label, c.EdgeIn)
				labels[c.Label] = true
				rec(c)
			}
		}
		rec(top)
		var conds []pattern.Condition
		for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
			ls := a.Labels(nil)
			if len(ls) == 0 {
				continue
			}
			all := true
			for _, l := range ls {
				if !labels[l] {
					all = false
					break
				}
			}
			if all {
				cp := *a
				conds = append(conds, &cp)
			}
		}
		if len(conds) == 1 {
			t.Cond = conds[0]
		} else if len(conds) > 1 {
			t.Cond = &pattern.And{Conds: conds}
		}
		return t
	}
	return build(root.Children[0]), build(root.Children[1]), true
}

// JoinTrees joins two explicit tree sets (see Join).
func (s *System) JoinTrees(ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	return s.joinTrees(context.Background(), ldocs, rdocs, p, sl, nil)
}

// JoinTreesContext is JoinTrees with cancellation, checking the context
// between document pairs.
func (s *System) JoinTreesContext(ctx context.Context, ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	return s.joinTrees(ctx, ldocs, rdocs, p, sl, nil)
}

func (s *System) joinTrees(ctx context.Context, ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats) ([]*tree.Tree, error) {
	return s.joinTreesPlanned(ctx, ldocs, rdocs, p, sl, st, nil, 1, 1)
}

func (s *System) joinTreesPlanned(ctx context.Context, ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats, jp *planner.JoinPlan, lFan, rFan int) ([]*tree.Tree, error) {
	dst := tree.NewCollection()
	pairs, err := s.joinPairs(ctx, ldocs, rdocs, p, st, jp, lFan, rFan)
	if err != nil {
		return nil, err
	}
	ev := s.Evaluator()
	var out []*tree.Tree
	for _, pr := range pairs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prod := tax.Product(dst, []*tree.Tree{pr[0]}, []*tree.Tree{pr[1]})
		res, ops, err := tax.SelectTraced(dst, prod, p, sl, ev)
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.DocsEvaluated++
			st.Embeddings += ops.Embeddings
		}
		out = append(out, res...)
	}
	return out, nil
}

// NestedLoopJoinTrees is the unoptimised product-then-select join, kept for
// the hash-join ablation benchmark and as the semantic reference.
func (s *System) NestedLoopJoinTrees(ldocs, rdocs []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	dst := tree.NewCollection()
	prod := tax.Product(dst, ldocs, rdocs)
	return tax.Select(dst, prod, p, sl, s.Evaluator())
}

// joinPairs picks the document pairs worth joining. With a usable cross atom
// it hash-partitions by SEO cluster keys: when a join plan is supplied, the
// side it chose builds the hash table and the other probes it; without a
// plan both sides are keyed (the pre-planner heuristic). Each side's document
// keys are extracted on a worker pool fanned out to that side's shard count
// (lFan/rFan), which is pure per-document work, so pairing is unaffected.
// Pairs come out sorted by (left, right) document index regardless, so both
// strategies — and either build side — produce the identical pair list. When
// st is non-nil the pairing decision and counts are recorded.
func (s *System) joinPairs(ctx context.Context, ldocs, rdocs []*tree.Tree, p *pattern.Tree, st *ExecStats, jp *planner.JoinPlan, lFan, rFan int) ([][2]*tree.Tree, error) {
	cross := len(ldocs) * len(rdocs)
	atom := s.crossSimAtom(p)
	if atom == nil {
		out := make([][2]*tree.Tree, 0, cross)
		for _, l := range ldocs {
			for _, r := range rdocs {
				out = append(out, [2]*tree.Tree{l, r})
			}
		}
		if st != nil {
			st.Join = &JoinTrace{
				LeftDocs: len(ldocs), RightDocs: len(rdocs),
				PairsTried: cross, CrossPairs: cross,
			}
		}
		return out, nil
	}
	docKeys := func(d *tree.Tree) []string {
		seen := map[string]bool{}
		var out []string
		d.Walk(func(n *tree.Node) bool {
			if n.Content == "" {
				return true
			}
			for _, k := range s.simKeys(n.Content, atom.Op) {
				if !seen[k] {
					seen[k] = true
					out = append(out, k)
				}
			}
			return true
		})
		return out
	}
	lkeys, err := parallelDocKeys(ctx, ldocs, docKeys, lFan)
	if err != nil {
		return nil, err
	}
	rkeys, err := parallelDocKeys(ctx, rdocs, docKeys, rFan)
	if err != nil {
		return nil, err
	}
	keyed := func(keys [][]string) map[string][]int {
		m := map[string][]int{}
		for i, ks := range keys {
			for _, k := range ks {
				m[k] = append(m[k], i)
			}
		}
		return m
	}
	// Collect index pairs and sort those — comparing ints directly instead of
	// looking positions up with a linear scan per comparison keeps large
	// joins at O(n log n) rather than O(n² log n).
	pairSet := map[[2]int]bool{}
	var pairs [][2]int
	addPair := func(li, ri int) {
		pr := [2]int{li, ri}
		if !pairSet[pr] {
			pairSet[pr] = true
			pairs = append(pairs, pr)
		}
	}
	trace := &JoinTrace{
		LeftDocs: len(ldocs), RightDocs: len(rdocs),
		HashJoin: true, CrossPairs: cross,
	}
	if jp != nil {
		// Planned: build a hash table on the cheaper side only; the other
		// side streams its keys through the table.
		build, probe := lkeys, rkeys
		if !jp.BuildLeft {
			build, probe = rkeys, lkeys
		}
		bk := keyed(build)
		probeKeys := map[string]bool{}
		for j, ks := range probe {
			for _, k := range ks {
				probeKeys[k] = true
				for _, bi := range bk[k] {
					if jp.BuildLeft {
						addPair(bi, j)
					} else {
						addPair(j, bi)
					}
				}
			}
		}
		trace.BuildSide, trace.EstLeft, trace.EstRight = "left", jp.EstLeft, jp.EstRight
		trace.LeftKeys, trace.RightKeys = len(bk), len(probeKeys)
		if !jp.BuildLeft {
			trace.BuildSide = "right"
			trace.LeftKeys, trace.RightKeys = len(probeKeys), len(bk)
		}
	} else {
		lk := keyed(lkeys)
		rk := keyed(rkeys)
		for k, ls := range lk {
			rs := rk[k]
			for _, li := range ls {
				for _, ri := range rs {
					addPair(li, ri)
				}
			}
		}
		trace.LeftKeys, trace.RightKeys = len(lk), len(rk)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	out := make([][2]*tree.Tree, len(pairs))
	for i, pr := range pairs {
		out[i] = [2]*tree.Tree{ldocs[pr[0]], rdocs[pr[1]]}
	}
	trace.PairsTried = len(out)
	if st != nil {
		st.Join = trace
	}
	return out, nil
}

// crossSimAtom finds a conjunctive-spine atom of the form
// #a.content (~|=) #b.content with a ≠ b — the hash-join key.
func (s *System) crossSimAtom(p *pattern.Tree) *pattern.Atomic {
	for _, a := range pattern.Atoms(conjunctiveOnly(p.Cond)) {
		if (a.Op == pattern.OpSim || a.Op == pattern.OpEq) &&
			a.X.Kind == pattern.TermAttr && a.Y.Kind == pattern.TermAttr &&
			a.X.Attr == "content" && a.Y.Attr == "content" &&
			a.X.Label != a.Y.Label {
			if a.Op == pattern.OpSim && !s.hashSimJoinComplete() {
				// Cluster keys unavailable or incomplete (the dynamic
				// similarity fallback could relate values the ontology does
				// not know); fall back to the nested loop.
				continue
			}
			return a
		}
	}
	return nil
}

// simKeys produces the hash-join keys of a content value: for = the value
// itself; for ~ its SEO cluster names (or the value when unknown — two
// unknown values can only be ~ by the dynamic fallback, which the hash path
// refuses above).
func (s *System) simKeys(v string, op pattern.Op) []string {
	if op == pattern.OpEq {
		return []string{"=" + v}
	}
	nodes := s.FusedIsa.NodesOf(v)
	if len(nodes) == 0 {
		return []string{"=" + v}
	}
	var out []string
	for _, n := range nodes {
		for _, cl := range s.SEO.Mu[n] {
			out = append(out, "~"+cl)
		}
	}
	if len(out) == 0 {
		out = []string{"=" + v}
	}
	return out
}

// Union, Intersect and Difference lift the TAX set operations (tree
// value-equality semantics are identical in TOSS, Section 5.1.2).
func (s *System) Union(a, b []*tree.Tree) []*tree.Tree {
	return tax.Union(tree.NewCollection(), a, b)
}

// Intersect returns the set intersection of two tree sets.
func (s *System) Intersect(a, b []*tree.Tree) []*tree.Tree {
	return tax.Intersect(tree.NewCollection(), a, b)
}

// Difference returns the set difference of two tree sets.
func (s *System) Difference(a, b []*tree.Tree) []*tree.Tree {
	return tax.Difference(tree.NewCollection(), a, b)
}

// hashSimJoinComplete reports whether SEO cluster keys enumerate every
// possible ~ match between DB values, which is what the similarity hash join
// needs. This holds when every content value the join might compare is
// ontologized; the conservative proxy used here is that the system was built
// with DynamicSimilarity disabled (no measure fallback at query time).
func (s *System) hashSimJoinComplete() bool {
	return s.SEO != nil && !s.DynamicSimilarity
}

// RewriteToXPathStrings renders the rewritten queries (handy for CLIs and
// tests demonstrating the executor's query transformation).
func (s *System) RewriteToXPathStrings(p *pattern.Tree) []string {
	var out []string
	for _, path := range s.RewritePattern(p) {
		out = append(out, path.String())
	}
	return out
}
