package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/pattern"
	"repro/internal/tree"
)

// QueryRequest describes one TOSS algebra query for System.Query — the single
// entry point that subsumes the historical Select*/Join*/SelectRanked*/
// ExplainAnalyze* method matrix. The zero value of every optional field means
// "off", so a plain selection is just {Pattern, Instance}.
type QueryRequest struct {
	// Pattern is the TOSS pattern tree (required).
	Pattern *pattern.Tree
	// Instance names the instance to query (the left side for joins).
	Instance string
	// Right, when non-empty, makes the query a condition join of Instance
	// and Right (product followed by selection, Section 5.1.2).
	Right string
	// Adorn lists the pattern-node labels kept in witness trees (the SL
	// adornment of σ_{P,SL}).
	Adorn []int
	// Limit truncates the answer list; ≤ 0 means no limit. Selections stop
	// evaluating once the limit is reached (answers are a prefix of the
	// unlimited result); joins and ranked queries truncate after the fact.
	Limit int
	// Ranked scores each witness by the summed ~ distances and orders
	// answers most-similar first. Incompatible with Right and Analyze.
	Ranked bool
	// Trace attaches the per-query execution trace to the result.
	Trace bool
	// Analyze additionally attaches the static plan (EXPLAIN ANALYZE);
	// implies Trace.
	Analyze bool
	// NoPlanner disables cost-based planning for this query only (the
	// ablation switch previously spelled "clone the System, nil the
	// Planner").
	NoPlanner bool
	// NoAdaptive keeps the static cost-based planner but disables the
	// adaptive feedback layer for this query only: no corrections are applied
	// or learned and the streaming operators never re-plan mid-flight. The
	// answers are identical either way (adaptivity only moves work).
	NoAdaptive bool
	// Stream asks for a live DocStream in the result instead of a
	// materialized answer slice: the caller pulls answers one at a time and
	// MUST Close the stream (see docs/EXECUTION.md for the lifecycle
	// contract). Incompatible with Ranked and Analyze. When Trace is also
	// set, the attached stats finish populating only once the stream is
	// closed.
	Stream bool
}

// QueryResult is the uniform answer envelope of System.Query. Exactly one of
// Answers or Ranked is populated (Ranked iff the request was ranked); Stats
// and Plan are present only when requested via Trace/Analyze.
type QueryResult struct {
	// Answers holds the witness trees in document order.
	Answers []*tree.Tree
	// Ranked holds scored answers, most similar first.
	Ranked []RankedAnswer
	// Stats is the execution trace (Trace or Analyze requests).
	Stats *ExecStats
	// Plan is the static plan skeleton with actuals filled in (Analyze
	// requests).
	Plan *Plan
	// Limit echoes the request's limit; LimitHit reports whether it
	// actually truncated the answer list. For streamed results LimitHit is
	// only meaningful after the stream is drained.
	Limit    int
	LimitHit bool
	// Stream is the live answer stream of a Stream request (Answers is nil
	// then). The caller owns it and must Close it exactly once.
	Stream DocStream
	// OntologyVersion is the snapshot version the query pinned at entry
	// (0 when the system has no built ontology). Streamed answers keep
	// coming from this version even if a mutation installs a successor.
	OntologyVersion uint64
}

// Query executes one TOSS algebra query described by req. It is the unified
// replacement for the Select*/Join*/SelectRanked*/ExplainAnalyze* variants,
// which survive as thin deprecated wrappers around it. The context is checked
// between pre-filter queries and between candidate documents, so a cancelled
// or expired context stops the query promptly with ctx.Err().
func (s *System) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	if req.Pattern == nil {
		return nil, fmt.Errorf("core: query has no pattern")
	}
	// Pin the ontology snapshot once at entry: everything downstream —
	// evaluator, similarity rewrites, plan-cache keys, a live stream the
	// caller drains later — reads this version even if a mutation installs
	// a successor mid-flight.
	if s.pinned == nil {
		if snap := s.Ontology(); snap != nil {
			s = s.WithSnapshot(snap)
		}
	}
	if req.NoPlanner && s.Planner != nil {
		clone := *s
		clone.Planner = nil
		s = &clone
	}
	if req.NoAdaptive && s.adaptive() {
		clone := *s
		clone.AdaptiveDisabled = true
		s = &clone
	}
	if req.Stream && (req.Ranked || req.Analyze) {
		return nil, fmt.Errorf("core: ranked and analyze queries do not stream")
	}
	var res *QueryResult
	var err error
	switch {
	case req.Ranked:
		res, err = s.queryRanked(ctx, req)
	case req.Right != "":
		res, err = s.queryJoin(ctx, req)
	default:
		res, err = s.querySelect(ctx, req)
	}
	if res != nil {
		res.OntologyVersion = s.OntologyVersion()
	}
	return res, err
}

// querySelect drives the selection operator tree built by buildSelectStream:
// it owns the drain (or hands the live stream to the caller) and the
// end-to-end timings; everything else — scan strategy, pre-filtering,
// parallelism, limit pushdown — lives in the operators.
func (s *System) querySelect(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	traced := req.Trace || req.Analyze
	var st *ExecStats
	// A limited selection always runs with a trace internally: LimitHit is
	// part of the result envelope even when the caller did not ask for stats.
	if traced || req.Limit > 0 {
		st = newExecStats("select", req.Instance)
		st.Limit = req.Limit
		st.Streamed = req.Stream
	}
	t0 := time.Now()
	stream, err := s.buildSelectStream(ctx, req, st)
	if err != nil {
		return nil, err
	}
	tEval := time.Now()
	finish := func() {
		if st != nil {
			st.EvalTime = time.Since(tEval)
			st.TotalTime = time.Since(t0)
			finalizeStreamTrace(st)
		}
	}
	if req.Stream {
		res := &QueryResult{Stream: &onCloseStream{in: stream, fn: finish}, Limit: req.Limit}
		if traced {
			res.Stats = st
		}
		return res, nil
	}
	out, err := drainStream(ctx, stream)
	finish()
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Answers: out, Limit: req.Limit}
	if st != nil {
		res.LimitHit = st.LimitHit
	}
	if traced {
		res.Stats = st
	}
	if req.Analyze {
		res.Plan = s.analyzePlan(req.Instance, req.Pattern, st, true)
	}
	return res, nil
}

func (s *System) queryJoin(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	traced := req.Trace || req.Analyze
	if req.Limit > 0 || req.Stream {
		// Streaming join: the probe side is consumed in document order and
		// pair evaluation stops once the limit-th answer is out, instead of
		// joining everything and truncating after the fact.
		st := newExecStats("join", req.Instance+"⨝"+req.Right)
		st.Limit = req.Limit
		st.Streamed = req.Stream
		t0 := time.Now()
		stream, err := s.buildJoinStream(ctx, req, st)
		if err != nil {
			return nil, err
		}
		tEval := time.Now()
		finish := func() {
			st.EvalTime = time.Since(tEval)
			st.TotalTime = time.Since(t0)
		}
		if req.Stream {
			res := &QueryResult{Stream: &onCloseStream{in: stream, fn: finish}, Limit: req.Limit}
			if traced {
				res.Stats = st
			}
			return res, nil
		}
		out, err := drainStream(ctx, stream)
		finish()
		if err != nil {
			return nil, err
		}
		res := &QueryResult{Answers: out, Limit: req.Limit, LimitHit: st.LimitHit}
		if traced {
			res.Stats = st
		}
		if req.Analyze {
			res.Plan = s.analyzePlan(req.Instance+"⨝"+req.Right, req.Pattern, st, false)
		}
		return res, nil
	}
	out, st, err := s.join(ctx, req.Instance, req.Right, req.Pattern, req.Adorn, traced)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Answers: out, Stats: st, Limit: req.Limit}
	if req.Analyze {
		res.Plan = s.analyzePlan(req.Instance+"⨝"+req.Right, req.Pattern, st, false)
	}
	return res, nil
}

func (s *System) queryRanked(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	if req.Right != "" {
		return nil, fmt.Errorf("core: ranked queries join no second instance")
	}
	if req.Analyze {
		return nil, fmt.Errorf("core: ranked queries do not support analyze")
	}
	var st *ExecStats
	if req.Trace {
		st = newExecStats("ranked", req.Instance)
		st.Limit = req.Limit
	}
	t0 := time.Now()
	ranked, total, err := s.runSelectRanked(ctx, req.Instance, req.Pattern, req.Adorn, req.Limit, st)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Ranked: ranked, Limit: req.Limit}
	if req.Limit > 0 && total > req.Limit {
		res.LimitHit = true
	}
	if st != nil {
		st.TotalTime = time.Since(t0)
		st.EvalTime = st.TotalTime - st.RewriteTime - st.PrefilterTime
		st.LimitHit = res.LimitHit
		res.Stats = st
	}
	return res, nil
}

// analyzePlan builds the static plan skeleton and fills in the actuals
// recorded by the execution trace (EXPLAIN ANALYZE's plan half).
func (s *System) analyzePlan(instance string, p *pattern.Tree, st *ExecStats, selection bool) *Plan {
	plan := s.planSkeleton(instance, p)
	if selection {
		if in := s.Instance(instance); in != nil {
			plan.NodeEstimates = s.estimatePatternNodes(in, p)
		}
	}
	if st != nil {
		plan.TotalDocs = st.TotalDocs
		plan.CandidateDocs = st.CandidateDocs
		for _, pt := range st.Paths {
			plan.XPaths = append(plan.XPaths, pt.XPath)
		}
	}
	return plan
}
