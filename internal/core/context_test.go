package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/pattern"
)

// TestContextPreCancelled: every context-taking entry point must notice an
// already-expired context and return its error instead of running the query.
func TestContextPreCancelled(t *testing.T) {
	s := miniSystem(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := simSelectPattern()

	if _, err := s.SelectContext(ctx, "dblp", p, []int{1}); !errors.Is(err, context.Canceled) {
		t.Errorf("SelectContext: err = %v, want context.Canceled", err)
	}
	if _, _, err := s.SelectTracedContext(ctx, "dblp", p, []int{1}); !errors.Is(err, context.Canceled) {
		t.Errorf("SelectTracedContext: err = %v, want context.Canceled", err)
	}
	if _, err := s.SelectNContext(ctx, "dblp", p, []int{1}, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SelectNContext: err = %v, want context.Canceled", err)
	}
	if _, err := s.SelectRankedContext(ctx, "dblp", p, []int{1}); !errors.Is(err, context.Canceled) {
		t.Errorf("SelectRankedContext: err = %v, want context.Canceled", err)
	}
	jp := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	if _, err := s.JoinContext(ctx, "dblp", "sigmod", jp, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("JoinContext: err = %v, want context.Canceled", err)
	}
	expr, err := ParseExpr(`select[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"; 1](dblp)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := expr.EvalContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Errorf("EvalContext: err = %v, want context.Canceled", err)
	}
}

// TestContextUncancelledMatchesPlain: passing Background through the context
// variants must not change results.
func TestContextUncancelledMatchesPlain(t *testing.T) {
	s := miniSystem(t, 3)
	p := simSelectPattern()
	plain, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := s.SelectContext(context.Background(), "dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(viaCtx) {
		t.Fatalf("plain %d answers, ctx %d", len(plain), len(viaCtx))
	}
	for i := range plain {
		if plain[i].XMLString() != viaCtx[i].XMLString() {
			t.Fatalf("answer %d differs", i)
		}
	}
}

// TestDeadlineAbortsScan: a deadline expiring mid-scan must cancel the work
// inside core — the query returns well before full-scan time, not after
// finishing the scan anyway. This is the acceptance test for cancellation
// plumbing reaching the per-document evaluation loop.
func TestDeadlineAbortsScan(t *testing.T) {
	s := miniSystem(t, 3)
	// Inflate the scan after Build: dynamic ~ evaluation needs no rebuilt
	// ontology, so the new documents are full-weight embedding-search work.
	// The corpus must be big enough that the full scan takes far longer than
	// the platform's timer resolution — virtualized hosts can take 15-20ms to
	// observe a context deadline, and the planner keeps making scans faster.
	col := s.Instance("dblp").Col
	for i := 0; i < 2000; i++ {
		doc := fmt.Sprintf(`<dblp><inproceedings key="f%d">
			<author>Filler Author Number %d With A Longish Name</author>
			<title>Filler Title %d On Query Processing And Optimization Of Tree Pattern Matching</title>
			<year>%d</year>
			<booktitle>Workshop %d</booktitle>
		</inproceedings></dblp>`, i, i, i, 1990+i%30, i)
		if _, err := col.PutXML(fmt.Sprintf("f%d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	// Disjunctive conditions cannot be compiled into the XPath pre-filter,
	// so every document is a candidate and gets full embedding search —
	// the worst case the deadline has to be able to interrupt.
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & ` +
		`(#2.content ~ "Jeffrey D. Ullman" | #2.content = "no such content")`)

	start := time.Now()
	if _, err := s.SelectContext(context.Background(), "dblp", p, []int{1}); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	timeout := full / 20
	if timeout < 5*time.Millisecond {
		timeout = 5 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start = time.Now()
	_, err := s.SelectContext(ctx, "dblp", p, []int{1})
	aborted := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if aborted >= full/2 {
		t.Errorf("cancelled scan took %v, full scan %v: cancellation did not cut the scan short", aborted, full)
	}
}

// TestDeadlineAbortsParallelScan: same acceptance through the parallel
// evaluation stage (workers and feeder both watch the context).
func TestDeadlineAbortsParallelScan(t *testing.T) {
	s := miniSystem(t, 3)
	s.Parallelism = 4
	col := s.Instance("dblp").Col
	for i := 0; i < 400; i++ {
		doc := fmt.Sprintf(`<dblp><inproceedings key="p%d">
			<author>Parallel Filler Author %d</author>
			<title>Parallel Filler Title %d About Similarity Enhanced Ontologies</title>
		</inproceedings></dblp>`, i, i, i)
		if _, err := col.PutXML(fmt.Sprintf("p%d", i), strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	p := simSelectPattern()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SelectContext(ctx, "dblp", p, []int{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel SelectContext: err = %v, want context.Canceled", err)
	}
}

// TestSelectNRecordsTruncation: the early-exit selection must report the
// requested cap and whether it fired, so traces distinguish "3 answers
// exist" from "stopped after 3".
func TestSelectNRecordsTruncation(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)

	out, st, err := s.SelectNTracedContext(context.Background(), "dblp", p, []int{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d answers, want 2", len(out))
	}
	if st.Limit != 2 || !st.LimitHit {
		t.Errorf("trace limit=%d hit=%t, want limit=2 hit=true", st.Limit, st.LimitHit)
	}
	if !strings.Contains(st.String(), "early exit") {
		t.Errorf("trace rendering missing early-exit note:\n%s", st.String())
	}

	// A limit the answer count never reaches must record LimitHit=false.
	out, st, err = s.SelectNTracedContext(context.Background(), "dblp", p, []int{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || st.LimitHit {
		t.Errorf("limit=100: %d answers, hit=%t, want answers>0 hit=false", len(out), st.LimitHit)
	}
	if st.Limit != 100 {
		t.Errorf("trace limit=%d, want 100", st.Limit)
	}
}
