package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/tree"
)

func namedTree(t *testing.T, tag string) *tree.Tree {
	t.Helper()
	tr, err := tree.NewCollection().ParseXMLString("<" + tag + "/>")
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func makeTrees(t *testing.T, n int) []*tree.Tree {
	t.Helper()
	out := make([]*tree.Tree, n)
	for i := range out {
		out[i] = namedTree(t, fmt.Sprintf("t%d", i))
	}
	return out
}

func TestSliceStreamAndDrain(t *testing.T) {
	docs := makeTrees(t, 4)
	got, err := drainStream(context.Background(), newSliceStream(docs))
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(docs, got) {
		t.Fatal("drained slice stream differs from its input")
	}
	// Exhausted streams keep reporting io.EOF.
	s := newSliceStream(nil)
	for i := 0; i < 2; i++ {
		if _, err := s.Next(context.Background()); err != io.EOF {
			t.Fatalf("empty stream Next #%d: err=%v, want io.EOF", i, err)
		}
	}
}

func TestLimitStreamStopsPullingAndRecordsHit(t *testing.T) {
	docs := makeTrees(t, 5)
	st := newExecStats("select", "x")
	inner := newSliceStream(docs)
	lim := newLimitStream(inner, 2, st)
	got, err := drainStream(context.Background(), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !st.LimitHit {
		t.Fatalf("limit stream: %d answers, hit=%t, want 2/true", len(got), st.LimitHit)
	}
	if inner.pos != 2 {
		t.Fatalf("limit stream pulled %d docs from its input, want exactly 2 (pushdown)", inner.pos)
	}

	// A limit the input never reaches must not record a hit.
	st2 := newExecStats("select", "x")
	got, err = drainStream(context.Background(), newLimitStream(newSliceStream(docs), 9, st2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || st2.LimitHit {
		t.Fatalf("unreached limit: %d answers, hit=%t, want 5/false", len(got), st2.LimitHit)
	}

	// Exactly-limit answers still count as a hit (historical SelectN
	// semantics: the limit-th answer exists).
	st3 := newExecStats("select", "x")
	if _, err := drainStream(context.Background(), newLimitStream(newSliceStream(docs), 5, st3)); err != nil {
		t.Fatal(err)
	}
	if !st3.LimitHit {
		t.Fatal("limit == answer count must record LimitHit")
	}
}

func TestScanStreamMergesShardsInInsertionOrder(t *testing.T) {
	s := NewSystem()
	s.DB.SetDefaultShards(5)
	in, err := s.AddInstance("c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		xml := fmt.Sprintf("<doc><n>%d</n></doc>", i)
		if _, err := in.Col.PutXML(fmt.Sprintf("k%02d", i), strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	st := newExecStats("select", "c")
	got, err := drainStream(context.Background(), newScanStream(in.Col.ShardCursors(), st))
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(in.Col.Docs(), got) {
		t.Fatal("scan stream order differs from Docs() insertion order")
	}
	if st.DocsScanned != 23 {
		t.Fatalf("DocsScanned=%d, want 23", st.DocsScanned)
	}
}

func TestFilterStreamMatchesCandidateDocs(t *testing.T) {
	s := miniSystem(t, 3)
	col := s.Instance("dblp").Col
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content = "J. Ullman"`)
	paths := s.RewritePattern(p)
	if len(paths) == 0 {
		t.Fatal("pattern rewrote to no paths")
	}
	want := s.CandidateDocs(col, paths)
	got, err := drainStream(context.Background(),
		newFilterStream(newScanStream(col.ShardCursors(), nil), paths, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(want, got) {
		t.Fatalf("filter stream passed %d docs, candidateDocs %d", len(got), len(want))
	}
}

func TestAsyncStreamDeliversInOrderAndClosesClean(t *testing.T) {
	defer checkGoroutineLeak(t)()
	docs := makeTrees(t, 50)
	got, err := drainStream(context.Background(), newAsyncStream(newSliceStream(docs), 4))
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(docs, got) {
		t.Fatal("async stream reordered or dropped documents")
	}
}

func TestAsyncStreamCloseMidStreamLeavesNoGoroutine(t *testing.T) {
	defer checkGoroutineLeak(t)()
	docs := makeTrees(t, 100)
	s := newAsyncStream(newSliceStream(docs), 2)
	if _, err := s.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close() // producer mid-flight: Close must cancel, drain, and join it
	s.Close() // and closing twice is fine
}

func TestAsyncStreamPropagatesErrors(t *testing.T) {
	defer checkGoroutineLeak(t)()
	boom := errors.New("boom")
	s := newAsyncStream(&errStream{err: boom}, 2)
	defer s.Close()
	if _, err := s.Next(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if _, err := s.Next(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("second Next err=%v, want boom again", err)
	}
}

func TestAsyncStreamConsumerCancellation(t *testing.T) {
	defer checkGoroutineLeak(t)()
	docs := makeTrees(t, 10)
	s := newAsyncStream(newSliceStream(docs), 1)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The consumer's context governs its Next calls even while the producer
	// is alive.
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := s.Next(ctx); errors.Is(err, context.Canceled) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled consumer never saw context.Canceled")
		}
	}
}

func TestEvalStreamFinalizesWorkerTrace(t *testing.T) {
	s := miniSystem(t, 3)
	col := s.Instance("dblp").Col
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	st := newExecStats("select", "dblp")
	es := newEvalStream(newSliceStream(col.Docs()), s, p, []int{1}, st)
	out, err := drainStream(context.Background(), es)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("eval stream produced no answers")
	}
	if st.Workers != 1 || len(st.WorkerDocs) != 1 || st.WorkerDocs[0] != st.DocsEvaluated {
		t.Fatalf("worker trace: workers=%d workerDocs=%v evaluated=%d",
			st.Workers, st.WorkerDocs, st.DocsEvaluated)
	}
	if st.Answers != len(out) {
		t.Fatalf("Answers=%d, want %d", st.Answers, len(out))
	}
}

func TestSelectDocsWorkersExitOnCancel(t *testing.T) {
	defer checkGoroutineLeak(t)()
	s := miniSystem(t, 3)
	s.Parallelism = 4
	var docs []*tree.Tree
	for i := 0; i < 64; i++ {
		docs = append(docs, namedTree(t, "inproceedings"))
	}
	p := pattern.MustParse(`#1 :: #1.tag = "inproceedings"`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.selectDocs(ctx, docs, p, []int{1}, nil, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("selectDocs err=%v, want context.Canceled", err)
	}
}

func TestParallelDocKeysCancellation(t *testing.T) {
	defer checkGoroutineLeak(t)()
	docs := makeTrees(t, 64)
	keys := func(d *tree.Tree) []string { return []string{"k"} }

	out, err := parallelDocKeys(context.Background(), docs, keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, ks := range out {
		if len(ks) != 1 {
			t.Fatalf("doc %d: keys=%v", i, ks)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := parallelDocKeys(ctx, docs, keys, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallelDocKeys err=%v, want context.Canceled", err)
	}
}

func TestQueryStreamSelection(t *testing.T) {
	defer checkGoroutineLeak(t)()
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`)
	ctx := context.Background()

	ref, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream == nil || res.Answers != nil {
		t.Fatal("Stream request must return a stream and no materialized answers")
	}
	got, err := drainStream(ctx, res.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTrees(ref.Answers, got) {
		t.Fatalf("streamed selection: %d answers differ from materialized %d", len(got), len(ref.Answers))
	}

	// Ranked and analyze refuse to stream.
	if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Stream: true, Ranked: true}); err == nil {
		t.Error("Stream+Ranked must fail")
	}
	if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Stream: true, Analyze: true}); err == nil {
		t.Error("Stream+Analyze must fail")
	}
}

func TestQueryStreamAbandonedEarly(t *testing.T) {
	defer checkGoroutineLeak(t)()
	s, _ := buildShardedJoinSystem(t, 40, 1, 4)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`)
	res, err := s.Query(context.Background(), QueryRequest{
		Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: 30, Stream: true, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Stream.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	res.Stream.Close() // abandon after one answer: prefetcher must die
	if res.Stats.TotalTime == 0 {
		t.Error("closing the stream must finalize trace timings")
	}
}
