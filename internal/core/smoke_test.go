package core

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/similarity"
)

// buildTestSystem loads a small two-source corpus and builds the SEO.
func buildTestSystem(t testing.TB, papers int, eps float64) (*System, *datagen.Corpus) {
	t.Helper()
	corpus := datagen.Generate(datagen.DefaultConfig(papers))
	s := NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatalf("AddInstance: %v", err)
	}
	if _, err := dblp.Col.PutXML("dblp-0", strings.NewReader(corpus.DBLPString(corpus.Papers))); err != nil {
		t.Fatalf("PutXML dblp: %v", err)
	}
	sig, err := s.AddInstance("sigmod")
	if err != nil {
		t.Fatalf("AddInstance: %v", err)
	}
	if _, err := sig.Col.PutXML("sigmod-0", strings.NewReader(corpus.SIGMODString(corpus.Papers))); err != nil {
		t.Fatalf("PutXML sigmod: %v", err)
	}
	if err := s.Build(similarity.NameRule{}, eps); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, corpus
}

func TestSmokeEndToEnd(t *testing.T) {
	s, corpus := buildTestSystem(t, 40, 3)

	if s.OntologyTermCount() == 0 {
		t.Fatal("fused ontology is empty")
	}
	if s.SEO == nil || s.SEO.NodeCount() == 0 {
		t.Fatal("SEO is empty")
	}

	// Pick an author with at least two distinct surface forms.
	var authorID = -1
	var mentions []string
	for _, a := range corpus.Authors {
		m := corpus.MentionsOf(a.ID)
		if len(m) >= 2 {
			authorID = a.ID
			mentions = m
			break
		}
	}
	if authorID < 0 {
		t.Fatal("no author with multiple mentions; generator misconfigured?")
	}
	t.Logf("author %d mentions: %q", authorID, mentions)

	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ ` +
		quote(corpus.Authors[authorID].Canonical()))
	res, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	truth := corpus.PapersByAuthor(authorID)
	t.Logf("TOSS returned %d trees; truth has %d papers", len(res), len(truth))
	if len(res) == 0 && len(truth) > 0 {
		t.Error("TOSS similarity selection returned nothing")
	}

	// isa query over title words.
	p2 := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content isa "access method"`)
	res2, err := s.Select("dblp", p2, []int{1})
	if err != nil {
		t.Fatalf("Select isa: %v", err)
	}
	truth2 := corpus.PapersByTitleWord(func(w string) bool {
		return w == "index" || w == "indexes" || w == "indices"
	})
	t.Logf("isa query returned %d trees; truth %d", len(res2), len(truth2))
	if len(truth2) > 0 && len(res2) == 0 {
		t.Error("isa selection returned nothing")
	}
}

func quote(s string) string { return `"` + s + `"` }
