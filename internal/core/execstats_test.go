package core

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func simSelectPattern() *pattern.Tree {
	return pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & ` +
		`#2.content ~ "Jeffrey D. Ullman"`)
}

// TestSelectTraced: the traced selection returns the same answers as the
// plain one and fills in every stage of the execution trace.
func TestSelectTraced(t *testing.T) {
	s := miniSystem(t, 3)
	p := simSelectPattern()
	plain, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	traced, st, err := s.SelectTraced("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) {
		t.Fatalf("traced %d answers vs plain %d", len(traced), len(plain))
	}
	for i := range traced {
		if traced[i].XMLString() != plain[i].XMLString() {
			t.Fatalf("answer %d differs between traced and plain runs", i)
		}
	}
	if st.Op != "select" || st.Instance != "dblp" {
		t.Errorf("trace identity = %q on %q", st.Op, st.Instance)
	}
	if st.Rewrite.Paths == 0 || len(st.Paths) != st.Rewrite.Paths {
		t.Errorf("rewrite trace: %d paths declared, %d traced", st.Rewrite.Paths, len(st.Paths))
	}
	if st.TotalDocs != 1 || st.CandidateDocs != 1 || st.Selectivity() != 1 {
		t.Errorf("pre-filter stats = %d/%d", st.CandidateDocs, st.TotalDocs)
	}
	for _, pt := range st.Paths {
		if pt.XPath == "" {
			t.Error("path trace missing XPath")
		}
		if !pt.Indexed && pt.DocsWalked == 0 {
			t.Errorf("path %s: neither indexed nor walked", pt.XPath)
		}
	}
	if st.Workers < 1 || st.DocsEvaluated != 1 || len(st.WorkerDocs) != st.Workers {
		t.Errorf("eval stats = workers %d, docs %d, per-worker %v", st.Workers, st.DocsEvaluated, st.WorkerDocs)
	}
	if st.Answers != len(traced) || st.Embeddings < st.Answers {
		t.Errorf("answers=%d embeddings=%d (returned %d)", st.Answers, st.Embeddings, len(traced))
	}
	if st.TotalTime <= 0 || st.EvalTime <= 0 {
		t.Errorf("timings not recorded: total=%v eval=%v", st.TotalTime, st.EvalTime)
	}
	// The ~ literal must be traced as an emitted expansion.
	foundEmitted := false
	for _, e := range st.Rewrite.Expansions {
		if e.Literal == "Jeffrey D. Ullman" && e.Outcome == ExpansionEmitted && e.Size >= 2 {
			foundEmitted = true
		}
	}
	if !foundEmitted {
		t.Errorf("expansion trace missing emitted ~ literal: %+v", st.Rewrite.Expansions)
	}
	if st.Join != nil {
		t.Error("selection trace must not carry a join trace")
	}
}

// TestJoinTraced: the traced join matches the plain join and records
// per-side pre-filter stats plus the pairing trace.
func TestJoinTraced(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	plain, err := s.Join("dblp", "sigmod", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	traced, st, err := s.JoinTraced("dblp", "sigmod", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) || len(traced) != 1 {
		t.Fatalf("traced %d answers vs plain %d (want 1)", len(traced), len(plain))
	}
	if st.Op != "join" || st.Instance != "dblp⨝sigmod" {
		t.Errorf("trace identity = %q on %q", st.Op, st.Instance)
	}
	if st.Join == nil {
		t.Fatal("join trace missing")
	}
	j := st.Join
	if j.LeftDocs != 1 || j.RightDocs != 1 || j.CrossPairs != 1 {
		t.Errorf("pairing sides = %dx%d cross=%d", j.LeftDocs, j.RightDocs, j.CrossPairs)
	}
	if j.PairsTried < 1 || j.PairsTried > j.CrossPairs {
		t.Errorf("PairsTried = %d of %d", j.PairsTried, j.CrossPairs)
	}
	if sel := j.PairSelectivity(); sel <= 0 || sel > 1 {
		t.Errorf("pair selectivity = %f", sel)
	}
	if st.Answers != 1 || st.TotalTime <= 0 {
		t.Errorf("answers=%d total=%v", st.Answers, st.TotalTime)
	}
}

// TestAnalyzedPlanRendering: EXPLAIN ANALYZE output carries the routing
// decisions, candidate counts and per-stage timings the operator needs.
func TestAnalyzedPlanRendering(t *testing.T) {
	s := miniSystem(t, 3)
	ap, answers, err := s.ExplainAnalyze("dblp", simSelectPattern(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("analyzed selection returned no answers")
	}
	out := ap.String()
	for _, want := range []string{
		"EXPLAIN ANALYZE: select on dblp",
		"rewrite  [",
		"pre-filter  [",
		"route=index(",
		"selectivity",
		"eval  [",
		"workers=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyzed plan missing %q:\n%s", want, out)
		}
	}

	apj, janswers, err := s.ExplainAnalyzeJoin("dblp", "sigmod", pattern.MustParse(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: `+
			`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & `+
			`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(janswers) != 1 {
		t.Fatalf("analyzed join returned %d answers", len(janswers))
	}
	jout := apj.String()
	for _, want := range []string{
		"EXPLAIN ANALYZE: join on dblp⨝sigmod",
		"join: ",
		"pairs tried",
		"pair selectivity",
	} {
		if !strings.Contains(jout, want) {
			t.Errorf("analyzed join plan missing %q:\n%s", want, jout)
		}
	}
}

// TestSelectTracedParallel: the parallel path records worker utilization and
// returns the sequential path's answers.
func TestSelectTracedParallel(t *testing.T) {
	s := miniSystem(t, 3)
	// Split the single mini document into per-paper documents so there is
	// real fan-out.
	col := s.Instance("dblp").Col
	docs := col.Docs()
	roots, err := col.Query(`//inproceedings`)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 || len(docs) != 1 {
		t.Fatalf("fixture shape changed: %d roots, %d docs", len(roots), len(docs))
	}
	seq, _, err := s.SelectTraced("dblp", simSelectPattern(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	s.Parallelism = 4
	defer func() { s.Parallelism = 1 }()
	par, st, err := s.SelectTraced("dblp", simSelectPattern(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d answers vs sequential %d", len(par), len(seq))
	}
	total := 0
	for _, n := range st.WorkerDocs {
		total += n
	}
	if total != st.DocsEvaluated {
		t.Errorf("worker utilization %v does not sum to %d docs", st.WorkerDocs, st.DocsEvaluated)
	}
}
