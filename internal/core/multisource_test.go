package core

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

const thirdSourceXML = `<biblio>
  <paper key="b1">
    <writer>E. Bertino</writer>
    <heading>Securing XML Documents</heading>
    <venue>SIGMOD Conference</venue>
    <published>2000</published>
  </paper>
</biblio>`

// TestThreeSourceFusion integrates a third bibliography whose schema shares
// no tag names with DBLP or SIGMOD; DBA synonym rules bridge the vocabulary
// and the fusion merges all three schemas.
func TestThreeSourceFusion(t *testing.T) {
	s := NewSystem()
	// DBA vocabulary rules for the third source's schema.
	s.Lexicon.AddSynonym("writer", "author")
	s.Lexicon.AddSynonym("heading", "title")
	s.Lexicon.AddSynonym("venue", "booktitle")
	s.Lexicon.AddSynonym("published", "year")

	for _, src := range []struct{ name, xml string }{
		{"dblp", miniDBLP},
		{"sigmod", miniSIGMOD},
		{"biblio", thirdSourceXML},
	} {
		in, err := s.AddInstance(src.name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Col.PutXML(src.name, strings.NewReader(src.xml)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}

	// All three author-like tags fuse into one node.
	a := s.FusedIsa.NodesOf("author")
	w := s.FusedIsa.NodesOf("writer")
	if len(a) == 0 || len(w) == 0 || a[0] != w[0] {
		t.Errorf("author %v and writer %v should fuse", a, w)
	}
	// Venue values from all sources sit below the fused booktitle node.
	ev := s.Evaluator()
	for _, cond := range []string{
		`"SIGMOD Conference" isa "venue"`,
		`"SIGMOD Conference" isa "booktitle"`,
		`"International Conference on Management of Data" isa "venue"`,
	} {
		atom := pattern.MustParseCondition(cond).(*pattern.Atomic)
		ok, err := ev.EvalAtomic(atom, bindingNone())
		if err != nil {
			t.Fatalf("%s: %v", cond, err)
		}
		if !ok {
			t.Errorf("%s should hold after three-way fusion", cond)
		}
	}

	// A similarity query in the third source's own vocabulary finds the
	// variant spellings from the other sources' value pools.
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "paper" & #2.tag = "writer" & #2.content ~ "Elisa Bertino"`)
	res, err := s.Select("biblio", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("cross-vocabulary similarity selection = %d answers, want 1", len(res))
	}
}

// TestReEnhance rebuilds the SEO at a different ε on a live system; query
// results widen accordingly without re-running the Ontology Maker.
func TestReEnhance(t *testing.T) {
	s := NewSystem()
	in, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Col.PutXML("d", strings.NewReader(miniDBLP)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 0); err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`)
	strict, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 1 {
		t.Fatalf("eps=0 should match exactly, got %d", len(strict))
	}
	// Re-enhance at eps=3 without rebuilding ontologies.
	if err := s.Enhance(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	loose, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) != 2 {
		t.Fatalf("eps=3 should add the J. Ullman paper, got %d", len(loose))
	}
}

// bindingNone returns an empty binding for literal-only conditions.
func bindingNone() tax.Binding { return tax.Binding{} }

func TestNewTFIDFMeasure(t *testing.T) {
	s := miniSystem(t, 3)
	m := s.NewTFIDFMeasure(1, "title")
	if m.DocCount() != 4 { // 3 DBLP titles + 1 SIGMOD title
		t.Fatalf("DocCount = %d, want 4", m.DocCount())
	}
	// "xml" appears in two titles, "index" in one.
	if m.DocFrequency("xml") != 2 || m.DocFrequency("index") != 1 {
		t.Errorf("df(xml)=%d df(index)=%d", m.DocFrequency("xml"), m.DocFrequency("index"))
	}
	// The corpus-weighted measure drives a rebuild end to end.
	if err := s.Enhance(m, 0.4); err != nil {
		t.Fatal(err)
	}
	if s.SEO == nil {
		t.Fatal("re-enhancement with TFIDF failed")
	}
	// All-content variant sees more documents.
	all := s.NewTFIDFMeasure(1)
	if all.DocCount() <= m.DocCount() {
		t.Errorf("all-content corpus (%d) should exceed title corpus (%d)", all.DocCount(), m.DocCount())
	}
}

// TestHashSimJoin exercises the similarity hash-join fast path: with the
// dynamic fallback disabled (every relevant value ontologized), joinPairs
// partitions documents by SEO cluster keys and must produce exactly the
// nested-loop result.
func TestHashSimJoin(t *testing.T) {
	s := miniSystem(t, 3)
	s.DynamicSimilarity = false
	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "author" & #5.tag = "author" & #4.content ~ #5.content`)
	fast, err := s.Join("dblp", "sigmod", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ldocs, _ := s.Trees("dblp")
	rdocs, _ := s.Trees("sigmod")
	slow, err := s.NestedLoopJoinTrees(ldocs, rdocs, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("hash join %d vs nested loop %d", len(fast), len(slow))
	}
	if len(fast) != 1 {
		t.Errorf("expected the Bertino author pair, got %d", len(fast))
	}
	// = cross atoms also use the hash path.
	pEq := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "year" & #5.tag = "confYear" & #4.content = #5.content`)
	eqFast, err := s.Join("dblp", "sigmod", pEq, nil)
	if err != nil {
		t.Fatal(err)
	}
	eqSlow, err := s.NestedLoopJoinTrees(ldocs, rdocs, pEq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqFast) != len(eqSlow) {
		t.Fatalf("= hash join %d vs nested loop %d", len(eqFast), len(eqSlow))
	}
}

// TestPartOfValueChains mirrors the govquery example inside the test suite:
// affiliation values reach "us government" through lexicon holonym chains.
func TestPartOfValueChains(t *testing.T) {
	s := NewSystem()
	in, err := s.AddInstance("papers")
	if err != nil {
		t.Fatal(err)
	}
	const xml = `<dblp>
	  <inproceedings key="p1">
	    <author>Ann Smith</author>
	    <affiliation>US Census Bureau</affiliation>
	    <title>Census Tabulation</title>
	  </inproceedings>
	  <inproceedings key="p2">
	    <author>Carol White</author>
	    <affiliation>Stanford University</affiliation>
	    <title>Ontology Algebra</title>
	  </inproceedings>
	</dblp>`
	if _, err := in.Col.PutXML("p", strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 2); err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "affiliation" & #2.content part_of "us government"`)
	res, err := s.Select("papers", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("part_of selection = %d answers, want 1 (Census Bureau only)", len(res))
	}
	if got := res[0].Root.ChildContent("affiliation"); got != "US Census Bureau" {
		t.Errorf("wrong paper matched: %q", got)
	}
}

func TestSplitJoinPattern(t *testing.T) {
	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`)
	l, r, ok := SplitJoinPattern(p)
	if !ok {
		t.Fatal("product-rooted pattern should split")
	}
	if l.Root.Label != 2 || r.Root.Label != 3 {
		t.Errorf("split roots = #%d/#%d", l.Root.Label, r.Root.Label)
	}
	if l.NodeCount() != 2 || r.NodeCount() != 2 {
		t.Errorf("split sizes = %d/%d", l.NodeCount(), r.NodeCount())
	}
	// Side conditions keep only their own labels; the cross atom is gone.
	for _, a := range pattern.Atoms(l.Cond) {
		for _, lab := range a.Labels(nil) {
			if lab != 2 && lab != 4 {
				t.Errorf("left condition leaked label %d", lab)
			}
		}
	}
	if len(pattern.Atoms(l.Cond)) != 2 { // #2.tag and #4.tag
		t.Errorf("left atoms = %d", len(pattern.Atoms(l.Cond)))
	}
	// Non-product patterns do not split.
	if _, _, ok := SplitJoinPattern(pattern.MustParse(`#1 pc #2 :: #1.tag = "a"`)); ok {
		t.Error("non-product pattern must not split")
	}
	if _, _, ok := SplitJoinPattern(pattern.MustParse(`#1 pc #2, #1 pc #3`)); ok {
		t.Error("unconstrained root must not split")
	}
}

// TestJoinSidePrefilterSoundness: Join with side pre-filtering equals the
// raw nested-loop join over all documents.
func TestJoinSidePrefilterSoundness(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "booktitle" & #5.tag = "conference" & #4.content isa "meeting" & #5.content isa "meeting" & #4.content = "SIGMOD Conference"`)
	fast, err := s.Join("dblp", "sigmod", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ldocs, _ := s.Trees("dblp")
	rdocs, _ := s.Trees("sigmod")
	slow, err := s.NestedLoopJoinTrees(ldocs, rdocs, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("prefiltered join %d vs nested loop %d", len(fast), len(slow))
	}
	for i := range fast {
		if !tree.Equal(fast[i], slow[i]) {
			t.Fatalf("answer %d differs", i)
		}
	}
}

// TestRebuildAfterNewDocuments: adding documents after a Build and building
// again refreshes ontologies and answers.
func TestRebuildAfterNewDocuments(t *testing.T) {
	s := NewSystem()
	in, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Col.PutXML("d1", strings.NewReader(miniDBLP)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	before := s.OntologyTermCount()

	const extra = `<dblp>
	  <inproceedings key="d9">
	    <author>Newcomer Author</author>
	    <title>Fresh Results</title>
	    <booktitle>BRANDNEW</booktitle>
	    <year>2003</year>
	  </inproceedings>
	</dblp>`
	if _, err := in.Col.PutXML("d2", strings.NewReader(extra)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	if s.OntologyTermCount() <= before {
		t.Errorf("rebuild should grow the ontology: %d -> %d", before, s.OntologyTermCount())
	}
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Newcomer Author"`)
	res, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("new document not queryable after rebuild: %d answers", len(res))
	}
}

func TestStats(t *testing.T) {
	s := miniSystem(t, 3)
	st := s.Stats()
	if st.Instances != 2 || st.Documents != 2 {
		t.Errorf("instances/documents = %d/%d", st.Instances, st.Documents)
	}
	if st.Bytes <= 0 || st.IsaTerms <= 0 || st.PartTerms <= 0 || st.SEONodes <= 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.MergedNodes == 0 {
		t.Error("expected at least one merged SEO cluster (Ullman variants)")
	}
	if st.MeasureName != "name-rule" || st.Epsilon != 3 {
		t.Errorf("measure metadata wrong: %s/%g", st.MeasureName, st.Epsilon)
	}
	out := st.String()
	for _, want := range []string{"instances: 2", "isa hierarchy", "SEO:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats rendering missing %q:\n%s", want, out)
		}
	}
	// Unbuilt system: zero values, no panic.
	empty := NewSystem()
	if st := empty.Stats(); st.SEONodes != 0 || st.IsaTerms != 0 {
		t.Errorf("unbuilt stats should be zero: %+v", st)
	}
}

func TestVerifySEO(t *testing.T) {
	s := miniSystem(t, 3)
	if err := s.VerifySEO(); err != nil {
		t.Fatalf("built SEO should verify: %v", err)
	}
	if err := NewSystem().VerifySEO(); err == nil {
		t.Error("unbuilt system must fail verification")
	}
}
