package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/planner"
	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// streamBufferDocs is the prefetch depth between the scan/filter stage and
// the evaluation stage of the streaming pipeline: deep enough to overlap
// shard scanning with embedding search, shallow enough that a limit-10
// query never scans far past its answer.
const streamBufferDocs = 8

// streamScanDecision asks the planner whether a limited selection should run
// as a streaming shard scan (limit pushdown) instead of materializing the
// candidate set. With the planner disabled the heuristic fallback applies.
func (s *System) streamScanDecision(col *xmldb.Collection, paths []*xpath.Path, limit int) planner.StreamDecision {
	if s.Planner != nil {
		if s.adaptive() {
			return s.Planner.PlanStreamScanAdaptive(col.Name(), col.Stats(), s.OntologyVersion(), paths, limit)
		}
		return planner.PlanStreamScan(col.Stats(), paths, limit)
	}
	d := planner.StreamDecision{Stream: planner.HeuristicStreamScan(col.DocCount(), limit)}
	if d.Stream {
		d.EstScanDocs = float64(limit)
		d.EstCandidates = float64(limit)
	}
	return d
}

// buildSelectStream assembles the selection operator tree. Three shapes:
//
//   - stream-scan (limit pushdown): scan → filter → prefetch → eval → limit.
//     Shard cursors are merged in insertion order and every stage pulls, so
//     the scan stops as soon as the limit-th answer is out.
//   - materialized limit: candidate pre-filter (index intersection), then a
//     sequential eval → limit chain — the historical SelectN execution and
//     trace, answer for answer.
//   - full result: candidate pre-filter, then the parallel batch evaluator
//     (selectDocs) behind a stream facade — byte-identical answers and
//     traces to the pre-streaming engine. With Stream requested and no
//     limit, a sequential eval stream delivers answers incrementally
//     instead (same answers, same order).
//
// Rewrite and pre-filter timings are recorded here; the caller owns
// EvalTime/TotalTime (they close over the drain).
func (s *System) buildSelectStream(ctx context.Context, req QueryRequest, st *ExecStats) (DocStream, error) {
	in := s.Instance(req.Instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", req.Instance)
	}
	t0 := time.Now()
	paths := s.rewritePattern(req.Pattern, st)
	if st != nil {
		st.RewriteTime = time.Since(t0)
	}

	// Similarity candidate index: when the planner costs a ~ predicate's
	// index probe below the scan alternatives, candidates come from term
	// postings instead of any document scan (sublinear in documents).
	if sp := s.planSimProbe(in, req.Pattern); sp != nil {
		return s.simSelectStream(ctx, req, in, sp, paths, st)
	}

	if req.Limit > 0 {
		if d := s.streamScanDecision(in.Col, paths, req.Limit); d.Stream {
			cursors := in.Col.ShardCursors()
			total := 0
			for _, c := range cursors {
				total += c.Len()
			}
			if st != nil {
				st.ScanMode = ScanModeStream
				st.TotalDocs = total
				estRows := d.EstCandidates
				if lim := float64(req.Limit); estRows > lim {
					estRows = lim
				}
				st.Operators = []OperatorTrace{
					{Name: "scan", Est: d.EstScanDocs},
					{Name: "filter", Est: estRows},
					{Name: "eval", Est: estRows},
					{Name: "limit", Est: estRows},
				}
			}
			scan := newScanStream(cursors, st)
			var stream DocStream = scan
			stream = newFilterStream(stream, paths, st)
			stream = newAsyncStream(stream, streamBufferDocs)
			if s.adaptive() {
				// Adaptive checkpoint: evaluates like evalStream but re-plans
				// to the materialized shape when the scan overruns its
				// estimate, and feeds actual cardinalities back into the
				// correction store. Answers are identical either way.
				if st != nil && d.Corrections > 0 {
					at := st.adaptiveTrace()
					at.CorrectionsApplied += d.Corrections
					at.Epoch = s.Planner.FeedbackEpoch()
				}
				cst := in.Col.Stats()
				key := planner.FeedbackKey(in.Col.Name(), cst.Generation, s.OntologyVersion(), planner.SelectShape(paths))
				stream = newReoptStream(stream, s, req.Pattern, req.Adorn, st, d, &scan.scanned, key, in.Col.ShardCount())
				return newFirstResultStream(newLimitStream(stream, req.Limit, st), s.Planner, true), nil
			}
			stream = newEvalStream(stream, s, req.Pattern, req.Adorn, st)
			return newLimitStream(stream, req.Limit, st), nil
		}
	}

	t1 := time.Now()
	cands, err := s.candidateDocs(ctx, in.Col, paths, st)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.PrefilterTime = time.Since(t1)
	}
	if req.Limit > 0 {
		var stream DocStream = newEvalStream(newSliceStream(cands), s, req.Pattern, req.Adorn, st)
		stream = newLimitStream(stream, req.Limit, st)
		if s.adaptive() {
			stream = newFirstResultStream(stream, s.Planner, false)
		}
		return stream, nil
	}
	if req.Stream {
		return newEvalStream(newSliceStream(cands), s, req.Pattern, req.Adorn, st), nil
	}
	return newBatchEvalStream(s, cands, req.Pattern, req.Adorn, st, in.Col.ShardCount()), nil
}

// buildJoinStream assembles the streaming join: side-aware pre-filter
// (materialized — it is index work, not pair work), then the right side
// built into a hash table and the left side probed in document order.
// Emitted answers match the materialized join's order exactly, so a limit
// takes a strict prefix.
func (s *System) buildJoinStream(ctx context.Context, req QueryRequest, st *ExecStats) (DocStream, error) {
	li := s.Instance(req.Instance)
	ri := s.Instance(req.Right)
	if li == nil || ri == nil {
		return nil, fmt.Errorf("core: unknown instance in join (%q, %q)", req.Instance, req.Right)
	}
	ldocs := li.Col.Docs()
	rdocs := ri.Col.Docs()
	if lp, rp, ok := SplitJoinPattern(req.Pattern); ok {
		t1 := time.Now()
		lpaths := s.rewritePattern(lp, st)
		rpaths := s.rewritePattern(rp, st)
		if st != nil {
			st.RewriteTime = time.Since(t1)
		}
		t2 := time.Now()
		var lerr, rerr error
		ldocs, lerr = s.candidateDocs(ctx, li.Col, lpaths, st)
		if lerr != nil {
			return nil, lerr
		}
		rdocs, rerr = s.candidateDocs(ctx, ri.Col, rpaths, st)
		if rerr != nil {
			return nil, rerr
		}
		if st != nil {
			st.PrefilterTime = time.Since(t2)
		}
	} else if st != nil {
		st.TotalDocs = len(ldocs) + len(rdocs)
		st.CandidateDocs = st.TotalDocs
	}
	// Adaptive build-side choice: the streaming join's static shape always
	// builds the hash table on the right side. With feedback enabled the
	// actual post-prefilter candidate counts re-plan the build side the same
	// way the materialized join does — pairs still come out in ascending
	// (left, right) order, so the answers cannot change.
	var jp *planner.JoinPlan
	if s.adaptive() {
		jp = planner.PlanJoinSides(li.Col.Stats(), ri.Col.Stats(), len(ldocs), len(rdocs))
	}
	var stream DocStream = newJoinStream(s, ldocs, rdocs, req.Pattern, req.Adorn, st, jp)
	if req.Limit > 0 {
		stream = newLimitStream(stream, req.Limit, st)
	}
	return stream, nil
}

// finalizeStreamTrace fills the per-operator actual row counts once the
// pipeline has stopped (drained, limited out, or closed early).
func finalizeStreamTrace(st *ExecStats) {
	if st == nil || (st.ScanMode != ScanModeStream && st.ScanMode != ScanModeSimIndex) {
		return
	}
	for i := range st.Operators {
		switch st.Operators[i].Name {
		case "scan":
			st.Operators[i].Actual = st.DocsScanned
		case "simprobe", "filter":
			st.Operators[i].Actual = st.CandidateDocs
		case "eval", "limit":
			st.Operators[i].Actual = st.Answers
		}
	}
}
