package core

import (
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/types"
)

func TestCheckWellTypedOK(t *testing.T) {
	s := miniSystem(t, 3)
	good := []string{
		`#1 :: #1.content = "x"`,
		`#1 :: #1.content <= "3":int`, // int ≤ string have a common supertype
		`#1 :: #1.content ~ "anything"`,
		`#1 :: #1.content isa "whatever"`,
		`#1 :: #1.content instance_of int`,
		`#1 :: int subtype_of string`,
	}
	for _, src := range good {
		p := pattern.MustParse(src)
		if errs := s.CheckWellTyped(p); len(errs) != 0 {
			t.Errorf("%s: unexpected type errors: %s", src, FormatTypeErrors(errs))
		}
	}
}

func TestCheckWellTypedErrors(t *testing.T) {
	s := miniSystem(t, 3)
	// A type disconnected from string.
	s.Types.MustRegister(&types.Type{Name: "island"})
	bad := []struct {
		src  string
		want string
	}{
		{`#1 :: "a" = "x":island`, "no least common supertype"},
		{`#1 :: "a" = "x":ghost`, "unknown type"},
		{`#1 :: "3":int <= "abc":int`, "not in dom"},
		{`#1 :: #1.content instance_of ghost`, "not a registered type"},
		{`#1 :: ghost subtype_of string`, "not a registered type"},
	}
	for _, tc := range bad {
		p := pattern.MustParse(tc.src)
		errs := s.CheckWellTyped(p)
		if len(errs) == 0 {
			t.Errorf("%s: expected a type error", tc.src)
			continue
		}
		if !strings.Contains(FormatTypeErrors(errs), tc.want) {
			t.Errorf("%s: errors %q missing %q", tc.src, FormatTypeErrors(errs), tc.want)
		}
	}
}

func TestCheckWellTypedNoCondition(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2`)
	if errs := s.CheckWellTyped(p); len(errs) != 0 {
		t.Errorf("condition-free pattern should be well-typed: %s", FormatTypeErrors(errs))
	}
}
