package core

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/tax"
	"repro/internal/tree"
)

// reoptStream is the adaptive checkpoint operator of the streaming scan
// pipeline. It evaluates candidate documents exactly like evalStream — same
// evaluator, same per-document accounting — but before each pull it compares
// the scan's actual cardinality against the planner's estimate. When
// DocsScanned blows past ReoptFactor × EstScanDocs, the streaming premise
// (candidates dense enough that a short scan prefix satisfies the limit) has
// been disproven mid-flight: the operator re-plans, draining the remaining
// candidates and evaluating them with the parallel batch evaluator
// (selectDocs) instead of one document at a time. The filter upstream yields
// candidates in insertion order and selectDocs preserves input order, so the
// emitted answers are byte-identical to the fully-streamed execution — the
// re-optimization moves work, never results.
//
// Completed scans (EOF or re-optimization drain) feed the whole-plan
// estimated-versus-actual candidate count into the planner's correction
// store exactly; a scan truncated by the limit learns only upward (its
// candidate count is a lower bound, so a downward correction would be
// unsound).
type reoptStream struct {
	in        DocStream
	sys       *System
	p         *pattern.Tree
	sl        []int
	dst       *tree.Collection
	ev        *Evaluator
	buf       []*tree.Tree
	evaluated int // documents evaluated sequentially (pre-reopt)
	st        *ExecStats
	closed    bool

	estScan  float64       // planner's scan-prefix estimate (the trigger baseline)
	rawCands float64       // raw whole-plan candidate estimate (learning baseline)
	scanned  *atomic.Int64 // live scan count (written by the prefetch goroutine)
	learnKey string        // whole-plan correction key
	shards   int           // fan-out for the materialized remainder

	cands   int  // candidates pulled from the input so far
	eof     bool // input exhausted — the candidate count is exact
	learned bool
	reopted bool
	sub     ExecStats    // stats of the materialized remainder evaluation
	rem     []*tree.Tree // answers of the materialized remainder
	remPos  int
}

func newReoptStream(in DocStream, sys *System, p *pattern.Tree, sl []int, st *ExecStats, d planner.StreamDecision, scanned *atomic.Int64, learnKey string, shards int) *reoptStream {
	return &reoptStream{
		in: in, sys: sys, p: p, sl: sl,
		dst: tree.NewCollection(), ev: sys.Evaluator(), st: st,
		estScan: d.EstScanDocs, rawCands: d.RawCandidates,
		scanned: scanned, learnKey: learnKey, shards: shards,
	}
}

// shouldReopt reports whether the scan has blown past its estimate by the
// configured factor. An estimate that already budgeted the whole collection
// can never overrun, so plans that expected a full walk keep streaming.
func (s *reoptStream) shouldReopt() bool {
	if s.scanned == nil || s.sys.Planner == nil {
		return false
	}
	est := s.estScan
	if est < 1 {
		est = 1
	}
	return float64(s.scanned.Load()) > s.sys.Planner.ReoptFactor()*est
}

// reoptimize switches the rest of the query to the materialized shape: drain
// the remaining candidates (still insertion order), learn the now-exact
// candidate cardinality, and run the parallel batch evaluator over the
// remainder.
func (s *reoptStream) reoptimize(ctx context.Context) error {
	s.reopted = true
	var rest []*tree.Tree
	for {
		d, err := s.in.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		rest = append(rest, d)
	}
	s.cands += len(rest)
	s.eof = true
	s.learn()
	if pl := s.sys.Planner; pl != nil {
		pl.CountReopt("materialize")
		pl.ObserveStreamOverrun()
	}
	if s.st != nil {
		at := s.st.adaptiveTrace()
		at.Reopts = append(at.Reopts, ReoptEvent{
			Operator: "scan", Action: "materialize",
			Est: s.estScan, Actual: int(s.scanned.Load()),
		})
	}
	out, err := s.sys.selectDocs(ctx, rest, s.p, s.sl, &s.sub, s.shards)
	if err != nil {
		return err
	}
	s.rem = out
	if s.st != nil {
		s.st.DocsEvaluated = s.evaluated + s.sub.DocsEvaluated
		s.st.Embeddings += s.sub.Embeddings
	}
	return nil
}

// learn feeds the whole-plan candidate cardinality into the correction store
// (once): exactly when the scan completed, upward-only when it was truncated
// by the limit.
func (s *reoptStream) learn() {
	if s.learned || s.sys.Planner == nil || s.learnKey == "" {
		return
	}
	actual := float64(s.cands)
	switch {
	case s.eof:
		s.learned = true
		s.sys.Planner.Learn(s.learnKey, s.rawCands, actual)
		if !s.reopted {
			s.sys.Planner.ObserveStreamOnTarget()
		}
	case actual > s.rawCands:
		s.learned = true
		s.sys.Planner.Learn(s.learnKey, s.rawCands, actual)
	}
}

func (s *reoptStream) Next(ctx context.Context) (*tree.Tree, error) {
	for len(s.buf) == 0 {
		if s.reopted {
			if s.remPos >= len(s.rem) {
				return nil, io.EOF
			}
			d := s.rem[s.remPos]
			s.remPos++
			if s.st != nil {
				s.st.Answers++
			}
			return d, nil
		}
		if s.shouldReopt() {
			if err := s.reoptimize(ctx); err != nil {
				return nil, err
			}
			continue
		}
		doc, err := s.in.Next(ctx)
		if err == io.EOF {
			s.eof = true
			s.learn()
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		s.cands++
		res, ops, err := tax.SelectTraced(s.dst, []*tree.Tree{doc}, s.p, s.sl, s.ev)
		if err != nil {
			return nil, err
		}
		s.evaluated++
		if s.st != nil {
			s.st.DocsEvaluated = s.evaluated
			s.st.Embeddings += ops.Embeddings
		}
		s.buf = res
	}
	d := s.buf[0]
	s.buf = s.buf[1:]
	if s.st != nil {
		s.st.Answers++
	}
	return d, nil
}

// Close finalizes the utilization trace: the sequential prefix is one worker,
// and a re-optimized remainder appends the batch evaluator's workers — the
// same shapes evalStream and selectDocs report on their own.
func (s *reoptStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.in.Close()
	s.learn()
	if s.st != nil {
		if s.reopted && s.sub.Workers > 0 {
			s.st.Workers = 1 + s.sub.Workers
			s.st.WorkerDocs = append([]int{s.evaluated}, s.sub.WorkerDocs...)
		} else {
			s.st.Workers = 1
			s.st.WorkerDocs = []int{s.evaluated}
		}
	}
}

// firstResultStream feeds the latency of the first emitted answer back into
// the planner's auto-tuned execution gates (tunables.go): consistently slow
// first answers on one mode raise that mode's gate, fast ones decay it back
// toward the seed constant. Pass-through otherwise.
type firstResultStream struct {
	in       DocStream
	pl       *planner.Planner
	streamed bool
	start    time.Time
	seen     bool
}

func newFirstResultStream(in DocStream, pl *planner.Planner, streamed bool) *firstResultStream {
	return &firstResultStream{in: in, pl: pl, streamed: streamed, start: time.Now()}
}

func (s *firstResultStream) Next(ctx context.Context) (*tree.Tree, error) {
	d, err := s.in.Next(ctx)
	if err == nil && !s.seen {
		s.seen = true
		s.pl.ObserveFirstResult(s.streamed, time.Since(s.start))
	}
	return d, err
}

func (s *firstResultStream) Close() { s.in.Close() }
