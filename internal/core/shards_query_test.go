package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
)

// buildShardedJoinSystem is buildCorpusSystem with a configurable shard
// count plus a second "proc" instance so the same system can exercise both
// the selection scatter-gather and the sharded hash-join key extraction.
// The corpus generator is seeded, so every call with the same paper count
// yields byte-identical documents regardless of the shard count.
func buildShardedJoinSystem(t *testing.T, papers, chunk, shards int) (*System, *datagen.Corpus) {
	t.Helper()
	corpus := datagen.Generate(datagen.DefaultConfig(papers))
	s := NewSystem()
	s.DB.SetDefaultShards(shards)
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(corpus.Papers); i += chunk {
		end := i + chunk
		if end > len(corpus.Papers) {
			end = len(corpus.Papers)
		}
		key := fmt.Sprintf("dblp-%03d", i/chunk)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:end]))); err != nil {
			t.Fatal(err)
		}
	}
	proc, err := s.AddInstance("proc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		title := corpus.Papers[i*3].Title
		xml := fmt.Sprintf(`<ProceedingsPage><title>%s</title><note>N%d</note></ProceedingsPage>`, title, i)
		if _, err := proc.Col.PutXML(fmt.Sprintf("pp-%d", i), strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	// Complete cluster keys so the similarity hash join has no dynamic
	// measure fallback, like the existing hash-join tests.
	s.DynamicSimilarity = false
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	return s, corpus
}

// TestQueryShardCountInvariance is the end-to-end counterpart of the
// xmldb-level invariance tests: the full Query pipeline (rewriting,
// planning, scatter-gather, joins) must return identical answers in
// identical order at every shard count, with and without the planner.
func TestQueryShardCountInvariance(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	systems := make([]*System, len(shardCounts))
	var corpus *datagen.Corpus
	for i, n := range shardCounts {
		systems[i], corpus = buildShardedJoinSystem(t, 40, 2, n)
		if got := systems[i].Instance("dblp").Col.ShardCount(); got != n {
			t.Fatalf("system %d: ShardCount = %d, want %d", i, got, n)
		}
	}

	author := corpus.Authors[0].Canonical()
	author2 := corpus.Authors[1%len(corpus.Authors)].Canonical()
	selections := []string{
		fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content = %q`, author),
		fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author),
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content isa "operation"`,
		// Two value literals on different paths: exercises the per-literal
		// gather with a global narrowing decision.
		fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content = %q & #3.content = "2000"`, author2),
		// Unselective scan path: every shard participates.
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`,
	}
	ctx := context.Background()
	for _, src := range selections {
		p := pattern.MustParse(src)
		ref, err := systems[0].Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
		if err != nil {
			t.Fatalf("%s: reference query: %v", src, err)
		}
		for i, s := range systems {
			for _, noPlanner := range []bool{false, true} {
				res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoPlanner: noPlanner})
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t: %v", src, shardCounts[i], noPlanner, err)
				}
				if !sameTrees(ref.Answers, res.Answers) {
					t.Errorf("%s: shards=%d noPlanner=%t: %d answers differ from 1-shard reference (%d)",
						src, shardCounts[i], noPlanner, len(res.Answers), len(ref.Answers))
				}
			}
		}
	}

	joinSrc := fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag)
	jp := pattern.MustParse(joinSrc)
	jref, err := systems[0].Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(jref.Answers) == 0 {
		t.Fatal("join matched nothing — test corpus broken")
	}
	for i, s := range systems {
		for _, noPlanner := range []bool{false, true} {
			res, err := s.Query(ctx, QueryRequest{Pattern: jp, Instance: "dblp", Right: "proc", Adorn: []int{2, 3}, NoPlanner: noPlanner})
			if err != nil {
				t.Fatalf("join shards=%d noPlanner=%t: %v", shardCounts[i], noPlanner, err)
			}
			if !sameTrees(jref.Answers, res.Answers) {
				t.Errorf("join shards=%d noPlanner=%t: %d answers differ from 1-shard reference (%d)",
					shardCounts[i], noPlanner, len(res.Answers), len(jref.Answers))
			}
		}
	}
}

// TestQueryShardInvarianceQuick drives the same invariance property with
// randomly generated patterns under testing/quick, across shard counts
// 1, 2 and 7 and both planner modes.
func TestQueryShardInvarianceQuick(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	systems := make([]*System, len(shardCounts))
	var corpus *datagen.Corpus
	for i, n := range shardCounts {
		systems[i], corpus = buildShardedJoinSystem(t, 30, 2, n)
	}
	authors := make([]string, 0, len(corpus.Authors))
	for _, a := range corpus.Authors {
		authors = append(authors, a.Canonical())
	}
	years := []string{"1999", "2000", "2001", "2002", "2003"}
	ctx := context.Background()

	f := func(aIdx, yIdx, opSel, shape uint8) bool {
		author := authors[int(aIdx)%len(authors)]
		year := years[int(yIdx)%len(years)]
		ops := []string{"=", "~", "contains"}
		op := ops[int(opSel)%len(ops)]

		var src string
		switch shape % 3 {
		case 0:
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content %s %q`, op, author)
		case 1:
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content %s %q & #3.content = %q`, op, author, year)
		default:
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3, #1 pc #4 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #4.tag = "title" & #2.content %s %q & #3.content = %q`, op, author, year)
		}
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}

		ref, err := systems[0].Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
		if err != nil {
			t.Fatalf("%s: reference: %v", src, err)
		}
		for i, s := range systems {
			for _, noPlanner := range []bool{false, true} {
				res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoPlanner: noPlanner})
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t: %v", src, shardCounts[i], noPlanner, err)
				}
				if !sameTrees(ref.Answers, res.Answers) {
					t.Logf("%s: shards=%d noPlanner=%t: %d answers vs reference %d",
						src, shardCounts[i], noPlanner, len(res.Answers), len(ref.Answers))
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Rand:     rand.New(rand.NewSource(41)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQueryRequestValidation pins the request-combination rules of the
// unified Query entry point.
func TestQueryRequestValidation(t *testing.T) {
	s := miniSystem(t, 3)
	ctx := context.Background()
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "J. Ullman"`)

	if _, err := s.Query(ctx, QueryRequest{Instance: "dblp"}); err == nil {
		t.Error("Query without a pattern must fail")
	}
	if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "ghost"}); err == nil {
		t.Error("Query against an unknown instance must fail")
	}
	if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Ranked: true, Right: "sigmod"}); err == nil {
		t.Error("Ranked joins are unsupported and must fail")
	}
	if _, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Ranked: true, Analyze: true}); err == nil {
		t.Error("Ranked + Analyze must fail")
	}

	// Limit truncates and reports LimitHit; the untraced result carries no
	// stats.
	full, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answers) < 2 {
		t.Fatalf("want >= 2 Ullman answers, got %d", len(full.Answers))
	}
	if full.Stats != nil {
		t.Error("untraced query must not expose stats")
	}
	lim, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.Answers) != 1 || !lim.LimitHit {
		t.Errorf("Limit=1: got %d answers, LimitHit=%t", len(lim.Answers), lim.LimitHit)
	}

	// Trace and Analyze populate Stats (and Plan for Analyze).
	tr, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats == nil || tr.Stats.TotalDocs == 0 {
		t.Error("traced query must expose populated stats")
	}
	an, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if an.Plan == nil || an.Stats == nil {
		t.Error("analyzed query must expose plan and stats")
	}

	// Ranked queries return scored answers, best first.
	rk, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rk.Ranked) != len(full.Answers) {
		t.Errorf("ranked: %d answers, want %d", len(rk.Ranked), len(full.Answers))
	}
	for i := 1; i < len(rk.Ranked); i++ {
		if rk.Ranked[i-1].Score > rk.Ranked[i].Score {
			t.Error("ranked answers not sorted best (lowest distance) first")
		}
	}
}
