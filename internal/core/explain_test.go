package core

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func TestExplain(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & ` +
		`#2.content ~ "Jeffrey D. Ullman"`)
	plan, err := s.Explain("dblp", p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDocs != 1 || plan.CandidateDocs != 1 {
		t.Errorf("doc counts = %d/%d", plan.CandidateDocs, plan.TotalDocs)
	}
	if len(plan.XPaths) == 0 {
		t.Error("plan should list XPath pre-filters")
	}
	if n := plan.SimilarityExpansions["Jeffrey D. Ullman"]; n < 2 {
		t.Errorf("expansion size = %d, want >= 2 (J. Ullman variant)", n)
	}
	out := plan.String()
	for _, want := range []string{"pre-filter XPath", "candidate documents: 1 of 1", "similarity expansions"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}
	// The ~ atom is always post-filtered (the expansion is only a
	// pre-filter).
	foundSim := false
	for _, a := range plan.PostFilterAtoms {
		if strings.Contains(a, "~") {
			foundSim = true
		}
	}
	if !foundSim {
		t.Errorf("~ condition should appear among post-filtered atoms: %v", plan.PostFilterAtoms)
	}
	if _, err := s.Explain("ghost", p); err == nil {
		t.Error("unknown instance must fail")
	}
}

func TestExplainUnselectiveQuery(t *testing.T) {
	s := miniSystem(t, 3)
	p := pattern.MustParse(`#1 :: #1.tag = "nonexistent"`)
	plan, err := s.Explain("dblp", p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CandidateDocs != 0 {
		t.Errorf("impossible query should have 0 candidates, got %d", plan.CandidateDocs)
	}
}
