package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
)

// buildSimIndexSystem builds a one-paper-per-document corpus system with the
// given measure and the simindex gate forced open, so even these small test
// corpora route eligible ~ predicates through the candidate index.
func buildSimIndexSystem(t *testing.T, papers, shards int, m similarity.Measure, eps float64) (*System, *datagen.Corpus) {
	t.Helper()
	corpus := datagen.Generate(datagen.DefaultConfig(papers))
	s := NewSystem()
	s.DB.SetDefaultShards(shards)
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus.Papers {
		key := fmt.Sprintf("dblp-%03d", i)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:i+1]))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(m, eps); err != nil {
		t.Fatal(err)
	}
	s.Planner.SetMinSimIndexDocs(1)
	return s, corpus
}

// fullScanSelect is the forced-full-scan reference: every document evaluated,
// no planner, no index pre-filter of any kind — the ground truth the simindex
// path and the planner-off cluster-expansion scan must both reproduce.
func fullScanSelect(t *testing.T, s *System, instance string, p *pattern.Tree, sl []int) []*tree.Tree {
	t.Helper()
	in := s.Instance(instance)
	if in == nil {
		t.Fatalf("unknown instance %q", instance)
	}
	dst := tree.NewCollection()
	c := tax.Compile(p)
	ev := s.Evaluator()
	var out []*tree.Tree
	for _, doc := range in.Col.Docs() {
		bindings, err := c.Embeddings(doc, ev)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bindings {
			if wt := c.WitnessTree(dst, doc, b, sl); wt != nil {
				out = append(out, wt)
			}
		}
	}
	return out
}

// fullScanRanked is the ranked counterpart: full scan, every binding scored,
// stable-sorted by (score, insertion seq, binding order) — the exact order
// runSelectRanked guarantees regardless of how candidates were produced.
func fullScanRanked(t *testing.T, s *System, instance string, p *pattern.Tree, sl []int) []RankedAnswer {
	t.Helper()
	in := s.Instance(instance)
	dst := tree.NewCollection()
	c := tax.Compile(p)
	ev := s.Evaluator()
	simAtoms := simAtomsOf(p)
	var items []topKItem
	for _, doc := range in.Col.Docs() {
		bindings, err := c.Embeddings(doc, ev)
		if err != nil {
			t.Fatal(err)
		}
		for ord, b := range bindings {
			wt := c.WitnessTree(dst, doc, b, sl)
			if wt == nil {
				continue
			}
			score, err := s.scoreBinding(simAtoms, b)
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, topKItem{ans: RankedAnswer{Tree: wt, Score: score}, seq: doc.SrcSeq, ord: ord})
		}
	}
	tk := newTopK(0)
	sort.Slice(items, func(i, j int) bool { return tk.worse(items[j], items[i]) })
	out := make([]RankedAnswer, len(items))
	for i, it := range items {
		out[i] = it.ans
	}
	return out
}

func sameRanked(a, b []RankedAnswer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || !tree.Equal(a[i].Tree, b[i].Tree) {
			return false
		}
	}
	return true
}

// typoOf injects idx%3 edits (delete, substitute, transpose-ish) into a name,
// producing literals that are usually unknown to the ontology so the probe's
// dynamic n-gram channel — not just the exact cluster channel — is exercised.
func typoOf(name string, idx int) string {
	r := []rune(name)
	if len(r) < 4 {
		return name
	}
	switch idx % 4 {
	case 0:
		return name // exact: known term, cluster channel
	case 1:
		return string(append(append([]rune(nil), r[:len(r)/2]...), r[len(r)/2+1:]...)) // deletion
	case 2:
		r[len(r)/3] = 'x' // substitution
		return string(r)
	default:
		r[1], r[2] = r[2], r[1] // transposition (distance 2 for Levenshtein)
		return string(r)
	}
}

// TestSimIndexSelectEquivalenceQuick is the satellite property: for random
// author literals (exact and typo'd), at shard counts 1, 2 and 7, the
// simindex-accelerated selection (planner on, gate forced open), the
// planner-off cluster-expansion scan and a forced full scan must return
// byte-identical answers, and a limited query must be a prefix.
func TestSimIndexSelectEquivalenceQuick(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	systems := make([]*System, len(shardCounts))
	var corpus *datagen.Corpus
	for i, n := range shardCounts {
		systems[i], corpus = buildSimIndexSystem(t, 25, n, similarity.Levenshtein{}, 2)
	}
	authors := make([]string, 0, len(corpus.Authors))
	for _, a := range corpus.Authors {
		authors = append(authors, a.Canonical())
	}
	ctx := context.Background()

	simEngaged := false
	f := func(aIdx, typoSel, limSel uint8) bool {
		lit := typoOf(authors[int(aIdx)%len(authors)], int(typoSel))
		src := fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, lit)
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}

		want := fullScanSelect(t, systems[0], "dblp", p, []int{1})
		for i, s := range systems {
			res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Trace: true})
			if err != nil {
				t.Fatalf("%s: shards=%d: %v", src, shardCounts[i], err)
			}
			if res.Stats != nil && res.Stats.Sim != nil {
				simEngaged = true
			}
			off, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoPlanner: true})
			if err != nil {
				t.Fatalf("%s: shards=%d planner-off: %v", src, shardCounts[i], err)
			}
			if !sameTrees(want, res.Answers) || !sameTrees(want, off.Answers) {
				t.Logf("%s: shards=%d: simindex %d / planner-off %d answers vs full scan %d",
					src, shardCounts[i], len(res.Answers), len(off.Answers), len(want))
				return false
			}

			limit := 1 + int(limSel)%(len(want)+2)
			lres, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: limit})
			if err != nil {
				t.Fatalf("%s: shards=%d limit=%d: %v", src, shardCounts[i], limit, err)
			}
			wantLim := want
			if limit < len(wantLim) {
				wantLim = wantLim[:limit]
			}
			if !sameTrees(wantLim, lres.Answers) {
				t.Logf("%s: shards=%d limit=%d: not a prefix (%d answers, ref %d)",
					src, shardCounts[i], limit, len(lres.Answers), len(want))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	if !simEngaged {
		t.Error("no query ever routed through the simindex — the property tested nothing")
	}
}

// TestSimIndexRankedEquivalenceQuick drives the same property through ranked
// selection: the simindex-fed top-K heap must reproduce the full-scan
// stable-sort ranking — scores, trees and tie-breaks — and a limited ranking
// must be its exact prefix.
func TestSimIndexRankedEquivalenceQuick(t *testing.T) {
	shardCounts := []int{1, 2, 7}
	systems := make([]*System, len(shardCounts))
	var corpus *datagen.Corpus
	for i, n := range shardCounts {
		systems[i], corpus = buildSimIndexSystem(t, 25, n, similarity.Levenshtein{}, 2)
	}
	authors := make([]string, 0, len(corpus.Authors))
	for _, a := range corpus.Authors {
		authors = append(authors, a.Canonical())
	}
	ctx := context.Background()

	f := func(aIdx, typoSel, limSel uint8) bool {
		lit := typoOf(authors[int(aIdx)%len(authors)], int(typoSel))
		src := fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, lit)
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}

		want := fullScanRanked(t, systems[0], "dblp", p, []int{1})
		for i, s := range systems {
			for _, noPlanner := range []bool{false, true} {
				res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true, NoPlanner: noPlanner})
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t: %v", src, shardCounts[i], noPlanner, err)
				}
				if !sameRanked(want, res.Ranked) {
					t.Logf("%s: shards=%d noPlanner=%t: %d ranked answers vs full scan %d",
						src, shardCounts[i], noPlanner, len(res.Ranked), len(want))
					return false
				}

				limit := 1 + int(limSel)%(len(want)+2)
				lres, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true, Limit: limit, NoPlanner: noPlanner})
				if err != nil {
					t.Fatalf("%s: shards=%d noPlanner=%t limit=%d: %v", src, shardCounts[i], noPlanner, limit, err)
				}
				wantLim := want
				if limit < len(wantLim) {
					wantLim = wantLim[:limit]
				}
				if !sameRanked(wantLim, lres.Ranked) {
					t.Logf("%s: shards=%d noPlanner=%t limit=%d: top-K not the sort prefix",
						src, shardCounts[i], noPlanner, limit)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSimIndexMeasureCoverage pins the per-measure probe construction paths
// (Damerau transposition bound, Soundex phonetic buckets with and without
// slack) against the planner-off scan and the full scan, deterministically.
func TestSimIndexMeasureCoverage(t *testing.T) {
	cases := []struct {
		name string
		m    similarity.Measure
		eps  float64
	}{
		{"damerau", similarity.Damerau{}, 2},
		{"soundex-exact", similarity.Soundex{}, 0.5},
		{"soundex-slack", similarity.Soundex{}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, corpus := buildSimIndexSystem(t, 20, 3, tc.m, tc.eps)
			ctx := context.Background()
			engaged := false
			for idx := 0; idx < 8; idx++ {
				lit := typoOf(corpus.Authors[idx%len(corpus.Authors)].Canonical(), idx)
				src := fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, lit)
				p := pattern.MustParse(src)
				want := fullScanSelect(t, s, "dblp", p, []int{1})
				res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats != nil && res.Stats.Sim != nil {
					engaged = true
				}
				off, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, NoPlanner: true})
				if err != nil {
					t.Fatal(err)
				}
				if !sameTrees(want, res.Answers) || !sameTrees(want, off.Answers) {
					t.Errorf("%s ~ %q: simindex %d / planner-off %d answers vs full scan %d",
						tc.name, lit, len(res.Answers), len(off.Answers), len(want))
				}
			}
			if !engaged {
				t.Errorf("%s: no probe ever engaged the simindex", tc.name)
			}
		})
	}
}

// TestSimIndexEngagesAndEvaluatesFewer pins the acceptance criterion's shape
// at test scale: an eligible ~ selection must actually route through the
// simindex access path (trace says so) and evaluate strictly fewer documents
// than the collection holds, while returning the full scan's exact answers.
func TestSimIndexEngagesAndEvaluatesFewer(t *testing.T) {
	s, corpus := buildSimIndexSystem(t, 40, 4, similarity.Levenshtein{}, 2)
	lit := typoOf(corpus.Authors[0].Canonical(), 1)
	p := pattern.MustParse(fmt.Sprintf(
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, lit))
	ctx := context.Background()

	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil || st.Sim == nil {
		t.Fatal("eligible ~ query did not engage the simindex")
	}
	if st.Sim.Docs >= st.TotalDocs {
		t.Errorf("simindex proposed %d of %d docs — no pruning", st.Sim.Docs, st.TotalDocs)
	}
	if st.CandidateDocs >= st.TotalDocs {
		t.Errorf("candidates %d of %d docs — no pruning", st.CandidateDocs, st.TotalDocs)
	}
	want := fullScanSelect(t, s, "dblp", p, []int{1})
	if len(want) == 0 {
		t.Fatal("typo literal matched nothing — corpus broken")
	}
	if !sameTrees(want, res.Answers) {
		t.Fatalf("simindex answers differ from full scan (%d vs %d)", len(res.Answers), len(want))
	}
	rendered := st.String()
	for _, frag := range []string{"simindex:", "candidates=", "verified="} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("trace rendering missing %q:\n%s", frag, rendered)
		}
	}

	// Limited run: the simindex stream shape with per-operator rows.
	lres, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Limit: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Stats.ScanMode != ScanModeSimIndex {
		t.Errorf("limited run scan mode %q, want %q", lres.Stats.ScanMode, ScanModeSimIndex)
	}
	if len(lres.Stats.Operators) == 0 || lres.Stats.Operators[0].Name != "simprobe" {
		t.Errorf("limited run operator trace %+v missing simprobe", lres.Stats.Operators)
	}
	if !sameTrees(want[:1], lres.Answers) {
		t.Error("limited simindex run is not a prefix of the full answer")
	}

	// Ranked run: candidates come from the index, so strictly fewer documents
	// are evaluated than the collection holds.
	rres, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: "dblp", Adorn: []int{1}, Ranked: true, Limit: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Stats == nil || rres.Stats.Sim == nil {
		t.Fatal("ranked query did not engage the simindex")
	}
	if rres.Stats.DocsEvaluated >= s.Instance("dblp").Col.DocCount() {
		t.Errorf("ranked run evaluated %d of %d docs — candidate set not pruned",
			rres.Stats.DocsEvaluated, s.Instance("dblp").Col.DocCount())
	}
}

// TestTopKTieBreakInsertionOrderInvariance is the satellite-2 regression: the
// ranking's tie-break is (score, global insertion seq, binding order) — a
// property of the answers, not of the order the producer discovered them — so
// feeding the same scored answers to the heap in any order must produce the
// identical ranking, at every K.
func TestTopKTieBreakInsertionOrderInvariance(t *testing.T) {
	dst := tree.NewCollection()
	mk := func(tag string) *tree.Tree { return &tree.Tree{Root: dst.NewNode(tag, "")} }
	type item struct {
		ans RankedAnswer
		seq uint64
		ord int
	}
	var items []item
	for i := 0; i < 12; i++ {
		items = append(items, item{
			// Only three distinct scores across twelve answers: ties dominate.
			ans: RankedAnswer{Tree: mk(fmt.Sprintf("t%d", i)), Score: float64(i % 3)},
			seq: uint64(i / 2),
			ord: i % 2,
		})
	}
	var want []RankedAnswer
	for _, k := range []int{0, 1, 3, len(items), len(items) + 4} {
		want = nil
		rng := rand.New(rand.NewSource(59))
		for trial := 0; trial < 6; trial++ {
			shuffled := append([]item(nil), items...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			tk := newTopK(k)
			for _, it := range shuffled {
				tk.add(it.ans, it.seq, it.ord)
			}
			got := tk.ranking()
			if want == nil {
				want = got
				for i := 1; i < len(got); i++ {
					if got[i-1].Score > got[i].Score {
						t.Fatalf("k=%d: ranking not sorted by score", k)
					}
				}
				if k > 0 && len(got) != k && len(got) != len(items) {
					t.Fatalf("k=%d: ranking has %d items", k, len(got))
				}
				continue
			}
			if !sameRanked(want, got) {
				t.Errorf("k=%d trial %d: ranking depends on insertion order", k, trial)
			}
		}
	}
}
