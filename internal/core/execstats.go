package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/xmldb"
)

// ExecStats is the execution trace of one query: what the rewriter produced,
// how selective each XPath pre-filter was and how it was routed, how the
// join paired documents, how the parallel embedding stage spread its work,
// and where the wall-clock time went. It is the observability seam every
// stage of the Query Executor reports through — the statistics that drive
// rewriting decisions in ontological query optimization.
//
// A nil *ExecStats disables collection, so the untraced entry points
// (Select, Join, ...) pay nothing beyond a pointer check per stage.
type ExecStats struct {
	Op       string // "select" or "join"
	Instance string // instance name ("left⨝right" for joins)

	// Rewrite stage: pattern → XPath pre-filters.
	Rewrite RewriteTrace

	// Pre-filter stage: one entry per rewritten XPath query, in execution
	// order (for joins, both sides' paths appear here).
	Paths         []PathTrace
	TotalDocs     int // documents in the collection(s)
	CandidateDocs int // documents surviving every pre-filter

	// Planner decisions: one entry per planned pre-filter (selections have
	// one, joins one per side). Empty when the planner is disabled or the
	// pattern rewrote to no pre-filter paths.
	Plans []*PlanTrace

	// Join pairing (nil for selections).
	Join *JoinTrace

	// Similarity candidate-index probe (nil unless the planner routed a ~
	// predicate through internal/simindex).
	Sim *SimTrace

	// Adaptive-execution trace (nil unless feedback corrections fired on this
	// query's plan or a mid-stream re-optimization triggered, so static and
	// cold-start traces render exactly as before).
	Adaptive *AdaptiveTrace

	// Embedding-search stage.
	Workers       int   // parallel workers used
	WorkerDocs    []int // documents evaluated per worker (utilization)
	DocsEvaluated int   // documents (or pairs, for joins) run through the algebra
	Embeddings    int   // satisfying embeddings found
	Answers       int   // witness trees returned

	// Early-exit selections (SelectN): the requested answer cap, and whether
	// it fired before every candidate document was evaluated. When LimitHit
	// is set, DocsEvaluated < CandidateDocs is expected, not a discrepancy.
	Limit    int
	LimitHit bool

	// Streaming execution. ScanMode is "" for the materialized candidate
	// pre-filter (every historical trace renders unchanged) and
	// ScanModeStream when limit pushdown chose the streaming shard scan; in
	// that mode DocsScanned counts documents pulled off the shard cursors
	// before the pipeline stopped, CandidateDocs counts documents that
	// passed the streaming filter, and Operators carries the per-operator
	// estimated-vs-actual row counts. Streamed reports that the answers
	// were delivered to the caller as a live stream.
	ScanMode    string
	DocsScanned int
	Streamed    bool
	Operators   []OperatorTrace

	// Per-stage wall-clock timings.
	RewriteTime   time.Duration
	PrefilterTime time.Duration
	EvalTime      time.Duration
	TotalTime     time.Duration
}

// ScanModeStream marks a trace whose selection ran as a streaming shard
// scan (limit pushdown) instead of the materialized candidate pre-filter.
const ScanModeStream = "stream-scan"

// ScanModeSimIndex marks a trace whose candidate documents came from the
// similarity candidate index (a simindex probe) instead of the XPath
// pre-filter intersection or a streaming shard scan.
const ScanModeSimIndex = "simindex"

// SimTrace records one similarity candidate-index probe: what was probed,
// how many terms each filter channel proposed, how many survived
// verification, and what the planner expected.
type SimTrace struct {
	Tag     string
	Literal string

	ClusterTerms   int // SEO ε-cluster terms probed exactly (no verification)
	CandidateTerms int // n-gram/phonetic candidates proposed (pre-verification)
	VerifiedTerms  int // candidates that passed the measure/SEO verifier
	MatchedTerms   int // terms with nodes under Tag, across all channels
	Nodes          int // value-index postings visited
	Docs           int // candidate documents before the residual path filter
	ShardsTouched  int

	EstDocs   float64 // planner's candidate-document estimate
	ProbeCost float64
	AltCost   float64
}

// AdaptiveTrace records the adaptive-execution activity of one query: how
// many learned correction factors the planner folded into its estimates, the
// correction epoch the plan was built under, and any mid-stream
// re-optimizations the checkpoint operators triggered.
type AdaptiveTrace struct {
	// CorrectionsApplied counts feedback correction factors multiplied into
	// this query's estimates (per-path, whole-plan, and simprobe factors).
	CorrectionsApplied int
	// Epoch is the correction epoch the plan was built under.
	Epoch uint64
	// Reopts lists mid-stream re-optimization events, in trigger order.
	Reopts []ReoptEvent
}

// ReoptEvent is one mid-stream re-optimization: which operator's actual
// cardinality disproved the plan, what the executor switched to, and the
// estimated-versus-actual rows that triggered it.
type ReoptEvent struct {
	Operator string  // operator whose actuals blew past the estimate ("scan", "join")
	Action   string  // what the re-plan did ("materialize", "build-side")
	Est      float64 // the estimate the trigger compared against
	Actual   int     // the actual row count at trigger time
}

// adaptiveTrace returns the trace's adaptive block, allocating it on first
// use. Callers must hold a non-nil st.
func (st *ExecStats) adaptiveTrace() *AdaptiveTrace {
	if st.Adaptive == nil {
		st.Adaptive = &AdaptiveTrace{}
	}
	return st.Adaptive
}

// OperatorTrace is one streaming operator's estimated-vs-actual row count:
// how many rows the planner expected it to emit before the pipeline
// stopped, and how many it actually emitted.
type OperatorTrace struct {
	Name   string
	Est    float64
	Actual int
}

// RewriteTrace records what the pattern→XPath rewriter produced.
type RewriteTrace struct {
	Paths      int // XPath pre-filter queries emitted
	Predicates int // predicates across all emitted steps
	// Expansions traces the fate of every ~ literal the rewriter considered.
	Expansions []ExpansionTrace
}

// Expansion outcomes.
const (
	ExpansionEmitted        = "emitted"          // compiled into an XPath disjunction
	ExpansionDroppedUnsound = "dropped-unsound"  // pre-filter would lose answers
	ExpansionDroppedOverCap = "dropped-over-cap" // disjunction larger than maxXPathExpansion
	ExpansionDroppedEmpty   = "dropped-empty"    // SEO knows no strings for the literal
)

// ExpansionTrace records the fate of one ~ literal during rewriting.
type ExpansionTrace struct {
	Literal string
	Size    int    // SEO cluster strings the literal expands to
	Outcome string // one of the Expansion* constants
}

// PathTrace couples one rewritten XPath pre-filter with its runtime actuals:
// routing decision, candidate counts, pre-filter selectivity and cost.
type PathTrace struct {
	xmldb.QueryStats
	DocsMatched int // documents containing at least one matching node
}

// PlanTrace records the planner's decisions for one candidate-document
// pre-filter: the chosen intersection order with estimated versus actual
// cardinalities per step.
type PlanTrace struct {
	Collection       string
	CacheHit         bool // plan came from the plan cache
	Reordered        bool // chosen order differs from rewrite order
	EstCandidates    float64
	ActualCandidates int
	Steps            []PlanStep
}

// PlanStep is one planned path execution, in the order the plan ran it.
type PlanStep struct {
	XPath       string
	Access      string // planner access method (index, index+value, scan, restricted)
	EstDocs     float64
	EstNodes    float64
	ActualDocs  int
	ActualNodes int
	// EstShards/ActualShards report the scatter footprint on sharded
	// collections: how many shards the planner expected to hold matches
	// versus how many the gather actually touched. Both stay at their zero
	// values on unsharded collections (and ActualShards on restricted steps),
	// and the trace omits them then, keeping unsharded output unchanged.
	EstShards    float64
	ActualShards int
	// TestedDocs is set on restricted steps: how many surviving documents
	// were evaluated per-document instead of querying the collection.
	TestedDocs int
}

// JoinTrace records the pairing statistics of a join execution.
type JoinTrace struct {
	LeftDocs, RightDocs int
	HashJoin            bool // similarity hash join vs full cross product
	LeftKeys, RightKeys int  // distinct hash keys per side (hash join only)
	PairsTried          int  // document pairs actually joined
	CrossPairs          int  // size of the full cross product
	// Planner build-side choice ("left" or "right"; empty when the planner
	// was off and both sides were keyed as before).
	BuildSide         string
	EstLeft, EstRight float64 // estimated hash entries per side
}

// PairSelectivity is PairsTried/CrossPairs (1 when the cross product is
// empty).
func (j *JoinTrace) PairSelectivity() float64 {
	if j.CrossPairs == 0 {
		return 1
	}
	return float64(j.PairsTried) / float64(j.CrossPairs)
}

// Selectivity is CandidateDocs/TotalDocs — the fraction of documents the
// XPath pre-filter let through (1 when the collection is empty).
func (st *ExecStats) Selectivity() float64 {
	if st.TotalDocs == 0 {
		return 1
	}
	return float64(st.CandidateDocs) / float64(st.TotalDocs)
}

func newExecStats(op, instance string) *ExecStats {
	return &ExecStats{Op: op, Instance: instance}
}

// recordExpansion appends an expansion trace (nil-safe).
func (st *ExecStats) recordExpansion(lit string, size int, outcome string) {
	if st == nil {
		return
	}
	st.Rewrite.Expansions = append(st.Rewrite.Expansions, ExpansionTrace{
		Literal: lit, Size: size, Outcome: outcome,
	})
}

// String renders the trace as a compact multi-line report (the body of the
// tossql EXPLAIN ANALYZE output).
func (st *ExecStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution: %s on %s  [total %s]\n", st.Op, st.Instance, fmtDuration(st.TotalTime))
	fmt.Fprintf(&b, "rewrite  [%s]: %d XPath path(s), %d predicate(s)\n",
		fmtDuration(st.RewriteTime), st.Rewrite.Paths, st.Rewrite.Predicates)
	for _, e := range st.Rewrite.Expansions {
		fmt.Fprintf(&b, "  ~ %q -> %d cluster string(s) (%s)\n", e.Literal, e.Size, e.Outcome)
	}
	fmt.Fprintf(&b, "pre-filter  [%s]: %d of %d documents survive (selectivity %.2f)\n",
		fmtDuration(st.PrefilterTime), st.CandidateDocs, st.TotalDocs, st.Selectivity())
	// Streaming shard scan (limit pushdown): rendered only in stream-scan
	// mode so every materialized trace stays exactly as before.
	if st.ScanMode == ScanModeStream {
		fmt.Fprintf(&b, "stream: mode=%s docs scanned=%d of %d (limit pushdown)\n",
			st.ScanMode, st.DocsScanned, st.TotalDocs)
		for i, op := range st.Operators {
			fmt.Fprintf(&b, "stream:   [%d] %s estimated=%.1f rows actual=%d\n",
				i+1, op.Name, op.Est, op.Actual)
		}
	}
	if sim := st.Sim; sim != nil {
		fmt.Fprintf(&b, "simindex: %s ~ %q cluster=%d candidates=%d verified=%d matched=%d nodes=%d docs=%d",
			sim.Tag, sim.Literal, sim.ClusterTerms, sim.CandidateTerms,
			sim.VerifiedTerms, sim.MatchedTerms, sim.Nodes, sim.Docs)
		if sim.ShardsTouched > 1 {
			fmt.Fprintf(&b, " shards=%d", sim.ShardsTouched)
		}
		b.WriteByte('\n')
		if st.ScanMode == ScanModeSimIndex {
			for i, op := range st.Operators {
				fmt.Fprintf(&b, "stream:   [%d] %s estimated=%.1f rows actual=%d\n",
					i+1, op.Name, op.Est, op.Actual)
			}
		}
	}
	for _, p := range st.Paths {
		route := "scan"
		detail := fmt.Sprintf("docs walked=%d", p.DocsWalked)
		if p.Indexed {
			route = "index(" + p.IndexTag + ")"
			detail = fmt.Sprintf("candidates=%d", p.Candidates)
			if p.ValueIndexUsed {
				route += "+value-index"
			}
		}
		if p.ShardsTouched > 1 {
			detail += fmt.Sprintf(" shards=%d", p.ShardsTouched)
		}
		fmt.Fprintf(&b, "  %s  route=%s %s matches=%d docs=%d  [%s]\n",
			p.XPath, route, detail, p.Matches, p.DocsMatched, fmtDuration(p.Elapsed))
	}
	for _, pt := range st.Plans {
		cache := "miss"
		if pt.CacheHit {
			cache = "hit"
		}
		fmt.Fprintf(&b, "plan: %s: %d step(s) reordered=%v cache=%s estimated candidates=%.1f actual=%d\n",
			pt.Collection, len(pt.Steps), pt.Reordered, cache, pt.EstCandidates, pt.ActualCandidates)
		for i, ps := range pt.Steps {
			if ps.TestedDocs > 0 {
				fmt.Fprintf(&b, "plan:   [%d] %s access=%s estimated=%.1f docs actual=%d of %d survivor(s)\n",
					i+1, ps.XPath, ps.Access, ps.EstDocs, ps.ActualDocs, ps.TestedDocs)
			} else {
				fmt.Fprintf(&b, "plan:   [%d] %s access=%s estimated=%.1f docs (%.1f nodes) actual=%d docs (%d nodes)",
					i+1, ps.XPath, ps.Access, ps.EstDocs, ps.EstNodes, ps.ActualDocs, ps.ActualNodes)
				// Scatter footprint, shown only when sharding is in play so
				// unsharded traces render exactly as before.
				if ps.EstShards > 1 || ps.ActualShards > 1 {
					fmt.Fprintf(&b, " shards est=%.1f actual=%d", ps.EstShards, ps.ActualShards)
				}
				b.WriteByte('\n')
			}
		}
	}
	if j := st.Join; j != nil {
		kind := "cross product"
		if j.HashJoin {
			kind = fmt.Sprintf("similarity hash join (%d/%d keys)", j.LeftKeys, j.RightKeys)
		}
		fmt.Fprintf(&b, "join: %s, %d of %d pairs tried (%dx%d docs, pair selectivity %.2f)\n",
			kind, j.PairsTried, j.CrossPairs, j.LeftDocs, j.RightDocs, j.PairSelectivity())
		if j.BuildSide != "" {
			probe := "right"
			if j.BuildSide == "right" {
				probe = "left"
			}
			fmt.Fprintf(&b, "plan: join build=%s probe=%s (estimated hash entries left=%.1f right=%.1f)\n",
				j.BuildSide, probe, j.EstLeft, j.EstRight)
		}
	}
	if a := st.Adaptive; a != nil {
		fmt.Fprintf(&b, "adaptive: corrections applied=%d feedback epoch=%d\n",
			a.CorrectionsApplied, a.Epoch)
		for _, r := range a.Reopts {
			fmt.Fprintf(&b, "reopt: [%s] %s estimated=%.1f rows actual=%d\n",
				r.Operator, r.Action, r.Est, r.Actual)
		}
	}
	fmt.Fprintf(&b, "eval  [%s]: workers=%d docs=%d embeddings=%d answers=%d\n",
		fmtDuration(st.EvalTime), st.Workers, st.DocsEvaluated, st.Embeddings, st.Answers)
	if st.Limit > 0 {
		if st.LimitHit {
			fmt.Fprintf(&b, "  limit %d hit after %d of %d candidate doc(s) (early exit)\n",
				st.Limit, st.DocsEvaluated, st.CandidateDocs)
		} else {
			fmt.Fprintf(&b, "  limit %d not reached\n", st.Limit)
		}
	}
	if len(st.WorkerDocs) > 1 {
		parts := make([]string, len(st.WorkerDocs))
		for i, n := range st.WorkerDocs {
			parts[i] = fmt.Sprint(n)
		}
		fmt.Fprintf(&b, "  worker utilization (docs/worker): %s\n", strings.Join(parts, " "))
	}
	return b.String()
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
