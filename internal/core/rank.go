package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// RankedAnswer is a witness tree with a similarity score. Score is the sum
// of string distances of the ~ conditions under the embedding that produced
// the witness (0 = exact match on every similarity condition), so ascending
// score orders answers from most to least similar.
//
// This is the IR-flavoured extension the paper's related-work section
// contrasts TOSS with (TIX's scored pattern trees): TOSS's boolean ~ either
// keeps or drops an answer; ranked selection additionally grades the kept
// answers by how far inside the ε ball they fall.
type RankedAnswer struct {
	Tree  *tree.Tree
	Score float64
}

// SelectRanked runs TOSS selection and scores each witness by the summed
// distances of its ~ conditions, returning answers ordered most-similar
// first (ties broken by discovery order, i.e. document order).
//
// Deprecated: use Query with Ranked set.
func (s *System) SelectRanked(instance string, p *pattern.Tree, sl []int) ([]RankedAnswer, error) {
	return s.SelectRankedContext(context.Background(), instance, p, sl)
}

// SelectRankedContext is SelectRanked with cancellation.
//
// Deprecated: use Query with Ranked set.
func (s *System) SelectRankedContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) ([]RankedAnswer, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Ranked: true})
	if err != nil {
		return nil, err
	}
	return res.Ranked, nil
}

// runSelectRanked is the ranked-selection pipeline behind Query, checking the
// context between candidate documents.
func (s *System) runSelectRanked(ctx context.Context, instance string, p *pattern.Tree, sl []int) ([]RankedAnswer, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, fmt.Errorf("core: unknown instance %q", instance)
	}
	if s.Measure == nil {
		return nil, fmt.Errorf("core: system not built; no similarity measure")
	}
	cands, err := s.candidateDocs(ctx, in.Col, s.RewritePattern(p), nil)
	if err != nil {
		return nil, err
	}
	dst := tree.NewCollection()
	c := tax.Compile(p)
	ev := s.Evaluator()
	simAtoms := simAtomsOf(p)

	var out []RankedAnswer
	for _, doc := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bindings, err := c.Embeddings(doc, ev)
		if err != nil {
			return nil, err
		}
		for _, b := range bindings {
			wt := c.WitnessTree(dst, doc, b, sl)
			if wt == nil {
				continue
			}
			score, err := s.scoreBinding(simAtoms, b)
			if err != nil {
				return nil, err
			}
			out = append(out, RankedAnswer{Tree: wt, Score: score})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out, nil
}

// simAtomsOf collects every ~ atom of the condition (not just the
// conjunctive spine — scores are informative even for disjunctive atoms that
// happened to hold).
func simAtomsOf(p *pattern.Tree) []*pattern.Atomic {
	var out []*pattern.Atomic
	for _, a := range pattern.Atoms(p.Cond) {
		if a.Op == pattern.OpSim {
			out = append(out, a)
		}
	}
	return out
}

// scoreBinding sums the measure distances of the ~ atoms under the binding.
// Atoms whose operands cannot be resolved (an unbound optional branch)
// contribute nothing; an atom that did not actually hold contributes its
// true distance, which is what a ranking wants.
func (s *System) scoreBinding(atoms []*pattern.Atomic, b tax.Binding) (float64, error) {
	ev := s.Evaluator()
	total := 0.0
	for _, a := range atoms {
		x, errX := ev.resolve(a.X, b)
		y, errY := ev.resolve(a.Y, b)
		if errX != nil || errY != nil {
			continue
		}
		d := s.Measure.Distance(x.value, y.value)
		if math.IsInf(d, 1) {
			continue
		}
		total += d
	}
	return total, nil
}
