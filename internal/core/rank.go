package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// RankedAnswer is a witness tree with a similarity score. Score is the sum
// of string distances of the ~ conditions under the embedding that produced
// the witness (0 = exact match on every similarity condition), so ascending
// score orders answers from most to least similar.
//
// This is the IR-flavoured extension the paper's related-work section
// contrasts TOSS with (TIX's scored pattern trees): TOSS's boolean ~ either
// keeps or drops an answer; ranked selection additionally grades the kept
// answers by how far inside the ε ball they fall.
type RankedAnswer struct {
	Tree  *tree.Tree
	Score float64
}

// SelectRanked runs TOSS selection and scores each witness by the summed
// distances of its ~ conditions, returning answers ordered most-similar
// first (ties broken by discovery order, i.e. document order).
//
// Deprecated: use Query with Ranked set.
func (s *System) SelectRanked(instance string, p *pattern.Tree, sl []int) ([]RankedAnswer, error) {
	return s.SelectRankedContext(context.Background(), instance, p, sl)
}

// SelectRankedContext is SelectRanked with cancellation.
//
// Deprecated: use Query with Ranked set.
func (s *System) SelectRankedContext(ctx context.Context, instance string, p *pattern.Tree, sl []int) ([]RankedAnswer, error) {
	res, err := s.Query(ctx, QueryRequest{Pattern: p, Instance: instance, Adorn: sl, Ranked: true})
	if err != nil {
		return nil, err
	}
	return res.Ranked, nil
}

// runSelectRanked is the ranked-selection pipeline behind Query, checking the
// context between candidate documents. It returns the (possibly truncated)
// ranking plus the total number of answers found. With limit > 0 a bounded
// top-K heap keyed by (score, global insertion sequence, binding order)
// replaces the full stable sort — memory stays O(limit) however many answers
// exist, and the returned prefix is exactly what stable-sorting everything
// and truncating produced. When the planner routes the ~ predicate through
// the similarity candidate index, candidates come from term postings and the
// heap's producer never materializes the full document set's evaluations.
func (s *System) runSelectRanked(ctx context.Context, instance string, p *pattern.Tree, sl []int, limit int, st *ExecStats) ([]RankedAnswer, int, error) {
	in := s.Instance(instance)
	if in == nil {
		return nil, 0, fmt.Errorf("core: unknown instance %q", instance)
	}
	if s.Measure == nil {
		return nil, 0, fmt.Errorf("core: system not built; no similarity measure")
	}
	t0 := time.Now()
	paths := s.rewritePattern(p, st)
	if st != nil {
		st.RewriteTime = time.Since(t0)
	}
	t1 := time.Now()
	var cands []*tree.Tree
	var err error
	if sp := s.planSimProbe(in, p); sp != nil {
		cands, err = s.simCandidateDocs(ctx, in.Col, sp, paths, st)
	} else {
		cands, err = s.candidateDocs(ctx, in.Col, paths, st)
	}
	if err != nil {
		return nil, 0, err
	}
	if st != nil {
		st.PrefilterTime = time.Since(t1)
	}
	dst := tree.NewCollection()
	c := tax.Compile(p)
	ev := s.Evaluator()
	simAtoms := simAtomsOf(p)

	top := newTopK(limit)
	total := 0
	for _, doc := range cands {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		bindings, err := c.Embeddings(doc, ev)
		if err != nil {
			return nil, 0, err
		}
		if st != nil {
			st.DocsEvaluated++
			st.Embeddings += len(bindings)
		}
		for ord, b := range bindings {
			wt := c.WitnessTree(dst, doc, b, sl)
			if wt == nil {
				continue
			}
			score, err := s.scoreBinding(simAtoms, b)
			if err != nil {
				return nil, 0, err
			}
			top.add(RankedAnswer{Tree: wt, Score: score}, doc.SrcSeq, ord)
			total++
		}
	}
	if st != nil {
		st.Answers = total
		st.Workers = 1
	}
	return top.ranking(), total, nil
}

// topK accumulates ranked answers and produces the best k by ascending
// (score, global insertion sequence, within-document binding order) — the
// order a stable sort on score gives when candidates arrive in document
// order, and the same order internal/router's ranked gather produces, so
// single-node and routed rankings break ties identically no matter what
// order a candidate producer discovered the documents in. With k <= 0 it
// keeps everything (the unlimited ranking). Internally a max-heap of size k:
// the worst kept answer sits on top and is evicted as soon as a better one
// arrives.
type topK struct {
	k     int
	items []topKItem // heap-ordered when k > 0, insertion-ordered otherwise
}

type topKItem struct {
	ans RankedAnswer
	seq uint64 // document's global insertion sequence
	ord int    // binding order within the document
}

func newTopK(k int) *topK { return &topK{k: k} }

// worse reports whether a ranks after b (larger score; ties by later
// insertion sequence, then later binding).
func (t *topK) worse(a, b topKItem) bool {
	if a.ans.Score != b.ans.Score {
		return a.ans.Score > b.ans.Score
	}
	if a.seq != b.seq {
		return a.seq > b.seq
	}
	return a.ord > b.ord
}

func (t *topK) add(a RankedAnswer, seq uint64, ord int) {
	it := topKItem{ans: a, seq: seq, ord: ord}
	if t.k <= 0 {
		t.items = append(t.items, it)
		return
	}
	if len(t.items) < t.k {
		t.items = append(t.items, it)
		t.up(len(t.items) - 1)
		return
	}
	if !t.worse(it, t.items[0]) {
		t.items[0] = it
		t.down(0)
	}
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.items[i], t.items[parent]) {
			break
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *topK) down(i int) {
	for {
		worst := i
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(t.items) && t.worse(t.items[c], t.items[worst]) {
				worst = c
			}
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}

// ranking returns the kept answers ordered most-similar first.
func (t *topK) ranking() []RankedAnswer {
	if len(t.items) == 0 {
		return nil
	}
	items := make([]topKItem, len(t.items))
	copy(items, t.items)
	sort.Slice(items, func(i, j int) bool { return t.worse(items[j], items[i]) })
	out := make([]RankedAnswer, len(items))
	for i, it := range items {
		out[i] = it.ans
	}
	return out
}

// simAtomsOf collects every ~ atom of the condition (not just the
// conjunctive spine — scores are informative even for disjunctive atoms that
// happened to hold).
func simAtomsOf(p *pattern.Tree) []*pattern.Atomic {
	var out []*pattern.Atomic
	for _, a := range pattern.Atoms(p.Cond) {
		if a.Op == pattern.OpSim {
			out = append(out, a)
		}
	}
	return out
}

// scoreBinding sums the measure distances of the ~ atoms under the binding.
// Atoms whose operands cannot be resolved (an unbound optional branch)
// contribute nothing; an atom that did not actually hold contributes its
// true distance, which is what a ranking wants.
func (s *System) scoreBinding(atoms []*pattern.Atomic, b tax.Binding) (float64, error) {
	ev := s.Evaluator()
	total := 0.0
	for _, a := range atoms {
		x, errX := ev.resolve(a.X, b)
		y, errY := ev.resolve(a.Y, b)
		if errX != nil || errY != nil {
			continue
		}
		d := s.Measure.Distance(x.value, y.value)
		if math.IsInf(d, 1) {
			continue
		}
		total += d
	}
	return total, nil
}
