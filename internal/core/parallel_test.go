package core

import (
	"testing"

	"fmt"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
	"repro/internal/tree"
	"strings"
)

// buildCorpusSystem loads a chunked corpus for parallelism tests.
func buildCorpusSystem(t *testing.T, papers, chunk int) (*System, *datagen.Corpus) {
	t.Helper()
	corpus := datagen.Generate(datagen.DefaultConfig(papers))
	s := NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(corpus.Papers); i += chunk {
		end := i + chunk
		if end > len(corpus.Papers) {
			end = len(corpus.Papers)
		}
		key := fmt.Sprintf("dblp-%03d", i/chunk)
		if _, err := dblp.Col.PutXML(key, strings.NewReader(corpus.DBLPString(corpus.Papers[i:end]))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	return s, corpus
}

func TestParallelSelectMatchesSequential(t *testing.T) {
	s, corpus := buildCorpusSystem(t, 120, 10)
	author := corpus.Authors[0].Canonical()
	pats := []string{
		fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author),
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content isa "operation"`,
	}
	for _, src := range pats {
		p := pattern.MustParse(src)
		s.Parallelism = 1
		seq, err := s.Select("dblp", p, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		s.Parallelism = 8
		par, err := s.Select("dblp", p, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("%s: sequential %d vs parallel %d", src, len(seq), len(par))
		}
		for i := range seq {
			if !tree.Equal(seq[i], par[i]) {
				t.Fatalf("%s: answer %d differs (order not preserved?)", src, i)
			}
		}
	}
}

func TestSelectNLimit(t *testing.T) {
	s, corpus := buildCorpusSystem(t, 120, 10)
	_ = corpus
	p := pattern.MustParse(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "year"`)
	all, err := s.Select("dblp", p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 120 {
		t.Fatalf("unlimited select = %d", len(all))
	}
	five, err := s.SelectN("dblp", p, []int{1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(five) != 5 {
		t.Fatalf("SelectN(5) = %d", len(five))
	}
	for i := range five {
		if !tree.Equal(five[i], all[i]) {
			t.Fatalf("SelectN answers are not a prefix of Select at %d", i)
		}
	}
	// limit 0 means unlimited; limit beyond size returns everything.
	if got, _ := s.SelectN("dblp", p, []int{1}, 0); len(got) != 120 {
		t.Errorf("SelectN(0) = %d", len(got))
	}
	if got, _ := s.SelectN("dblp", p, []int{1}, 1000); len(got) != 120 {
		t.Errorf("SelectN(1000) = %d", len(got))
	}
	if _, err := s.SelectN("ghost", p, nil, 3); err == nil {
		t.Error("unknown instance must fail")
	}
}

// TestQuickPrefilterSoundness: on random corpora and random query shapes,
// the XPath-prefiltered Select equals the unfiltered algebra run with the
// same evaluator.
func TestQuickPrefilterSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s, corpus := buildCorpusSystem(t, 80, 8)
	docs, err := s.Trees("dblp")
	if err != nil {
		t.Fatal(err)
	}
	concepts := []string{"operation", "access method", "conference", "data model"}
	for seed := 0; seed < 12; seed++ {
		author := corpus.Authors[seed%len(corpus.Authors)].Canonical()
		concept := concepts[seed%len(concepts)]
		var src string
		switch seed % 3 {
		case 0:
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ %q`, author)
		case 1:
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title" & #2.content isa %q`, concept)
		default:
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "booktitle" & (#2.content ~ %q | #3.content isa %q)`, author, concept)
		}
		p := pattern.MustParse(src)
		fast, err := s.Select("dblp", p, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := tax.Select(tree.NewCollection(), docs, p, []int{1}, s.Evaluator())
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Errorf("seed %d (%s): filtered %d vs unfiltered %d", seed, src, len(fast), len(slow))
			continue
		}
		for i := range fast {
			if !tree.Equal(fast[i], slow[i]) {
				t.Errorf("seed %d: answer %d differs", seed, i)
				break
			}
		}
	}
}
