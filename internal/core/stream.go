package core

import (
	"context"
	"io"

	"repro/internal/tree"
)

// DocStream is the pull-based (Volcano-style) iterator every execution
// operator implements. Next returns the next answer tree, io.EOF once the
// stream is exhausted, or the first error (including ctx.Err() on
// cancellation); after a non-nil error the stream is dead and further Next
// calls return the same error or io.EOF.
//
// Lifecycle contract: the consumer that received the stream owns it and
// must call Close exactly once, whether or not it drained to io.EOF. Close
// releases operator resources (prefetch goroutines, buffers) and is
// idempotent. Cancelling the context passed to Next stops the pipeline at
// the next operator boundary; Close must still be called afterwards.
type DocStream interface {
	Next(ctx context.Context) (*tree.Tree, error)
	Close()
}

// sliceStream serves a materialized answer slice — the adapter between the
// batch operators (which still produce []*tree.Tree) and the stream world.
type sliceStream struct {
	docs []*tree.Tree
	pos  int
}

func newSliceStream(docs []*tree.Tree) *sliceStream { return &sliceStream{docs: docs} }

func (s *sliceStream) Next(ctx context.Context) (*tree.Tree, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.docs) {
		return nil, io.EOF
	}
	d := s.docs[s.pos]
	s.pos++
	return d, nil
}

func (s *sliceStream) Close() {}

// errStream is a stream that fails immediately — it lets pipeline builders
// defer error delivery to the first Next without a special error channel.
type errStream struct{ err error }

func (s *errStream) Next(context.Context) (*tree.Tree, error) { return nil, s.err }
func (s *errStream) Close()                                   {}

// limitStream passes through at most limit answers, then reports io.EOF
// without pulling its input any further — the limit-pushdown operator. When
// the limit-th answer is emitted it records LimitHit on the trace (the
// historical SelectN semantics: the limit counts as hit exactly when the
// limit-th answer exists, whether or not more would have followed).
type limitStream struct {
	in    DocStream
	limit int
	sent  int
	st    *ExecStats
}

func newLimitStream(in DocStream, limit int, st *ExecStats) *limitStream {
	return &limitStream{in: in, limit: limit, st: st}
}

func (s *limitStream) Next(ctx context.Context) (*tree.Tree, error) {
	if s.sent >= s.limit {
		return nil, io.EOF
	}
	d, err := s.in.Next(ctx)
	if err != nil {
		return nil, err
	}
	s.sent++
	if s.sent == s.limit && s.st != nil {
		s.st.LimitHit = true
	}
	return d, nil
}

func (s *limitStream) Close() { s.in.Close() }

// onCloseStream runs fn once when the stream is closed — the hook drivers
// use to finalize trace timings for streams handed to external consumers.
type onCloseStream struct {
	in     DocStream
	fn     func()
	closed bool
}

func (s *onCloseStream) Next(ctx context.Context) (*tree.Tree, error) { return s.in.Next(ctx) }

func (s *onCloseStream) Close() {
	if !s.closed {
		s.closed = true
		s.in.Close()
		if s.fn != nil {
			s.fn()
		}
	}
}

// drainStream pulls a stream to exhaustion, closes it, and returns the
// answers — the adapter the materialized entry points (and the deprecated
// wrappers behind them) use to keep returning slices.
func drainStream(ctx context.Context, s DocStream) ([]*tree.Tree, error) {
	defer s.Close()
	var out []*tree.Tree
	for {
		d, err := s.Next(ctx)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
}

// asyncStream prefetches from its input on a dedicated goroutine through a
// bounded buffer, overlapping upstream work (shard scanning, filtering) with
// downstream consumption. A single producer preserves order exactly. Close
// cancels the producer and drains the buffer, so the goroutine always exits
// — the lifecycle the leak-check tests pin down.
type asyncStream struct {
	ch     chan asyncItem
	cancel context.CancelFunc
	done   chan struct{}
	closed bool
	failed error
}

type asyncItem struct {
	doc *tree.Tree
	err error
}

func newAsyncStream(in DocStream, buffer int) *asyncStream {
	if buffer < 1 {
		buffer = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &asyncStream{
		ch:     make(chan asyncItem, buffer),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		defer close(s.ch)
		defer in.Close()
		for {
			d, err := in.Next(ctx)
			if err != nil {
				select {
				case s.ch <- asyncItem{err: err}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case s.ch <- asyncItem{doc: d}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return s
}

func (s *asyncStream) Next(ctx context.Context) (*tree.Tree, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	select {
	case it, ok := <-s.ch:
		if !ok {
			return nil, io.EOF
		}
		if it.err != nil {
			s.failed = it.err
			return nil, it.err
		}
		return it.doc, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *asyncStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.cancel()
	for range s.ch { // unblock the producer if it is mid-send
	}
	<-s.done
}
