package core

import (
	"fmt"
	"strings"
)

// Stats summarises a built system: data volumes, ontology sizes and SEO
// shape. Useful in CLIs and for sanity checks after Build.
type Stats struct {
	Instances      int
	Documents      int
	Bytes          int
	IsaTerms       int
	IsaEdges       int
	PartTerms      int
	PartEdges      int
	SEONodes       int
	MergedNodes    int // SEO clusters with more than one member
	Epsilon        float64
	MeasureName    string
	ValueTags      []string
	DroppedEdges   int
	TypeCount      int
	Parallelism    int
	DynamicSimOn   bool
	ValueTruncated bool
}

// Stats collects the current statistics (zero values where the system has
// not been built yet).
func (s *System) Stats() Stats {
	st := Stats{
		Instances:      len(s.Instances),
		Epsilon:        s.Epsilon,
		Parallelism:    s.Parallelism,
		DynamicSimOn:   s.DynamicSimilarity,
		TypeCount:      len(s.Types.Names()),
		ValueTruncated: s.valueTruncated,
	}
	for tag := range s.valueTags {
		st.ValueTags = append(st.ValueTags, tag)
	}
	for _, in := range s.Instances {
		st.Documents += in.Col.DocCount()
		st.Bytes += in.Col.ByteSize()
	}
	if s.Measure != nil {
		st.MeasureName = s.Measure.Name()
	}
	if s.FusedIsa != nil {
		st.IsaTerms = s.FusedIsa.Hierarchy.NodeCount()
		st.IsaEdges = s.FusedIsa.Hierarchy.EdgeCount()
	}
	if s.FusedPart != nil {
		st.PartTerms = s.FusedPart.Hierarchy.NodeCount()
		st.PartEdges = s.FusedPart.Hierarchy.EdgeCount()
	}
	if s.SEO != nil {
		st.SEONodes = s.SEO.NodeCount()
		for _, members := range s.SEO.Clusters {
			if len(members) > 1 {
				st.MergedNodes++
			}
		}
		st.DroppedEdges = len(s.SEO.Dropped)
	}
	return st
}

// String renders the statistics as a compact multi-line summary.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances: %d (%d documents, %d bytes)\n", st.Instances, st.Documents, st.Bytes)
	fmt.Fprintf(&b, "isa hierarchy: %d terms, %d edges\n", st.IsaTerms, st.IsaEdges)
	fmt.Fprintf(&b, "part-of hierarchy: %d terms, %d edges\n", st.PartTerms, st.PartEdges)
	fmt.Fprintf(&b, "SEO: %d nodes (%d merged clusters), measure=%s eps=%g\n",
		st.SEONodes, st.MergedNodes, st.MeasureName, st.Epsilon)
	if st.DroppedEdges > 0 {
		fmt.Fprintf(&b, "relaxed enhancement dropped %d order edges\n", st.DroppedEdges)
	}
	if st.ValueTruncated {
		b.WriteString("value ontologization truncated (MaxValueTerms)\n")
	}
	return b.String()
}
