package core

import (
	"fmt"
	"strings"
)

// Stats summarises a built system: data volumes, ontology sizes and SEO
// shape. Useful in CLIs and for sanity checks after Build.
type Stats struct {
	Instances       int
	Documents       int
	Bytes           int
	IsaTerms        int
	IsaEdges        int
	PartTerms       int
	PartEdges       int
	SEONodes        int
	MergedNodes     int // SEO clusters with more than one member
	OntologyVersion uint64
	Epsilon         float64
	MeasureName     string
	ValueTags       []string
	DroppedEdges    int
	TypeCount       int
	Parallelism     int
	DynamicSimOn    bool
	ValueTruncated  bool
}

// Stats collects the current statistics (zero values where the system has
// not been built yet). Ontology figures come from the current snapshot, so
// Stats is safe to call concurrently with live mutations.
func (s *System) Stats() Stats {
	st := Stats{
		Instances:    len(s.Instances),
		Parallelism:  s.Parallelism,
		DynamicSimOn: s.DynamicSimilarity,
		TypeCount:    len(s.Types.Names()),
	}
	for _, in := range s.Instances {
		st.Documents += in.Col.DocCount()
		st.Bytes += in.Col.ByteSize()
	}
	snap := s.Ontology()
	if snap == nil {
		return st
	}
	st.OntologyVersion = snap.Version
	st.Epsilon = snap.Epsilon
	st.ValueTruncated = snap.valueTruncated
	for tag := range snap.valueTags {
		st.ValueTags = append(st.ValueTags, tag)
	}
	if snap.Measure != nil {
		st.MeasureName = snap.Measure.Name()
	}
	if snap.FusedIsa != nil {
		st.IsaTerms = snap.FusedIsa.Hierarchy.NodeCount()
		st.IsaEdges = snap.FusedIsa.Hierarchy.EdgeCount()
	}
	if snap.FusedPart != nil {
		st.PartTerms = snap.FusedPart.Hierarchy.NodeCount()
		st.PartEdges = snap.FusedPart.Hierarchy.EdgeCount()
	}
	if snap.SEO != nil {
		st.SEONodes = snap.SEO.NodeCount()
		for _, members := range snap.SEO.Clusters {
			if len(members) > 1 {
				st.MergedNodes++
			}
		}
		st.DroppedEdges = len(snap.SEO.Dropped)
	}
	return st
}

// String renders the statistics as a compact multi-line summary.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances: %d (%d documents, %d bytes)\n", st.Instances, st.Documents, st.Bytes)
	fmt.Fprintf(&b, "isa hierarchy: %d terms, %d edges\n", st.IsaTerms, st.IsaEdges)
	fmt.Fprintf(&b, "part-of hierarchy: %d terms, %d edges\n", st.PartTerms, st.PartEdges)
	fmt.Fprintf(&b, "SEO: %d nodes (%d merged clusters), measure=%s eps=%g\n",
		st.SEONodes, st.MergedNodes, st.MeasureName, st.Epsilon)
	if st.DroppedEdges > 0 {
		fmt.Fprintf(&b, "relaxed enhancement dropped %d order edges\n", st.DroppedEdges)
	}
	if st.ValueTruncated {
		b.WriteString("value ontologization truncated (MaxValueTerms)\n")
	}
	return b.String()
}
