package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// TestPlannerAnswerSetEquivalence is the DESIGN.md §6-style property test for
// the planner: for random pattern trees over a skewed corpus, the
// planner-chosen plan (reordered intersections, restricted survivor scans,
// index/scan routing) returns exactly the same answer set, in the same
// order, as (a) the heuristic executor with the planner disabled and (b) the
// forced full-scan path that never pre-filters at all.
func TestPlannerAnswerSetEquivalence(t *testing.T) {
	s, corpus := buildCorpusSystem(t, 60, 1) // one paper per document
	docs, err := s.Trees("dblp")
	if err != nil {
		t.Fatal(err)
	}

	authors := make([]string, 0, len(corpus.Authors))
	for _, a := range corpus.Authors {
		authors = append(authors, a.Canonical())
	}
	years := []string{"1999", "2000", "2001", "2002", "2003"}

	// A generated property instance: indices select literals, selectors pick
	// operators and pattern shape.
	f := func(aIdx, yIdx, opSel, shape uint8) bool {
		author := authors[int(aIdx)%len(authors)]
		year := years[int(yIdx)%len(years)]
		ops := []string{"=", "~", "contains"}
		op := ops[int(opSel)%len(ops)]

		var src string
		switch shape % 3 {
		case 0: // single content condition
			src = fmt.Sprintf(`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content %s %q`, op, author)
		case 1: // two conditions with very different selectivities
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #2.content %s %q & #3.content = %q`, op, author, year)
		default: // three paths, one unselective
			src = fmt.Sprintf(`#1 pc #2, #1 pc #3, #1 pc #4 :: #1.tag = "inproceedings" & #2.tag = "author" & #3.tag = "year" & #4.tag = "title" & #2.content %s %q & #3.content = %q`, op, author, year)
		}
		p, perr := pattern.Parse(src)
		if perr != nil {
			t.Fatalf("bad generated pattern %q: %v", src, perr)
		}
		sl := []int{1}

		planned, err := s.Select("dblp", p, sl)
		if err != nil {
			t.Fatalf("planned select: %v", err)
		}
		saved := s.Planner
		s.Planner = nil
		heuristic, err := s.Select("dblp", p, sl)
		s.Planner = saved
		if err != nil {
			t.Fatalf("heuristic select: %v", err)
		}
		fullScan, err := s.SelectTrees(docs, p, sl)
		if err != nil {
			t.Fatalf("full-scan select: %v", err)
		}

		if !sameTrees(planned, heuristic) {
			t.Logf("pattern %q: planned %d vs heuristic %d answers", src, len(planned), len(heuristic))
			return false
		}
		if !sameTrees(planned, fullScan) {
			t.Logf("pattern %q: planned %d vs full-scan %d answers", src, len(planned), len(fullScan))
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(7)),
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerJoinEquivalence checks the second planned decision: whichever
// side the planner picks to build the hash table, the join's answer set must
// equal the nested-loop product-then-select reference and the heuristic
// (planner-off) hash join.
func TestPlannerJoinEquivalence(t *testing.T) {
	s, corpus := buildCorpusSystem(t, 24, 1)
	if _, err := s.AddInstance("proc"); err != nil {
		t.Fatal(err)
	}
	proc := s.Instance("proc")
	// A second, smaller collection naming some of the same titles.
	for i := 0; i < 6; i++ {
		title := corpus.Papers[i*3].Title
		xml := fmt.Sprintf(`<ProceedingsPage><title>%s</title><note>N%d</note></ProceedingsPage>`, title, i)
		if _, err := proc.Col.PutXML(fmt.Sprintf("pp-%d", i), strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	// The similarity hash join needs complete cluster keys (no dynamic
	// measure fallback), like the existing hash-join tests.
	s.DynamicSimilarity = false
	if err := s.Build(s.Measure, s.Epsilon); err != nil {
		t.Fatal(err)
	}

	src := fmt.Sprintf(
		`#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: #1.tag = %q & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & #4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`,
		tax.ProdRootTag)
	p := pattern.MustParse(src)
	sl := []int{2, 3}

	planned, err := s.Join("dblp", "proc", p, sl)
	if err != nil {
		t.Fatal(err)
	}
	saved := s.Planner
	s.Planner = nil
	heuristic, err := s.Join("dblp", "proc", p, sl)
	s.Planner = saved
	if err != nil {
		t.Fatal(err)
	}
	ldocs, _ := s.Trees("dblp")
	rdocs, _ := s.Trees("proc")
	reference, err := s.NestedLoopJoinTrees(ldocs, rdocs, p, sl)
	if err != nil {
		t.Fatal(err)
	}
	if len(planned) == 0 {
		t.Fatal("join matched nothing — test corpus broken")
	}
	if !sameTrees(planned, heuristic) {
		t.Fatalf("planned join %d answers vs heuristic %d", len(planned), len(heuristic))
	}
	if !sameTrees(planned, reference) {
		t.Fatalf("planned join %d answers vs nested-loop reference %d", len(planned), len(reference))
	}

	// Flip the build side by shrinking one input: equivalence must hold with
	// either side building.
	st := mustJoinTrace(t, s, p, sl)
	if st.Join == nil || st.Join.BuildSide == "" {
		t.Fatal("planned join should record a build side")
	}
}

func mustJoinTrace(t *testing.T, s *System, p *pattern.Tree, sl []int) *ExecStats {
	t.Helper()
	_, st, err := s.JoinTraced("dblp", "proc", p, sl)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func sameTrees(a, b []*tree.Tree) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !tree.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
