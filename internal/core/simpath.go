package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/similarity"
	"repro/internal/simindex"
	"repro/internal/tree"
	"repro/internal/xmldb"
	"repro/internal/xpath"
)

// simProbePlan is a costed decision to serve one `~` predicate from the
// similarity candidate index instead of scanning: the probe to run, the
// predicate it covers, and the planner's estimates for the trace.
type simProbePlan struct {
	tag      string
	lit      string
	probe    xmldb.SimProbe
	decision planner.SimDecision
}

// planSimProbe decides whether the query's candidate documents can come from
// the similarity candidate index. It returns nil when no eligible `~` atom
// exists, when the dynamic-similarity fallback cannot be covered by an index
// filter, or when the planner's cost model prefers the existing paths.
//
// Eligibility mirrors the evaluator's satisfaction relation for ~ exactly:
//
//   - known–known pairs are answered by the SEO, covered by the exact-terms
//     channel (SimilarStrings);
//   - pairs involving an unknown term fall back to a direct distance check —
//     covered by the n-gram filter (Levenshtein/Damerau, k = ⌊ε⌋) or the
//     phonetic buckets (Soundex, ε < 2), then re-verified with the
//     evaluator itself. Other measures, or configurations where an
//     empty-content node could match, make the probe incomplete, so the
//     planner refuses and execution falls back to the scan paths.
func (s *System) planSimProbe(in *Instance, p *pattern.Tree) *simProbePlan {
	if s.Planner == nil {
		return nil
	}
	tag, lit, ok := findSimProbeAtom(p)
	if !ok {
		return nil
	}
	probe := xmldb.SimProbe{Tag: tag, Literal: lit, MaxEdit: -1}
	if s.SEO != nil && s.DynamicSimilarity && s.Measure != nil && s.Epsilon >= 0 {
		switch s.Measure.(type) {
		case similarity.Levenshtein:
			probe.MaxEdit = int(math.Floor(s.Epsilon))
			probe.GramsPerEdit = simindex.GramsPerEdit
		case similarity.Damerau:
			probe.MaxEdit = int(math.Floor(s.Epsilon))
			probe.GramsPerEdit = simindex.GramsPerEditTranspose
		case similarity.Soundex:
			if s.Epsilon >= 2 {
				return nil // beyond one token of slack the buckets are incomplete
			}
			probe.Phonetic = true
			probe.PhoneticSlack = s.Epsilon >= 1
		default:
			return nil // no complete filter for this measure's fallback
		}
		// Empty-content nodes are invisible to the value index and the
		// simindex dictionary; if one could satisfy the predicate, the probe
		// would silently drop its documents.
		if similarity.Within(s.Measure, "", lit, s.Epsilon) {
			return nil
		}
	}
	cluster := s.SimilarStrings(lit)
	sort.Strings(cluster) // deterministic probe order across runs
	for _, t := range cluster {
		if t == "" {
			return nil // an empty cluster term can match empty-content nodes
		}
	}
	probe.ExactTerms = cluster
	sound := s.simRewriteSound(tag, lit) && len(cluster) <= maxXPathExpansion
	var dec planner.SimDecision
	if s.adaptive() {
		dec = s.Planner.PlanSimProbeAdaptive(in.Col.Name(), in.Col.Stats(), s.OntologyVersion(), tag, lit, len(cluster), sound)
	} else {
		dec = planner.PlanSimProbe(in.Col.Stats(), tag, len(cluster), sound, s.Planner.MinSimIndexDocsGate())
	}
	if !dec.UseIndex {
		return nil
	}
	return &simProbePlan{tag: tag, lit: lit, probe: probe, decision: dec}
}

// findSimProbeAtom scans the conjunctive spine for `#n.content ~ "lit"`
// where #n also carries a concrete tag constraint — the shape the candidate
// index can serve. Atoms are visited in pattern order, so the choice is
// deterministic.
func findSimProbeAtom(p *pattern.Tree) (tag, lit string, ok bool) {
	atoms := pattern.Atoms(conjunctiveOnly(p.Cond))
	tagOf := func(label int) string {
		for _, a := range atoms {
			ls := a.Labels(nil)
			if len(ls) != 1 || ls[0] != label {
				continue
			}
			if a.Op == pattern.OpEq && a.X.Kind == pattern.TermAttr && a.X.Attr == "tag" &&
				a.Y.Kind == pattern.TermValue && a.Y.Value != Wildcard {
				return a.Y.Value
			}
		}
		return "*"
	}
	for _, a := range atoms {
		ls := a.Labels(nil)
		if len(ls) != 1 {
			continue
		}
		attr, val, op, okAtom := normalizeAtom(a)
		if !okAtom || op != pattern.OpSim || attr != "content" || val == Wildcard || val == "" {
			continue
		}
		if t := tagOf(ls[0]); t != "*" {
			return t, val, true
		}
	}
	return "", "", false
}

// simCandidateDocs produces the candidate documents of a planned similarity
// probe: index postings (global insertion order), then the remaining
// rewritten XPath paths applied per document — each is a necessary
// condition, so the result is still a complete superset of the answer
// documents, in the same order candidateDocs produces.
func (s *System) simCandidateDocs(ctx context.Context, col *xmldb.Collection, sp *simProbePlan, paths []*xpath.Path, st *ExecStats) ([]*tree.Tree, error) {
	ev := s.Evaluator()
	lit := sp.lit
	sp.probe.Verify = func(term string) bool { return ev.Similar(term, lit) }
	docs, ps := col.SimCandidateDocs(sp.probe)
	out := docs[:0]
	for _, d := range docs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		keep := true
		for _, p := range paths {
			if len(p.Eval(d.Root)) == 0 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	if s.Planner != nil {
		s.Planner.Observe(sp.decision.EstDocs, float64(ps.Docs))
		if s.adaptive() {
			// The probe enumerated every posting, so its document count is
			// exact: feed the correction store (keyed by probe shape) and the
			// auto-tuned term selectivity (keyed by the filter funnel).
			cst := col.Stats()
			k := planner.FeedbackKey(col.Name(), cst.Generation, s.OntologyVersion(), planner.SimShape(sp.tag, sp.lit))
			s.Planner.Learn(k, sp.decision.RawDocs, float64(ps.Docs))
			s.Planner.ObserveSimProbe(ps.CandidateTerms, cst.DistinctTerms)
		}
	}
	if st != nil {
		st.TotalDocs += col.DocCount()
		st.CandidateDocs += len(out)
		st.Sim = &SimTrace{
			Tag: sp.tag, Literal: sp.lit,
			ClusterTerms:   len(sp.probe.ExactTerms),
			CandidateTerms: ps.CandidateTerms,
			VerifiedTerms:  ps.VerifiedTerms,
			MatchedTerms:   ps.MatchedTerms,
			Nodes:          ps.Nodes,
			Docs:           ps.Docs,
			ShardsTouched:  ps.ShardsTouched,
			EstDocs:        sp.decision.EstDocs,
			ProbeCost:      sp.decision.ProbeCost,
			AltCost:        sp.decision.AltCost,
		}
		planTrace := &PlanTrace{
			Collection:    col.Name(),
			EstCandidates: sp.decision.EstDocs,
			Steps: []PlanStep{{
				XPath:       fmt.Sprintf("simindex(%s ~ %q)", sp.tag, sp.lit),
				Access:      planner.AccessSimIndex,
				EstDocs:     sp.decision.EstDocs,
				EstNodes:    sp.decision.EstNodes,
				ActualDocs:  ps.Docs,
				ActualNodes: ps.Nodes,
			}},
		}
		if len(paths) > 0 {
			planTrace.Steps = append(planTrace.Steps, PlanStep{
				XPath:      fmt.Sprintf("%d residual path(s)", len(paths)),
				Access:     planner.AccessRestricted,
				EstDocs:    sp.decision.EstDocs,
				ActualDocs: len(out),
				TestedDocs: ps.Docs,
			})
		}
		planTrace.ActualCandidates = len(out)
		st.Plans = append(st.Plans, planTrace)
	}
	return out, nil
}

// simSelectStream is the simindex-backed selection shape: probe → residual
// filter (inside simCandidateDocs) → eval → limit. Candidates arrive in
// insertion order, so answers are byte-identical to the materialized paths.
func (s *System) simSelectStream(ctx context.Context, req QueryRequest, in *Instance, sp *simProbePlan, paths []*xpath.Path, st *ExecStats) (DocStream, error) {
	t1 := time.Now()
	cands, err := s.simCandidateDocs(ctx, in.Col, sp, paths, st)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.PrefilterTime = time.Since(t1)
		// The simprobe source operator reports estimated-vs-actual rows for
		// every query shape (not just limited ones), so simindex queries feed
		// the correction store with observable rows like any other source.
		st.ScanMode = ScanModeSimIndex
		estRows := sp.decision.EstDocs
		if req.Limit > 0 {
			if lim := float64(req.Limit); estRows > lim {
				estRows = lim
			}
		}
		st.Operators = []OperatorTrace{
			{Name: "simprobe", Est: sp.decision.EstDocs},
			{Name: "eval", Est: estRows},
		}
		if req.Limit > 0 {
			st.Operators = append(st.Operators, OperatorTrace{Name: "limit", Est: estRows})
		}
		if s.adaptive() && sp.decision.Corrections > 0 {
			at := st.adaptiveTrace()
			at.CorrectionsApplied += sp.decision.Corrections
			at.Epoch = s.Planner.FeedbackEpoch()
		}
	}
	if req.Limit > 0 {
		stream := newEvalStream(newSliceStream(cands), s, req.Pattern, req.Adorn, st)
		return newLimitStream(stream, req.Limit, st), nil
	}
	if req.Stream {
		return newEvalStream(newSliceStream(cands), s, req.Pattern, req.Adorn, st), nil
	}
	return newBatchEvalStream(s, cands, req.Pattern, req.Adorn, st, in.Col.ShardCount()), nil
}
