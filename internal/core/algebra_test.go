package core

import (
	"strings"
	"testing"
)

func TestExprInstance(t *testing.T) {
	s := miniSystem(t, 3)
	e := MustParseExpr("dblp")
	out, err := e.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 { // one document
		t.Fatalf("instance eval = %d trees", len(out))
	}
	if _, err := MustParseExpr("ghost").Eval(s); err == nil {
		t.Error("unknown instance must fail at eval")
	}
}

func TestExprSelect(t *testing.T) {
	s := miniSystem(t, 3)
	e := MustParseExpr(`select[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"; 1](dblp)`)
	out, err := e.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("selection = %d trees, want 2", len(out))
	}
	// The same selection evaluates identically over a nested expression
	// (losing only the XPath pre-filter).
	e2 := MustParseExpr(`select[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"; 1](union(dblp, dblp))`)
	out2, err := e2.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 2 {
		t.Fatalf("nested selection = %d trees, want 2", len(out2))
	}
}

func TestExprProjectAndSetOps(t *testing.T) {
	s := miniSystem(t, 3)
	authors := MustParseExpr(`project[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"; 2](dblp)`)
	out, err := authors.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("projection = %d trees, want 3", len(out))
	}
	// difference(x, x) = ∅ through the expression layer.
	empty := MustParseExpr(`difference(project[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"; 2](dblp), project[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"; 2](dblp))`)
	out2, err := empty.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 0 {
		t.Fatalf("difference = %d trees, want 0", len(out2))
	}
	inter := MustParseExpr(`intersect(dblp, dblp)`)
	out3, err := inter.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out3) != 1 {
		t.Fatalf("intersect = %d trees", len(out3))
	}
	// Projection over a nested sub-expression.
	nested := MustParseExpr(`project[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"; 2](union(dblp, dblp))`)
	out4, err := nested.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out4) != 3 {
		t.Fatalf("nested projection = %d trees, want 3", len(out4))
	}
}

func TestExprJoinAndProduct(t *testing.T) {
	s := miniSystem(t, 3)
	join := MustParseExpr(`join[#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
		`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
		`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content](dblp, sigmod)`)
	out, err := join.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("join = %d trees, want 1", len(out))
	}
	prod := MustParseExpr(`product(dblp, sigmod)`)
	out2, err := prod.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 1 {
		t.Fatalf("product = %d trees", len(out2))
	}
	if out2[0].Root.Tag != "tax_prod_root" {
		t.Errorf("product root = %q", out2[0].Root.Tag)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	srcs := []string{
		`dblp`,
		`select[#1 pc #2 :: #1.tag = "inproceedings" & #2.content ~ "J. Ullman"; 1](dblp)`,
		`union(dblp, sigmod)`,
		`join[#1 pc #2 :: #1.tag = "tax_prod_root" & #2.tag = "dblp"; 1, 2](dblp, sigmod)`,
		`project[#1 pc #2 :: #1.tag = "a"; 2](intersect(dblp, product(dblp, sigmod)))`,
	}
	for _, src := range srcs {
		e1 := MustParseExpr(src)
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Errorf("re-parse of %q (%q): %v", src, e1.String(), err)
			continue
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip unstable:\n%s\nvs\n%s", e1.String(), e2.String())
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`select(dblp)`, // missing pattern
		`select[#1 :: #1.tag = "a"](dblp, extra)`, // wrong arity
		`join[#1]()`,             // empty args
		`union(dblp)`,            // wrong arity
		`select[#1](dblp) extra`, // trailing
		`select[#1; x](dblp)`,    // bad label
		`select[#1(dblp)`,        // unterminated bracket
		`product(dblp, sigmod`,   // unterminated paren
		`product(dblp; sigmod)`,  // bad separator
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) should fail", src)
		}
	}
}

func TestExprSemicolonInsideStringLiteral(t *testing.T) {
	// A ';' inside the pattern's string literal must not be taken as the
	// label-list separator.
	e := MustParseExpr(`select[#1 :: #1.content = "a;b"; 1](dblp)`)
	sel, ok := e.(*SelectExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(sel.SL) != 1 || sel.SL[0] != 1 {
		t.Errorf("SL = %v", sel.SL)
	}
	if !strings.Contains(sel.Pattern.String(), `a;b`) {
		t.Errorf("pattern lost the literal: %s", sel.Pattern)
	}
}
