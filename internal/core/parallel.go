package core

import (
	"runtime"
	"sync"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// selectDocs evaluates a selection over candidate documents, fanning out
// across s.Parallelism workers when that is set above 1. Each document gets
// its own destination collection and its own evaluator (the evaluator's memo
// tables are not safe for concurrent use); answers are concatenated in
// document order, so results are identical to the sequential path.
func (s *System) selectDocs(cands []*tree.Tree, p *pattern.Tree, sl []int) ([]*tree.Tree, error) {
	workers := s.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(cands) <= 1 {
		dst := tree.NewCollection()
		return tax.Select(dst, cands, p, sl, s.Evaluator())
	}

	type result struct {
		trees []*tree.Tree
		err   error
	}
	results := make([]result, len(cands))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, doc := range cands {
		wg.Add(1)
		go func(i int, doc *tree.Tree) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dst := tree.NewCollection()
			trees, err := tax.Select(dst, []*tree.Tree{doc}, p, sl, s.Evaluator())
			results[i] = result{trees: trees, err: err}
		}(i, doc)
	}
	wg.Wait()
	var out []*tree.Tree
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.trees...)
	}
	return out, nil
}
