package core

import (
	"runtime"
	"sync"

	"repro/internal/pattern"
	"repro/internal/tax"
	"repro/internal/tree"
)

// selectDocs evaluates a selection over candidate documents, fanning out
// across s.Parallelism workers when that is set above 1. Each document gets
// its own destination collection, and each worker its own evaluator (the
// evaluator's memo tables are not safe for concurrent use); answers are
// concatenated in document order, so results are identical to the sequential
// path. When st is non-nil the worker count, per-worker document counts
// (utilization) and embedding totals are recorded.
func (s *System) selectDocs(cands []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats) ([]*tree.Tree, error) {
	workers := s.Parallelism
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	if workers <= 1 || len(cands) <= 1 {
		if st != nil {
			st.Workers = 1
			st.WorkerDocs = []int{len(cands)}
			st.DocsEvaluated = len(cands)
		}
		dst := tree.NewCollection()
		out, ops, err := tax.SelectTraced(dst, cands, p, sl, s.Evaluator())
		if st != nil {
			st.Embeddings = ops.Embeddings
		}
		return out, err
	}

	type result struct {
		trees      []*tree.Tree
		embeddings int
		err        error
	}
	results := make([]result, len(cands))
	workerDocs := make([]int, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := s.Evaluator()
			for i := range idx {
				dst := tree.NewCollection()
				trees, ops, err := tax.SelectTraced(dst, cands[i:i+1], p, sl, ev)
				results[i] = result{trees: trees, embeddings: ops.Embeddings, err: err}
				workerDocs[w]++
			}
		}(w)
	}
	for i := range cands {
		idx <- i
	}
	close(idx)
	wg.Wait()
	var out []*tree.Tree
	embeddings := 0
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		embeddings += r.embeddings
		out = append(out, r.trees...)
	}
	if st != nil {
		st.Workers = workers
		st.WorkerDocs = workerDocs
		st.DocsEvaluated = len(cands)
		st.Embeddings = embeddings
	}
	return out, nil
}
