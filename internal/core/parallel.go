package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/pattern"
	"repro/internal/planner"
	"repro/internal/tax"
	"repro/internal/tree"
)

// selectDocs evaluates a selection over candidate documents, fanning out
// across a worker pool: s.Parallelism workers when that is set above 1,
// otherwise one worker per shard of the queried collection (scatter-gather —
// an unsharded collection keeps today's sequential path). Each document gets
// its own destination collection, and each worker its own evaluator (the
// evaluator's memo tables are not safe for concurrent use); answers are
// concatenated in document order, so results are identical to the sequential
// path. The context is checked between documents (and inside every worker),
// so a cancelled request stops scanning promptly and returns ctx.Err().
// When st is non-nil the worker count, per-worker document counts
// (utilization) and embedding totals are recorded.
func (s *System) selectDocs(ctx context.Context, cands []*tree.Tree, p *pattern.Tree, sl []int, st *ExecStats, shards int) ([]*tree.Tree, error) {
	workers := s.Parallelism
	if workers <= 0 {
		workers = shards
	}
	if workers < 1 {
		workers = 1
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers < 1 {
		workers = 1
	}
	// With only a handful of candidates the fan-out setup (one evaluator and
	// destination collection per worker) costs more than it saves. The gate
	// counts the post-narrowing candidates it receives — never the collection
	// size — so a tiny survivor set never forks goroutines, planner or not.
	// With the planner on, the gate position is auto-tuned from observed
	// first-result latency (floored at the seed constant).
	gate := planner.MinParallelDocs
	if s.Planner != nil {
		gate = s.Planner.MinParallelDocsGate()
	}
	if len(cands) < gate {
		workers = 1
	}
	if workers <= 1 || len(cands) <= 1 {
		if st != nil {
			st.Workers = 1
			st.WorkerDocs = []int{len(cands)}
			st.DocsEvaluated = len(cands)
		}
		dst := tree.NewCollection()
		ev := s.Evaluator()
		var out []*tree.Tree
		embeddings := 0
		for _, doc := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, ops, err := tax.SelectTraced(dst, []*tree.Tree{doc}, p, sl, ev)
			if err != nil {
				return nil, err
			}
			embeddings += ops.Embeddings
			out = append(out, res...)
		}
		if st != nil {
			st.Embeddings = embeddings
		}
		return out, nil
	}

	type result struct {
		trees      []*tree.Tree
		embeddings int
		err        error
	}
	results := make([]result, len(cands))
	workerDocs := make([]int, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := s.Evaluator()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					// Exit now rather than draining: the feeder selects on
					// ctx.Done for every send, so no send can block on a
					// departed worker, and the gather below reports ctx.Err()
					// for the whole call.
					results[i] = result{err: err}
					return
				}
				dst := tree.NewCollection()
				trees, ops, err := tax.SelectTraced(dst, cands[i:i+1], p, sl, ev)
				results[i] = result{trees: trees, embeddings: ops.Embeddings, err: err}
				workerDocs[w]++
			}
		}(w)
	}
feed:
	for i := range cands {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []*tree.Tree
	embeddings := 0
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		embeddings += r.embeddings
		out = append(out, r.trees...)
	}
	if st != nil {
		st.Workers = workers
		st.WorkerDocs = workerDocs
		st.DocsEvaluated = len(cands)
		st.Embeddings = embeddings
	}
	return out, nil
}

// parallelDocKeys computes every document's hash-join keys on a worker pool
// fanned out to the owning collection's shard count (capped by GOMAXPROCS and
// the document count). docKeys must be pure per-document work; results land
// in input order, so callers see the same key lists as a sequential loop.
// On cancellation the feeder stops immediately (every send selects on
// ctx.Done — never an unconditional send that could block on departed
// workers), workers exit at their next pull, and the partial result is
// returned with ctx.Err(); callers must discard it.
func parallelDocKeys(ctx context.Context, docs []*tree.Tree, docKeys func(*tree.Tree) []string, fan int) ([][]string, error) {
	out := make([][]string, len(docs))
	if fan > runtime.GOMAXPROCS(0) {
		fan = runtime.GOMAXPROCS(0)
	}
	if fan > len(docs) {
		fan = len(docs)
	}
	// Same tiny-input rule as selectDocs: fanning out for a handful of
	// documents costs more than the key walks it spreads.
	if len(docs) < planner.MinParallelDocs {
		fan = 1
	}
	if fan <= 1 {
		for i, d := range docs {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = docKeys(d)
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < fan; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return // exit promptly; the feeder stops on ctx.Done
				}
				out[i] = docKeys(docs[i])
			}
		}()
	}
feed:
	for i := range docs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}
