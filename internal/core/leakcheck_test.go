package core

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutineLeak is the hand-rolled goroutine-leak detector the operator
// tests run under: call it before spawning any streams and invoke the
// returned func (usually via defer) after closing them. It snapshots the
// goroutine count up front and then requires the count to return to that
// baseline within a grace period — long enough for workers to observe
// cancellation, short enough that a genuinely leaked goroutine fails the
// test rather than lingering silently.
func checkGoroutineLeak(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			runtime.GC()
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after grace period\n%s", before, now, buf[:n])
	}
}
