package core

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
	"repro/internal/similarity"
	"repro/internal/tax"
)

// Wildcard is the literal that matches any value in equality conditions, as
// in the paper's Example 12 ("#3.content = *").
const Wildcard = "*"

// Evaluator implements the TOSS satisfaction relation of Section 5.1.1 —
// the cases EI, WT ⊨ c — against the system's SEO, fused part-of hierarchy
// and type system. It plugs into the shared TAX algebra machinery.
type Evaluator struct {
	sys *System
	// Memoization of ontology lookups: condition values repeat across
	// bindings (every paper has the same tags; tokens recur), so isa and ~
	// verdicts are cached per (x, y) pair for the evaluator's lifetime.
	simMemo map[[2]string]bool
	isaMemo map[[2]string]bool
}

// Evaluator returns a fresh TOSS condition evaluator (one per query
// execution; its memo tables assume a fixed SEO). The system must be Built.
func (s *System) Evaluator() *Evaluator {
	return &Evaluator{
		sys:     s,
		simMemo: map[[2]string]bool{},
		isaMemo: map[[2]string]bool{},
	}
}

// term is a resolved condition operand: value plus its type.
type term struct {
	value  string
	typ    string
	isType bool
}

func (e *Evaluator) resolve(t pattern.Term, b tax.Binding) (term, error) {
	switch t.Kind {
	case pattern.TermAttr:
		n := b.Get(t.Label)
		if n == nil {
			return term{}, fmt.Errorf("core: unbound pattern node #%d", t.Label)
		}
		if t.Attr == "tag" {
			return term{value: n.Tag, typ: n.TagType}, nil
		}
		return term{value: n.Content, typ: n.ContentType}, nil
	case pattern.TermValue:
		typ := t.Type
		if typ == "" {
			typ = "string"
		}
		return term{value: t.Value, typ: typ}, nil
	case pattern.TermType:
		return term{value: t.Type, typ: t.Type, isType: true}, nil
	default:
		return term{}, fmt.Errorf("core: unknown term kind %d", t.Kind)
	}
}

// EvalAtomic implements tax.Evaluator with the TOSS semantics.
func (e *Evaluator) EvalAtomic(a *pattern.Atomic, b tax.Binding) (bool, error) {
	x, err := e.resolve(a.X, b)
	if err != nil {
		return false, err
	}
	y, err := e.resolve(a.Y, b)
	if err != nil {
		return false, err
	}
	switch a.Op {
	case pattern.OpEq:
		return e.compareEq(x, y)
	case pattern.OpNe:
		ok, err := e.compareEq(x, y)
		return !ok, err
	case pattern.OpLe, pattern.OpGe, pattern.OpLt, pattern.OpGt:
		cmp, err := e.compareOrd(x, y)
		if err != nil {
			return false, err
		}
		switch a.Op {
		case pattern.OpLe:
			return cmp <= 0, nil
		case pattern.OpGe:
			return cmp >= 0, nil
		case pattern.OpLt:
			return cmp < 0, nil
		default:
			return cmp > 0, nil
		}
	case pattern.OpSim:
		key := [2]string{x.value, y.value}
		if v, ok := e.simMemo[key]; ok {
			return v, nil
		}
		v := e.similar(x.value, y.value)
		e.simMemo[key] = v
		return v, nil
	case pattern.OpIsa:
		key := [2]string{x.value, y.value}
		if v, ok := e.isaMemo[key]; ok {
			return v, nil
		}
		v := e.isaReach(x.value, y.value)
		e.isaMemo[key] = v
		return v, nil
	case pattern.OpPartOf:
		return e.partOfReach(x.value, y.value), nil
	case pattern.OpInstanceOf:
		return e.instanceOf(x, y), nil
	case pattern.OpSubtypeOf:
		return e.subtypeOf(x, y), nil
	case pattern.OpBelow:
		// X below Y ≡ X instance_of Y ∨ X subtype_of Y, extended through
		// the ontology's below_H set (Section 5: below_H adds dom values).
		return e.instanceOf(x, y) || e.subtypeOf(x, y) || e.isaReach(x.value, y.value), nil
	case pattern.OpAbove:
		return e.instanceOf(y, x) || e.subtypeOf(y, x) || e.isaReach(y.value, x.value), nil
	case pattern.OpContains:
		return strings.Contains(strings.ToLower(x.value), strings.ToLower(y.value)), nil
	default:
		return false, fmt.Errorf("core: unsupported operator %q", a.Op)
	}
}

// compareEq implements the well-typed equality of Section 5.1.1: convert
// both operands to their least common supertype and compare there. Wildcards
// match anything; operands without a common type fall back to literal
// string equality.
func (e *Evaluator) compareEq(x, y term) (bool, error) {
	if x.value == Wildcard || y.value == Wildcard {
		return true, nil
	}
	if common, ok := e.sys.Types.LeastCommonSupertype(x.typ, y.typ); ok {
		if e.sys.Types.CanConvert(x.typ, common) && e.sys.Types.CanConvert(y.typ, common) {
			cmp, err := e.sys.Types.CompareAs(x.value, x.typ, y.value, y.typ, common)
			if err == nil {
				return cmp == 0, nil
			}
		}
	}
	return x.value == y.value, nil
}

// compareOrd orders two operands at their least common supertype; without
// one, it falls back to integer-aware string ordering (so untyped year
// comparisons behave sensibly).
func (e *Evaluator) compareOrd(x, y term) (int, error) {
	if common, ok := e.sys.Types.LeastCommonSupertype(x.typ, y.typ); ok {
		if e.sys.Types.CanConvert(x.typ, common) && e.sys.Types.CanConvert(y.typ, common) {
			cmp, err := e.sys.Types.CompareAs(x.value, x.typ, y.value, y.typ, common)
			if err == nil {
				return cmp, nil
			}
		}
	}
	return fallbackCompare(x.value, y.value), nil
}

// similar implements A ~ B: "true iff ∃ a node containing both of them in
// the similarity enhancement". Terms known to the fused ontology are
// answered from the precomputed SEO; unknown terms (ad-hoc strings the
// Ontology Maker never saw) fall back to a direct distance check with the
// system's measure and threshold, so the operator remains total.
func (e *Evaluator) similar(x, y string) bool {
	if x == y {
		return true
	}
	if e.sys.SEO == nil {
		return false
	}
	nx := e.sys.FusedIsa.NodesOf(x)
	ny := e.sys.FusedIsa.NodesOf(y)
	if len(nx) > 0 && len(ny) > 0 {
		for _, a := range nx {
			for _, b := range ny {
				if e.sys.SEO.Similar(a, b) {
					return true
				}
			}
		}
		return false
	}
	if e.sys.Measure == nil || !e.sys.DynamicSimilarity {
		return false
	}
	return similarity.Within(e.sys.Measure, x, y, e.sys.Epsilon)
}

// Similar reports x ~ y under the full satisfaction relation, memoized like
// EvalAtomic's OpSim case. The similarity candidate index uses it as its
// verifier stage: the index proposes terms, Similar delivers the verdict, so
// accelerated answers can never diverge from evaluated ones.
func (e *Evaluator) Similar(x, y string) bool {
	key := [2]string{x, y}
	if v, ok := e.simMemo[key]; ok {
		return v
	}
	v := e.similar(x, y)
	e.simMemo[key] = v
	return v
}

// SimilarStrings returns every ontology term sharing an SEO cluster with v
// (including v itself when known); the Query Executor expands ~ conditions
// into XPath disjunctions with it.
func (s *System) SimilarStrings(v string) []string {
	if s.SEO == nil || s.FusedIsa == nil {
		return []string{v}
	}
	set := map[string]bool{v: true}
	for _, node := range s.FusedIsa.NodesOf(v) {
		for _, other := range s.SEO.SimilarTo(node) {
			for _, q := range s.FusedIsa.Members[other] {
				set[q.Term] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// isaReach implements X isa Y through the SEO-lifted fused isa hierarchy.
// When X is a free-text string (e.g. a whole title), its tokens are also
// tried, so "Efficient Relational Query Processing" isa "data model" holds
// when the token "relational" does.
func (e *Evaluator) isaReach(x, y string) bool {
	if x == y {
		return true
	}
	if e.sys.SEO == nil || e.sys.FusedIsa == nil {
		return false
	}
	targets := e.sys.FusedIsa.NodesOf(y)
	if len(targets) == 0 {
		return false
	}
	for _, cand := range e.candidateTerms(x) {
		for _, src := range e.sys.FusedIsa.NodesOf(cand) {
			for _, dst := range targets {
				if e.sys.SEO.Leq(src, dst) {
					return true
				}
			}
		}
	}
	return false
}

// candidateTerms maps a raw condition value to ontology term candidates:
// the string itself plus its lower-cased tokens.
func (e *Evaluator) candidateTerms(v string) []string {
	out := []string{v}
	lower := strings.ToLower(v)
	if lower != v {
		out = append(out, lower)
	}
	out = append(out, similarity.Tokenize(v)...)
	return out
}

// partOfReach implements X part_of Y over the fused part-of hierarchy
// (tokens tried as for isa).
func (e *Evaluator) partOfReach(x, y string) bool {
	if x == y {
		return true
	}
	if e.sys.FusedPart == nil {
		return false
	}
	targets := e.sys.FusedPart.NodesOf(y)
	if len(targets) == 0 {
		return false
	}
	h := e.sys.FusedPart.Hierarchy
	for _, cand := range e.candidateTerms(x) {
		for _, src := range e.sys.FusedPart.NodesOf(cand) {
			for _, dst := range targets {
				if h.Leq(src, dst) {
					return true
				}
			}
		}
	}
	return false
}

// instanceOf implements X instance_of Y: Y names a type, X's type is at or
// below it, and X's value lies in Y's domain.
func (e *Evaluator) instanceOf(x, y term) bool {
	if !e.sys.Types.Has(y.value) {
		return false
	}
	if x.isType {
		return false
	}
	return e.sys.Types.Subtype(x.typ, y.value) && e.sys.Types.InDomain(x.value, y.value)
}

// subtypeOf implements X subtype_of Y over the type hierarchy.
func (e *Evaluator) subtypeOf(x, y term) bool {
	return e.sys.Types.Has(x.value) && e.sys.Types.Has(y.value) &&
		e.sys.Types.Subtype(x.value, y.value)
}

// fallbackCompare is the integer-aware ordering shared with the TAX
// baseline, used when no least common supertype exists.
func fallbackCompare(x, y string) int {
	return tax.CompareValues(x, y)
}

var _ tax.Evaluator = (*Evaluator)(nil)
