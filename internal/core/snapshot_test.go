package core

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/ontology"
	"repro/internal/pattern"
	"repro/internal/seo"
	"repro/internal/similarity"
)

// kindSystem builds a system over one "things" instance whose documents carry
// a single <kind> value each, sharded shards ways. The vocabulary is chosen so
// that under NameRule/ε=1 no two kinds cluster together: every answer-set
// change observed by the tests below comes from a live mutation, not from
// accidental similarity.
func kindSystem(t testing.TB, shards int, kinds map[string]int) *System {
	t.Helper()
	s := NewSystem()
	s.DB.SetDefaultShards(shards)
	in, err := s.AddInstance("things")
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for kind, n := range kinds {
		for j := 0; j < n; j++ {
			xml := fmt.Sprintf("<item><kind>%s</kind><id>%s-%d</id></item>", kind, kind, j)
			if _, err := in.Col.PutXML(fmt.Sprintf("doc-%s-%d", kind, j), strings.NewReader(xml)); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	if err := s.Build(similarity.NameRule{}, 1); err != nil {
		t.Fatal(err)
	}
	return s
}

var isaVehiclePattern = pattern.MustParse(
	`#1 pc #2 :: #1.tag = "item" & #2.tag = "kind" & #2.content isa "vehicle"`)

// answersOf runs a materialized query and returns the answer XML strings.
func answersOf(t testing.TB, s *System, p *pattern.Tree) []string {
	t.Helper()
	res, err := s.Query(context.Background(), QueryRequest{Pattern: p, Instance: "things", Adorn: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Answers))
	for i, a := range res.Answers {
		out[i] = a.XMLString()
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMutationSemantics exercises the live mutation API end to end: version
// bumps, no-op detection, cycle rejection, part-of isolation from the SEA,
// constraint semantics, counters, and the pinned-view guard.
func TestMutationSemantics(t *testing.T) {
	s := kindSystem(t, 2, map[string]int{"car": 2, "bus": 2, "oak": 1})
	v0 := s.OntologyVersion()
	if v0 == 0 {
		t.Fatal("built system has version 0")
	}

	// A fresh edge bumps the version and reports recluster work.
	res, err := s.AddEdge(ontology.RelIsa, "car", "vehicle")
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !res.Changed || res.Version != v0+1 || s.OntologyVersion() != v0+1 {
		t.Fatalf("AddEdge result %+v, system version %d; want changed install of %d", res, s.OntologyVersion(), v0+1)
	}
	if res.ComponentNodes == 0 || res.TotalNodes == 0 || res.SEONodes == 0 {
		t.Fatalf("AddEdge reported no recluster work: %+v", res)
	}

	// Re-adding the same edge is a no-op: Changed=false, version unchanged.
	res, err = s.AddEdge(ontology.RelIsa, "car", "vehicle")
	if err != nil {
		t.Fatalf("repeat AddEdge: %v", err)
	}
	if res.Changed || res.Version != v0+1 || s.OntologyVersion() != v0+1 {
		t.Fatalf("no-op AddEdge result %+v, system version %d", res, s.OntologyVersion())
	}

	// A cycle-creating edge is rejected and installs nothing.
	if _, err := s.AddEdge(ontology.RelIsa, "vehicle", "car"); err == nil {
		t.Fatal("cycle-creating AddEdge succeeded")
	}
	if s.OntologyVersion() != v0+1 {
		t.Fatalf("failed mutation moved the version to %d", s.OntologyVersion())
	}

	// part-of mutations swap the fused DAG but never touch the SEA: the new
	// snapshot shares the previous snapshot's SEO pointer.
	before := s.Ontology()
	res, err = s.AddEdge(ontology.RelPartOf, "wheel", "car")
	if err != nil {
		t.Fatalf("part-of AddEdge: %v", err)
	}
	after := s.Ontology()
	if !res.Changed || after.Version != before.Version+1 {
		t.Fatalf("part-of AddEdge result %+v (versions %d -> %d)", res, before.Version, after.Version)
	}
	if after.SEO != before.SEO {
		t.Fatal("part-of mutation rebuilt the SEO")
	}
	if after.FusedPart == before.FusedPart {
		t.Fatal("part-of mutation did not swap the fused part-of DAG")
	}

	// Retracting the edge undoes the reachability it added.
	if _, err := s.RetractEdge(ontology.RelIsa, "car", "vehicle"); err != nil {
		t.Fatalf("RetractEdge: %v", err)
	}
	if got := answersOf(t, s, isaVehiclePattern); len(got) != 0 {
		t.Fatalf("after retraction, isa query still returns %d answers", len(got))
	}
	if _, err := s.RetractEdge(ontology.RelIsa, "no-such-term", "vehicle"); err == nil {
		t.Fatal("retracting an edge of an unknown term succeeded")
	}

	// Constraints: x = y merges; a violated x ≠ y is an error; a satisfied
	// one changes nothing. "car" and "vehicle" both exist as (runtime) terms
	// at this point, in distinct fused nodes after the retraction above.
	if _, err := s.AddConstraintLive(ontology.RelIsa, ontology.NotEqual("car", 0, "vehicle", 0)); err != nil {
		t.Fatalf("satisfied neq constraint errored: %v", err)
	}
	vBefore := s.OntologyVersion()
	res, err = s.AddConstraintLive(ontology.RelIsa, ontology.Equal("car", 0, "vehicle", 0))
	if err != nil {
		t.Fatalf("eq constraint: %v", err)
	}
	if !res.Changed || s.OntologyVersion() != vBefore+1 {
		t.Fatalf("eq constraint result %+v, version %d -> %d", res, vBefore, s.OntologyVersion())
	}
	if _, err := s.AddConstraintLive(ontology.RelIsa, ontology.NotEqual("car", 0, "vehicle", 0)); err == nil {
		t.Fatal("violated neq constraint succeeded")
	}

	// Counters reflect the installs (4 changed mutations above).
	c := s.OntologyCounters()
	if c.Mutations != 4 {
		t.Fatalf("Mutations counter %d, want 4", c.Mutations)
	}
	if c.ReclusteredNodes == 0 || c.LastComponent == 0 || c.LastDirty == 0 {
		t.Fatalf("recluster counters stayed at zero: %+v", c)
	}

	// A pinned view must refuse mutations: it cannot install a successor of
	// a snapshot that is no longer necessarily current.
	pinnedView := s.WithSnapshot(s.Ontology())
	if _, err := pinnedView.AddEdge(ontology.RelIsa, "x", "y"); err == nil {
		t.Fatal("pinned view accepted a mutation")
	}
}

// TestMutationChangesAnswers: a runtime isa edge immediately changes what an
// isa query answers, and the incrementally re-clustered SEO is byte-identical
// to a full Enhance over the mutated fusion (the incremental ≡ full contract,
// checked here on the system-level path rather than the seo package's own
// randomized equivalence suite).
func TestMutationChangesAnswers(t *testing.T) {
	s := kindSystem(t, 2, map[string]int{"car": 3, "bus": 2, "oak": 2})

	if got := answersOf(t, s, isaVehiclePattern); len(got) != 0 {
		t.Fatalf("pre-mutation isa query returned %d answers, want 0", len(got))
	}
	if _, err := s.AddEdge(ontology.RelIsa, "car", "vehicle"); err != nil {
		t.Fatal(err)
	}
	if got := answersOf(t, s, isaVehiclePattern); len(got) != 3 {
		t.Fatalf("after car≤vehicle, isa query returned %d answers, want the 3 car docs", len(got))
	}
	if _, err := s.AddEdge(ontology.RelIsa, "bus", "vehicle"); err != nil {
		t.Fatal(err)
	}
	if got := answersOf(t, s, isaVehiclePattern); len(got) != 5 {
		t.Fatalf("after bus≤vehicle, isa query returned %d answers, want 5", len(got))
	}

	// Incremental ≡ full: re-enhance the mutated fusion from scratch and
	// compare the rendered SEO byte for byte.
	snap := s.Ontology()
	opts := s.SEAOptions
	opts.Strings = fusedStringsOf(snap.FusedIsa)
	opts.CompatibilityFilter = true
	full, err := seo.Enhance(snap.FusedIsa.Hierarchy, snap.Measure, snap.Epsilon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SEO.String() != full.String() {
		t.Fatalf("incrementally re-clustered SEO differs from full Enhance:\n--- incremental ---\n%s\n--- full ---\n%s",
			snap.SEO.String(), full.String())
	}
}

// TestStreamPinnedAcrossMutation is the snapshot-isolation contract of the
// query path: a streamed query pinned on version N keeps producing version-N
// answers even though a mutation installs N+1 while the stream is mid-drain.
// Runs at shard counts 1, 2, and 7 — the asynchronous shard cursors are
// where a torn read would surface under -race.
func TestStreamPinnedAcrossMutation(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := kindSystem(t, shards, map[string]int{"car": 6, "bus": 4, "oak": 2})
			if _, err := s.AddEdge(ontology.RelIsa, "car", "vehicle"); err != nil {
				t.Fatal(err)
			}
			vN := s.OntologyVersion()
			ref := answersOf(t, s, isaVehiclePattern) // the 6 car docs
			if len(ref) != 6 {
				t.Fatalf("reference answer set has %d answers, want 6", len(ref))
			}

			res, err := s.Query(context.Background(), QueryRequest{
				Pattern: isaVehiclePattern, Instance: "things", Adorn: []int{1}, Stream: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.OntologyVersion != vN {
				t.Fatalf("stream pinned version %d, want %d", res.OntologyVersion, vN)
			}

			// Pull one answer, then install version N+1 underneath the open
			// stream.
			var got []string
			first, err := res.Stream.Next(context.Background())
			if err != nil {
				t.Fatalf("first streamed answer: %v", err)
			}
			got = append(got, first.XMLString())

			mres, err := s.AddEdge(ontology.RelIsa, "bus", "vehicle")
			if err != nil {
				t.Fatal(err)
			}
			if mres.Version != vN+1 || s.OntologyVersion() != vN+1 {
				t.Fatalf("mutation installed version %d, system at %d, want %d", mres.Version, s.OntologyVersion(), vN+1)
			}

			// The rest of the stream still answers from version N: exactly the
			// reference answers, no bus docs.
			for {
				tr, err := res.Stream.Next(context.Background())
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("streamed answer: %v", err)
				}
				got = append(got, tr.XMLString())
			}
			res.Stream.Close()
			if !sameStrings(got, ref) {
				t.Fatalf("stream opened before the mutation drained %d answers (want the %d version-%d answers):\n%s",
					len(got), len(ref), vN, strings.Join(got, "\n"))
			}

			// A query entered after the install sees version N+1 and the
			// widened answer set.
			post, err := s.Query(context.Background(), QueryRequest{
				Pattern: isaVehiclePattern, Instance: "things", Adorn: []int{1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if post.OntologyVersion != vN+1 {
				t.Fatalf("post-mutation query pinned version %d, want %d", post.OntologyVersion, vN+1)
			}
			if len(post.Answers) != 10 {
				t.Fatalf("post-mutation query returned %d answers, want 10 (6 car + 4 bus)", len(post.Answers))
			}
		})
	}
}

// TestConcurrentQueriesAndMutations hammers the snapshot lineage from both
// sides: readers pin and drain streamed queries while a writer keeps
// installing successors. Run with -race this is the proof that pinning, the
// atomic install, and the mirror-field sync never race; functionally each
// drained stream must return one of the answer-set cardinalities some
// snapshot version actually had.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	s := kindSystem(t, 3, map[string]int{"car": 4, "bus": 3, "oak": 2})
	valid := map[int]bool{0: true, 4: true, 7: true} // none, +car, +car+bus

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := s.AddEdge(ontology.RelIsa, "car", "vehicle"); err != nil {
				t.Errorf("writer AddEdge car: %v", err)
				return
			}
			if _, err := s.AddEdge(ontology.RelIsa, "bus", "vehicle"); err != nil {
				t.Errorf("writer AddEdge bus: %v", err)
				return
			}
			if _, err := s.RetractEdge(ontology.RelIsa, "bus", "vehicle"); err != nil {
				t.Errorf("writer RetractEdge bus: %v", err)
				return
			}
			if _, err := s.RetractEdge(ontology.RelIsa, "car", "vehicle"); err != nil {
				t.Errorf("writer RetractEdge car: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.Query(context.Background(), QueryRequest{
					Pattern: isaVehiclePattern, Instance: "things", Adorn: []int{1}, Stream: true,
				})
				if err != nil {
					t.Errorf("reader query: %v", err)
					return
				}
				n := 0
				for {
					_, err := res.Stream.Next(context.Background())
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Errorf("reader stream: %v", err)
						res.Stream.Close()
						return
					}
					n++
				}
				res.Stream.Close()
				if !valid[n] {
					t.Errorf("drained %d answers; no snapshot version ever had that answer set", n)
					return
				}
			}
		}()
	}
	wg.Wait()
}
