// Package promtext is a dependency-free Prometheus text-exposition helper:
// counters, gauges and histograms backed by atomics, plus func-backed
// metrics that sample external state (e.g. xmldb collection counters) at
// scrape time. A Registry renders everything in the Prometheus text format
// (version 0.0.4), which is all /metrics needs — no client library required.
package promtext

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of float64 observations
// (latency in seconds, by convention).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// DefBuckets mirrors the Prometheus client default latency buckets.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat accumulates a float64 with a CAS loop.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Sample is one exposition line of a func-backed metric: an optional label
// set and a value.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Registry holds metrics in registration order and renders them.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

type entry struct {
	name, help, typ string
	write           func(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, help, typ string, write func(io.Writer, string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, entry{name: name, help: help, typ: typ, write: write})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	})
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	})
	return g
}

// NewHistogram registers and returns a histogram with the given ascending
// upper bounds (DefBuckets when nil).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	r.register(name, help, "histogram", func(w io.Writer, n string) {
		for i, b := range h.bounds {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), h.counts[i].Load())
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.count.Load())
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.sum.load()))
		fmt.Fprintf(w, "%s_count %d\n", n, h.count.Load())
	})
	return h
}

// GaugeFunc registers a gauge whose samples are produced at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() []Sample) {
	r.registerFunc(name, help, "gauge", fn)
}

// CounterFunc registers a counter whose samples are produced at scrape time
// (the sampled source must be monotonic, e.g. cumulative query counters).
func (r *Registry) CounterFunc(name, help string, fn func() []Sample) {
	r.registerFunc(name, help, "counter", fn)
}

// SummaryFunc registers a bucketless summary whose sum and count are sampled
// at scrape time — the shape for pre-aggregated timings kept elsewhere (e.g.
// cumulative fsync seconds and fsync count maintained by the WAL).
func (r *Registry) SummaryFunc(name, help string, fn func() (sum float64, count uint64)) {
	r.register(name, help, "summary", func(w io.Writer, n string) {
		sum, count := fn()
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", n, count)
	})
}

func (r *Registry) registerFunc(name, help, typ string, fn func() []Sample) {
	r.register(name, help, typ, func(w io.Writer, n string) {
		for _, s := range fn() {
			fmt.Fprintf(w, "%s%s %s\n", n, formatLabels(s.Labels), formatFloat(s.Value))
		}
	})
}

// WriteText renders every registered metric in the Prometheus text format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	entries := append([]entry{}, r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.typ)
		e.write(w, e.name)
	}
}

// String renders the registry (convenience for tests).
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
