package promtext

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reqs_total", "requests")
	g := r.NewGauge("depth", "queue depth")
	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Add(-2)

	out := r.String()
	for _, want := range []string{
		"# HELP reqs_total requests",
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# TYPE depth gauge",
		"depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05) // both buckets
	h.Observe(0.5)  // le=1 only
	h.Observe(3)    // +Inf only

	out := r.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 3.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestFuncMetricsAndLabels(t *testing.T) {
	r := NewRegistry()
	val := 7.0
	r.GaugeFunc("col_docs", "docs per collection", func() []Sample {
		return []Sample{
			{Labels: map[string]string{"collection": "dblp", "zone": "a"}, Value: val},
			{Labels: map[string]string{"collection": "sigmod"}, Value: 1},
		}
	})
	out := r.String()
	// Labels render sorted by name, values escaped and quoted.
	if !strings.Contains(out, `col_docs{collection="dblp",zone="a"} 7`) {
		t.Errorf("labeled sample wrong:\n%s", out)
	}
	if !strings.Contains(out, `col_docs{collection="sigmod"} 1`) {
		t.Errorf("second sample missing:\n%s", out)
	}
	// Func metrics sample current state at scrape time.
	val = 9
	if !strings.Contains(r.String(), `zone="a"} 9`) {
		t.Error("func gauge did not re-sample")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := formatLabels(map[string]string{"k": "a\"b\\c\nd"})
	if got != `{k="a\"b\\c\nd"}` {
		t.Errorf("escaping = %s", got)
	}
	if formatLabels(nil) != "" {
		t.Error("empty labels must render nothing")
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("n", "")
	h := r.NewHistogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
}
