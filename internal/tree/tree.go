// Package tree implements the ordered labelled tree data model that TAX and
// TOSS operate over: the "semistructured instance" of Definition 1 in the
// paper. A Node carries a tag (the label of the edge to its parent) and a
// content string, each with an associated type name; a Tree is a single
// rooted ordered tree; a Collection is a finite set of trees (a
// "semistructured database").
package tree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node uniquely within a Collection. IDs are assigned in
// preorder when trees are built or parsed, so comparing IDs of two nodes in
// the same tree compares their preorder positions.
type NodeID int64

// Node is a single object of a semistructured instance. Tag is the label of
// the edge between the node and its parent; Content is the node's text
// content (empty for pure element nodes). TagType and ContentType name the
// types assigned by the instance's typing function t (Definition 1); they
// default to "string".
type Node struct {
	ID          NodeID
	Tag         string
	Content     string
	TagType     string
	ContentType string
	Parent      *Node
	Children    []*Node
}

// Tree is a rooted ordered tree. SrcSeq is the global insertion sequence of
// the stored document the tree was derived from: xmldb stamps it when a
// document is stored, and operators that derive trees from a stored document
// (witness construction, projection) propagate it so results can be ordered
// by source position even after crossing process boundaries. Zero for trees
// that never touched a store.
type Tree struct {
	Root   *Node
	SrcSeq uint64
}

// Collection is a finite ordered set of trees — a semistructured database.
type Collection struct {
	Trees  []*Tree
	nextID NodeID
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{}
}

// NewNode allocates a node with a fresh ID in this collection. Types default
// to "string".
func (c *Collection) NewNode(tag, content string) *Node {
	c.nextID++
	return &Node{
		ID:          c.nextID,
		Tag:         tag,
		Content:     content,
		TagType:     "string",
		ContentType: "string",
	}
}

// Add appends a tree to the collection.
func (c *Collection) Add(t *Tree) {
	c.Trees = append(c.Trees, t)
}

// Size returns the number of trees in the collection.
func (c *Collection) Size() int { return len(c.Trees) }

// NodeCount returns the total number of nodes over all trees.
func (c *Collection) NodeCount() int {
	n := 0
	for _, t := range c.Trees {
		t.Walk(func(*Node) bool { n++; return true })
	}
	return n
}

// AddChild appends child to parent, wiring the Parent pointer.
func (n *Node) AddChild(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Depth returns the number of edges from the node to its root.
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// IsDescendantOf reports whether n is a proper descendant of anc.
func (n *Node) IsDescendantOf(anc *Node) bool {
	for p := n.Parent; p != nil; p = p.Parent {
		if p == anc {
			return true
		}
	}
	return false
}

// Child returns the first child with the given tag, or nil.
func (n *Node) Child(tag string) *Node {
	for _, c := range n.Children {
		if c.Tag == tag {
			return c
		}
	}
	return nil
}

// ChildContent returns the content of the first child with the given tag.
func (n *Node) ChildContent(tag string) string {
	if c := n.Child(tag); c != nil {
		return c.Content
	}
	return ""
}

// Walk visits n and its descendants in preorder. The visitor returns false to
// prune the subtree below the visited node (the node itself is still
// visited).
func (n *Node) Walk(visit func(*Node) bool) {
	if n == nil {
		return
	}
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Walk visits every node of the tree in preorder.
func (t *Tree) Walk(visit func(*Node) bool) {
	if t == nil {
		return
	}
	t.Root.Walk(visit)
}

// Preorder returns all nodes of the tree in preorder.
func (t *Tree) Preorder() []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool { out = append(out, n); return true })
	return out
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int {
	n := 0
	t.Walk(func(*Node) bool { n++; return true })
	return n
}

// Find returns all nodes in the tree for which pred holds, in preorder.
func (t *Tree) Find(pred func(*Node) bool) []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool {
		if pred(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// FindTag returns all nodes with the given tag, in preorder.
func (t *Tree) FindTag(tag string) []*Node {
	return t.Find(func(n *Node) bool { return n.Tag == tag })
}

// CloneInto deep-copies the subtree rooted at n, assigning fresh IDs from
// dst. The clone's Parent is nil.
func (n *Node) CloneInto(dst *Collection) *Node {
	cp := dst.NewNode(n.Tag, n.Content)
	cp.TagType = n.TagType
	cp.ContentType = n.ContentType
	for _, c := range n.Children {
		cp.AddChild(c.CloneInto(dst))
	}
	return cp
}

// CloneInto deep-copies the tree, assigning fresh IDs from dst.
func (t *Tree) CloneInto(dst *Collection) *Tree {
	return &Tree{Root: t.Root.CloneInto(dst)}
}

// Equal reports whether two trees are equal in the sense of Section 5.1.2 of
// the paper: there is an order- and edge-preserving isomorphism between the
// node sets under which tags, contents and types agree at corresponding
// nodes.
func Equal(a, b *Tree) bool {
	if a == nil || b == nil {
		return a == b
	}
	return nodeEqual(a.Root, b.Root)
}

func nodeEqual(a, b *Node) bool {
	if a.Tag != b.Tag || a.Content != b.Content ||
		a.TagType != b.TagType || a.ContentType != b.ContentType ||
		len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Canonical returns a canonical string encoding of the tree: equal trees (in
// the Equal sense) have identical encodings. Used by the set-theoretic
// algebra operators to deduplicate.
func (t *Tree) Canonical() string {
	var b strings.Builder
	canonNode(&b, t.Root)
	return b.String()
}

func canonNode(b *strings.Builder, n *Node) {
	fmt.Fprintf(b, "(%q:%q:%q:%q", n.Tag, n.TagType, n.Content, n.ContentType)
	for _, c := range n.Children {
		canonNode(b, c)
	}
	b.WriteByte(')')
}

// Terms returns the sorted set of distinct tags and non-empty contents
// appearing in the collection. This is the vocabulary the Ontology Maker
// builds hierarchies over.
func (c *Collection) Terms() []string {
	set := map[string]bool{}
	for _, t := range c.Trees {
		t.Walk(func(n *Node) bool {
			set[n.Tag] = true
			if n.Content != "" {
				set[n.Content] = true
			}
			return true
		})
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Tags returns the sorted set of distinct tags in the collection.
func (c *Collection) Tags() []string {
	set := map[string]bool{}
	for _, t := range c.Trees {
		t.Walk(func(n *Node) bool { set[n.Tag] = true; return true })
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
