package tree

import (
	"errors"
	"testing"
)

// failWriter fails after n bytes, exercising serialisation error paths.
type failWriter struct {
	remaining int
}

var errBoom = errors.New("boom")

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.remaining {
		n := w.remaining
		w.remaining = 0
		return n, errBoom
	}
	w.remaining -= len(p)
	return len(p), nil
}

func TestWriteXMLPropagatesErrors(t *testing.T) {
	c := NewCollection()
	tr, err := c.ParseXMLString(`<a attr="v"><b>hello</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	total := len(tr.XMLString())
	// Failing at every possible prefix length must surface the error, never
	// panic, and never report success.
	for budget := 0; budget < total; budget++ {
		if err := tr.WriteXML(&failWriter{remaining: budget}); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
	if err := tr.WriteXML(&failWriter{remaining: total}); err != nil {
		t.Fatalf("full budget should succeed: %v", err)
	}
}
