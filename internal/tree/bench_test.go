package tree

import (
	"fmt"
	"strings"
	"testing"
)

func benchDoc(papers int) string {
	var b strings.Builder
	b.WriteString("<dblp>")
	for i := 0; i < papers; i++ {
		fmt.Fprintf(&b, `<inproceedings key="p%d"><author>Author %d</author><title>Title number %d</title><year>%d</year></inproceedings>`,
			i, i, i, 1990+i%10)
	}
	b.WriteString("</dblp>")
	return b.String()
}

func BenchmarkParseXML(b *testing.B) {
	doc := benchDoc(500)
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewCollection()
		if _, err := c.ParseXMLString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteXML(b *testing.B) {
	c := NewCollection()
	t, err := c.ParseXMLString(benchDoc(500))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t.XMLString() == "" {
			b.Fatal("empty serialisation")
		}
	}
}

func BenchmarkCanonical(b *testing.B) {
	c := NewCollection()
	t, err := c.ParseXMLString(benchDoc(200))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if t.Canonical() == "" {
			b.Fatal("empty canonical form")
		}
	}
}

func BenchmarkWalk(b *testing.B) {
	c := NewCollection()
	t, err := c.ParseXMLString(benchDoc(500))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		n := 0
		t.Walk(func(*Node) bool { n++; return true })
		if n == 0 {
			b.Fatal("walk visited nothing")
		}
	}
}
