package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseXMLBasic(t *testing.T) {
	c := NewCollection()
	tr, err := c.ParseXMLString(`<dblp>
		<inproceedings key="x1">
			<author>Jeffrey D. Ullman</author>
			<title>Principles &amp; Practice</title>
		</inproceedings>
	</dblp>`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Tag != "dblp" {
		t.Errorf("root tag = %q", tr.Root.Tag)
	}
	inpro := tr.Root.Children[0]
	if inpro.Tag != "inproceedings" {
		t.Fatalf("child tag = %q", inpro.Tag)
	}
	if got := inpro.ChildContent("@key"); got != "x1" {
		t.Errorf("@key = %q, want x1", got)
	}
	if got := inpro.ChildContent("author"); got != "Jeffrey D. Ullman" {
		t.Errorf("author = %q", got)
	}
	if got := inpro.ChildContent("title"); got != "Principles & Practice" {
		t.Errorf("title = %q (entity not decoded?)", got)
	}
	if c.Size() != 1 {
		t.Errorf("collection holds %d trees, want 1", c.Size())
	}
}

func TestParseXMLMixedWhitespace(t *testing.T) {
	c := NewCollection()
	tr, err := c.ParseXMLString("<a>\n  hello\n  <b/>\n  world\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Content != "hello world" {
		t.Errorf("content = %q, want %q", tr.Root.Content, "hello world")
	}
}

func TestParseXMLErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></a>"},
		{"text only", "just text"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCollection()
			if _, err := c.ParseXMLString(tc.src); err == nil {
				t.Errorf("ParseXMLString(%q) should fail", tc.src)
			}
		})
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	src := `<dblp><inproceedings key="x1"><author>A &amp; B</author><title>T</title><empty/></inproceedings></dblp>`
	c := NewCollection()
	t1, err := c.ParseXMLString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := t1.XMLString()
	c2 := NewCollection()
	t2, err := c2.ParseXMLString(out)
	if err != nil {
		t.Fatalf("re-parsing serialised output: %v\n%s", err, out)
	}
	if !Equal(t1, t2) {
		t.Fatalf("round trip not equal:\nfirst:  %s\nsecond: %s", t1.XMLString(), t2.XMLString())
	}
}

func TestXMLNameSanitisation(t *testing.T) {
	c := NewCollection()
	root := c.NewNode("tax prod root!", "")
	root.AddChild(c.NewNode("1bad", "x"))
	tr := &Tree{Root: root}
	out := tr.XMLString()
	c2 := NewCollection()
	if _, err := c2.ParseXMLString(out); err != nil {
		t.Fatalf("sanitised output should parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "tax_prod_root_") {
		t.Errorf("expected sanitised tag in %q", out)
	}
}

func TestByteSize(t *testing.T) {
	c := NewCollection()
	if c.ByteSize() != 0 {
		t.Error("empty collection should have zero size")
	}
	if _, err := c.ParseXMLString("<a><b>hi</b></a>"); err != nil {
		t.Fatal(err)
	}
	if c.ByteSize() <= 0 {
		t.Error("ByteSize should be positive after adding a document")
	}
}

// randomTree builds a random tree for the round-trip property test.
func randomTree(c *Collection, rng *rand.Rand, depth int) *Node {
	tags := []string{"a", "b", "c", "article", "author"}
	contents := []string{"", "x", "hello world", "J. Ullman", "1999", "a<b&c>\"d\""}
	n := c.NewNode(tags[rng.Intn(len(tags))], contents[rng.Intn(len(contents))])
	if depth > 0 {
		for i := 0; i < rng.Intn(4); i++ {
			n.AddChild(randomTree(c, rng, depth-1))
		}
	}
	return n
}

func TestQuickXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCollection()
		t1 := &Tree{Root: randomTree(c, rng, 4)}
		out := t1.XMLString()
		c2 := NewCollection()
		t2, err := c2.ParseXMLString(out)
		if err != nil {
			t.Logf("seed %d: parse error %v in %q", seed, err, out)
			return false
		}
		if !Equal(t1, t2) {
			t.Logf("seed %d: round trip mismatch\n%s\nvs\n%s", seed, out, t2.XMLString())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicalEquality(t *testing.T) {
	// Canonical() agrees with Equal(): clones share canonical form;
	// perturbed trees differ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCollection()
		t1 := &Tree{Root: randomTree(c, rng, 3)}
		cp := t1.CloneInto(NewCollection())
		if t1.Canonical() != cp.Canonical() {
			return false
		}
		// Perturb one node's content.
		nodes := cp.Preorder()
		nodes[rng.Intn(len(nodes))].Content += "!"
		return t1.Canonical() != cp.Canonical() && !Equal(t1, cp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
