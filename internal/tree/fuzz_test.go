package tree

import "testing"

// FuzzParseXML checks the XML reader never panics, and that whatever it
// accepts serialises and re-parses to an equal tree.
func FuzzParseXML(f *testing.F) {
	for _, seed := range []string{
		`<a/>`,
		`<a>text</a>`,
		`<dblp><inproceedings key="p1"><author>J. Ullman</author></inproceedings></dblp>`,
		`<a>x<b/>y</a>`,
		`<a attr="v&quot;w"><b>&lt;tag&gt;</b></a>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c := NewCollection()
		t1, err := c.ParseXMLString(src)
		if err != nil {
			return
		}
		out := t1.XMLString()
		c2 := NewCollection()
		t2, err := c2.ParseXMLString(out)
		if err != nil {
			t.Fatalf("serialised form of accepted input does not parse: %v\ninput: %q\noutput: %q", err, src, out)
		}
		if !Equal(t1, t2) {
			t.Fatalf("round trip changed the tree:\ninput: %q\nfirst: %q\nsecond: %q", src, out, t2.XMLString())
		}
	})
}
