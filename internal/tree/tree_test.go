package tree

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) (*Collection, *Tree) {
	t.Helper()
	c := NewCollection()
	root := c.NewNode("inproceedings", "")
	a1 := c.NewNode("author", "Paolo Ciancarini")
	a2 := c.NewNode("author", "Robert Tolksdorf")
	title := c.NewNode("title", "Coordinating Multiagent Applications")
	year := c.NewNode("year", "1999")
	root.AddChild(a1)
	root.AddChild(a2)
	root.AddChild(title)
	root.AddChild(year)
	tr := &Tree{Root: root}
	c.Add(tr)
	return c, tr
}

func TestNodeBasics(t *testing.T) {
	_, tr := buildSample(t)
	root := tr.Root
	if root.IsLeaf() {
		t.Error("root should not be a leaf")
	}
	if !root.Children[0].IsLeaf() {
		t.Error("author should be a leaf")
	}
	if got := root.Children[0].Depth(); got != 1 {
		t.Errorf("Depth = %d, want 1", got)
	}
	if got := root.Depth(); got != 0 {
		t.Errorf("root Depth = %d, want 0", got)
	}
	if root.Children[2].Root() != root {
		t.Error("Root() did not return the tree root")
	}
	if !root.Children[1].IsDescendantOf(root) {
		t.Error("child should be descendant of root")
	}
	if root.IsDescendantOf(root) {
		t.Error("a node is not its own descendant")
	}
	if root.IsDescendantOf(root.Children[0]) {
		t.Error("root is not a descendant of its child")
	}
}

func TestChildLookup(t *testing.T) {
	_, tr := buildSample(t)
	if got := tr.Root.ChildContent("year"); got != "1999" {
		t.Errorf("ChildContent(year) = %q, want 1999", got)
	}
	if got := tr.Root.ChildContent("author"); got != "Paolo Ciancarini" {
		t.Errorf("ChildContent(author) = %q (want first author)", got)
	}
	if tr.Root.Child("missing") != nil {
		t.Error("Child(missing) should be nil")
	}
	if tr.Root.ChildContent("missing") != "" {
		t.Error("ChildContent(missing) should be empty")
	}
}

func TestPreorderAndWalk(t *testing.T) {
	_, tr := buildSample(t)
	nodes := tr.Preorder()
	if len(nodes) != 5 {
		t.Fatalf("Preorder returned %d nodes, want 5", len(nodes))
	}
	wantTags := []string{"inproceedings", "author", "author", "title", "year"}
	for i, n := range nodes {
		if n.Tag != wantTags[i] {
			t.Errorf("preorder[%d].Tag = %q, want %q", i, n.Tag, wantTags[i])
		}
	}
	// IDs are assigned in creation order here, which matches preorder.
	for i := 1; i < len(nodes); i++ {
		if nodes[i].ID <= nodes[i-1].ID {
			t.Errorf("IDs not increasing at %d", i)
		}
	}
	// Pruning: stop below the root.
	count := 0
	tr.Walk(func(n *Node) bool {
		count++
		return n.Tag != "inproceedings"
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1", count)
	}
}

func TestFind(t *testing.T) {
	_, tr := buildSample(t)
	authors := tr.FindTag("author")
	if len(authors) != 2 {
		t.Fatalf("FindTag(author) = %d nodes, want 2", len(authors))
	}
	old := tr.Find(func(n *Node) bool { return n.Content == "1999" })
	if len(old) != 1 || old[0].Tag != "year" {
		t.Fatalf("Find by content failed: %v", old)
	}
}

func TestNodeCount(t *testing.T) {
	c, tr := buildSample(t)
	if got := tr.NodeCount(); got != 5 {
		t.Errorf("tree NodeCount = %d, want 5", got)
	}
	if got := c.NodeCount(); got != 5 {
		t.Errorf("collection NodeCount = %d, want 5", got)
	}
	if c.Size() != 1 {
		t.Errorf("collection Size = %d, want 1", c.Size())
	}
}

func TestCloneInto(t *testing.T) {
	_, tr := buildSample(t)
	dst := NewCollection()
	cp := tr.CloneInto(dst)
	if !Equal(tr, cp) {
		t.Fatal("clone is not Equal to original")
	}
	// Fresh IDs, independent structure.
	if cp.Root == tr.Root {
		t.Fatal("clone shares root pointer")
	}
	cp.Root.Children[0].Content = "changed"
	if tr.Root.Children[0].Content == "changed" {
		t.Fatal("mutating clone affected original")
	}
	if cp.Root.Children[0].Parent != cp.Root {
		t.Fatal("clone parent pointers not wired")
	}
}

func TestEqual(t *testing.T) {
	c1, t1 := buildSample(t)
	_, t2 := buildSample(t)
	if !Equal(t1, t2) {
		t.Fatal("identically built trees should be Equal")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil trees are Equal")
	}
	if Equal(t1, nil) {
		t.Fatal("tree != nil")
	}
	// Content difference.
	t2.Root.Children[3].Content = "2000"
	if Equal(t1, t2) {
		t.Fatal("differing content should break equality")
	}
	// Order matters.
	_, t3 := buildSample(t)
	t3.Root.Children[0], t3.Root.Children[1] = t3.Root.Children[1], t3.Root.Children[0]
	if Equal(t1, t3) {
		t.Fatal("sibling order must matter")
	}
	// Type difference.
	_, t4 := buildSample(t)
	t4.Root.Children[3].ContentType = "int"
	if Equal(t1, t4) {
		t.Fatal("type difference should break equality")
	}
	// Extra child.
	_, t5 := buildSample(t)
	t5.Root.AddChild(c1.NewNode("pages", "1-10"))
	if Equal(t1, t5) {
		t.Fatal("extra child should break equality")
	}
}

func TestCanonical(t *testing.T) {
	_, t1 := buildSample(t)
	_, t2 := buildSample(t)
	if t1.Canonical() != t2.Canonical() {
		t.Fatal("equal trees must have equal canonical forms")
	}
	t2.Root.Children[0].Content = "Other"
	if t1.Canonical() == t2.Canonical() {
		t.Fatal("different trees must have different canonical forms")
	}
	// Canonical must be injective w.r.t. structure: (a(b))(c) vs (a(b(c))).
	c := NewCollection()
	x1 := c.NewNode("a", "")
	x1.AddChild(c.NewNode("b", ""))
	flat := &Tree{Root: x1}
	x2 := c.NewNode("a", "")
	b2 := c.NewNode("b", "")
	x2.AddChild(b2)
	nested := &Tree{Root: x2}
	b2.AddChild(c.NewNode("c", ""))
	x1Sib := c.NewNode("c", "")
	x1.AddChild(x1Sib)
	if flat.Canonical() == nested.Canonical() {
		t.Fatal("canonical form must distinguish nesting from siblings")
	}
}

func TestTermsAndTags(t *testing.T) {
	c, _ := buildSample(t)
	tags := c.Tags()
	want := []string{"author", "inproceedings", "title", "year"}
	if strings.Join(tags, ",") != strings.Join(want, ",") {
		t.Errorf("Tags = %v, want %v", tags, want)
	}
	terms := c.Terms()
	found := map[string]bool{}
	for _, term := range terms {
		found[term] = true
	}
	for _, want := range []string{"author", "1999", "Paolo Ciancarini"} {
		if !found[want] {
			t.Errorf("Terms missing %q", want)
		}
	}
}
