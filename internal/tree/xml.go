package tree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseXML reads one XML document from r and appends the resulting tree to
// the collection. Element names become tags; character data directly inside
// an element becomes that element's content (whitespace-trimmed). Attributes
// are represented as child nodes whose tag is "@"+name, matching how the
// paper treats every piece of data as a tree object.
func (c *Collection) ParseXML(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tree: parse xml: %w", err)
		}
		switch tk := tok.(type) {
		case xml.StartElement:
			n := c.NewNode(tk.Name.Local, "")
			for _, a := range tk.Attr {
				attr := c.NewNode("@"+a.Name.Local, a.Value)
				n.AddChild(attr)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("tree: multiple roots in document")
				}
				root = n
			} else {
				stack[len(stack)-1].AddChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("tree: unbalanced end element %q", tk.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(tk))
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			if top.Content == "" {
				top.Content = text
			} else {
				top.Content += " " + text
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("tree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("tree: unclosed element %q", stack[len(stack)-1].Tag)
	}
	t := &Tree{Root: root}
	c.Add(t)
	return t, nil
}

// ParseXMLString parses a document held in a string.
func (c *Collection) ParseXMLString(s string) (*Tree, error) {
	return c.ParseXML(strings.NewReader(s))
}

// WriteXML serialises the tree as XML to w. Attribute children ("@name") are
// emitted as attributes; other children as nested elements; Content as
// character data preceding the children.
func (t *Tree) WriteXML(w io.Writer) error {
	if err := writeNodeXML(w, t.Root, 0); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// XMLString returns the XML serialisation of the tree.
func (t *Tree) XMLString() string {
	var b strings.Builder
	if err := t.WriteXML(&b); err != nil {
		return ""
	}
	return b.String()
}

func writeNodeXML(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	var attrs strings.Builder
	var elems []*Node
	for _, c := range n.Children {
		if strings.HasPrefix(c.Tag, "@") {
			fmt.Fprintf(&attrs, ` %s="%s"`, xmlName(c.Tag[1:]), escapeAttr(c.Content))
		} else {
			elems = append(elems, c)
		}
	}
	if len(elems) == 0 && n.Content == "" {
		_, err := fmt.Fprintf(w, "%s<%s%s/>", indent, xmlName(n.Tag), attrs.String())
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s%s>", indent, xmlName(n.Tag), attrs.String()); err != nil {
		return err
	}
	if n.Content != "" {
		if _, err := io.WriteString(w, escapeXML(n.Content)); err != nil {
			return err
		}
	}
	if len(elems) > 0 {
		for _, c := range elems {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
			if err := writeNodeXML(w, c, depth+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "\n%s", indent); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", xmlName(n.Tag))
	return err
}

// xmlName maps synthetic tags (like the TAX product root) to valid XML names.
func xmlName(tag string) string {
	if tag == "" {
		return "node"
	}
	var b strings.Builder
	for i, r := range tag {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func escapeXML(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// escapeAttr escapes text for use inside a double-quoted XML attribute.
func escapeAttr(s string) string {
	return strings.ReplaceAll(escapeXML(s), `"`, "&quot;")
}

// ByteSize returns the size in bytes of the XML serialisation of every tree
// in the collection. The scalability experiments use this to report data
// sizes the way the paper does (file bytes).
func (c *Collection) ByteSize() int {
	n := 0
	for _, t := range c.Trees {
		n += len(t.XMLString())
	}
	return n
}
