package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// maxIngestLine bounds one NDJSON ingest line (JSON framing plus the XML
// payload). Documents above the collection's own size limit are rejected
// per-line by the store either way; this only caps the scanner buffer.
const maxIngestLine = 16 << 20

// maxReportedIngestErrors caps the per-line error detail echoed back in the
// response body; the full count is always in ErrorCount.
const maxReportedIngestErrors = 20

// IngestLine is one line of a POST /v1/docs NDJSON body. Put lines carry
// key+xml; delete lines carry key+delete:true. Seq, when present on a put,
// stores the document at that explicit global insertion sequence
// (Collection.PutXMLAt) — tossrouter assigns cluster-wide positions this
// way so documents scattered across nodes merge back in one total order.
type IngestLine struct {
	Key    string  `json:"key"`
	XML    string  `json:"xml,omitempty"`
	Seq    *uint64 `json:"seq,omitempty"`
	Delete bool    `json:"delete,omitempty"`
}

// IngestError reports one rejected line (1-based line number).
type IngestError struct {
	Line int    `json:"line"`
	Key  string `json:"key,omitempty"`
	Err  string `json:"error"`
}

// IngestResponse summarises a bulk ingest: processed counts, the
// collection's generation after the batch (the version queries observe), and
// up to maxReportedIngestErrors per-line failures.
type IngestResponse struct {
	Instance   string        `json:"instance"`
	Ingested   int           `json:"ingested"`
	Deleted    int           `json:"deleted"`
	ErrorCount int           `json:"error_count"`
	Errors     []IngestError `json:"errors,omitempty"`
	Generation uint64        `json:"generation"`
	ElapsedMS  float64       `json:"elapsed_ms"`
}

// handleDocs is POST /v1/docs: streaming NDJSON bulk ingestion. Each line is
// one document put (or delete); lines are applied in order as they arrive,
// so ingestion overlaps with the client still sending. Admission control
// covers the whole batch with a single slot, the same way a query holds its
// slot for its full execution: bulk writes compete with queries rather than
// starving them. Per-line failures do not abort the batch — they are counted,
// reported in the summary, and the rest of the stream proceeds.
func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	name := r.URL.Query().Get("instance")
	if name == "" && len(s.sys.Instances) > 0 {
		name = s.sys.Instances[0].Name
	}
	in := s.sys.Instance(name)
	if in == nil {
		http.Error(w, fmt.Sprintf("unknown instance %q", name), http.StatusNotFound)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.limiter.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			s.mRejected.Inc()
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, fmt.Sprintf("server saturated: %d executing, %d queued", s.limiter.InFlight(), s.limiter.Queued()), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	resp := IngestResponse{Instance: in.Name}
	lineErr := func(line int, key string, err error) {
		resp.ErrorCount++
		s.mIngestErrors.Inc()
		if len(resp.Errors) < maxReportedIngestErrors {
			resp.Errors = append(resp.Errors, IngestError{Line: line, Key: key, Err: err.Error()})
		}
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxIngestLine)
	lineNo := 0
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			http.Error(w, "ingest deadline exceeded", http.StatusGatewayTimeout)
			return
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var doc IngestLine
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			lineErr(lineNo, "", fmt.Errorf("bad json: %w", err))
			continue
		}
		if doc.Key == "" {
			lineErr(lineNo, "", errors.New("missing key"))
			continue
		}
		switch {
		case doc.Delete:
			if doc.XML != "" {
				lineErr(lineNo, doc.Key, errors.New("delete line must not carry xml"))
				continue
			}
			if !in.Col.Delete(doc.Key) {
				lineErr(lineNo, doc.Key, errors.New("key not found"))
				continue
			}
			resp.Deleted++
		case doc.XML == "":
			lineErr(lineNo, doc.Key, errors.New("missing xml"))
		default:
			var err error
			if doc.Seq != nil {
				_, err = in.Col.PutXMLAt(doc.Key, strings.NewReader(doc.XML), *doc.Seq)
			} else {
				_, err = in.Col.PutXML(doc.Key, strings.NewReader(doc.XML))
			}
			if err != nil {
				lineErr(lineNo, doc.Key, err)
				continue
			}
			resp.Ingested++
			s.mIngested.Inc()
		}
	}
	if err := sc.Err(); err != nil {
		// The body broke mid-stream (disconnect, oversized line). Everything
		// up to the break is already applied and journaled; report what
		// happened with the partial summary so the client can resume.
		lineErr(lineNo+1, "", fmt.Errorf("reading body: %w", err))
	}

	resp.Generation = in.Col.Generation()
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("ingest instance=%s ingested=%d deleted=%d errors=%d gen=%d in %s",
			resp.Instance, resp.Ingested, resp.Deleted, resp.ErrorCount, resp.Generation, time.Since(start).Round(time.Millisecond))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
