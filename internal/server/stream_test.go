package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tree"
)

// postStream posts a query with ?stream=1 and splits the NDJSON body into
// its lines.
func postStream(t *testing.T, url string, req QueryRequest) (*http.Response, []string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	raw := strings.TrimRight(buf.String(), "\n")
	if raw == "" {
		return resp, nil
	}
	return resp, strings.Split(raw, "\n")
}

func TestStreamNDJSONMatchesMaterializedCount(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}}

	_, body := postQuery(t, ts, req)
	ref := decodeResponse(t, body)
	if ref.Count == 0 {
		t.Fatal("reference query returned no answers")
	}

	resp, lines := postStream(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	if len(lines) != ref.Count+1 {
		t.Fatalf("stream produced %d lines, want %d answers + 1 trailer", len(lines), ref.Count)
	}
	for i, line := range lines[:ref.Count] {
		var a Answer
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if a.XML != ref.Answers[i].XML {
			t.Fatalf("line %d XML differs from materialized answer %d", i, i)
		}
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[ref.Count]), &trailer); err != nil {
		t.Fatalf("trailer line is not JSON: %v\n%s", err, lines[ref.Count])
	}
	if trailer.OntologyVersion != ref.OntologyVersion {
		t.Fatalf("trailer version %d, materialized response version %d", trailer.OntologyVersion, ref.OntologyVersion)
	}
}

func TestStreamBodyFieldAndJoin(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := QueryRequest{Instance: "dblp", Right: "sigmod", Pattern: joinPattern, Stream: true}

	_, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Right: "sigmod", Pattern: joinPattern})
	ref := decodeResponse(t, body)

	// The stream flag in the body (no query param) selects NDJSON too.
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			lines++
		}
	}
	if resp.StatusCode != http.StatusOK || lines != ref.Count+1 {
		t.Fatalf("streamed join: status %d, %d lines, want 200 with %d answers + 1 trailer", resp.StatusCode, lines, ref.Count)
	}
}

func TestStreamEmptyResultIsOKWithZeroLines(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, lines := postStream(t, ts.URL, QueryRequest{
		Instance: "dblp",
		Pattern:  `#1 :: #1.tag = "nonexistent_tag"`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("empty stream Content-Type %q", ct)
	}
	if len(lines) != 1 {
		t.Fatalf("empty stream produced %d lines, want just the trailer", len(lines))
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[0]), &trailer); err != nil || trailer.OntologyVersion == 0 {
		t.Fatalf("empty stream's only line is not a version trailer: %v\n%s", err, lines[0])
	}
}

func TestStreamRejectsRankedAnalyzeAlgebra(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []QueryRequest{
		{Instance: "dblp", Pattern: selectPattern, Ranked: true},
		{Instance: "dblp", Pattern: selectPattern, Analyze: true},
		{Expr: `select("dblp", ` + "`#1 :: #1.tag = \"inproceedings\"`" + `)`},
		{Instance: "dblp", Pattern: selectPattern, Format: "xml"},
	}
	for i, req := range cases {
		resp, _ := postStream(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func TestStreamBypassesResultCache(t *testing.T) {
	srv, ts := testServer(t, Config{})
	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}}

	// Populate the cache with the materialized form, then stream the same
	// query twice: neither streamed run may consult the cache.
	postQuery(t, ts, req)
	hits := srv.Cache().Hits()
	postStream(t, ts.URL, req)
	postStream(t, ts.URL, req)
	if got := srv.Cache().Hits(); got != hits {
		t.Fatalf("streamed queries hit the result cache (%d -> %d hits)", hits, got)
	}
}

func TestStreamMetricsAndStatz(t *testing.T) {
	srv, ts := testServer(t, Config{})
	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, Limit: 1}
	resp, lines := postStream(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK || len(lines) != 2 {
		t.Fatalf("limit-1 stream: status %d, %d lines, want 1 answer + 1 trailer", resp.StatusCode, len(lines))
	}

	if srv.hFirstResult.Count() == 0 {
		t.Error("first-result histogram recorded no observations")
	}
	if srv.mStreamed.Value() != 1 {
		t.Errorf("streamed counter = %d, want 1", srv.mStreamed.Value())
	}
	if srv.mDocsScanned.Value() == 0 {
		t.Error("docs-scanned counter stayed at zero")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	metrics := buf.String()
	for _, want := range []string{
		"toss_query_first_result_seconds_count",
		"toss_query_docs_scanned_total",
		"tossd_streamed_queries_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz struct {
		Server struct {
			StreamedQueries  uint64 `json:"streamed_queries"`
			DocsScanned      uint64 `json:"docs_scanned"`
			FirstResultCount uint64 `json:"first_result_count"`
		} `json:"server"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Server.StreamedQueries != 1 || statz.Server.FirstResultCount == 0 || statz.Server.DocsScanned == 0 {
		t.Errorf("/statz server section: %+v", statz.Server)
	}
}

// failAfterStream passes through the first n documents, then fails: the
// injected mid-stream error a live shard cursor could hit.
type failAfterStream struct {
	inner core.DocStream
	after int
	n     int
	err   error
}

func (f *failAfterStream) Next(ctx context.Context) (*tree.Tree, error) {
	if f.n >= f.after {
		return nil, f.err
	}
	f.n++
	return f.inner.Next(ctx)
}

func (f *failAfterStream) Close() { f.inner.Close() }

// TestStreamAbortEmitsErrorSentinel: a mid-stream failure after the first
// line must terminate the NDJSON body with a {"error":"..."} sentinel line,
// so clients can tell a truncated stream from a complete one (the 200 is
// already on the wire by then).
func TestStreamAbortEmitsErrorSentinel(t *testing.T) {
	srv, ts := testServer(t, Config{})
	srv.testHookStream = func(ds core.DocStream) core.DocStream {
		return &failAfterStream{inner: ds, after: 1, err: errors.New("injected cursor failure")}
	}

	resp, lines := postStream(t, ts.URL, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 answer + 1 sentinel:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var a Answer
	if err := json.Unmarshal([]byte(lines[0]), &a); err != nil || a.XML == "" {
		t.Fatalf("first line is not an answer: %v\n%s", err, lines[0])
	}
	var sentinel struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sentinel); err != nil {
		t.Fatalf("last line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if sentinel.Error != "injected cursor failure" {
		t.Fatalf("sentinel error %q, want the injected failure", sentinel.Error)
	}
}

// TestStreamSuccessHasNoSentinel guards the converse: complete streams end
// without an error line.
func TestStreamSuccessHasNoSentinel(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, lines := postStream(t, ts.URL, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}})
	if resp.StatusCode != http.StatusOK || len(lines) == 0 {
		t.Fatalf("stream status %d, %d lines", resp.StatusCode, len(lines))
	}
	for i, line := range lines {
		if strings.Contains(line, `"error"`) {
			t.Fatalf("line %d of a successful stream carries an error member: %s", i, line)
		}
	}
}
