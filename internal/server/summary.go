package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// maxSummaryTags bounds the per-collection tag digest shipped by
// /v1/stats-summary: the router's planner-lite only needs the heavy hitters
// to order fan-out, and a bounded digest keeps the endpoint cheap no matter
// how wide the schema is. Tags are ranked by document count.
const maxSummaryTags = 128

// StatsSummary is the GET /v1/stats-summary body: a compact digest of every
// collection's statistics, shipped to routing tiers instead of the full
// Stats() sketches (value histograms never leave the node). tossrouter polls
// it to seed its global sequence counter (NextSeq), skip nodes that hold
// nothing for a collection (Docs == 0), and order fan-out by estimated
// contribution (Tags).
type StatsSummary struct {
	Collections map[string]CollectionSummary `json:"collections"`
}

// CollectionSummary digests one collection.
type CollectionSummary struct {
	Docs       int    `json:"docs"`
	Nodes      int    `json:"nodes"`
	Generation uint64 `json:"generation"`
	NextSeq    uint64 `json:"next_seq"`
	// Tags holds per-tag document/node counts for the maxSummaryTags most
	// document-frequent tags; TagsTruncated reports that the digest dropped
	// some. Estimates derived from Tags order work, never skip it: ontology
	// rewriting can expand a query's tags beyond what the digest names.
	Tags          map[string]TagSummary `json:"tags,omitempty"`
	TagsTruncated bool                  `json:"tags_truncated,omitempty"`
}

// TagSummary is the per-tag slice of the digest.
type TagSummary struct {
	Docs  int `json:"docs"`
	Nodes int `json:"nodes"`
}

func (s *Server) handleStatsSummary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	out := StatsSummary{Collections: map[string]CollectionSummary{}}
	for _, in := range s.sys.Instances {
		st := in.Col.Stats() // generation-cached; cheap between mutations
		cs := CollectionSummary{
			Docs:       st.Docs,
			Nodes:      st.Nodes,
			Generation: st.Generation,
			NextSeq:    in.Col.NextSeq(),
		}
		if len(st.Tags) > 0 {
			names := make([]string, 0, len(st.Tags))
			for tag := range st.Tags {
				names = append(names, tag)
			}
			sort.Slice(names, func(i, j int) bool {
				a, b := st.Tags[names[i]], st.Tags[names[j]]
				if a.Docs != b.Docs {
					return a.Docs > b.Docs
				}
				return names[i] < names[j]
			})
			if len(names) > maxSummaryTags {
				names = names[:maxSummaryTags]
				cs.TagsTruncated = true
			}
			cs.Tags = make(map[string]TagSummary, len(names))
			for _, tag := range names {
				ts := st.Tags[tag]
				cs.Tags[tag] = TagSummary{Docs: ts.Docs, Nodes: ts.Nodes}
			}
		}
		out.Collections[in.Name] = cs
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleReadyz is the readiness probe: 200 only when the server can usefully
// take traffic. Distinct from /healthz (liveness): a node that is loading
// seeds, recovering its WAL, or draining for shutdown is alive but not
// ready, and balancers must route around it while /healthz still answers ok.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.notReady.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
	default:
		fmt.Fprintf(w, "ready instances=%d\n", len(s.sys.Instances))
	}
}
