package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/similarity"
	"repro/internal/tree"
)

const testDBLP = `<dblp>
  <inproceedings key="d1">
    <author>Jeffrey D. Ullman</author>
    <title>Relational Query Optimization</title>
    <year>1997</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="d2">
    <author>J. Ullman</author>
    <title>Index Structures for Databases</title>
    <year>1999</year>
    <booktitle>VLDB</booktitle>
  </inproceedings>
  <inproceedings key="d3">
    <author>Elisa Bertino</author>
    <title>Securing XML Documents</title>
    <year>2000</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>`

const testSIGMOD = `<ProceedingsPage>
  <articles>
    <article key="s1">
      <title>Securing XML Documents.</title>
      <author>E. Bertino</author>
      <conference>International Conference on Management of Data</conference>
      <confYear>2000</confYear>
    </article>
  </articles>
</ProceedingsPage>`

const selectPattern = `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Jeffrey D. Ullman"`

const joinPattern = `#1 pc #2, #1 pc #3, #2 ad #4, #3 ad #5 :: ` +
	`#1.tag = "tax_prod_root" & #2.tag = "dblp" & #3.tag = "ProceedingsPage" & ` +
	`#4.tag = "title" & #5.tag = "title" & #4.content ~ #5.content`

func testSystem(t *testing.T) *core.System {
	t.Helper()
	s := core.NewSystem()
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dblp.Col.PutXML("d", strings.NewReader(testDBLP)); err != nil {
		t.Fatal(err)
	}
	sig, err := s.AddInstance("sigmod")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sig.Col.PutXML("s", strings.NewReader(testSIGMOD)); err != nil {
		t.Fatal(err)
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	return s
}

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(testSystem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	resp, body, err := tryPostQuery(ts, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// tryPostQuery is postQuery without t.Fatal, safe to call from goroutines.
func tryPostQuery(ts *httptest.Server, req QueryRequest) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes(), nil
}

func decodeResponse(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding response %s: %v", body, err)
	}
	return qr
}

func TestSelectRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if qr.Op != "select" || qr.Count == 0 || len(qr.Answers) != qr.Count {
		t.Fatalf("bad response: op=%q count=%d answers=%d", qr.Op, qr.Count, len(qr.Answers))
	}
	// The ~ literal matches both spellings of the author via the SEO.
	all := ""
	for _, a := range qr.Answers {
		all += a.XML
	}
	if !strings.Contains(all, "Jeffrey D. Ullman") || !strings.Contains(all, "J. Ullman") {
		t.Errorf("similarity answers incomplete:\n%s", all)
	}
	if qr.Cached {
		t.Error("first query must not be served from cache")
	}
}

func TestSelectXMLFormat(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, Format: "xml"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/xml") {
		t.Errorf("Content-Type = %q", ct)
	}
	s := string(body)
	if !strings.Contains(s, `<answers op="select"`) || !strings.Contains(s, "<answer>") {
		t.Errorf("bad XML envelope:\n%s", s)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Right: "sigmod", Pattern: joinPattern})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if qr.Op != "join" || qr.Count == 0 {
		t.Fatalf("join returned op=%q count=%d", qr.Op, qr.Count)
	}
	if !strings.Contains(qr.Answers[0].XML, "Securing XML Documents") {
		t.Errorf("join witness missing the matching title:\n%s", qr.Answers[0].XML)
	}
}

func TestAlgebraRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	expr := `select[#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"; 1](dblp)`
	resp, body := postQuery(t, ts, QueryRequest{Expr: expr})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if qr.Op != "algebra" || qr.Count == 0 {
		t.Fatalf("algebra returned op=%q count=%d", qr.Op, qr.Count)
	}
}

func TestRankedScores(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, Ranked: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if qr.Op != "ranked" || qr.Count == 0 {
		t.Fatalf("ranked returned op=%q count=%d", qr.Op, qr.Count)
	}
	prev := -1.0
	for i, a := range qr.Answers {
		if a.Score == nil {
			t.Fatalf("answer %d missing score", i)
		}
		if *a.Score < prev {
			t.Errorf("scores not ascending: %g after %g", *a.Score, prev)
		}
		prev = *a.Score
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"neither pattern nor expr", QueryRequest{}, http.StatusBadRequest},
		{"both pattern and expr", QueryRequest{Pattern: selectPattern, Expr: "dblp"}, http.StatusBadRequest},
		{"bad pattern", QueryRequest{Pattern: ":::"}, http.StatusBadRequest},
		{"unknown instance", QueryRequest{Instance: "ghost", Pattern: selectPattern}, http.StatusNotFound},
		{"unknown measure", QueryRequest{Pattern: selectPattern, Measure: "nope"}, http.StatusBadRequest},
		{"bad format", QueryRequest{Pattern: selectPattern, Format: "yaml"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postQuery(t, ts, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestSaturationReturns429: with one execution slot and no queue, a second
// concurrent query must be rejected immediately with 429, not pile up.
func TestSaturationReturns429(t *testing.T) {
	srv, ts := testServer(t, Config{MaxInFlight: 1, MaxQueue: -1, CacheSize: -1})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	srv.testHookAdmitted = func(*http.Request) {
		if calls.Add(1) == 1 {
			close(admitted)
			<-release
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body, err := tryPostQuery(ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
		if err != nil {
			t.Error(err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked query finished with %d: %s", resp.StatusCode, body)
		}
	}()
	<-admitted // first query holds the only slot

	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	close(release)
	wg.Wait()
	if got := srv.Limiter().InFlight(); got != 0 {
		t.Errorf("in-flight after drain = %d", got)
	}
}

// TestDeadlineReturns504Promptly: a query whose deadline expires must come
// back as 504 without waiting for the work it would have done.
func TestDeadlineReturns504Promptly(t *testing.T) {
	srv, ts := testServer(t, Config{CacheSize: -1})
	srv.testHookAdmitted = func(*http.Request) {
		time.Sleep(80 * time.Millisecond) // outlive the 10ms deadline below
	}
	start := time.Now()
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, TimeoutMS: 10})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline response took %v", elapsed)
	}
}

// TestQueuedRequestHonoursDeadline: a query stuck in the admission queue past
// its deadline must give up with 504 instead of waiting for a slot forever.
func TestQueuedRequestHonoursDeadline(t *testing.T) {
	srv, ts := testServer(t, Config{MaxInFlight: 1, MaxQueue: 1, CacheSize: -1})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	srv.testHookAdmitted = func(*http.Request) {
		if calls.Add(1) == 1 {
			close(admitted)
			<-release
		}
	}
	defer close(release)

	go tryPostQuery(ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
	<-admitted

	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, TimeoutMS: 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline query answered %d, want 504 (%s)", resp.StatusCode, body)
	}
	if srv.Limiter().Queued() != 0 {
		t.Errorf("queue depth after timeout = %d", srv.Limiter().Queued())
	}
}

// TestCacheHitAndInvalidation: the second identical query is served from the
// cache; a collection mutation makes the next one miss again.
func TestCacheHitAndInvalidation(t *testing.T) {
	srv, ts := testServer(t, Config{})
	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}}

	_, body := postQuery(t, ts, req)
	first := decodeResponse(t, body)
	if first.Cached {
		t.Fatal("cold query reported cached")
	}

	_, body = postQuery(t, ts, req)
	warm := decodeResponse(t, body)
	if !warm.Cached {
		t.Fatal("repeat query not served from cache")
	}
	if warm.Count != first.Count {
		t.Fatalf("cached count %d != fresh count %d", warm.Count, first.Count)
	}
	if srv.Cache().Hits() == 0 {
		t.Error("cache hit counter not incremented")
	}

	// Mutate the collection: the generation counter bumps, so the same
	// query text now builds a different cache key.
	col := srv.sys.Instance("dblp").Col
	doc, err := tree.NewCollection().ParseXMLString(
		`<dblp><inproceedings key="d4"><author>Jeff Ullman</author><title>New Paper</title></inproceedings></dblp>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.PutTree("d4", doc); err != nil {
		t.Fatal(err)
	}

	_, body = postQuery(t, ts, req)
	after := decodeResponse(t, body)
	if after.Cached {
		t.Fatal("query after mutation still served from stale cache entry")
	}
}

// TestMeasureEpsOverride: per-query measure/eps overrides are served from a
// cached SEO variant, and distinct overrides get distinct cache entries.
func TestMeasureEpsOverride(t *testing.T) {
	_, ts := testServer(t, Config{})
	eps := 0.0
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, Eps: &eps})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eps override status %d: %s", resp.StatusCode, body)
	}
	strict := decodeResponse(t, body)
	resp, body = postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default status %d: %s", resp.StatusCode, body)
	}
	loose := decodeResponse(t, body)
	// eps=0 keeps only exact-name matches; the default eps also pulls in the
	// abbreviated spelling, so it must see at least as many answers.
	if strict.Count > loose.Count {
		t.Errorf("eps=0 returned %d answers, default eps %d", strict.Count, loose.Count)
	}
	if strict.Cached || loose.Cached {
		t.Error("distinct (measure,eps) keys must not share cache entries")
	}
}

func TestLimitTruncatesAnswers(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{
		Instance: "dblp",
		Pattern:  `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`,
		Limit:    1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if qr.Count != 1 || len(qr.Answers) != 1 {
		t.Fatalf("limit=1 returned %d answers", qr.Count)
	}
}

func TestAnalyzeReport(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, Analyze: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeResponse(t, body)
	if !strings.Contains(qr.Analyze, "EXPLAIN ANALYZE") {
		t.Errorf("analyze report missing:\n%s", qr.Analyze)
	}
	if qr.Cached {
		t.Error("analyze runs must bypass the cache")
	}
}

func TestEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern}) // warm counters

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatalf("/statz not JSON: %v", err)
	}
	resp.Body.Close()
	for _, key := range []string{"uptime_seconds", "system", "server", "collections", "ops"} {
		if _, ok := statz[key]; !ok {
			t.Errorf("/statz missing %q", key)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"tossd_requests_total", "tossd_cache_hits_total", "tossd_cache_misses_total",
		"tossd_in_flight", "tossd_queue_depth", "tossd_request_seconds_bucket",
		`xmldb_collection_docs{collection="dblp"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestPanicRecovery: a handler panic becomes a 500, not a dead connection,
// and is counted.
func TestPanicRecovery(t *testing.T) {
	srv, ts := testServer(t, Config{})
	var calls atomic.Int64
	srv.testHookAdmitted = func(*http.Request) {
		if calls.Add(1) == 1 {
			panic("boom")
		}
	}
	resp, _ := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	if srv.mPanics.Value() != 1 {
		t.Errorf("panic counter = %v, want 1", srv.mPanics.Value())
	}
	// The slot must have been released despite the panic.
	resp, body := postQuery(t, ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server wedged after panic: %d (%s)", resp.StatusCode, body)
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 4, MaxQueue: 16})
	patterns := []string{
		selectPattern,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`,
		`#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "title"`,
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body, err := tryPostQuery(ts, QueryRequest{Instance: "dblp", Pattern: patterns[i%len(patterns)]})
			if err != nil {
				t.Errorf("concurrent query %d: %v", i, err)
				return
			}
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("concurrent query %d: status %d (%s)", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
}

func TestLimiterUnit(t *testing.T) {
	ctx := context.Background()
	l := NewLimiter(2, 1)
	r1, err := l.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l.InFlight() != 2 {
		t.Fatalf("in-flight = %d", l.InFlight())
	}
	// Third caller queues; fourth is rejected.
	done := make(chan error, 1)
	go func() {
		r3, err := l.Acquire(ctx)
		if err == nil {
			r3()
		}
		done <- err
	}()
	waitFor(t, func() bool { return l.Queued() == 1 })
	if _, err := l.Acquire(ctx); err != ErrSaturated {
		t.Fatalf("overflow Acquire err = %v, want ErrSaturated", err)
	}
	r1()
	if err := <-done; err != nil {
		t.Fatalf("queued Acquire err = %v", err)
	}
	r2()
	waitFor(t, func() bool { return l.InFlight() == 0 && l.Queued() == 0 })
}

func TestCacheUnit(t *testing.T) {
	c := NewCache(2)
	a, b, d := &cachedResult{}, &cachedResult{}, &cachedResult{}
	c.Put("a", a)
	c.Put("b", b)
	if got, ok := c.Get("a"); !ok || got != a {
		t.Fatal("miss on live entry")
	}
	c.Put("d", d) // evicts b (a was just touched)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU kept the stale entry")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("LRU evicted the recently used entry")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d", c.Evictions())
	}

	off := NewCache(-1)
	off.Put("x", a)
	if _, ok := off.Get("x"); ok {
		t.Error("disabled cache returned a hit")
	}
	if off.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
