package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/similarity"
)

// shardedTestServer is testServer with the system's collections split into
// the given number of hash shards.
func shardedTestServer(t *testing.T, shards int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := core.NewSystem()
	s.DB.SetDefaultShards(shards)
	dblp, err := s.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	// One document per paper key so the shards actually spread.
	for _, doc := range strings.SplitAfter(testDBLP, "</inproceedings>") {
		doc = strings.TrimSpace(strings.TrimPrefix(strings.TrimSuffix(doc, "</dblp>"), "<dblp>"))
		if doc == "" {
			continue
		}
		key := doc[strings.Index(doc, `key="`)+5:]
		key = key[:strings.Index(key, `"`)]
		if _, err := dblp.Col.PutXML(key, strings.NewReader("<dblp>"+doc+"</dblp>")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	srv, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postTo(t *testing.T, ts *httptest.Server, path string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestV1QueryLegacyAliasEquivalence pins the versioned endpoint contract:
// POST /v1/query and the legacy alias /query accept the same JSON and
// return the same answers.
func TestV1QueryLegacyAliasEquivalence(t *testing.T) {
	_, ts := testServer(t, Config{CacheSize: -1})
	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}}

	respV1, bodyV1 := postTo(t, ts, "/v1/query", req)
	respLegacy, bodyLegacy := postTo(t, ts, "/query", req)
	if respV1.StatusCode != http.StatusOK || respLegacy.StatusCode != http.StatusOK {
		t.Fatalf("status v1=%d legacy=%d", respV1.StatusCode, respLegacy.StatusCode)
	}
	v1 := decodeResponse(t, bodyV1)
	legacy := decodeResponse(t, bodyLegacy)
	if v1.Op != legacy.Op || v1.Count != legacy.Count || len(v1.Answers) != len(legacy.Answers) {
		t.Fatalf("v1 op=%q count=%d answers=%d vs legacy op=%q count=%d answers=%d",
			v1.Op, v1.Count, len(v1.Answers), legacy.Op, legacy.Count, len(legacy.Answers))
	}
	for i := range v1.Answers {
		if v1.Answers[i].XML != legacy.Answers[i].XML {
			t.Fatalf("answer %d differs between /v1/query and /query", i)
		}
	}
}

// TestNoPlannerRequestField: the no_planner flag bypasses the cost-based
// planner without changing the answer set, and is part of the cache key so
// the two modes never alias.
func TestNoPlannerRequestField(t *testing.T) {
	_, ts := testServer(t, Config{})
	planned, bodyP := postTo(t, ts, "/v1/query", QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}})
	heuristic, bodyH := postTo(t, ts, "/v1/query", QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}, NoPlanner: true})
	if planned.StatusCode != http.StatusOK || heuristic.StatusCode != http.StatusOK {
		t.Fatalf("status planned=%d heuristic=%d", planned.StatusCode, heuristic.StatusCode)
	}
	p, h := decodeResponse(t, bodyP), decodeResponse(t, bodyH)
	if p.Count != h.Count {
		t.Fatalf("planned %d answers vs no_planner %d", p.Count, h.Count)
	}
	if h.Cached {
		t.Error("no_planner run must not hit the planned run's cache entry")
	}
}

// TestShardObservability: a sharded system exports per-shard metrics with
// {collection, shard} labels and a per-shard breakdown in /statz, and
// queries return the same answers as the unsharded server.
func TestShardObservability(t *testing.T) {
	_, sharded := shardedTestServer(t, 4, Config{})
	_, plain := testServer(t, Config{})

	req := QueryRequest{Instance: "dblp", Pattern: selectPattern, SL: []int{1}}
	_, shardedBody := postTo(t, sharded, "/v1/query", req)
	_, plainBody := postTo(t, plain, "/v1/query", req)
	sq, pq := decodeResponse(t, shardedBody), decodeResponse(t, plainBody)
	if sq.Count != pq.Count {
		t.Fatalf("sharded server %d answers vs unsharded %d", sq.Count, pq.Count)
	}

	resp, err := http.Get(sharded.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		`toss_shard_docs{collection="dblp",shard="0"}`,
		`toss_shard_bytes{collection="dblp",shard="3"}`,
		`toss_shard_generation{collection="dblp",shard="1"}`,
		`toss_shard_queries_total{collection="dblp",shard="2"}`,
		`toss_shard_docs_walked_total{collection="dblp",shard="0"}`,
		`toss_shard_nodes_tested_total{collection="dblp",shard="0"}`,
		`toss_shard_nodes_matched_total{collection="dblp",shard="0"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	resp, err = http.Get(sharded.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statz struct {
		Collections map[string]struct {
			ShardCount int `json:"shard_count"`
			Shards     []struct {
				Shard int `json:"shard"`
				Docs  int `json:"docs"`
			} `json:"shards"`
		} `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatalf("/statz not JSON: %v", err)
	}
	resp.Body.Close()
	c, ok := statz.Collections["dblp"]
	if !ok {
		t.Fatal("/statz missing dblp collection")
	}
	if c.ShardCount != 4 || len(c.Shards) != 4 {
		t.Errorf("dblp shard_count=%d shards=%d, want 4/4", c.ShardCount, len(c.Shards))
	}
	docs := 0
	for _, si := range c.Shards {
		docs += si.Docs
	}
	if docs != 3 {
		t.Errorf("per-shard docs sum to %d, want 3", docs)
	}
}
