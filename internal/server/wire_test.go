package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/similarity"
)

// seqTestServer builds a server over one collection of n separate documents,
// so answers span distinct insertion sequences.
func seqTestServer(t *testing.T, n int) *Server {
	t.Helper()
	sys := core.NewSystem()
	in, err := sys.AddInstance("col")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		xml := fmt.Sprintf("<inproceedings><author>Author %d</author><title>Paper %d</title></inproceedings>", i, i)
		if _, err := in.Col.PutXML(fmt.Sprintf("doc-%d", i), strings.NewReader(xml)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const allAuthorsPattern = `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`

func postQueryRaw(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestQuerySeqsMaterialized(t *testing.T) {
	s := seqTestServer(t, 4)
	w := postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q,"seqs":true}`, allAuthorsPattern))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 4 {
		t.Fatalf("count %d, want 4", resp.Count)
	}
	for i, a := range resp.Answers {
		if a.Seq == nil {
			t.Fatalf("answer %d has no seq", i)
		}
		if *a.Seq != uint64(i) {
			t.Fatalf("answer %d seq %d, want %d", i, *a.Seq, i)
		}
	}
	// Without seqs the field stays off the wire.
	w = postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q}`, allAuthorsPattern))
	if bytes.Contains(w.Body.Bytes(), []byte(`"seq"`)) {
		t.Fatalf("seq leaked into a request without seqs: %s", w.Body)
	}
}

func TestQuerySeqsStreamed(t *testing.T) {
	s := seqTestServer(t, 4)
	w := postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q,"stream":true,"seqs":true}`, allAuthorsPattern))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 4 answers + 1 trailer: %s", len(lines), w.Body)
	}
	if !strings.Contains(lines[4], `"ontology_version"`) {
		t.Fatalf("last line is not a version trailer: %s", lines[4])
	}
	lines = lines[:4]
	for i, line := range lines {
		var a struct {
			XML string  `json:"xml"`
			Seq *uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if a.Seq == nil || *a.Seq != uint64(i) {
			t.Fatalf("line %d seq %v, want %d", i, a.Seq, i)
		}
		if a.XML == "" {
			t.Fatalf("line %d has no xml", i)
		}
	}
}

func TestQuerySeqsRanked(t *testing.T) {
	s := seqTestServer(t, 3)
	pat := `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Author 1"`
	w := postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q,"ranked":true,"seqs":true}`, pat))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count == 0 {
		t.Fatal("ranked query returned nothing")
	}
	for i, a := range resp.Answers {
		if a.Seq == nil {
			t.Fatalf("ranked answer %d has no seq", i)
		}
		if a.Score == nil {
			t.Fatalf("ranked answer %d has no score", i)
		}
	}
}

func TestQuerySeqsRejections(t *testing.T) {
	s := seqTestServer(t, 2)
	for _, body := range []string{
		`{"expr":"col","seqs":true}`,
		fmt.Sprintf(`{"pattern":%q,"seqs":true,"format":"xml"}`, allAuthorsPattern),
	} {
		if w := postQueryRaw(t, s.Handler(), body); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, w.Code)
		}
	}
}

func TestReadyzLifecycle(t *testing.T) {
	s := seqTestServer(t, 1)
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("fresh server readyz %d: %s", w.Code, w.Body)
	}
	s.SetReady(false)
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "not ready") {
		t.Fatalf("unready readyz %d: %s", w.Code, w.Body)
	}
	s.SetReady(true)
	s.StartDraining()
	w := get("/readyz")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining readyz %d: %s", w.Code, w.Body)
	}
	// Liveness keeps answering 200 through the drain: the process is up even
	// though it must leave rotation.
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz during drain %d", w.Code)
	}
	// Queries still execute during the drain window.
	if w := postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q}`, allAuthorsPattern)); w.Code != http.StatusOK {
		t.Fatalf("query during drain %d: %s", w.Code, w.Body)
	}
}

func TestStatsSummary(t *testing.T) {
	s := seqTestServer(t, 5)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/stats-summary", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var sum StatsSummary
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	cs, ok := sum.Collections["col"]
	if !ok {
		t.Fatalf("no col summary: %s", w.Body)
	}
	if cs.Docs != 5 || cs.NextSeq != 5 {
		t.Fatalf("docs=%d next_seq=%d, want 5/5", cs.Docs, cs.NextSeq)
	}
	ts, ok := cs.Tags["author"]
	if !ok || ts.Docs != 5 || ts.Nodes != 5 {
		t.Fatalf("author tag summary %+v ok=%t", ts, ok)
	}
}

func TestIngestExplicitSeq(t *testing.T) {
	s := seqTestServer(t, 2) // doc-0 at seq 0, doc-1 at seq 1
	body := `{"key":"late","xml":"<inproceedings><author>Late</author></inproceedings>","seq":10}` + "\n" +
		`{"key":"between","xml":"<inproceedings><author>Between</author></inproceedings>","seq":5}` + "\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/docs?instance=col", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body)
	}
	var resp IngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingested != 2 || resp.ErrorCount != 0 {
		t.Fatalf("ingest response %+v", resp)
	}
	qw := postQueryRaw(t, s.Handler(), fmt.Sprintf(`{"pattern":%q,"seqs":true}`, allAuthorsPattern))
	var qresp QueryResponse
	if err := json.Unmarshal(qw.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for _, a := range qresp.Answers {
		seqs = append(seqs, *a.Seq)
	}
	if fmt.Sprint(seqs) != "[0 1 5 10]" {
		t.Fatalf("answer seqs %v, want [0 1 5 10]", seqs)
	}
}
