package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/similarity"
	"repro/internal/xmldb"
)

func postDocs(t *testing.T, ts *httptest.Server, instance, body string) (*http.Response, IngestResponse) {
	t.Helper()
	url := ts.URL + "/v1/docs"
	if instance != "" {
		url += "?instance=" + instance
	}
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatalf("decoding ingest response: %v", err)
		}
	}
	return resp, ir
}

func ingestLine(key, xml string) string {
	b, _ := json.Marshal(IngestLine{Key: key, XML: xml})
	return string(b) + "\n"
}

// TestIngest1kDocsAndQueryReflects is the acceptance criterion: a 1k-doc
// NDJSON stream lands in one request, and a query sees the new documents
// without a restart — the generation embedded in the cache key invalidates
// the pre-ingest cached answer.
func TestIngest1kDocsAndQueryReflects(t *testing.T) {
	_, ts := testServer(t, Config{})
	query := QueryRequest{Instance: "dblp", Pattern: `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Grace Hopper"`}

	// Before ingestion: no such author, and the empty answer gets cached.
	_, body := postQuery(t, ts, query)
	if ref := decodeResponse(t, body); ref.Count != 0 {
		t.Fatalf("pre-ingest count %d, want 0", ref.Count)
	}

	var b strings.Builder
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("bulk-%04d", i)
		author := "Ada Lovelace"
		if i%4 == 0 {
			author = "Grace Hopper"
		}
		b.WriteString(ingestLine(key, fmt.Sprintf(
			`<inproceedings key=%q><author>%s</author><title>Paper %d</title><year>2026</year></inproceedings>`,
			key, author, i)))
	}
	resp, ir := postDocs(t, ts, "dblp", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ir.Ingested != 1000 || ir.ErrorCount != 0 {
		t.Fatalf("ingested %d (errors %d), want 1000 ingested, 0 errors", ir.Ingested, ir.ErrorCount)
	}
	if ir.Generation == 0 {
		t.Fatal("ingest response reports generation 0")
	}

	// Same query, no restart: the generation moved, so this is a cache miss
	// that sees the ingested docs.
	_, body = postQuery(t, ts, query)
	if got := decodeResponse(t, body); got.Count != 250 {
		t.Fatalf("post-ingest count %d, want 250", got.Count)
	}
}

// TestIngestPerLineErrors: malformed lines are reported with their line
// numbers and do not abort the rest of the batch.
func TestIngestPerLineErrors(t *testing.T) {
	srv, ts := testServer(t, Config{})
	body := strings.Join([]string{
		`{not json`,
		`{"xml": "<a/>"}`,                  // missing key
		`{"key": "nokey-xml"}`,             // missing xml
		`{"key": "ghost", "delete": true}`, // delete of an unknown key
		ingestLine("ok-1", `<doc><v>1</v></doc>`)[:len(ingestLine("ok-1", `<doc><v>1</v></doc>`))-1],
		`{"key": "bad-xml", "xml": "<open"}`, // store rejects unparsable XML
	}, "\n")
	resp, ir := postDocs(t, ts, "dblp", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ir.Ingested != 1 {
		t.Fatalf("ingested %d, want 1", ir.Ingested)
	}
	if ir.ErrorCount != 5 || len(ir.Errors) != 5 {
		t.Fatalf("error count %d (%d reported), want 5: %+v", ir.ErrorCount, len(ir.Errors), ir.Errors)
	}
	wantLines := []int{1, 2, 3, 4, 6}
	for i, e := range ir.Errors {
		if e.Line != wantLines[i] {
			t.Errorf("error %d on line %d, want %d (%+v)", i, e.Line, wantLines[i], e)
		}
	}
	if got := srv.mIngestErrors.Value(); got != 5 {
		t.Errorf("tossd_ingest_errors_total = %d, want 5", got)
	}
}

// TestIngestDeleteLine: delete lines remove documents and report in the
// Deleted count.
func TestIngestDeleteLine(t *testing.T) {
	srv, ts := testServer(t, Config{})
	before := srv.sys.Instance("sigmod").Col.DocCount()
	resp, ir := postDocs(t, ts, "sigmod", `{"key": "s", "delete": true}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ir.Deleted != 1 || ir.ErrorCount != 0 {
		t.Fatalf("deleted %d (errors %+v), want 1", ir.Deleted, ir.Errors)
	}
	if got := srv.sys.Instance("sigmod").Col.DocCount(); got != before-1 {
		t.Fatalf("doc count %d, want %d", got, before-1)
	}
}

func TestIngestUnknownInstance404(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, _ := postDocs(t, ts, "nope", ingestLine("a", "<a/>"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestIngestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/docs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// TestIngestSaturated429: bulk ingestion competes for the same admission
// slots as queries; a saturated server rejects it with 429 and the derived
// Retry-After.
func TestIngestSaturated429(t *testing.T) {
	srv, ts := testServer(t, Config{MaxInFlight: 1, MaxQueue: -1, CacheSize: -1, DefaultTimeout: 7 * time.Second})
	admitted := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	srv.testHookAdmitted = func(*http.Request) {
		if calls.Add(1) == 1 {
			close(admitted)
			<-release
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tryPostQuery(ts, QueryRequest{Instance: "dblp", Pattern: selectPattern})
	}()
	<-admitted

	resp, _ := postDocs(t, ts, "dblp", ingestLine("x", "<x/>"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want %q (ceil of the 7s configured max wait)", got, "7")
	}
	close(release)
	wg.Wait()
}

// TestRetryAfterDerivedFromConfiguredWait covers the 429 hint derivation
// directly: it follows the configured default timeout (the limiter's max
// queue wait), not a hardcoded constant.
func TestRetryAfterDerivedFromConfiguredWait(t *testing.T) {
	for _, tc := range []struct {
		timeout time.Duration
		want    string
	}{
		{0, "30"}, // default config: 30s
		{7 * time.Second, "7"},
		{1500 * time.Millisecond, "2"},
		{100 * time.Millisecond, "1"}, // floor at 1: zero means "never retry" to some clients
	} {
		srv, err := New(testSystem(t), Config{DefaultTimeout: tc.timeout})
		if err != nil {
			t.Fatal(err)
		}
		if got := srv.retryAfter(); got != tc.want {
			t.Errorf("retryAfter with timeout %v = %q, want %q", tc.timeout, got, tc.want)
		}
	}
}

// TestIngestJournaledAndWALMetricsExported: with a WAL attached, ingested
// documents are journaled and the toss_wal_* series appear on /metrics and
// the wal block in /statz.
func TestIngestJournaledAndWALMetricsExported(t *testing.T) {
	sys := core.NewSystem()
	in, err := sys.AddInstance("dblp")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Col.OpenWAL(t.TempDir(), xmldb.WALOptions{Sync: xmldb.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Col.PutXML("d", strings.NewReader(testDBLP)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Col.CloseWAL()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, ir := postDocs(t, ts, "dblp", ingestLine("w1", `<doc><v>1</v></doc>`)+ingestLine("w2", `<doc><v>2</v></doc>`))
	if resp.StatusCode != http.StatusOK || ir.Ingested != 2 {
		t.Fatalf("ingest status %d, ingested %d", resp.StatusCode, ir.Ingested)
	}
	st := in.Col.WALStats()
	if !st.Enabled || st.Appends != 3 { // seed put + 2 ingested
		t.Fatalf("wal stats %+v, want 3 appends", st)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		`toss_wal_appends_total{collection="dblp"} 3`,
		"# TYPE toss_wal_bytes gauge",
		"# TYPE toss_wal_fsync_seconds summary",
		"toss_wal_fsync_seconds_count",
		"tossd_ingested_docs_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(sresp.Body)
	sresp.Body.Close()
	var statz struct {
		Collections map[string]struct {
			WAL *struct {
				Appends uint64 `json:"appends"`
			} `json:"wal"`
		} `json:"collections"`
	}
	if err := json.Unmarshal(buf.Bytes(), &statz); err != nil {
		t.Fatal(err)
	}
	if w := statz.Collections["dblp"].WAL; w == nil || w.Appends != 3 {
		t.Fatalf("/statz wal block = %+v, want 3 appends", statz.Collections["dblp"].WAL)
	}
}
