package server

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/tree"
	"repro/internal/xmldb"
)

// maxRequestBody bounds the /query request body.
const maxRequestBody = 1 << 20

// QueryRequest is the POST /query body. Exactly one of Pattern or Expr must
// be set: Pattern runs a selection against Instance (or a condition join
// when Right is set), Expr runs a full algebra expression.
type QueryRequest struct {
	Instance string `json:"instance,omitempty"` // selection target / join left side (default: first instance)
	Right    string `json:"right,omitempty"`    // join right side; presence selects the join path
	Pattern  string `json:"pattern,omitempty"`  // tossql pattern syntax
	Expr     string `json:"expr,omitempty"`     // tossql algebra-expression syntax

	SL         []int    `json:"sl,omitempty"`          // pattern labels whose subtrees are kept
	Limit      int      `json:"limit,omitempty"`       // answer cap; selections stop scanning early
	Stream     bool     `json:"stream,omitempty"`      // NDJSON response, one answer per line (also ?stream=1)
	Seqs       bool     `json:"seqs,omitempty"`        // attach each answer's global insertion sequence (selections; routers merge on it)
	Ranked     bool     `json:"ranked,omitempty"`      // order selection answers by similarity score
	Analyze    bool     `json:"analyze,omitempty"`     // attach the EXPLAIN ANALYZE report (bypasses the cache)
	NoPlanner  bool     `json:"no_planner,omitempty"`  // disable cost-based planning for this query
	NoAdaptive bool     `json:"no_adaptive,omitempty"` // keep the planner but disable feedback corrections and mid-stream re-optimization
	Measure    string   `json:"measure,omitempty"`     // similarity measure override (SEO variant built once, reused)
	Eps        *float64 `json:"eps,omitempty"`         // epsilon override

	TimeoutMS int    `json:"timeout_ms,omitempty"` // per-request deadline (default/max from server config)
	Format    string `json:"format,omitempty"`     // "json" (default) or "xml"
}

// QueryResponse is the JSON answer shape; the XML format carries the same
// fields as attributes/elements of <answers>.
type QueryResponse struct {
	Op        string  `json:"op"`
	Instance  string  `json:"instance,omitempty"`
	Count     int     `json:"count"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// OntologyVersion is the ontology snapshot the query executed against
	// (see /v1/ontology); answers computed before a live mutation carry the
	// version they were computed on.
	OntologyVersion uint64   `json:"ontology_version"`
	Answers         []Answer `json:"answers"`
	Analyze         string   `json:"analyze,omitempty"`
}

// Answer is one witness tree, serialised as XML, with its similarity score
// for ranked selections. Seq, present when the request set seqs, is the
// global insertion sequence of the source document the answer came from —
// the key tossrouter's cross-node merge orders on (docs/CLUSTER.md).
type Answer struct {
	XML   string   `json:"xml"`
	Score *float64 `json:"score,omitempty"`
	Seq   *uint64  `json:"seq,omitempty"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// retryAfter derives the Retry-After hint sent with 429 responses from the
// limiter's configured maximum wait: a queued request holds its place for at
// most the default per-request timeout, so within that horizon the queue is
// guaranteed to have turned over and admission is worth retrying.
func (s *Server) retryAfter() string {
	secs := int(math.Ceil(s.cfg.DefaultTimeout.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// requestContext derives a request-scoped context carrying the default
// per-request deadline (used by handlers without a timeout_ms field).
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap := s.sys.Ontology()
	fmt.Fprintf(w, "ok instances=%d seo_nodes=%d ontology_version=%d\n",
		len(s.sys.Instances), snap.SEO.NodeCount(), snap.Version)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// collectionStatz is the /statz entry for one collection.
type collectionStatz struct {
	Docs       int                    `json:"docs"`
	Bytes      int                    `json:"bytes"`
	Generation uint64                 `json:"generation"`
	Counters   xmldb.Counters         `json:"counters"`
	ShardCount int                    `json:"shard_count"`
	Shards     []xmldb.ShardInfo      `json:"shards,omitempty"`
	WAL        *xmldb.WALStats        `json:"wal,omitempty"`
	SimIndex   xmldb.SimIndexCounters `json:"simindex"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	cols := map[string]collectionStatz{}
	for _, in := range s.sys.Instances {
		cs := collectionStatz{
			Docs:       in.Col.DocCount(),
			Bytes:      in.Col.ByteSize(),
			Generation: in.Col.Generation(),
			Counters:   in.Col.Counters(),
			ShardCount: in.Col.ShardCount(),
			SimIndex:   in.Col.SimIndexCounters(),
		}
		// Per-shard breakdowns only say something new on sharded collections.
		if cs.ShardCount > 1 {
			cs.Shards = in.Col.ShardInfos()
		}
		if ws := in.Col.WALStats(); ws.Enabled {
			cs.WAL = &ws
		}
		cols[in.Name] = cs
	}
	body := map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"system":         s.sys.Stats(),
		"server": map[string]any{
			"requests":                 s.mRequests.Value(),
			"errors":                   s.mErrors.Value(),
			"rejected":                 s.mRejected.Value(),
			"timeouts":                 s.mTimeouts.Value(),
			"panics":                   s.mPanics.Value(),
			"in_flight":                s.limiter.InFlight(),
			"queue_depth":              s.limiter.Queued(),
			"cache_entries":            s.cache.Len(),
			"cache_hits":               s.cache.Hits(),
			"cache_misses":             s.cache.Misses(),
			"cache_evictions":          s.cache.Evictions(),
			"streamed_queries":         s.mStreamed.Value(),
			"docs_scanned":             s.mDocsScanned.Value(),
			"first_result_count":       s.hFirstResult.Count(),
			"first_result_seconds_sum": s.hFirstResult.Sum(),
			"ingested_docs":            s.mIngested.Value(),
			"ingest_errors":            s.mIngestErrors.Value(),
		},
		"collections": cols,
		"ops":         s.aggregates(),
	}
	oc := s.sys.OntologyCounters()
	body["ontology"] = map[string]any{
		"version":              s.sys.OntologyVersion(),
		"mutations":            oc.Mutations,
		"recluster_seconds":    oc.ReclusterSeconds,
		"reclustered_nodes":    oc.ReclusteredNodes,
		"last_component_nodes": oc.LastComponent,
		"last_dirty_nodes":     oc.LastDirty,
	}
	if s.sys.Planner != nil {
		body["planner"] = s.sys.Planner.Counters()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		req.Stream = true
	}
	if err := s.serveQuery(w, r, &req); err != nil {
		var he *httpError
		if errors.As(err, &he) {
			if he.status == http.StatusTooManyRequests {
				s.mRejected.Inc()
				w.Header().Set("Retry-After", s.retryAfter())
			}
			http.Error(w, he.msg, he.status)
			return
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.mTimeouts.Inc()
			http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			http.Error(w, "request cancelled", 499) // nginx convention: client closed request
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, req *QueryRequest) error {
	start := time.Now()

	// Validate and parse before spending an admission slot.
	if (req.Pattern == "") == (req.Expr == "") {
		return httpErrorf(http.StatusBadRequest, "exactly one of pattern or expr is required")
	}
	format := strings.ToLower(req.Format)
	switch format {
	case "":
		format = "json"
		if strings.Contains(r.Header.Get("Accept"), "application/xml") {
			format = "xml"
		}
	case "json", "xml":
	default:
		return httpErrorf(http.StatusBadRequest, "unknown format %q (want json or xml)", req.Format)
	}
	sys, err := s.systemFor(req.Measure, req.Eps)
	if err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}

	var pat *pattern.Tree
	var expr core.Expr
	op := "select"
	if req.Pattern != "" {
		if pat, err = pattern.Parse(req.Pattern); err != nil {
			return httpErrorf(http.StatusBadRequest, "parsing pattern: %v", err)
		}
		if req.Right != "" {
			op = "join"
		} else if req.Ranked {
			op = "ranked"
		}
	} else {
		if expr, err = core.ParseExpr(req.Expr); err != nil {
			return httpErrorf(http.StatusBadRequest, "parsing expr: %v", err)
		}
		op = "algebra"
	}
	if req.Analyze && (op == "ranked" || op == "algebra") {
		return httpErrorf(http.StatusBadRequest, "analyze applies to selections and joins only")
	}
	if req.Ranked && op != "ranked" {
		return httpErrorf(http.StatusBadRequest, "ranked applies to plain selections only")
	}
	if req.Stream {
		if op != "select" && op != "join" {
			return httpErrorf(http.StatusBadRequest, "stream applies to selections and joins only")
		}
		if req.Analyze {
			return httpErrorf(http.StatusBadRequest, "analyze does not stream")
		}
		if format != "json" {
			return httpErrorf(http.StatusBadRequest, "stream responses are NDJSON; format must be json")
		}
	}
	if req.Seqs {
		// Sequence positions exist for answers derived from one source
		// document each: selections and ranked selections. Join and algebra
		// answers combine documents and have no single position.
		if op != "select" && op != "ranked" {
			return httpErrorf(http.StatusBadRequest, "seqs applies to selections only")
		}
		if req.Analyze {
			return httpErrorf(http.StatusBadRequest, "seqs does not apply to analyze")
		}
		if format != "json" {
			return httpErrorf(http.StatusBadRequest, "seqs requires format json")
		}
	}

	instance := req.Instance
	if instance == "" && len(sys.Instances) > 0 {
		instance = sys.Instances[0].Name
	}
	involved, err := s.involvedInstances(sys, op, instance, req.Right, expr)
	if err != nil {
		return err
	}

	// Per-request deadline: requested, capped; default otherwise. The
	// context also ends if the client disconnects.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Cache lookup happens before admission: hits cost no slot. Streamed
	// responses bypass the cache entirely: answers go out as they are
	// produced and are never materialised server-side.
	key := s.cacheKey(sys, op, req, pat, expr, involved)
	if !req.Analyze && !req.Stream {
		if res, ok := s.cache.Get(key); ok {
			s.aggregate(op, true, time.Since(start), nil)
			return s.render(w, format, op, instance, req, res, true, time.Since(start), "", sys.OntologyVersion())
		}
	}

	release, err := s.limiter.Acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			return httpErrorf(http.StatusTooManyRequests, "server saturated: %d executing, %d queued", s.limiter.InFlight(), s.limiter.Queued())
		}
		return err
	}
	defer release()
	if s.testHookAdmitted != nil {
		s.testHookAdmitted(r)
	}

	if req.Stream {
		return s.executeStream(ctx, w, sys, op, instance, req, pat, start)
	}

	res, st, analyze, err := s.execute(ctx, sys, op, instance, req, pat, expr)
	if err != nil {
		return err
	}
	if !req.Analyze {
		s.cache.Put(key, res)
	}
	elapsed := time.Since(start)
	s.hFirstResult.Observe(elapsed.Seconds())
	s.observeScanned(st)
	s.aggregate(op, false, elapsed, st)
	return s.render(w, format, op, instance, req, res, false, elapsed, analyze, sys.OntologyVersion())
}

// observeScanned feeds the docs-scanned-before-limit counter: on the
// stream-scan path that is the number of documents pulled from shard
// cursors; on materialized paths the documents actually evaluated stand in
// (the pre-filter already pruned the rest).
func (s *Server) observeScanned(st *core.ExecStats) {
	if st == nil {
		return
	}
	if st.ScanMode == core.ScanModeStream {
		s.mDocsScanned.Add(uint64(st.DocsScanned))
	} else {
		s.mDocsScanned.Add(uint64(st.DocsEvaluated))
	}
}

// streamError is the sentinel NDJSON line that terminates an aborted
// stream: the status code is already on the wire when a mid-stream error
// hits, so the error travels in-band as the final line. Successful streams
// never emit it — a client seeing a line with an "error" member knows the
// stream is truncated, not complete.
type streamError struct {
	Error string `json:"error"`
}

// streamTrailer is the final NDJSON line of every successful stream: it
// carries the ontology snapshot version the answers were computed on (the
// streamed counterpart of QueryResponse.OntologyVersion). A stream opened on
// version N drains with a version-N trailer even if a mutation installed N+1
// mid-stream — the query pinned its snapshot at entry. Clients distinguish
// the three line shapes by member: "xml" is an answer, "error" marks a
// truncated stream, "ontology_version" marks a complete one.
type streamTrailer struct {
	OntologyVersion uint64 `json:"ontology_version"`
}

// executeStream answers a streamed query as NDJSON: one JSON object per
// answer, flushed as produced, so the client sees the first answer at
// first-result latency rather than total query latency. A successful stream
// has the non-streamed response's count field worth of answer lines plus one
// streamTrailer line (an empty result is just the trailer). Errors after the
// first line append a final {"error":"..."} sentinel instead of the trailer
// so clients can distinguish truncation from completion.
func (s *Server) executeStream(ctx context.Context, w http.ResponseWriter, sys *core.System, op, instance string, req *QueryRequest, pat *pattern.Tree, start time.Time) error {
	qreq := core.QueryRequest{
		Pattern:    pat,
		Instance:   instance,
		Adorn:      req.SL,
		Limit:      req.Limit,
		Trace:      true,
		NoPlanner:  req.NoPlanner,
		NoAdaptive: req.NoAdaptive,
		Stream:     true,
	}
	if op == "join" {
		qreq.Right = req.Right
	}
	res, err := sys.Query(ctx, qreq)
	if err != nil {
		return err
	}
	stream := res.Stream
	if s.testHookStream != nil {
		stream = s.testHookStream(stream)
	}
	defer stream.Close()
	s.mStreamed.Inc()

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	lines := 0
	for {
		doc, err := stream.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			if lines == 0 {
				return err // nothing sent yet: the caller can still set a status
			}
			if s.cfg.Logger != nil {
				s.cfg.Logger.Printf("stream aborted after %d line(s): %v", lines, err)
			}
			enc.Encode(streamError{Error: err.Error()})
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}
		if lines == 0 {
			s.hFirstResult.Observe(time.Since(start).Seconds())
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		line := Answer{XML: doc.XMLString()}
		if req.Seqs {
			seq := doc.SrcSeq
			line.Seq = &seq
		}
		if err := enc.Encode(line); err != nil {
			return nil // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
		lines++
	}
	if lines == 0 {
		// An empty result still needs headers and a first-result sample: the
		// "first result" is learning there are none.
		s.hFirstResult.Observe(time.Since(start).Seconds())
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	if err := enc.Encode(streamTrailer{OntologyVersion: res.OntologyVersion}); err == nil && flusher != nil {
		flusher.Flush()
	}
	stream.Close() // finalize trace counters before reading them
	s.observeScanned(res.Stats)
	s.aggregate(op, false, time.Since(start), res.Stats)
	return nil
}

// involvedInstances resolves which collections a query touches (for cache
// keying) and 404s unknown names. Algebra expressions conservatively touch
// every instance.
func (s *Server) involvedInstances(sys *core.System, op, instance, right string, expr core.Expr) ([]*core.Instance, error) {
	if op == "algebra" {
		return sys.Instances, nil
	}
	names := []string{instance}
	if op == "join" {
		names = append(names, right)
	}
	var out []*core.Instance
	for _, n := range names {
		in := sys.Instance(n)
		if in == nil {
			return nil, httpErrorf(http.StatusNotFound, "unknown instance %q", n)
		}
		out = append(out, in)
	}
	return out, nil
}

// cacheKey builds the result-cache key: operation, normalized pattern or
// expression (both re-rendered from the parse tree, so textual variants of
// the same query share an entry), options, measure/eps, the pinned ontology
// snapshot version, and the name plus mutation generation of every involved
// collection. Embedding generations makes every data write invalidate all
// affected entries by construction; embedding the ontology version does the
// same for live ontology mutations.
func (s *Server) cacheKey(sys *core.System, op string, req *QueryRequest, pat *pattern.Tree, expr core.Expr, involved []*core.Instance) string {
	var b strings.Builder
	b.WriteString(op)
	b.WriteByte('\x00')
	if pat != nil {
		b.WriteString(pat.String())
	} else {
		b.WriteString(expr.String())
	}
	fmt.Fprintf(&b, "\x00sl=%v\x00limit=%d\x00ranked=%t\x00noplanner=%t\x00noadaptive=%t\x00seqs=%t", req.SL, req.Limit, req.Ranked, req.NoPlanner, req.NoAdaptive, req.Seqs)
	fmt.Fprintf(&b, "\x00measure=%s\x00eps=%g\x00ov=%d", sys.Measure.Name(), sys.Epsilon, sys.OntologyVersion())
	names := make([]string, 0, len(involved))
	gens := map[string]uint64{}
	for _, in := range involved {
		names = append(names, in.Name)
		gens[in.Name] = in.Col.Generation()
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "\x00%s@%d", n, gens[n])
	}
	return b.String()
}

// execute runs the query under ctx and materialises the answers.
func (s *Server) execute(ctx context.Context, sys *core.System, op, instance string, req *QueryRequest, pat *pattern.Tree, expr core.Expr) (*cachedResult, *core.ExecStats, string, error) {
	var (
		answers []*tree.Tree
		st      *core.ExecStats
		analyze string
		err     error
	)
	switch op {
	case "select", "join", "ranked":
		qreq := core.QueryRequest{
			Pattern:    pat,
			Instance:   instance,
			Adorn:      req.SL,
			Limit:      req.Limit,
			Ranked:     op == "ranked",
			Trace:      true,
			Analyze:    req.Analyze,
			NoPlanner:  req.NoPlanner,
			NoAdaptive: req.NoAdaptive,
		}
		if op == "join" {
			qreq.Right = req.Right
		}
		var res *core.QueryResult
		res, err = sys.Query(ctx, qreq)
		if err != nil {
			break
		}
		if op == "ranked" {
			out := &cachedResult{
				XMLs:   make([]string, len(res.Ranked)),
				Scores: make([]float64, len(res.Ranked)),
			}
			if req.Seqs {
				out.Seqs = make([]uint64, len(res.Ranked))
			}
			for i, ra := range res.Ranked {
				out.XMLs[i] = ra.Tree.XMLString()
				out.Scores[i] = ra.Score
				if out.Seqs != nil {
					out.Seqs[i] = ra.Tree.SrcSeq
				}
			}
			return out, nil, "", nil
		}
		answers, st = res.Answers, res.Stats
		if req.Analyze {
			analyze = (&core.AnalyzedPlan{Plan: res.Plan, Stats: res.Stats}).String()
		}
	case "algebra":
		answers, err = expr.EvalContext(ctx, sys)
		if err == nil && req.Limit > 0 && len(answers) > req.Limit {
			answers = answers[:req.Limit]
		}
	default:
		err = httpErrorf(http.StatusBadRequest, "unknown op %q", op)
	}
	if err != nil {
		return nil, nil, "", err
	}
	res := &cachedResult{XMLs: make([]string, len(answers))}
	if req.Seqs {
		res.Seqs = make([]uint64, len(answers))
	}
	for i, t := range answers {
		res.XMLs[i] = t.XMLString()
		if res.Seqs != nil {
			res.Seqs[i] = t.SrcSeq
		}
	}
	return res, st, analyze, nil
}

func (s *Server) render(w http.ResponseWriter, format, op, instance string, req *QueryRequest, res *cachedResult, cached bool, elapsed time.Duration, analyze string, ontologyVersion uint64) error {
	if op == "join" {
		instance = instance + "⨝" + req.Right
	}
	switch format {
	case "xml":
		return renderXML(w, op, instance, res, cached, elapsed, analyze, ontologyVersion)
	default:
		resp := QueryResponse{
			Op:              op,
			Instance:        instance,
			Count:           len(res.XMLs),
			Cached:          cached,
			ElapsedMS:       float64(elapsed.Microseconds()) / 1e3,
			OntologyVersion: ontologyVersion,
			Answers:         make([]Answer, len(res.XMLs)),
			Analyze:         analyze,
		}
		for i, x := range res.XMLs {
			resp.Answers[i] = Answer{XML: x}
			if res.Scores != nil {
				score := res.Scores[i]
				resp.Answers[i].Score = &score
			}
			if res.Seqs != nil {
				seq := res.Seqs[i]
				resp.Answers[i].Seq = &seq
			}
		}
		w.Header().Set("Content-Type", "application/json")
		return json.NewEncoder(w).Encode(resp)
	}
}

func renderXML(w http.ResponseWriter, op, instance string, res *cachedResult, cached bool, elapsed time.Duration, analyze string, ontologyVersion uint64) error {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<answers op=%q instance=%q count=\"%d\" cached=\"%t\" elapsedMs=\"%.3f\" ontologyVersion=\"%d\">\n",
		op, instance, len(res.XMLs), cached, float64(elapsed.Microseconds())/1e3, ontologyVersion)
	for i, x := range res.XMLs {
		if res.Scores != nil {
			fmt.Fprintf(&b, "<answer score=\"%g\">\n", res.Scores[i])
		} else {
			b.WriteString("<answer>\n")
		}
		b.WriteString(strings.TrimRight(x, "\n"))
		b.WriteString("\n</answer>\n")
	}
	if analyze != "" {
		b.WriteString("<analyze>")
		xml.EscapeText(&stringsWriter{&b}, []byte(analyze))
		b.WriteString("</analyze>\n")
	}
	b.WriteString("</answers>\n")
	_, err := w.Write([]byte(b.String()))
	return err
}

// stringsWriter adapts strings.Builder to io.Writer for xml.EscapeText.
type stringsWriter struct{ b *strings.Builder }

func (w *stringsWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
