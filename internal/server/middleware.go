package server

import (
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code a handler writes so the metrics
// middleware can classify the response after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer when it supports it, so NDJSON
// streaming pushes each answer line through the metrics middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMetrics counts every request, observes its latency, and classifies 5xx
// responses as errors; with a configured logger it also emits one access-log
// line per request.
func (s *Server) withMetrics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.mRequests.Inc()
		s.hLatency.Observe(elapsed.Seconds())
		if rec.status >= 500 {
			s.mErrors.Inc()
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, elapsed)
		}
	})
}

// withRecovery converts a handler panic into a 500 instead of killing the
// connection (and, pre-Go1.8-style servers, the process). The stack goes to
// the configured logger so the failure stays diagnosable.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.mPanics.Inc()
				if s.cfg.Logger != nil {
					s.cfg.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				}
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}
