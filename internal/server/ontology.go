package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/ontology"
)

// ontologyInfo is the GET /v1/ontology body: the live snapshot's shape plus
// the cumulative mutation counters. Version is the number queries echo — a
// client that saw ontology_version N in a response can poll here to learn
// whether the ontology has moved on.
type ontologyInfo struct {
	Version        uint64  `json:"version"`
	Measure        string  `json:"measure"`
	Epsilon        float64 `json:"epsilon"`
	IsaTerms       int     `json:"isa_terms"`
	IsaEdges       int     `json:"isa_edges"`
	PartTerms      int     `json:"part_terms"`
	PartEdges      int     `json:"part_edges"`
	SEONodes       int     `json:"seo_nodes"`
	MergedClusters int     `json:"merged_clusters"`
	DroppedEdges   int     `json:"dropped_edges"`

	Mutations        uint64  `json:"mutations"`
	ReclusterSeconds float64 `json:"recluster_seconds"`
	ReclusteredNodes uint64  `json:"reclustered_nodes"`
	LastComponent    uint64  `json:"last_component_nodes"`
	LastDirty        uint64  `json:"last_dirty_nodes"`
}

// ontologyMutation is the POST /v1/ontology body. Op selects the mutation:
//
//	add-edge      child ≤ parent enters the relation's fused hierarchy
//	retract-edge  the direct edge child ≤ parent is removed (Hasse edges only)
//	constraint    an interoperation constraint applied live: kind leq adds
//	              x ≤ y, eq merges the fused nodes of x and y, neq verifies
//	              the terms sit in distinct fused nodes (400 if violated)
//
// Relation defaults to isa; part-of mutations update the fused part-of DAG
// without touching the SEO. Sources qualify terms the paper's x:i way
// (1-based instance indices); 0 — the default — marks a runtime term.
type ontologyMutation struct {
	Op       string `json:"op"`
	Relation string `json:"relation,omitempty"`
	Child    string `json:"child,omitempty"`
	Parent   string `json:"parent,omitempty"`

	Kind    string `json:"kind,omitempty"`
	X       string `json:"x,omitempty"`
	Y       string `json:"y,omitempty"`
	XSource int    `json:"x_source,omitempty"`
	YSource int    `json:"y_source,omitempty"`
}

// ontologyMutationResponse reports what the mutation did — most importantly
// the new snapshot version (queries arriving after this response observe it)
// and how much re-clustering work the change cost.
type ontologyMutationResponse struct {
	Version         uint64  `json:"version"`
	Relation        string  `json:"relation"`
	Op              string  `json:"op"`
	Changed         bool    `json:"changed"`
	DirtyNodes      int     `json:"dirty_nodes"`
	ComponentNodes  int     `json:"component_nodes"`
	TotalNodes      int     `json:"total_nodes"`
	ReusedClusters  int     `json:"reused_clusters"`
	RebuiltClusters int     `json:"rebuilt_clusters"`
	SEONodes        int     `json:"seo_nodes"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

func (s *Server) handleOntology(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleOntologyGet(w)
	case http.MethodPost:
		s.handleOntologyPost(w, r)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleOntologyGet(w http.ResponseWriter) {
	snap := s.sys.Ontology()
	if snap == nil {
		http.Error(w, "system not built", http.StatusServiceUnavailable)
		return
	}
	info := ontologyInfo{
		Version: snap.Version,
		Epsilon: snap.Epsilon,
	}
	if snap.Measure != nil {
		info.Measure = snap.Measure.Name()
	}
	if snap.FusedIsa != nil {
		info.IsaTerms = snap.FusedIsa.Hierarchy.NodeCount()
		info.IsaEdges = snap.FusedIsa.Hierarchy.EdgeCount()
	}
	if snap.FusedPart != nil {
		info.PartTerms = snap.FusedPart.Hierarchy.NodeCount()
		info.PartEdges = snap.FusedPart.Hierarchy.EdgeCount()
	}
	if snap.SEO != nil {
		info.SEONodes = snap.SEO.NodeCount()
		for _, members := range snap.SEO.Clusters {
			if len(members) > 1 {
				info.MergedClusters++
			}
		}
		info.DroppedEdges = len(snap.SEO.Dropped)
	}
	c := s.sys.OntologyCounters()
	info.Mutations = c.Mutations
	info.ReclusterSeconds = c.ReclusterSeconds
	info.ReclusteredNodes = c.ReclusteredNodes
	info.LastComponent = c.LastComponent
	info.LastDirty = c.LastDirty
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(info)
}

func (s *Server) handleOntologyPost(w http.ResponseWriter, r *http.Request) {
	var req ontologyMutation
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	relation := req.Relation
	if relation == "" {
		relation = ontology.RelIsa
	}
	res, err := s.applyOntologyMutation(relation, &req)
	if err != nil {
		status := http.StatusBadRequest
		var he *httpError
		if errors.As(err, &he) {
			status = he.status
		}
		http.Error(w, err.Error(), status)
		return
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf("ontology %s %s: version=%d changed=%t component=%d/%d in %s",
			res.Relation, res.Op, res.Version, res.Changed, res.ComponentNodes, res.TotalNodes, res.Duration)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ontologyMutationResponse{
		Version:         res.Version,
		Relation:        res.Relation,
		Op:              res.Op,
		Changed:         res.Changed,
		DirtyNodes:      res.DirtyNodes,
		ComponentNodes:  res.ComponentNodes,
		TotalNodes:      res.TotalNodes,
		ReusedClusters:  res.ReusedClusters,
		RebuiltClusters: res.RebuiltClusters,
		SEONodes:        res.SEONodes,
		ElapsedMS:       float64(res.Duration.Microseconds()) / 1e3,
	})
}

func (s *Server) applyOntologyMutation(relation string, req *ontologyMutation) (*core.MutationResult, error) {
	switch req.Op {
	case "add-edge", "retract-edge":
		if req.Child == "" || req.Parent == "" {
			return nil, httpErrorf(http.StatusBadRequest, "op %s requires child and parent", req.Op)
		}
		if req.Op == "add-edge" {
			return s.sys.AddEdge(relation, req.Child, req.Parent)
		}
		return s.sys.RetractEdge(relation, req.Child, req.Parent)
	case "constraint":
		if req.X == "" || req.Y == "" {
			return nil, httpErrorf(http.StatusBadRequest, "op constraint requires x and y")
		}
		var c ontology.Constraint
		switch req.Kind {
		case "", "leq":
			c = ontology.Leq(req.X, req.XSource, req.Y, req.YSource)
		case "eq":
			c = ontology.Equal(req.X, req.XSource, req.Y, req.YSource)
		case "neq":
			c = ontology.NotEqual(req.X, req.XSource, req.Y, req.YSource)
		default:
			return nil, httpErrorf(http.StatusBadRequest, "unknown constraint kind %q (want leq, eq or neq)", req.Kind)
		}
		return s.sys.AddConstraintLive(relation, c)
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown op %q (want add-edge, retract-edge or constraint)", req.Op)
	}
}
