package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getOntology(t *testing.T, ts *httptest.Server) ontologyInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/ontology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/ontology status %d", resp.StatusCode)
	}
	var info ontologyInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func postOntology(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/ontology", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestOntologyGet(t *testing.T) {
	_, ts := testServer(t, Config{})
	info := getOntology(t, ts)
	if info.Version == 0 {
		t.Error("built server reports ontology version 0")
	}
	if info.Measure != "name-rule" {
		t.Errorf("measure %q, want name-rule", info.Measure)
	}
	if info.Epsilon != 3 {
		t.Errorf("epsilon %g, want 3", info.Epsilon)
	}
	if info.IsaTerms == 0 || info.SEONodes == 0 {
		t.Errorf("empty ontology shape: %+v", info)
	}
	if info.Mutations != 0 {
		t.Errorf("fresh server reports %d mutations", info.Mutations)
	}
}

// TestOntologyMutationChangesAnswers is the server-level half of the live
// mutation contract: a POSTed isa edge immediately changes what queries
// answer, bumps the advertised version everywhere (query responses, GET
// /v1/ontology, /metrics, /statz), and invalidates the result cache by key
// construction — the pre-mutation entry is simply never looked up again.
func TestOntologyMutationChangesAnswers(t *testing.T) {
	srv, ts := testServer(t, Config{})
	// "ullman" is a token of both Ullman author values; "db-pioneer" is a
	// fresh runtime term, so pre-mutation the query cannot match anything.
	isaReq := QueryRequest{
		Instance: "dblp",
		Pattern:  `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content isa "db-pioneer"`,
		SL:       []int{1},
	}

	_, body := postQuery(t, ts, isaReq)
	before := decodeResponse(t, body)
	if before.Count != 0 {
		t.Fatalf("pre-mutation isa query returned %d answers, want 0", before.Count)
	}
	v0 := before.OntologyVersion
	if v0 == 0 || v0 != getOntology(t, ts).Version {
		t.Fatalf("query version %d disagrees with /v1/ontology %d", v0, getOntology(t, ts).Version)
	}

	// Warm the result cache, then prove it answers from memory.
	_, body = postQuery(t, ts, isaReq)
	if !decodeResponse(t, body).Cached {
		t.Fatal("repeat query was not served from the result cache")
	}

	resp, mbody := postOntology(t, ts, `{"op":"add-edge","child":"ullman","parent":"db-pioneer"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status %d: %s", resp.StatusCode, mbody)
	}
	var mres ontologyMutationResponse
	if err := json.Unmarshal(mbody, &mres); err != nil {
		t.Fatal(err)
	}
	if !mres.Changed || mres.Version != v0+1 || mres.Relation != "isa" {
		t.Fatalf("mutation response %+v, want changed install of version %d", mres, v0+1)
	}
	if mres.ComponentNodes == 0 || mres.TotalNodes == 0 {
		t.Errorf("mutation reported no recluster work: %+v", mres)
	}

	// Same request, new snapshot: the version-keyed cache key misses, and
	// both Ullman docs now answer.
	_, body = postQuery(t, ts, isaReq)
	after := decodeResponse(t, body)
	if after.Cached {
		t.Fatal("post-mutation query was served the stale cached result")
	}
	if after.OntologyVersion != v0+1 {
		t.Fatalf("post-mutation query version %d, want %d", after.OntologyVersion, v0+1)
	}
	if after.Count != 2 {
		t.Fatalf("post-mutation isa query returned %d answers, want the 2 Ullman docs", after.Count)
	}
	all := ""
	for _, a := range after.Answers {
		all += a.XML
	}
	if !strings.Contains(all, "Jeffrey D. Ullman") || !strings.Contains(all, "J. Ullman") {
		t.Errorf("post-mutation answers incomplete:\n%s", all)
	}

	info := getOntology(t, ts)
	if info.Version != v0+1 || info.Mutations != 1 || info.LastComponent == 0 {
		t.Errorf("/v1/ontology after mutation: %+v", info)
	}

	// The version gauge and mutation counter surface on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	metrics := buf.String()
	for _, want := range []string{
		fmt.Sprintf("toss_ontology_version %d", v0+1),
		"toss_ontology_mutations_total 1",
		"toss_ontology_recluster_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	// And on /statz.
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var statz struct {
		Ontology struct {
			Version   uint64 `json:"version"`
			Mutations uint64 `json:"mutations"`
		} `json:"ontology"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Ontology.Version != v0+1 || statz.Ontology.Mutations != 1 {
		t.Errorf("/statz ontology section: %+v", statz.Ontology)
	}

	_ = srv
}

// TestOntologyVariantAcrossVersions: per-request measure/ε overlay variants
// are cached keyed by snapshot version, so a mutation invalidates them by key
// construction — the override keeps working and observes the new edge.
func TestOntologyVariantAcrossVersions(t *testing.T) {
	_, ts := testServer(t, Config{})
	eps := 3.0
	req := QueryRequest{
		Instance: "dblp",
		Pattern:  `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content isa "db-pioneer"`,
		SL:       []int{1},
		Measure:  "levenshtein",
		Eps:      &eps,
	}
	_, body := postQuery(t, ts, req)
	if got := decodeResponse(t, body); got.Count != 0 {
		t.Fatalf("pre-mutation variant query returned %d answers", got.Count)
	}
	if resp, mbody := postOntology(t, ts, `{"op":"add-edge","child":"ullman","parent":"db-pioneer"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status %d: %s", resp.StatusCode, mbody)
	}
	_, body = postQuery(t, ts, req)
	got := decodeResponse(t, body)
	if got.Count != 2 {
		t.Fatalf("post-mutation variant query returned %d answers, want 2", got.Count)
	}
}

func TestOntologyMutationRejections(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		body string
		want int
	}{
		{`{"op":"add-edge","child":"a"}`, http.StatusBadRequest},                           // missing parent
		{`{"op":"constraint","x":"a"}`, http.StatusBadRequest},                             // missing y
		{`{"op":"frobnicate"}`, http.StatusBadRequest},                                     // unknown op
		{`{"op":"add-edge","child":"a","parent":"b","bogus":true}`, http.StatusBadRequest}, // unknown field
		{`{"op":"constraint","kind":"gt","x":"a","y":"b"}`, http.StatusBadRequest},         // unknown kind
		{`{"op":"add-edge","relation":"sibling","child":"a","parent":"b"}`, http.StatusBadRequest},
		{`{"op":"retract-edge","child":"nope","parent":"also-nope"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if resp, body := postOntology(t, ts, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.body, resp.StatusCode, body, tc.want)
		}
	}

	// A cycle is rejected and nothing installs.
	v0 := getOntology(t, ts).Version
	if resp, _ := postOntology(t, ts, `{"op":"add-edge","child":"a","parent":"b"}`); resp.StatusCode != http.StatusOK {
		t.Fatal("setup edge failed")
	}
	if resp, body := postOntology(t, ts, `{"op":"add-edge","child":"b","parent":"a"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cycle edge: status %d (%s), want 400", resp.StatusCode, body)
	}
	if got := getOntology(t, ts).Version; got != v0+1 {
		t.Errorf("version %d after rejected cycle, want %d", got, v0+1)
	}

	// Non-GET/POST methods are refused.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/ontology", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE status %d, want 405", resp.StatusCode)
	}
}
