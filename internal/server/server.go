// Package server is tossd's HTTP query service over a built core.System.
// The paper's prototype (and the tossql CLI) rebuilds the lexicon, fused
// ontology and SEO for every query; the server builds them once at startup
// and amortises that cost across the query stream, which is where
// ontological query answering pays off. Around the executor it adds the
// production behaviors a long-lived process needs: admission control with a
// bounded wait queue (429 on overflow), per-request deadlines threaded into
// core's scan loops, an LRU result cache invalidated by collection
// generation counters, panic recovery, and /healthz, /statz and /metrics
// endpoints.
package server

import (
	"container/list"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/promtext"
	"repro/internal/similarity"
	"repro/internal/xmldb"
)

// Config tunes the server; zero values select the documented defaults.
type Config struct {
	// MaxInFlight caps concurrently executing queries (default 4).
	MaxInFlight int
	// MaxQueue caps queries waiting for an execution slot before new
	// arrivals are rejected with 429 (default 2×MaxInFlight).
	MaxQueue int
	// DefaultTimeout applies when a request names no timeout_ms (default
	// 30s). MaxTimeout (default 2m) caps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheSize is the result-cache capacity in entries; negative disables
	// caching (default 256).
	CacheSize int
	// Logger receives one line per request when set.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// Server serves TOSS queries over HTTP. Construct with New around a built
// core.System; the System's precomputed structures (lexicon, fused
// ontologies, SEO, indexes) are shared by every request.
type Server struct {
	sys     *core.System
	cfg     Config
	limiter *Limiter
	cache   *Cache
	reg     *promtext.Registry
	start   time.Time
	mux     http.Handler

	// notReady and draining drive /readyz (readiness, as opposed to
	// /healthz's liveness). A server is born ready — New requires a built
	// system — and tossd's bootstrap handler covers the loading window
	// before New; StartDraining flips /readyz to 503 for the drain window
	// so balancers and routers stop sending work to a dying node.
	notReady atomic.Bool
	draining atomic.Bool

	mRequests     *promtext.Counter
	mErrors       *promtext.Counter
	mRejected     *promtext.Counter
	mTimeouts     *promtext.Counter
	mPanics       *promtext.Counter
	mStreamed     *promtext.Counter
	mDocsScanned  *promtext.Counter
	mIngested     *promtext.Counter
	mIngestErrors *promtext.Counter
	hLatency      *promtext.Histogram
	hFirstResult  *promtext.Histogram

	aggMu sync.Mutex
	agg   map[string]*OpAggregate

	// variants caches per-request snapshot overlays for queries that
	// override the measure or epsilon: a pinned System view whose SEO was
	// re-enhanced once per distinct (ontology version, measure, eps) triple
	// and reused until evicted. Keying on the snapshot version makes every
	// ontology mutation invalidate the overlays by key construction; the LRU
	// bound keeps dead-version entries from accumulating.
	varMu    sync.Mutex
	variants map[string]*list.Element
	varOrder *list.List // front = most recently used

	// testHookAdmitted, when set, runs after admission control and before
	// query execution (test seam for saturation/deadline behavior).
	testHookAdmitted func(r *http.Request)

	// testHookStream, when set, wraps the DocStream a streamed query pulls
	// from (test seam for mid-stream failure injection).
	testHookStream func(core.DocStream) core.DocStream
}

type seoVariant struct {
	key  string
	once sync.Once
	sys  *core.System
	err  error
}

// variantCacheCap bounds the overlay cache: each entry holds one re-enhanced
// SEO, so a handful covers every measure/eps combination a dashboard cycles
// through while old ontology versions age out.
const variantCacheCap = 8

// OpAggregate accumulates execution statistics per operation kind, the
// /statz counterpart of the per-query EXPLAIN ANALYZE trace.
type OpAggregate struct {
	Queries       uint64  `json:"queries"`
	CacheHits     uint64  `json:"cache_hits"`
	Answers       uint64  `json:"answers"`
	TotalDocs     uint64  `json:"total_docs"`
	CandidateDocs uint64  `json:"candidate_docs"`
	DocsScanned   uint64  `json:"docs_scanned"`
	DocsEvaluated uint64  `json:"docs_evaluated"`
	Embeddings    uint64  `json:"embeddings"`
	TotalSeconds  float64 `json:"total_seconds"`
}

// New returns a server around a built system (Build must have been called:
// queries need the SEO and measure).
func New(sys *core.System, cfg Config) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("server: system not built (run Build before New)")
	}
	if snap := sys.Ontology(); snap == nil || snap.SEO == nil || snap.Measure == nil {
		return nil, fmt.Errorf("server: system not built (run Build before New)")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		sys:      sys,
		cfg:      cfg,
		limiter:  NewLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		cache:    NewCache(cfg.CacheSize),
		reg:      promtext.NewRegistry(),
		start:    time.Now(),
		agg:      map[string]*OpAggregate{},
		variants: map[string]*list.Element{},
		varOrder: list.New(),
	}
	s.registerMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/query", s.handleQuery) // legacy alias for /v1/query
	mux.HandleFunc("/v1/ontology", s.handleOntology)
	mux.HandleFunc("/v1/docs", s.handleDocs)
	mux.HandleFunc("/v1/stats-summary", s.handleStatsSummary)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = s.withRecovery(s.withMetrics(mux))
	return s, nil
}

// Handler returns the server's HTTP handler (recovery and metrics
// middleware included), ready for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Limiter exposes the admission controller (observability and tests).
func (s *Server) Limiter() *Limiter { return s.limiter }

// SetReady overrides the readiness /readyz reports (a server is born ready).
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// StartDraining marks the server as shutting down: /readyz answers 503 from
// this point on, while /healthz and query serving continue — in-flight and
// still-arriving queries finish during the drain window, but health probers
// take the node out of rotation. Idempotent.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Cache exposes the result cache (observability and tests).
func (s *Server) Cache() *Cache { return s.cache }

func (s *Server) registerMetrics() {
	r := s.reg
	s.mRequests = r.NewCounter("tossd_requests_total", "HTTP requests served")
	s.mErrors = r.NewCounter("tossd_request_errors_total", "requests answered with a 5xx status")
	s.mRejected = r.NewCounter("tossd_rejected_total", "queries rejected with 429 by admission control")
	s.mTimeouts = r.NewCounter("tossd_timeouts_total", "queries cancelled by their deadline")
	s.mPanics = r.NewCounter("tossd_panics_total", "handler panics recovered")
	s.hLatency = r.NewHistogram("tossd_request_seconds", "request latency in seconds", nil)
	s.mStreamed = r.NewCounter("tossd_streamed_queries_total", "queries answered as NDJSON streams")
	s.mIngested = r.NewCounter("tossd_ingested_docs_total", "documents ingested via POST /v1/docs")
	s.mIngestErrors = r.NewCounter("tossd_ingest_errors_total", "NDJSON ingest lines rejected")
	s.mDocsScanned = r.NewCounter("toss_query_docs_scanned_total", "documents a query read before its limit stopped the scan (stream-scan: documents pulled from shard cursors; otherwise: documents evaluated)")
	s.hFirstResult = r.NewHistogram("toss_query_first_result_seconds", "seconds from request arrival to the first answer (streamed: first NDJSON line; materialized: execution complete)", nil)
	r.GaugeFunc("tossd_in_flight", "queries currently executing", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.limiter.InFlight())}}
	})
	r.GaugeFunc("tossd_queue_depth", "queries waiting for an execution slot", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.limiter.Queued())}}
	})
	r.CounterFunc("tossd_cache_hits_total", "result-cache hits", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.cache.Hits())}}
	})
	r.CounterFunc("tossd_cache_misses_total", "result-cache misses", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.cache.Misses())}}
	})
	r.CounterFunc("tossd_cache_evictions_total", "result-cache evictions", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.cache.Evictions())}}
	})
	r.GaugeFunc("tossd_cache_entries", "result-cache live entries", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.cache.Len())}}
	})
	r.GaugeFunc("tossd_uptime_seconds", "seconds since server start", func() []promtext.Sample {
		return []promtext.Sample{{Value: time.Since(s.start).Seconds()}}
	})

	// Live-ontology state and mutation activity (/v1/ontology). The version
	// gauge moves on every accepted mutation; caches key on it, so a bump
	// here implies the result/plan/variant caches started missing.
	r.GaugeFunc("toss_ontology_version", "installed ontology snapshot version (bumps on every live mutation and re-Build)", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.sys.OntologyVersion())}}
	})
	r.CounterFunc("toss_ontology_mutations_total", "live ontology mutations applied via the mutation API", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.sys.OntologyCounters().Mutations)}}
	})
	r.SummaryFunc("toss_ontology_recluster_seconds", "cumulative seconds spent in incremental SEA re-clustering", func() (float64, uint64) {
		c := s.sys.OntologyCounters()
		return c.ReclusterSeconds, c.Mutations
	})
	r.CounterFunc("toss_ontology_reclustered_nodes_total", "hierarchy nodes re-examined by incremental re-clustering", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.sys.OntologyCounters().ReclusteredNodes)}}
	})
	r.GaugeFunc("toss_ontology_recluster_component_nodes", "nodes in the last mutation's recluster component", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.sys.OntologyCounters().LastComponent)}}
	})
	r.GaugeFunc("toss_ontology_recluster_dirty_nodes", "dirty nodes seeding the last mutation's recluster", func() []promtext.Sample {
		return []promtext.Sample{{Value: float64(s.sys.OntologyCounters().LastDirty)}}
	})
	r.GaugeFunc("toss_ontology_seo_nodes", "clusters in the live similarity enhanced ontology", func() []promtext.Sample {
		snap := s.sys.Ontology()
		if snap == nil || snap.SEO == nil {
			return nil
		}
		return []promtext.Sample{{Value: float64(snap.SEO.NodeCount())}}
	})
	r.GaugeFunc("toss_ontology_dropped_edges", "order edges dropped by relaxed similarity enhancement in the live SEO", func() []promtext.Sample {
		snap := s.sys.Ontology()
		if snap == nil || snap.SEO == nil {
			return nil
		}
		return []promtext.Sample{{Value: float64(len(snap.SEO.Dropped))}}
	})

	// Query-planner activity (the Planner is shared by every SEO variant of
	// the system, so one set of counters covers all queries).
	r.CounterFunc("toss_planner_plans_built_total", "query plans built (plan-cache misses that completed)", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.PlansBuilt)
	}))
	r.CounterFunc("toss_planner_cache_hits_total", "plan-cache hits", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CacheHits)
	}))
	r.CounterFunc("toss_planner_cache_misses_total", "plan-cache misses", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CacheMisses)
	}))
	r.GaugeFunc("toss_planner_cache_entries", "plan-cache live entries", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CacheSize)
	}))
	r.CounterFunc("toss_planner_observations_total", "estimated-vs-actual cardinality observations", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.Observations)
	}))
	r.GaugeFunc("toss_planner_estimation_error", "relative cardinality estimation error quantiles over the recent window", func() []promtext.Sample {
		if s.sys.Planner == nil {
			return nil
		}
		c := s.sys.Planner.Counters()
		return []promtext.Sample{
			{Labels: map[string]string{"quantile": "0.5"}, Value: c.ErrP50},
			{Labels: map[string]string{"quantile": "0.9"}, Value: c.ErrP90},
			{Labels: map[string]string{"quantile": "1.0"}, Value: c.ErrMax},
		}
	})

	// Adaptive-execution feedback: correction-store activity, epoch-driven
	// plan invalidations, and mid-stream re-optimizations (docs/PLANNER.md §7).
	r.CounterFunc("toss_planner_corrections_recorded_total", "estimated-vs-actual rows folded into the correction store", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CorrectionsRecorded)
	}))
	r.CounterFunc("toss_planner_corrections_applied_total", "learned correction factors multiplied into estimates", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CorrectionsApplied)
	}))
	r.CounterFunc("toss_planner_corrections_epoch", "correction epoch (bumped on material factor moves; invalidates adaptive cached plans)", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.CorrectionEpoch)
	}))
	r.GaugeFunc("toss_planner_corrections_entries", "live entries in the correction store", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.FeedbackEntries)
	}))
	r.CounterFunc("toss_planner_corrections_invalidations_total", "adaptive cached plans evicted by an epoch move", s.plannerSample(func(c planner.Counters) float64 {
		return float64(c.EpochInvalidations)
	}))
	r.CounterFunc("toss_exec_reopt_total", "mid-stream re-optimizations by action", func() []promtext.Sample {
		if s.sys.Planner == nil {
			return nil
		}
		c := s.sys.Planner.Counters()
		return []promtext.Sample{
			{Labels: map[string]string{"action": "materialize"}, Value: float64(c.ReoptMaterialize)},
			{Labels: map[string]string{"action": "build-side"}, Value: float64(c.ReoptBuildSide)},
		}
	})

	// Per-collection gauges and the cumulative atomic query counters the
	// xmldb substrate already maintains, exposed with a collection label.
	r.GaugeFunc("xmldb_collection_docs", "documents per collection", s.collectionGauge(func(in *core.Instance) float64 {
		return float64(in.Col.DocCount())
	}))
	r.GaugeFunc("xmldb_collection_bytes", "stored XML bytes per collection", s.collectionGauge(func(in *core.Instance) float64 {
		return float64(in.Col.ByteSize())
	}))
	r.CounterFunc("xmldb_collection_generation", "mutation generation counter per collection", s.collectionGauge(func(in *core.Instance) float64 {
		return float64(in.Col.Generation())
	}))
	r.CounterFunc("xmldb_queries_total", "path queries served per collection", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.Queries) }))
	r.CounterFunc("xmldb_indexed_queries_total", "queries routed through the tag index", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.IndexedQueries) }))
	r.CounterFunc("xmldb_scan_queries_total", "queries answered by full document walks", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.ScanQueries) }))
	r.CounterFunc("xmldb_value_index_hits_total", "queries narrowed by the value index", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.ValueIndexHits) }))
	r.CounterFunc("xmldb_docs_walked_total", "documents traversed by scan queries", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.DocsWalked) }))
	r.CounterFunc("xmldb_nodes_tested_total", "candidate nodes tested on the indexed path", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.NodesTested) }))
	r.CounterFunc("xmldb_nodes_matched_total", "nodes returned across all queries", s.counterSamples(func(cs xmldb.Counters) float64 { return float64(cs.NodesMatched) }))

	// Per-shard counters of every sharded collection, labelled
	// {collection, shard}; unsharded collections export their single shard 0,
	// so the series exist at any -shards setting.
	r.GaugeFunc("toss_shard_docs", "documents per shard", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.Docs) }))
	r.GaugeFunc("toss_shard_bytes", "stored XML bytes per shard", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.Bytes) }))
	r.CounterFunc("toss_shard_generation", "mutation generation counter per shard", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.Generation) }))
	r.CounterFunc("toss_shard_queries_total", "scatter-gather queries that touched the shard", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.Queries) }))
	r.CounterFunc("toss_shard_docs_walked_total", "documents the shard walked for scan queries", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.DocsWalked) }))
	r.CounterFunc("toss_shard_nodes_tested_total", "candidate nodes the shard tested on the indexed path", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.NodesTested) }))
	r.CounterFunc("toss_shard_nodes_matched_total", "nodes the shard contributed to query answers", s.shardSamples(func(si xmldb.ShardInfo) float64 { return float64(si.NodesMatched) }))

	// Similarity candidate index (internal/simindex) activity: probe traffic
	// and filter effectiveness counters plus index size gauges, sampled per
	// collection. The gauges read 0 until a first probe (or any indexed
	// query) builds the shard indexes — the sampler never forces a build.
	r.CounterFunc("toss_simindex_probes_total", "similarity index probes served per collection", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.Probes) }))
	r.CounterFunc("toss_simindex_candidate_terms_total", "candidate terms proposed by the n-gram/phonetic filters", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.CandidateTerms) }))
	r.CounterFunc("toss_simindex_verified_terms_total", "candidate terms re-checked by the verifier stage", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.VerifiedTerms) }))
	r.CounterFunc("toss_simindex_matched_terms_total", "terms that matched a probe after verification", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.MatchedTerms) }))
	r.CounterFunc("toss_simindex_docs_total", "candidate documents produced by similarity probes", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.Docs) }))
	r.GaugeFunc("toss_simindex_terms", "live terms in the similarity index dictionary", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.Terms) }))
	r.GaugeFunc("toss_simindex_gram_postings", "n-gram posting entries in the similarity index", s.simSamples(func(sc xmldb.SimIndexCounters) float64 { return float64(sc.GramPostings) }))

	// Durable-write-path metrics, sampled per collection from the WAL
	// counters; collections running without a WAL export no series.
	r.CounterFunc("toss_wal_appends_total", "WAL records appended per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.Appends) }))
	r.CounterFunc("toss_wal_append_errors_total", "WAL appends that failed (and rolled back) per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.AppendErrors) }))
	r.GaugeFunc("toss_wal_bytes", "bytes in the current WAL segments per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.Bytes) }))
	r.CounterFunc("toss_wal_fsyncs_total", "WAL fsync calls per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.Fsyncs) }))
	r.CounterFunc("toss_wal_compactions_total", "WAL compactions (snapshot + segment rotation) per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.Compactions) }))
	r.CounterFunc("toss_wal_compaction_errors_total", "failed WAL compactions per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.CompactionErrors) }))
	r.CounterFunc("toss_wal_replayed_records_total", "WAL records replayed during the last recovery per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.ReplayedRecords) }))
	r.CounterFunc("toss_wal_truncations_total", "torn or corrupt WAL tails truncated during recovery per collection", s.walSamples(func(st xmldb.WALStats) float64 { return float64(st.Truncations) }))
	r.SummaryFunc("toss_wal_fsync_seconds", "cumulative seconds spent in WAL fsync across all collections", func() (float64, uint64) {
		var sum float64
		var count uint64
		for _, in := range s.sys.Instances {
			st := in.Col.WALStats()
			if st.Enabled {
				sum += st.FsyncSeconds
				count += st.Fsyncs
			}
		}
		return sum, count
	})
}

// walSamples adapts a WALStats field selector to a per-collection sample
// producer, skipping collections that run without a WAL.
func (s *Server) walSamples(pick func(xmldb.WALStats) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		var out []promtext.Sample
		for _, in := range s.sys.Instances {
			st := in.Col.WALStats()
			if !st.Enabled {
				continue
			}
			out = append(out, promtext.Sample{
				Labels: map[string]string{"collection": in.Name},
				Value:  pick(st),
			})
		}
		return out
	}
}

func (s *Server) plannerSample(pick func(planner.Counters) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		if s.sys.Planner == nil {
			return nil
		}
		return []promtext.Sample{{Value: pick(s.sys.Planner.Counters())}}
	}
}

func (s *Server) collectionGauge(pick func(*core.Instance) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		out := make([]promtext.Sample, 0, len(s.sys.Instances))
		for _, in := range s.sys.Instances {
			out = append(out, promtext.Sample{
				Labels: map[string]string{"collection": in.Name},
				Value:  pick(in),
			})
		}
		return out
	}
}

func (s *Server) shardSamples(pick func(xmldb.ShardInfo) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		var out []promtext.Sample
		for _, in := range s.sys.Instances {
			for _, si := range in.Col.ShardInfos() {
				out = append(out, promtext.Sample{
					Labels: map[string]string{
						"collection": in.Name,
						"shard":      fmt.Sprint(si.Shard),
					},
					Value: pick(si),
				})
			}
		}
		return out
	}
}

func (s *Server) simSamples(pick func(xmldb.SimIndexCounters) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		out := make([]promtext.Sample, 0, len(s.sys.Instances))
		for _, in := range s.sys.Instances {
			out = append(out, promtext.Sample{
				Labels: map[string]string{"collection": in.Name},
				Value:  pick(in.Col.SimIndexCounters()),
			})
		}
		return out
	}
}

func (s *Server) counterSamples(pick func(xmldb.Counters) float64) func() []promtext.Sample {
	return func() []promtext.Sample {
		out := make([]promtext.Sample, 0, len(s.sys.Instances))
		for _, in := range s.sys.Instances {
			out = append(out, promtext.Sample{
				Labels: map[string]string{"collection": in.Name},
				Value:  pick(in.Col.Counters()),
			})
		}
		return out
	}
}

// systemFor resolves the pinned System view a request executes against. It
// pins the current ontology snapshot once, here, so everything the request
// touches — cache keys, plan keys, the evaluator, a stream drained minutes
// from now — reads one consistent version even while mutations install
// successors. Measure/eps overrides select a snapshot-overlay variant: the
// same pinned snapshot with its SEO re-enhanced once for that (version,
// measure, eps) triple, cached in a small LRU. A version bump changes the
// key, so overlays of dead versions stop being served and age out.
func (s *Server) systemFor(measureName string, eps *float64) (*core.System, error) {
	base := s.sys
	snap := base.Ontology()
	if snap == nil {
		return nil, fmt.Errorf("system not built")
	}
	name := snap.Measure.Name()
	e := snap.Epsilon
	if measureName != "" {
		name = measureName
	}
	if eps != nil {
		e = *eps
	}
	if name == snap.Measure.Name() && e == snap.Epsilon {
		return base.WithSnapshot(snap), nil
	}
	key := fmt.Sprintf("%d|%s|%g", snap.Version, name, e)
	s.varMu.Lock()
	var v *seoVariant
	if el, ok := s.variants[key]; ok {
		s.varOrder.MoveToFront(el)
		v = el.Value.(*seoVariant)
	} else {
		v = &seoVariant{key: key}
		s.variants[key] = s.varOrder.PushFront(v)
		for s.varOrder.Len() > variantCacheCap {
			old := s.varOrder.Back()
			s.varOrder.Remove(old)
			delete(s.variants, old.Value.(*seoVariant).key)
		}
	}
	s.varMu.Unlock()
	v.once.Do(func() {
		m := similarity.ByName(name)
		if m == nil {
			v.err = fmt.Errorf("unknown measure %q", name)
			return
		}
		vsnap, err := base.SnapshotVariant(snap, m, e)
		if err != nil {
			v.err = err
			return
		}
		v.sys = base.WithSnapshot(vsnap)
	})
	return v.sys, v.err
}

func (s *Server) aggregate(op string, hit bool, elapsed time.Duration, st *core.ExecStats) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	a, ok := s.agg[op]
	if !ok {
		a = &OpAggregate{}
		s.agg[op] = a
	}
	a.Queries++
	if hit {
		a.CacheHits++
	}
	a.TotalSeconds += elapsed.Seconds()
	if st != nil {
		a.Answers += uint64(st.Answers)
		a.TotalDocs += uint64(st.TotalDocs)
		a.CandidateDocs += uint64(st.CandidateDocs)
		a.DocsScanned += uint64(st.DocsScanned)
		a.DocsEvaluated += uint64(st.DocsEvaluated)
		a.Embeddings += uint64(st.Embeddings)
	}
}

func (s *Server) aggregates() map[string]OpAggregate {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	out := make(map[string]OpAggregate, len(s.agg))
	for k, v := range s.agg {
		out[k] = *v
	}
	return out
}
