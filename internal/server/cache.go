package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cachedResult is the format-independent materialisation of one query's
// answers: each witness tree serialised to XML once, plus the similarity
// scores for ranked selections. Both the JSON and the XML renderers build
// their response from it, so one entry serves every format.
type cachedResult struct {
	XMLs   []string
	Scores []float64 // non-nil only for ranked selections, aligned with XMLs
	Seqs   []uint64  // non-nil only when the request set seqs, aligned with XMLs
}

// Cache is a fixed-capacity LRU of query results. Invalidation is by key
// construction, not callbacks: every key embeds the generation counters of
// the collections the query touched (see cacheKey), so a mutation makes all
// prior keys unreachable and their entries age out through LRU eviction.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recent
	items     map[string]*list.Element
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	val *cachedResult
}

// NewCache returns an LRU cache holding up to max entries; max < 1 returns a
// disabled cache on which Get always misses and Put is a no-op.
func NewCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*cachedResult, bool) {
	if c.max < 1 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result under key, evicting the least recently used entry when
// the cache is full.
func (c *Cache) Put(key string, val *cachedResult) {
	if c.max < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits returns the cumulative hit count.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the cumulative miss count.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Evictions returns the cumulative eviction count.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }
