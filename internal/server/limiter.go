package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Limiter.Acquire when both the execution slots
// and the wait queue are full; the HTTP layer maps it to 429.
var ErrSaturated = errors.New("server: saturated, admission queue full")

// Limiter is the admission controller: at most maxInFlight queries execute
// concurrently, at most maxQueue more wait for a slot, and anything beyond
// that is rejected immediately rather than piling up goroutines — overload
// shows up as fast 429s instead of unbounded latency.
type Limiter struct {
	slots    chan struct{} // capacity maxInFlight: held while executing
	tickets  chan struct{} // capacity maxInFlight+maxQueue: held while queued or executing
	inFlight atomic.Int64
	queued   atomic.Int64
}

// NewLimiter returns a limiter with the given execution and queue capacity.
// maxInFlight below 1 is raised to 1; negative maxQueue is treated as 0.
func NewLimiter(maxInFlight, maxQueue int) *Limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots:   make(chan struct{}, maxInFlight),
		tickets: make(chan struct{}, maxInFlight+maxQueue),
	}
}

// Acquire admits the caller, blocking in the bounded wait queue if all slots
// are busy. It fails fast with ErrSaturated when the queue is already full,
// and with ctx.Err() if the caller's deadline expires while waiting. On
// success the returned release function must be called exactly once.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case l.tickets <- struct{}{}:
	default:
		return nil, ErrSaturated
	}
	l.queued.Add(1)
	select {
	case l.slots <- struct{}{}:
		l.queued.Add(-1)
		l.inFlight.Add(1)
		return func() {
			<-l.slots
			<-l.tickets
			l.inFlight.Add(-1)
		}, nil
	case <-ctx.Done():
		l.queued.Add(-1)
		<-l.tickets
		return nil, ctx.Err()
	}
}

// InFlight returns the number of queries currently executing.
func (l *Limiter) InFlight() int { return int(l.inFlight.Load()) }

// Queued returns the number of queries waiting for a slot.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }
