package xpath_test

import (
	"fmt"

	"repro/internal/tree"
	"repro/internal/xpath"
)

func ExampleParse() {
	col := tree.NewCollection()
	doc, _ := col.ParseXMLString(`<dblp>
	  <inproceedings><author>Jeffrey D. Ullman</author><year>1997</year></inproceedings>
	  <inproceedings><author>Paolo Ciancarini</author><year>1999</year></inproceedings>
	</dblp>`)

	p, err := xpath.Parse(`//inproceedings[year='1999']/author`)
	if err != nil {
		panic(err)
	}
	for _, n := range p.Eval(doc.Root) {
		fmt.Println(n.Content)
	}
	// Output:
	// Paolo Ciancarini
}

func ExampleTextValue() {
	col := tree.NewCollection()
	doc, _ := col.ParseXMLString(`<article><title>Securing XML</title><year>2001</year></article>`)
	fmt.Println(xpath.TextValue(doc.Root))
	// Output:
	// Securing XML 2001
}
