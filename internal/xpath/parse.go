package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses an XPath expression in the subset documented at the top of
// this package.
func Parse(src string) (*Path, error) {
	p := &pparser{src: src}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("xpath: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return path, nil
}

// MustParse is Parse but panics on error.
func MustParse(src string) *Path {
	path, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return path
}

type pparser struct {
	src string
	pos int
}

func (p *pparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *pparser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *pparser) hasPrefix(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

func (p *pparser) parsePath() (*Path, error) {
	p.skipSpace()
	path := &Path{}
	axis := AxisChild
	switch {
	case p.hasPrefix("//"):
		path.Absolute = true
		axis = AxisDescendant
		p.pos += 2
	case p.hasPrefix("/"):
		path.Absolute = true
		p.pos++
	}
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		if p.hasPrefix("//") {
			axis = AxisDescendant
			p.pos += 2
		} else if p.hasPrefix("/") {
			axis = AxisChild
			p.pos++
		} else {
			break
		}
	}
	return path, nil
}

func (p *pparser) parseStep(axis Axis) (Step, error) {
	name, err := p.parseName()
	if err != nil {
		return Step{}, err
	}
	step := Step{Axis: axis, Name: name}
	for p.peekByte() == '[' {
		p.pos++
		pred, err := p.parseOrExpr()
		if err != nil {
			return Step{}, err
		}
		p.skipSpace()
		if p.peekByte() != ']' {
			return Step{}, fmt.Errorf("xpath: expected ] at offset %d", p.pos)
		}
		p.pos++
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func (p *pparser) parseName() (string, error) {
	p.skipSpace()
	if p.peekByte() == '*' {
		p.pos++
		return "*", nil
	}
	start := p.pos
	for p.pos < len(p.src) && isNameRune(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("xpath: expected name at offset %d", p.pos)
	}
	return p.src[start:p.pos], nil
}

func isNameRune(r rune) bool {
	return r == '_' || r == '-' || r == '@' ||
		unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *pparser) parseOrExpr() (Pred, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	subs := []Pred{left}
	for {
		p.skipSpace()
		if !p.hasKeyword("or") {
			break
		}
		p.pos += 2
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, right)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return predOr{subs: subs}, nil
}

func (p *pparser) parseAndExpr() (Pred, error) {
	left, err := p.parseUnaryPred()
	if err != nil {
		return nil, err
	}
	subs := []Pred{left}
	for {
		p.skipSpace()
		if !p.hasKeyword("and") {
			break
		}
		p.pos += 3
		right, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		subs = append(subs, right)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return predAnd{subs: subs}, nil
}

// hasKeyword reports whether the given keyword occurs at the cursor,
// followed by a non-name character (so "order" is not read as "or").
func (p *pparser) hasKeyword(kw string) bool {
	if !p.hasPrefix(kw) {
		return false
	}
	after := p.pos + len(kw)
	return after >= len(p.src) || !isNameRune(rune(p.src[after]))
}

func (p *pparser) parseUnaryPred() (Pred, error) {
	p.skipSpace()
	if p.hasKeyword("not") {
		save := p.pos
		p.pos += 3
		p.skipSpace()
		if p.peekByte() != '(' {
			p.pos = save // a path element literally named "not..."? unlikely, but recover
		} else {
			p.pos++
			inner, err := p.parseOrExpr()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peekByte() != ')' {
				return nil, fmt.Errorf("xpath: expected ) at offset %d", p.pos)
			}
			p.pos++
			return predNot{sub: inner}, nil
		}
	}
	if p.peekByte() == '(' {
		p.pos++
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("xpath: expected ) at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	}
	if p.hasKeyword("contains") {
		p.pos += len("contains")
		p.skipSpace()
		if p.peekByte() != '(' {
			return nil, fmt.Errorf("xpath: expected ( after contains at offset %d", p.pos)
		}
		p.pos++
		rel, err := p.parseRelPath()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peekByte() != ',' {
			return nil, fmt.Errorf("xpath: expected , in contains() at offset %d", p.pos)
		}
		p.pos++
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peekByte() != ')' {
			return nil, fmt.Errorf("xpath: expected ) at offset %d", p.pos)
		}
		p.pos++
		return predContains{rel: rel, lit: lit}, nil
	}
	rel, err := p.parseRelPath()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	switch {
	case p.hasPrefix("!="):
		p.pos += 2
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return predCompare{rel: rel, neq: true, lit: lit}, nil
	case p.peekByte() == '=':
		p.pos++
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return predCompare{rel: rel, lit: lit}, nil
	default:
		return predExists{rel: rel}, nil
	}
}

func (p *pparser) parseRelPath() (relPath, error) {
	p.skipSpace()
	var r relPath
	if p.hasPrefix(".//") {
		r.descendant = true
		p.pos += 3
	} else if p.peekByte() == '.' {
		p.pos++
		return relPath{self: true}, nil
	}
	for {
		name, err := p.parseName()
		if err != nil {
			return relPath{}, err
		}
		r.names = append(r.names, name)
		if p.peekByte() == '/' && !p.hasPrefix("//") {
			p.pos++
			continue
		}
		break
	}
	return r, nil
}

func (p *pparser) parseLiteral() (string, error) {
	p.skipSpace()
	quote := p.peekByte()
	if quote != '\'' && quote != '"' {
		return "", fmt.Errorf("xpath: expected string literal at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", fmt.Errorf("xpath: unterminated literal starting at offset %d", start-1)
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}
