// Package xpath implements the XPath subset the TOSS Query Executor needs
// when it rewrites pattern trees into XPath queries for the underlying XML
// database (the role Xindice plays in the paper's implementation).
//
// Supported grammar:
//
//	path      := '/'? step ( '/' step | '//' step )*  |  '//' step ( ... )*
//	step      := (name | '*') predicate*
//	predicate := '[' orExpr ']'
//	orExpr    := andExpr ('or' andExpr)*
//	andExpr   := unary ('and' unary)*
//	unary     := 'not' '(' orExpr ')' | '(' orExpr ')' | test
//	test      := relpath
//	           | relpath ('=' | '!=') literal
//	           | 'contains' '(' relpath ',' literal ')'
//	relpath   := '.' | ('.//')? (name|'*') ('/' (name|'*'))*
//	literal   := '\'' ... '\''  |  '"' ... '"'
//
// A node's string value is its own content if non-empty, otherwise the
// space-joined contents of its descendants in preorder.
package xpath

import (
	"fmt"
	"strings"

	"repro/internal/tree"
)

// Axis distinguishes /child steps from //descendant-or-self steps.
type Axis int

const (
	// AxisChild selects children of the context node.
	AxisChild Axis = iota
	// AxisDescendant selects all descendants (the node set "//name" walks).
	AxisDescendant
)

// Step is one location step.
type Step struct {
	Axis  Axis
	Name  string // element name or "*"
	Preds []Pred
}

// Path is a parsed XPath expression.
type Path struct {
	// Absolute paths start matching at the document root; relative ones at
	// the context node's children.
	Absolute bool
	Steps    []Step
}

// Pred is a predicate inside [...].
type Pred interface {
	eval(n *tree.Node) bool
	String() string
}

type predExists struct{ rel relPath }

func (p predExists) eval(n *tree.Node) bool { return len(p.rel.nodes(n)) > 0 }
func (p predExists) String() string         { return p.rel.String() }

type predCompare struct {
	rel relPath
	neq bool
	lit string
}

func (p predCompare) eval(n *tree.Node) bool {
	for _, m := range p.rel.nodes(n) {
		if (TextValue(m) == p.lit) != p.neq {
			return true
		}
	}
	return false
}

func (p predCompare) String() string {
	op := "="
	if p.neq {
		op = "!="
	}
	return fmt.Sprintf("%s%s'%s'", p.rel, op, p.lit)
}

type predContains struct {
	rel relPath
	lit string
}

func (p predContains) eval(n *tree.Node) bool {
	for _, m := range p.rel.nodes(n) {
		if strings.Contains(TextValue(m), p.lit) {
			return true
		}
	}
	return false
}

func (p predContains) String() string {
	return fmt.Sprintf("contains(%s,'%s')", p.rel, p.lit)
}

type predAnd struct{ subs []Pred }

func (p predAnd) eval(n *tree.Node) bool {
	for _, s := range p.subs {
		if !s.eval(n) {
			return false
		}
	}
	return true
}
func (p predAnd) String() string { return joinPreds(p.subs, " and ") }

type predOr struct{ subs []Pred }

func (p predOr) eval(n *tree.Node) bool {
	for _, s := range p.subs {
		if s.eval(n) {
			return true
		}
	}
	return false
}
func (p predOr) String() string { return joinPreds(p.subs, " or ") }

type predNot struct{ sub Pred }

func (p predNot) eval(n *tree.Node) bool { return !p.sub.eval(n) }
func (p predNot) String() string         { return "not(" + p.sub.String() + ")" }

func joinPreds(ps []Pred, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// relPath is a relative path used inside predicates: "." or a descent
// through named children, optionally starting with ".//".
type relPath struct {
	self       bool // "."
	descendant bool // ".//" prefix
	names      []string
}

func (r relPath) String() string {
	if r.self {
		return "."
	}
	prefix := ""
	if r.descendant {
		prefix = ".//"
	}
	return prefix + strings.Join(r.names, "/")
}

func (r relPath) nodes(n *tree.Node) []*tree.Node {
	if r.self {
		return []*tree.Node{n}
	}
	cur := []*tree.Node{}
	if r.descendant {
		n.Walk(func(m *tree.Node) bool {
			if m != n && nameMatches(r.names[0], m.Tag) {
				cur = append(cur, m)
			}
			return true
		})
	} else {
		for _, c := range n.Children {
			if nameMatches(r.names[0], c.Tag) {
				cur = append(cur, c)
			}
		}
	}
	for _, name := range r.names[1:] {
		var next []*tree.Node
		for _, m := range cur {
			for _, c := range m.Children {
				if nameMatches(name, c.Tag) {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

func nameMatches(pattern, tag string) bool {
	return pattern == "*" || pattern == tag
}

// TextValue returns the string value of a node: its own content when
// non-empty, else the space-joined contents of its descendants in preorder.
func TextValue(n *tree.Node) string {
	if n.Content != "" {
		return n.Content
	}
	var parts []string
	n.Walk(func(m *tree.Node) bool {
		if m != n && m.Content != "" {
			parts = append(parts, m.Content)
		}
		return true
	})
	return strings.Join(parts, " ")
}

// String renders the path back in XPath syntax.
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		switch {
		case i == 0 && !p.Absolute && s.Axis == AxisChild:
			// relative first step: no leading slash
		case s.Axis == AxisDescendant:
			b.WriteString("//")
		default:
			b.WriteString("/")
		}
		b.WriteString(s.Name)
		for _, pr := range s.Preds {
			b.WriteString("[" + pr.String() + "]")
		}
	}
	return b.String()
}

// Eval evaluates the path against a document whose root element is root.
// For absolute paths the first step is matched against the root element
// itself (the document node's only child), as in standard XPath.
func (p *Path) Eval(root *tree.Node) []*tree.Node {
	if len(p.Steps) == 0 || root == nil {
		return nil
	}
	// Context for the first step.
	var cur []*tree.Node
	first := p.Steps[0]
	switch first.Axis {
	case AxisChild:
		if nameMatches(first.Name, root.Tag) && evalPreds(first.Preds, root) {
			cur = append(cur, root)
		}
	case AxisDescendant:
		root.Walk(func(m *tree.Node) bool {
			if nameMatches(first.Name, m.Tag) && evalPreds(first.Preds, m) {
				cur = append(cur, m)
			}
			return true
		})
	}
	for _, step := range p.Steps[1:] {
		var next []*tree.Node
		seen := map[*tree.Node]bool{}
		add := func(m *tree.Node) {
			if !seen[m] {
				seen[m] = true
				next = append(next, m)
			}
		}
		for _, ctx := range cur {
			switch step.Axis {
			case AxisChild:
				for _, c := range ctx.Children {
					if nameMatches(step.Name, c.Tag) && evalPreds(step.Preds, c) {
						add(c)
					}
				}
			case AxisDescendant:
				ctx.Walk(func(m *tree.Node) bool {
					if m != ctx && nameMatches(step.Name, m.Tag) && evalPreds(step.Preds, m) {
						add(m)
					}
					return true
				})
			}
		}
		cur = next
	}
	return cur
}

func evalPreds(ps []Pred, n *tree.Node) bool {
	for _, p := range ps {
		if !p.eval(n) {
			return false
		}
	}
	return true
}

// HasInnerPredicates reports whether any step other than the last carries
// predicates. The indexed bottom-up evaluator in xmldb only handles
// last-step predicates and falls back to Eval otherwise.
func (p *Path) HasInnerPredicates() bool {
	for i := 0; i < len(p.Steps)-1; i++ {
		if len(p.Steps[i].Preds) > 0 {
			return true
		}
	}
	return false
}

// MatchesUp reports whether node n matches this path by walking ancestors:
// n must match the last step, and the remaining steps must be consumable
// along n's ancestor chain respecting child/descendant axes. Predicates on
// all steps are honoured. Used by the indexed evaluator.
func (p *Path) MatchesUp(n *tree.Node) bool {
	return matchUp(p, len(p.Steps)-1, n)
}

func matchUp(p *Path, i int, n *tree.Node) bool {
	step := p.Steps[i]
	if !nameMatches(step.Name, n.Tag) || !evalPreds(step.Preds, n) {
		return false
	}
	if i == 0 {
		// First step: a child-axis first step matches against the document
		// node's children — i.e. the root element only (this mirrors Eval,
		// which also evaluates relative paths from the document node); a
		// descendant first step may sit anywhere.
		if step.Axis == AxisChild {
			return n.Parent == nil
		}
		return true
	}
	prev := p.Steps[i] // current step's axis governs the hop to its parent
	switch prev.Axis {
	case AxisChild:
		if n.Parent == nil {
			return false
		}
		return matchUp(p, i-1, n.Parent)
	default: // AxisDescendant: some ancestor must match the previous steps
		for a := n.Parent; a != nil; a = a.Parent {
			if matchUp(p, i-1, a) {
				return true
			}
		}
		return false
	}
}

// ---- programmatic predicate constructors (used by the TOSS query rewriter) ----

// EqualsSelf builds the predicate [.='lit'].
func EqualsSelf(lit string) Pred {
	return predCompare{rel: relPath{self: true}, lit: lit}
}

// ContainsSelf builds the predicate [contains(.,'lit')].
func ContainsSelf(lit string) Pred {
	return predContains{rel: relPath{self: true}, lit: lit}
}

// AnyEqualsSelf builds [.='a' or .='b' or ...].
func AnyEqualsSelf(lits []string) Pred {
	if len(lits) == 1 {
		return EqualsSelf(lits[0])
	}
	subs := make([]Pred, len(lits))
	for i, l := range lits {
		subs[i] = EqualsSelf(l)
	}
	return predOr{subs: subs}
}

// EqualsChild builds [name='lit'].
func EqualsChild(name, lit string) Pred {
	return predCompare{rel: relPath{names: []string{name}}, lit: lit}
}

// ContainsChild builds [contains(name,'lit')].
func ContainsChild(name, lit string) Pred {
	return predContains{rel: relPath{names: []string{name}}, lit: lit}
}

// SelfEqualsLiteral inspects a predicate: if it is exactly [.='lit'], the
// literal is returned. Storage engines use this to route equality lookups to
// value indexes.
func SelfEqualsLiteral(p Pred) (string, bool) {
	pc, ok := p.(predCompare)
	if !ok || pc.neq || !pc.rel.self {
		return "", false
	}
	return pc.lit, true
}

// SelfEqualsAnyLiteral additionally recognises [.='a' or .='b' or ...]
// disjunctions of self-equality tests, returning all literals.
func SelfEqualsAnyLiteral(p Pred) ([]string, bool) {
	if lit, ok := SelfEqualsLiteral(p); ok {
		return []string{lit}, true
	}
	or, ok := p.(predOr)
	if !ok {
		return nil, false
	}
	var lits []string
	for _, sub := range or.subs {
		lit, ok := SelfEqualsLiteral(sub)
		if !ok {
			return nil, false
		}
		lits = append(lits, lit)
	}
	return lits, true
}
