package xpath

import (
	"testing"

	"repro/internal/tree"
)

// FuzzParse checks the XPath parser never panics, accepted expressions
// render stably, and evaluation never panics on a fixed document.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`/dblp/inproceedings/author`,
		`//inproceedings[year='1999' and not(booktitle='VLDB')]/title`,
		`//a[contains(.,'x') or b='y']`,
		`/a/*[.//c='d']`,
		`//inproceedings[@key='p1']`,
	} {
		f.Add(seed)
	}
	col := tree.NewCollection()
	doc, err := col.ParseXMLString(`<dblp><inproceedings key="p1"><author>A</author><year>1999</year></inproceedings></dblp>`)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if p2.String() != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, p2.String())
		}
		// Both evaluators must run without panicking and agree.
		r1 := p.Eval(doc.Root)
		n2 := 0
		doc.Root.Walk(func(n *tree.Node) bool {
			if p.MatchesUp(n) {
				n2++
			}
			return true
		})
		if len(r1) != n2 {
			t.Fatalf("Eval %d vs MatchesUp %d for %q", len(r1), n2, rendered)
		}
	})
}
