package xpath

import (
	"testing"

	"repro/internal/tree"
)

const docXML = `<dblp>
  <inproceedings key="p1">
    <author>Jeffrey D. Ullman</author>
    <author>Jennifer Widom</author>
    <title>First Course in Database Systems</title>
    <year>1997</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="p2">
    <author>Paolo Ciancarini</author>
    <title>Coordination Models</title>
    <year>1999</year>
    <booktitle>VLDB</booktitle>
  </inproceedings>
  <proceedings>
    <editor>Serge Abiteboul</editor>
    <title>Proceedings 1999</title>
    <inner>
      <title>Nested Title</title>
    </inner>
  </proceedings>
</dblp>`

func parseDoc(t *testing.T) *tree.Node {
	t.Helper()
	c := tree.NewCollection()
	tr, err := c.ParseXMLString(docXML)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Root
}

func evalAll(t *testing.T, root *tree.Node, expr string) []*tree.Node {
	t.Helper()
	p, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return p.Eval(root)
}

func TestEvalBasicPaths(t *testing.T) {
	root := parseDoc(t)
	cases := []struct {
		expr string
		want int
	}{
		{`/dblp`, 1},
		{`/dblp/inproceedings`, 2},
		{`/dblp/inproceedings/author`, 3},
		{`//author`, 3},
		{`//title`, 4},
		{`/dblp//title`, 4},
		{`/dblp/*`, 3},
		{`/dblp/inproceedings/*`, 11}, // 2×(@key)+3 authors+2 titles+2 years+2 booktitles
		{`/wrong`, 0},
		{`//inproceedings//author`, 3},
		{`/dblp/title`, 0},         // titles are not direct children of dblp
		{`//proceedings/title`, 1}, // not the nested one
	}
	for _, c := range cases {
		got := evalAll(t, root, c.expr)
		if len(got) != c.want {
			t.Errorf("Eval(%q) = %d nodes, want %d", c.expr, len(got), c.want)
		}
	}
}

func TestEvalPredicates(t *testing.T) {
	root := parseDoc(t)
	cases := []struct {
		expr string
		want int
	}{
		{`//inproceedings[year='1999']`, 1},
		{`//inproceedings[year!='1999']`, 1},
		{`//inproceedings[author='Jennifer Widom']`, 1},
		{`//inproceedings[author]`, 2},
		{`//inproceedings[editor]`, 0},
		{`//inproceedings[contains(title,'Database')]`, 1},
		{`//inproceedings[contains(.,'Coordination')]`, 1},
		{`//year[.='1999']`, 1},
		{`//inproceedings[year='1999' and booktitle='VLDB']`, 1},
		{`//inproceedings[year='1999' and booktitle='PODS']`, 0},
		{`//inproceedings[year='1999' or year='1997']`, 2},
		{`//inproceedings[not(year='1999')]`, 1},
		{`//inproceedings[(year='1999' or year='1997') and author]`, 2},
		{`//inproceedings[@key='p2']`, 1},
		{`/dblp[.//title='Nested Title']`, 1},
		{`//proceedings[inner/title='Nested Title']`, 1},
		{`//proceedings[title='Nested Title']`, 0},
	}
	for _, c := range cases {
		got := evalAll(t, root, c.expr)
		if len(got) != c.want {
			t.Errorf("Eval(%q) = %d nodes, want %d", c.expr, len(got), c.want)
		}
	}
}

func TestTextValue(t *testing.T) {
	root := parseDoc(t)
	p := MustParse(`//inproceedings[@key='p2']`)
	nodes := p.Eval(root)
	if len(nodes) != 1 {
		t.Fatal("setup failed")
	}
	// Element with no own content: concatenated descendant text.
	got := TextValue(nodes[0])
	want := "p2 Paolo Ciancarini Coordination Models 1999 VLDB"
	if got != want {
		t.Errorf("TextValue = %q, want %q", got, want)
	}
	// Leaf: own content.
	year := nodes[0].Child("year")
	if TextValue(year) != "1999" {
		t.Errorf("leaf TextValue = %q", TextValue(year))
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		``,
		`//`,
		`/a[`,
		`/a[b=']`,
		`/a[b='x'`,
		`/a[contains(b)]`,
		`/a[contains(b,'x']`,
		`/a[not(b]`,
		`/a]`,
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) should fail", expr)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	exprs := []string{
		`/dblp/inproceedings[year='1999']/author`,
		`//inproceedings[contains(title,'Database') and (year='1997' or not(booktitle='VLDB'))]`,
		`//inproceedings[.//author='X']`,
		`/dblp/*[.='x']`,
	}
	root := parseDoc(t)
	for _, expr := range exprs {
		p1 := MustParse(expr)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Errorf("re-parsing %q (from %q): %v", p1.String(), expr, err)
			continue
		}
		// Semantically identical: same results on the test doc.
		r1 := p1.Eval(root)
		r2 := p2.Eval(root)
		if len(r1) != len(r2) {
			t.Errorf("round trip changed semantics for %q", expr)
		}
	}
}

func TestMatchesUpAgreesWithEval(t *testing.T) {
	root := parseDoc(t)
	exprs := []string{
		`/dblp/inproceedings/author`,
		`//author`,
		`//inproceedings[year='1999']`,
		`/dblp//title`,
		`//inproceedings/title`,
		`//proceedings/inner/title`,
		`/dblp/inproceedings[booktitle='VLDB']/year`,
	}
	for _, expr := range exprs {
		p := MustParse(expr)
		want := map[*tree.Node]bool{}
		for _, n := range p.Eval(root) {
			want[n] = true
		}
		got := map[*tree.Node]bool{}
		root.Walk(func(n *tree.Node) bool {
			if p.MatchesUp(n) {
				got[n] = true
			}
			return true
		})
		if len(got) != len(want) {
			t.Errorf("MatchesUp/%q: %d vs Eval %d", expr, len(got), len(want))
			continue
		}
		for n := range want {
			if !got[n] {
				t.Errorf("MatchesUp/%q missed a node Eval found", expr)
			}
		}
	}
}

func TestHasInnerPredicates(t *testing.T) {
	if MustParse(`/a/b[c='1']`).HasInnerPredicates() {
		t.Error("last-step predicate is not inner")
	}
	if !MustParse(`/a[x]/b`).HasInnerPredicates() {
		t.Error("first-step predicate is inner")
	}
}

func TestPredicateConstructors(t *testing.T) {
	root := parseDoc(t)
	p := &Path{Absolute: true, Steps: []Step{
		{Axis: AxisDescendant, Name: "booktitle", Preds: []Pred{AnyEqualsSelf([]string{"VLDB", "PODS"})}},
	}}
	if got := p.Eval(root); len(got) != 1 {
		t.Errorf("AnyEqualsSelf eval = %d nodes", len(got))
	}
	p2 := &Path{Absolute: true, Steps: []Step{
		{Axis: AxisDescendant, Name: "title", Preds: []Pred{ContainsSelf("Coordination")}},
	}}
	if got := p2.Eval(root); len(got) != 1 {
		t.Errorf("ContainsSelf eval = %d nodes", len(got))
	}
	p3 := &Path{Absolute: true, Steps: []Step{
		{Axis: AxisDescendant, Name: "inproceedings", Preds: []Pred{EqualsChild("year", "1997")}},
	}}
	if got := p3.Eval(root); len(got) != 1 {
		t.Errorf("EqualsChild eval = %d nodes", len(got))
	}
	p4 := &Path{Absolute: true, Steps: []Step{
		{Axis: AxisDescendant, Name: "inproceedings", Preds: []Pred{ContainsChild("title", "Course")}},
	}}
	if got := p4.Eval(root); len(got) != 1 {
		t.Errorf("ContainsChild eval = %d nodes", len(got))
	}
	// Constructors must render parseable strings.
	for _, p := range []*Path{p, p2, p3, p4} {
		if _, err := Parse(p.String()); err != nil {
			t.Errorf("constructed path %q does not re-parse: %v", p.String(), err)
		}
	}
}
