package xpath

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/tree"
)

func benchRoot(b *testing.B, papers int) *tree.Node {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<dblp>")
	for i := 0; i < papers; i++ {
		fmt.Fprintf(&sb, `<inproceedings><author>A%d</author><year>%d</year></inproceedings>`, i, 1990+i%10)
	}
	sb.WriteString("</dblp>")
	c := tree.NewCollection()
	t, err := c.ParseXMLString(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	return t.Root
}

func BenchmarkParse(b *testing.B) {
	const expr = `//inproceedings[year='1999' and not(author='A7')]/author`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEval(b *testing.B) {
	root := benchRoot(b, 500)
	p := MustParse(`//inproceedings[year='1999']/author`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(p.Eval(root)) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkMatchesUp(b *testing.B) {
	root := benchRoot(b, 500)
	p := MustParse(`//inproceedings[year='1999']/author`)
	var authors []*tree.Node
	root.Walk(func(n *tree.Node) bool {
		if n.Tag == "author" {
			authors = append(authors, n)
		}
		return true
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, n := range authors {
			if p.MatchesUp(n) {
				hits++
			}
		}
		if hits == 0 {
			b.Fatal("no matches")
		}
	}
}
