package simindex

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/similarity"
)

// randTerm draws a short string over a tiny alphabet so collisions, shared
// grams and near-misses are all common.
func randTerm(r *rand.Rand) string {
	alpha := []rune("abcd")
	n := r.Intn(7)
	out := make([]rune, n)
	for i := range out {
		out[i] = alpha[r.Intn(len(alpha))]
	}
	return string(out)
}

func buildIndex(terms []string) *Index {
	ix := New()
	for _, t := range terms {
		ix.Add(t)
	}
	return ix
}

func idSet(ids []TermID) map[TermID]bool {
	m := make(map[TermID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// TestCandidatesEditComplete: every live term within Levenshtein (and
// Damerau) distance k of the query must be proposed by the filter.
func TestCandidatesEditComplete(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		terms := make([]string, 40)
		for i := range terms {
			terms[i] = randTerm(r)
		}
		ix := buildIndex(terms)
		q := randTerm(r)
		k := r.Intn(3)
		lev := idSet(ix.CandidatesEdit(q, k, GramsPerEdit))
		dam := idSet(ix.CandidatesEdit(q, k, GramsPerEditTranspose))
		for id := TermID(0); int(id) < len(ix.terms); id++ {
			term := ix.Term(id)
			if ix.refs[id] == 0 {
				continue
			}
			if similarity.WithinK(term, q, k) && !lev[id] {
				t.Logf("levenshtein: dropped %q within %d of %q", term, k, q)
				return false
			}
			if similarity.WithinKDamerau(term, q, k) && !dam[id] {
				t.Logf("damerau: dropped %q within %d of %q", term, k, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCandidatesEditSortedUnique: the result is sorted and duplicate-free so
// callers can stream it without their own dedup pass.
func TestCandidatesEditSortedUnique(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		terms := make([]string, 30)
		for i := range terms {
			terms[i] = randTerm(r)
		}
		ix := buildIndex(terms)
		ids := ix.CandidatesEdit(randTerm(r), r.Intn(3), GramsPerEdit)
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCandidatesPhoneticComplete: every live term within Soundex distance 0
// (or 1, with slack) must be proposed.
func TestCandidatesPhoneticComplete(t *testing.T) {
	names := []string{
		"meier", "mayer", "myer", "smith", "smyth", "smithe",
		"john smith", "jon smyth", "john q smith", "smith john",
		"robert", "rupert", "rob", "", "  ", "x1", "x 1",
	}
	r := rand.New(rand.NewSource(7))
	terms := make([]string, 60)
	for i := range terms {
		if r.Intn(2) == 0 {
			terms[i] = names[r.Intn(len(names))]
		} else {
			terms[i] = randTerm(r)
		}
	}
	ix := buildIndex(terms)
	var sdx similarity.Soundex
	for _, q := range names {
		exact := idSet(ix.CandidatesPhonetic(q, false))
		slack := idSet(ix.CandidatesPhonetic(q, true))
		for id := TermID(0); int(id) < len(ix.terms); id++ {
			if ix.refs[id] == 0 {
				continue
			}
			term := ix.Term(id)
			d := sdx.Distance(term, q)
			if d < 1 && !exact[id] {
				t.Fatalf("exact: dropped %q at distance %v from %q", term, d, q)
			}
			if d < 2 && !slack[id] {
				t.Fatalf("slack: dropped %q at distance %v from %q", term, d, q)
			}
		}
	}
}

// TestIncrementalEqualsRebuild: after a random Add/Remove sequence the live
// term set and every probe answer match an index rebuilt from the surviving
// multiset — tombstones must be invisible.
func TestIncrementalEqualsRebuild(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		inc := New()
		counts := make(map[string]int)
		for i := 0; i < 120; i++ {
			term := randTerm(r)
			if r.Intn(3) != 0 {
				inc.Add(term)
				counts[term]++
			} else {
				inc.Remove(term)
				if counts[term] > 0 {
					counts[term]--
				}
			}
		}
		fresh := New()
		for term, c := range counts {
			for i := 0; i < c; i++ {
				fresh.Add(term)
			}
		}
		if !sameStringSet(inc.LiveTerms(), fresh.LiveTerms()) {
			t.Logf("live sets diverge: %v vs %v", inc.LiveTerms(), fresh.LiveTerms())
			return false
		}
		if inc.Terms() != fresh.Terms() {
			return false
		}
		for i := 0; i < 5; i++ {
			q := randTerm(r)
			k := r.Intn(3)
			a := termStrings(inc, inc.CandidatesEdit(q, k, GramsPerEdit))
			b := termStrings(fresh, fresh.CandidatesEdit(q, k, GramsPerEdit))
			if !sameStringSet(a, b) {
				t.Logf("edit candidates diverge for %q k=%d: %v vs %v", q, k, a, b)
				return false
			}
			a = termStrings(inc, inc.CandidatesPhonetic(q, true))
			b = termStrings(fresh, fresh.CandidatesPhonetic(q, true))
			if !sameStringSet(a, b) {
				t.Logf("phonetic candidates diverge for %q: %v vs %v", q, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func termStrings(ix *Index, ids []TermID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ix.Term(id)
	}
	return out
}

func sameStringSet(a, b []string) bool {
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	if len(as) == 0 && len(bs) == 0 {
		return true
	}
	return reflect.DeepEqual(as, bs)
}

// TestRefcounts: Remove below zero is a no-op, resurrection works, and the
// live gauge tracks.
func TestRefcounts(t *testing.T) {
	ix := New()
	ix.Remove("ghost")
	if ix.Terms() != 0 {
		t.Fatalf("Terms after no-op remove = %d", ix.Terms())
	}
	ix.Add("a")
	ix.Add("a")
	ix.Add("b")
	if ix.Terms() != 2 {
		t.Fatalf("Terms = %d, want 2", ix.Terms())
	}
	ix.Remove("a")
	if ix.Terms() != 2 {
		t.Fatalf("Terms after partial remove = %d, want 2", ix.Terms())
	}
	ix.Remove("a")
	if ix.Terms() != 1 {
		t.Fatalf("Terms after tombstone = %d, want 1", ix.Terms())
	}
	// The 1-rune query sits below GramSize, so the degenerate-length channel
	// proposes every live length-1 term ("b") — but never the tombstone.
	if got := idSet(ix.CandidatesEdit("a", 0, GramsPerEdit)); got[0] {
		t.Fatalf("tombstoned term still proposed: %v", got)
	}
	ix.Add("a")
	if ix.Terms() != 2 {
		t.Fatalf("Terms after resurrect = %d, want 2", ix.Terms())
	}
	if got := idSet(ix.CandidatesEdit("a", 0, GramsPerEdit)); !got[0] {
		t.Fatalf("resurrected term not proposed: %v", got)
	}
}
