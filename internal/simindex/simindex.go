// Package simindex implements a term-level similarity candidate index: the
// filter half of the filter-then-verify pattern that makes `~` predicates
// sublinear in the number of distinct terms.
//
// The index holds every distinct content value of a shard with a live
// reference count, and offers two candidate channels:
//
//   - an occurrence-expanded character n-gram inverted index with length and
//     count filtering for the edit-distance family. Strings within edit
//     distance k share at least max(|a|,|b|) − n + 1 − k·c positional
//     n-grams, where c is the number of grams one edit operation can destroy
//     (n for Levenshtein, n+1 for restricted Damerau-Levenshtein, whose
//     transpositions straddle one extra gram). Lengths for which that bound
//     degenerates to ≤ 0 are enumerated from per-length buckets instead, so
//     the filter never loses a true candidate.
//
//   - phonetic-key buckets for soundex-style measures: terms bucketed by the
//     joined Soundex codes of their tokens, plus a prefix bucket (codes minus
//     the last token) so a one-token length slack — the only way
//     Soundex.Distance produces an odd value — stays one map lookup.
//
// Verification against the real measure (or the SEO relation) is the
// caller's job; the index only guarantees it never drops a true candidate
// for the supported probe shapes.
package simindex

import (
	"sort"
	"strings"

	"repro/internal/similarity"
)

// GramSize is the character n-gram width. Bigrams keep the posting lists
// dense enough to filter short terms (the count bound is useless once
// max(len) < n + k·c) while still cutting candidate sets by orders of
// magnitude on realistic vocabularies.
const GramSize = 2

// GramsPerEdit is the count-filter cost of one Levenshtein edit operation:
// a substitution, insertion or deletion destroys at most GramSize
// positional grams.
const GramsPerEdit = GramSize

// GramsPerEditTranspose is the cost for restricted Damerau-Levenshtein: a
// transposition of adjacent runes touches GramSize+1 grams.
const GramsPerEditTranspose = GramSize + 1

// TermID names a term in one Index. IDs are dense and never reused; a
// removed term keeps its ID with a zero reference count until the next full
// rebuild.
type TermID int32

// Index is the per-shard candidate index. It is not safe for concurrent
// mutation; the owning shard serializes access under its index lock.
type Index struct {
	terms []string
	lens  []int // rune lengths
	refs  []int // live occurrence counts; 0 = tombstone
	live  int   // number of terms with refs > 0

	ids   map[string]TermID
	byLen map[int][]TermID

	// grams maps each n-gram to term IDs, one entry per occurrence of the
	// gram in the term (occurrence expansion: the count filter needs
	// min(count-in-term, count-in-query), not set intersection). Entries
	// for one term are appended together, so the list is sorted by ID and
	// same-term runs are contiguous.
	grams map[string][]TermID

	// phon buckets terms by the joined Soundex codes of their tokens;
	// phonPre by the same key minus its last code (empty-token terms have
	// key "" in phon and no phonPre entry).
	phon    map[string][]TermID
	phonPre map[string][]TermID
}

// New returns an empty index.
func New() *Index {
	return &Index{
		ids:     make(map[string]TermID),
		byLen:   make(map[int][]TermID),
		grams:   make(map[string][]TermID),
		phon:    make(map[string][]TermID),
		phonPre: make(map[string][]TermID),
	}
}

// Add records one occurrence of term, indexing it on first sight. A term
// whose count previously dropped to zero is resurrected in place: its
// postings were never removed, only masked.
func (ix *Index) Add(term string) {
	if id, ok := ix.ids[term]; ok {
		if ix.refs[id] == 0 {
			ix.live++
		}
		ix.refs[id]++
		return
	}
	id := TermID(len(ix.terms))
	r := []rune(term)
	ix.terms = append(ix.terms, term)
	ix.lens = append(ix.lens, len(r))
	ix.refs = append(ix.refs, 1)
	ix.live++
	ix.ids[term] = id
	ix.byLen[len(r)] = append(ix.byLen[len(r)], id)
	for i := 0; i+GramSize <= len(r); i++ {
		g := string(r[i : i+GramSize])
		ix.grams[g] = append(ix.grams[g], id)
	}
	key := PhoneticKey(term)
	ix.phon[key] = append(ix.phon[key], id)
	if pre, ok := dropLastCode(key); ok {
		ix.phonPre[pre] = append(ix.phonPre[pre], id)
	}
}

// Remove drops one occurrence of term. When the count reaches zero the term
// becomes a tombstone: it stops appearing in candidate sets immediately, and
// its postings are reclaimed by the next full rebuild.
func (ix *Index) Remove(term string) {
	id, ok := ix.ids[term]
	if !ok || ix.refs[id] == 0 {
		return
	}
	ix.refs[id]--
	if ix.refs[id] == 0 {
		ix.live--
	}
}

// Term returns the string for id.
func (ix *Index) Term(id TermID) string { return ix.terms[id] }

// Terms returns the number of live (non-tombstoned) terms.
func (ix *Index) Terms() int { return ix.live }

// GramPostings returns the total number of n-gram posting entries, including
// entries held by tombstoned terms.
func (ix *Index) GramPostings() int {
	n := 0
	for _, p := range ix.grams {
		n += len(p)
	}
	return n
}

// LiveTerms returns the live term strings in unspecified order (rebuild
// equivalence checks and debugging).
func (ix *Index) LiveTerms() []string {
	out := make([]string, 0, ix.live)
	for id, r := range ix.refs {
		if r > 0 {
			out = append(out, ix.terms[id])
		}
	}
	return out
}

// CandidatesEdit returns every live term that can lie within edit distance k
// of q, by the length filter ||t|−|q|| ≤ k plus the n-gram count filter
// shared ≥ max(|t|,|q|) − GramSize + 1 − k·gramsPerEdit. Lengths for which
// the bound degenerates (short strings) are enumerated from the length
// buckets. The result is sorted by TermID and duplicate-free; it is a
// superset of the true answer, never a subset.
func (ix *Index) CandidatesEdit(q string, k, gramsPerEdit int) []TermID {
	if k < 0 {
		return nil
	}
	rq := []rune(q)
	lq := len(rq)
	var out []TermID

	// Degenerate-bound channel: lengths whose count threshold is ≤ 0 get no
	// filtering power from grams, so enumerate the whole length bucket.
	for l := lq - k; l <= lq+k; l++ {
		if l < 0 {
			continue
		}
		if editThreshold(l, lq, k, gramsPerEdit) > 0 {
			continue
		}
		for _, id := range ix.byLen[l] {
			if ix.refs[id] > 0 {
				out = append(out, id)
			}
		}
	}

	// Count-filter channel: merge the query's gram postings, crediting each
	// term min(count-in-term, count-in-query) per gram, then keep terms
	// meeting their length-specific threshold. Thresholds ≤ 0 were already
	// handled above, so the two channels are disjoint.
	qGrams := make(map[string]int)
	for i := 0; i+GramSize <= len(rq); i++ {
		qGrams[string(rq[i:i+GramSize])]++
	}
	counts := make(map[TermID]int)
	for g, qc := range qGrams {
		postings := ix.grams[g]
		for i := 0; i < len(postings); {
			id := postings[i]
			run := 1
			for i+run < len(postings) && postings[i+run] == id {
				run++
			}
			i += run
			if run > qc {
				run = qc
			}
			counts[id] += run
		}
	}
	for id, shared := range counts {
		if ix.refs[id] == 0 {
			continue
		}
		lt := ix.lens[id]
		if lt < lq-k || lt > lq+k {
			continue
		}
		t := editThreshold(lt, lq, k, gramsPerEdit)
		if t <= 0 {
			continue // degenerate channel owns this length
		}
		if shared >= t {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// editThreshold is the minimum number of shared grams two strings of rune
// lengths lt and lq must have when their edit distance is ≤ k.
func editThreshold(lt, lq, k, gramsPerEdit int) int {
	m := lt
	if lq > m {
		m = lq
	}
	return m - GramSize + 1 - k*gramsPerEdit
}

// CandidatesPhonetic returns every live term whose Soundex distance to q can
// be 0 (same token count, all positional codes equal) or, with slack, 1 (one
// token count difference, all shared positions equal — the only source of
// odd Soundex distances). Sorted by TermID, duplicate-free.
func (ix *Index) CandidatesPhonetic(q string, slack bool) []TermID {
	key := PhoneticKey(q)
	var out []TermID
	add := func(ids []TermID) {
		for _, id := range ids {
			if ix.refs[id] > 0 {
				out = append(out, id)
			}
		}
	}
	add(ix.phon[key])
	if slack {
		// One token fewer than q: the term's full key is q's key minus its
		// last code. One token more: the term's prefix key equals q's key.
		if pre, ok := dropLastCode(key); ok {
			add(ix.phon[pre])
		}
		add(ix.phonPre[key])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// The three buckets hold terms of three distinct token counts, so the
	// merge is already duplicate-free.
	return out
}

// PhoneticKey is the joined Soundex code sequence of s's tokens; terms and
// queries bucket by it.
func PhoneticKey(s string) string {
	toks := similarity.Tokenize(s)
	if len(toks) == 0 {
		return ""
	}
	codes := make([]string, len(toks))
	for i, t := range toks {
		codes[i] = similarity.SoundexCode(t)
	}
	return strings.Join(codes, " ")
}

// dropLastCode strips the final code from a phonetic key, reporting false
// for the empty (zero-token) key.
func dropLastCode(key string) (string, bool) {
	if key == "" {
		return "", false
	}
	if i := strings.LastIndexByte(key, ' '); i >= 0 {
		return key[:i], true
	}
	return "", true
}
