package router

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/similarity"
)

// TestTransportReuse: the pooled client must reuse TCP connections across
// the router's probe, summary, query and ingest traffic instead of opening
// one per request — the whole point of sharing one http.Client.
func TestTransportReuse(t *testing.T) {
	var conns atomic.Int64
	sys := core.NewSystem()
	if _, err := sys.AddInstance("col"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(sys, server.Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	// ConnState must be installed before the listener starts accepting.
	nodeTS := httptest.NewUnstartedServer(s.Handler())
	nodeTS.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	nodeTS.Start()
	t.Cleanup(nodeTS.Close)

	rt, rerr := New(Config{
		Nodes:         []string{nodeTS.URL},
		SummaryTTL:    1, // nanosecond: every request refetches the digest
		ProbeInterval: -1,
		Client:        NewClient(),
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	t.Cleanup(rt.Close)

	requests := 0
	do := func(method, path, body string) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s %s: %d %s", method, path, w.Code, w.Body)
		}
		requests++
	}

	do(http.MethodPost, "/v1/docs?instance=col", docLine(1)+"\n"+docLine(2)+"\n")
	for i := 0; i < 5; i++ {
		do(http.MethodPost, "/v1/query", fmt.Sprintf(`{"instance":"col","pattern":%q}`, allAuthors))
		do(http.MethodPost, "/v1/query", fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true}`, allAuthors))
	}
	rt.ProbeOnce(context.Background())

	// Every router request fans at least one upstream call (most fan two:
	// digest + query). Sequential traffic over a pooled transport should
	// ride a handful of connections, not one per upstream call.
	if got := conns.Load(); got > 3 {
		t.Fatalf("opened %d TCP connections for %d router requests; transport is not being reused", got, requests)
	}
}
