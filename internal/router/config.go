// Package router is tossrouter's stateless routing tier: it consistent-hashes
// documents across a static set of tossd nodes, scatters /v1/query requests to
// every node that can hold the target collection, and gathers the per-node
// NDJSON streams back into one globally ordered answer stream. Remote answers
// carry global insertion sequences (assigned by the router at ingest time), so
// the k-way merge reproduces exactly the order a single node holding every
// document would have produced — routed results are byte-equivalent to a
// single-node run. See docs/CLUSTER.md for the wire contract.
package router

import (
	"log"
	"net/http"
	"time"
)

// Config tunes the router; zero values select the documented defaults.
type Config struct {
	// Nodes lists the tossd base URLs forming the cluster (static topology;
	// at least one is required). Order does not matter: placement comes from
	// the consistent-hash ring, which depends only on the set of URLs.
	Nodes []string

	// MaxInFlight caps concurrently executing routed requests (default 16);
	// MaxQueue caps requests waiting for a slot before new arrivals are
	// rejected with 429 (default 2×MaxInFlight). Same admission discipline
	// as tossd itself (internal/server.Limiter).
	MaxInFlight int
	MaxQueue    int

	// DefaultTimeout applies when a request names no timeout_ms (default
	// 30s). MaxTimeout (default 2m) caps what a request may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// Retries is how many times one upstream request is retried after a
	// connect error, 429 or 5xx (default 2, so 3 attempts total).
	// RetryBackoff is the first retry's delay; it doubles per attempt
	// (default 50ms). Responses that already started streaming answers are
	// never retried — a replay would duplicate answers downstream — they
	// surface as partial results instead.
	Retries      int
	RetryBackoff time.Duration

	// SummaryTTL bounds how long a node's /v1/stats-summary digest is reused
	// before refetching (default 2s). The digest is advisory (fan-out
	// ordering, empty-node skipping, seq seeding); staleness degrades
	// planning, never correctness.
	SummaryTTL time.Duration

	// ProbeInterval is the period of the background /readyz prober
	// (default 2s; negative disables probing). With probing disabled the
	// router's own /readyz reports ready whenever it is not draining.
	ProbeInterval time.Duration

	// Logger receives one line per request and per node-failure when set.
	Logger *log.Logger

	// Client is the HTTP client used for every upstream call. Defaults to
	// SharedClient(), the process-wide pooled client; tests substitute their
	// own. Fan-out correctness relies on connection pooling — per-request
	// clients would renegotiate TCP for every node stream.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.SummaryTTL == 0 {
		c.SummaryTTL = 2 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = SharedClient()
	}
	return c
}
