package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

// maxIngestLine mirrors tossd's bound on one NDJSON ingest line.
const maxIngestLine = 16 << 20

// RoutedIngestResponse is tossd's IngestResponse plus the router's nodes
// block. Generation is the maximum collection generation across reached
// nodes (node generations are independent counters; the maximum is only a
// freshness hint, not a cluster-wide version).
type RoutedIngestResponse struct {
	server.IngestResponse
	Nodes NodesInfo `json:"nodes"`
}

// allocSeq hands out the next global sequence for a collection.
func (rt *Router) allocSeq(collection string) uint64 {
	rt.seqMu.Lock()
	defer rt.seqMu.Unlock()
	seq := rt.nextSeq[collection]
	rt.nextSeq[collection] = seq + 1
	return seq
}

// bumpSeq raises the collection's counter to at least next.
func (rt *Router) bumpSeq(collection string, next uint64) {
	rt.seqMu.Lock()
	defer rt.seqMu.Unlock()
	if next > rt.nextSeq[collection] {
		rt.nextSeq[collection] = next
	}
}

// seedSeq raises the router's counter to the cluster's: the maximum
// next_seq any node reports for the collection. Re-seeding at every batch
// start is what makes the router stateless — a restarted router (or a
// second router in front of the same nodes) rejoins the sequence space
// where the cluster actually is, not where its own memory says.
func (rt *Router) seedSeq(collection string, sums map[string]*server.StatsSummary) {
	var max uint64
	for _, sum := range sums {
		if sum == nil {
			continue
		}
		if cs, ok := sum.Collections[collection]; ok && cs.NextSeq > max {
			max = cs.NextSeq
		}
	}
	rt.bumpSeq(collection, max)
}

// handleDocs scatters a POST /v1/docs NDJSON batch across the cluster. Each
// line is decoded, given a global sequence (unless the client pinned one),
// routed to its owner node by consistent hash of (collection, key), and
// re-encoded into that node's sub-batch; sub-batches then ship in parallel.
// Per-line node errors are mapped back to the client's original line
// numbers. A node that cannot be reached fails all of its lines: they are
// counted as errors and the response carries the partial flag with the node
// named — the client re-sends the reported lines, and explicit sequences
// make the retry idempotent (a replayed put lands at the same position).
func (rt *Router) handleDocs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.MaxTimeout)
	defer cancel()
	release, err := rt.limiter.Acquire(ctx)
	if err != nil {
		if errors.Is(err, server.ErrSaturated) {
			rt.mRejected.Inc()
			http.Error(w, fmt.Sprintf("router saturated: %d executing, %d queued", rt.limiter.InFlight(), rt.limiter.Queued()), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()

	sums := rt.summaries(ctx)
	collection := r.URL.Query().Get("instance")
	if collection == "" {
		// The single-node server defaults to its first instance; the router
		// has no instance list of its own, so it resolves the default from
		// the cluster: the lexicographically first collection any node
		// reports. Deterministic, and identical on every router replica.
		names := map[string]bool{}
		for _, sum := range sums {
			if sum == nil {
				continue
			}
			for name := range sum.Collections {
				names[name] = true
			}
		}
		if len(names) == 0 {
			http.Error(w, "no instance named and no node summary lists a collection", http.StatusBadRequest)
			return
		}
		sorted := make([]string, 0, len(names))
		for name := range names {
			sorted = append(sorted, name)
		}
		sort.Strings(sorted)
		collection = sorted[0]
	}
	rt.seedSeq(collection, sums)

	// Partition the batch: per-node re-encoded sub-batches plus the mapping
	// from each node's local line numbers back to the client's.
	type nodeBatch struct {
		buf   bytes.Buffer
		lines []int // node-local line i (0-based) was client line lines[i]
	}
	batches := map[string]*nodeBatch{}
	resp := RoutedIngestResponse{IngestResponse: server.IngestResponse{Instance: collection}}
	lineErr := func(line int, key string, err error) {
		resp.ErrorCount++
		rt.mIngestErrors.Inc()
		if len(resp.Errors) < 20 {
			resp.Errors = append(resp.Errors, server.IngestError{Line: line, Key: key, Err: err.Error()})
		}
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), maxIngestLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var doc server.IngestLine
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			lineErr(lineNo, "", fmt.Errorf("bad json: %v", err))
			continue
		}
		if doc.Key == "" {
			lineErr(lineNo, "", errors.New("missing key"))
			continue
		}
		if doc.Seq != nil {
			rt.bumpSeq(collection, *doc.Seq+1)
		} else if !doc.Delete {
			seq := rt.allocSeq(collection)
			doc.Seq = &seq
		}
		owner := rt.ring.owner(collection, doc.Key)
		nb := batches[owner]
		if nb == nil {
			nb = &nodeBatch{}
			batches[owner] = nb
		}
		enc, err := json.Marshal(&doc)
		if err != nil {
			lineErr(lineNo, doc.Key, err)
			continue
		}
		nb.buf.Write(enc)
		nb.buf.WriteByte('\n')
		nb.lines = append(nb.lines, lineNo)
	}
	if err := sc.Err(); err != nil {
		lineErr(lineNo+1, "", fmt.Errorf("reading body: %v", err))
	}

	// Ship sub-batches in parallel. Whole sub-batch buffers (rather than
	// streaming pipes) keep the upstream request retryable and the
	// line-number mapping simple; explicit sequences keep any retry
	// idempotent.
	type nodeOutcome struct {
		url  string
		resp *server.IngestResponse
		sent []int
		err  error
	}
	outcomes := make([]*nodeOutcome, 0, len(batches))
	var wg sync.WaitGroup
	path := "/v1/docs?instance=" + url.QueryEscape(collection)
	for owner, nb := range batches {
		oc := &nodeOutcome{url: owner, sent: nb.lines}
		outcomes = append(outcomes, oc)
		wg.Add(1)
		go func(oc *nodeOutcome, body []byte) {
			defer wg.Done()
			n := rt.nodeByURL(oc.url)
			hresp, err := rt.doNode(ctx, n, path, body)
			if err != nil {
				oc.err = err
				return
			}
			defer hresp.Body.Close()
			if hresp.StatusCode != http.StatusOK {
				oc.err = fmt.Errorf("status %d: %s", hresp.StatusCode, readSnippet(hresp.Body))
				rt.nodeFailed(n)
				return
			}
			var ir server.IngestResponse
			if err := json.NewDecoder(hresp.Body).Decode(&ir); err != nil {
				oc.err = fmt.Errorf("decoding response: %v", err)
				rt.nodeFailed(n)
				return
			}
			oc.resp = &ir
		}(oc, nb.buf.Bytes())
	}
	wg.Wait()
	// The digests this batch was planned with are now stale; drop them so a
	// query landing inside the TTL window refetches instead of skipping a
	// node whose pre-ingest digest said "empty".
	shipped := make([]string, 0, len(batches))
	for owner := range batches {
		shipped = append(shipped, owner)
	}
	rt.invalidateSummaries(shipped)

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].url < outcomes[j].url })
	info := NodesInfo{Configured: len(rt.nodes), Targeted: len(batches)}
	for _, oc := range outcomes {
		if oc.err != nil {
			// Every line this node owned is lost; report them against the
			// client's own line numbers so a resend targets exactly them.
			info.Failed = append(info.Failed, oc.url)
			resp.ErrorCount += len(oc.sent)
			rt.mIngestErrors.Add(uint64(len(oc.sent)))
			if len(resp.Errors) < 20 {
				resp.Errors = append(resp.Errors, server.IngestError{
					Line: oc.sent[0],
					Err:  fmt.Sprintf("node %s unreachable, %d line(s) not applied (lines %s): %v", oc.url, len(oc.sent), lineRanges(oc.sent), oc.err),
				})
			}
			continue
		}
		info.Reached++
		resp.Ingested += oc.resp.Ingested
		resp.Deleted += oc.resp.Deleted
		resp.ErrorCount += oc.resp.ErrorCount
		if oc.resp.Generation > resp.Generation {
			resp.Generation = oc.resp.Generation
		}
		for _, e := range oc.resp.Errors {
			if e.Line >= 1 && e.Line <= len(oc.sent) {
				e.Line = oc.sent[e.Line-1]
			}
			if len(resp.Errors) < 20 {
				resp.Errors = append(resp.Errors, e)
			}
		}
	}
	info.Partial = len(info.Failed) > 0
	if info.Partial {
		rt.mPartials.Inc()
	}
	rt.mIngested.Add(uint64(resp.Ingested))
	resp.Nodes = info
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	sort.Slice(resp.Errors, func(i, j int) bool { return resp.Errors[i].Line < resp.Errors[j].Line })
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf("ingest instance=%s ingested=%d deleted=%d errors=%d nodes=%d/%d",
			collection, resp.Ingested, resp.Deleted, resp.ErrorCount, info.Reached, info.Targeted)
	}
	w.Header().Set("Content-Type", "application/json")
	if info.Partial {
		w.Header().Set("X-Toss-Partial", "1")
	}
	json.NewEncoder(w).Encode(resp)
}

func (rt *Router) nodeByURL(u string) *node {
	for _, n := range rt.nodes {
		if n.url == u {
			return n
		}
	}
	return nil
}

// lineRanges compresses a sorted line-number list into "3-7,9,12-14" form
// for the unreachable-node error message.
func lineRanges(lines []int) string {
	var b strings.Builder
	for i := 0; i < len(lines); {
		j := i
		for j+1 < len(lines) && lines[j+1] == lines[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", lines[i], lines[j])
		} else {
			fmt.Fprintf(&b, "%d", lines[i])
		}
		i = j + 1
	}
	return b.String()
}
