package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// probeTimeout bounds one /readyz round-trip. Health is advisory — it drives
// the router's own /readyz and the toss_router_node_healthy gauge, never
// query fan-out (a draining node answers 503 on /readyz yet still serves
// in-flight queries, and a flapping node is better handled by the retry
// path than by racing the prober) — so a short, fixed bound is right.
const probeTimeout = 2 * time.Second

// ProbeOnce probes every node's /readyz concurrently, updates per-node
// health state, and returns how many nodes reported ready. The background
// loop calls this on its interval; tests call it directly.
func (rt *Router) ProbeOnce(ctx context.Context) int {
	var wg sync.WaitGroup
	var healthyMu sync.Mutex
	healthy := 0
	for _, n := range rt.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			if err := rt.probeNode(ctx, n); err != nil {
				n.setProbe(false, err.Error())
				return
			}
			n.setProbe(true, "")
			healthyMu.Lock()
			healthy++
			healthyMu.Unlock()
		}(n)
	}
	wg.Wait()
	rt.healthyCount.Store(int64(healthy))
	return healthy
}

func (rt *Router) probeNode(ctx context.Context, n *node) error {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("readyz %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// probeLoop runs ProbeOnce immediately (so the router's first /readyz answer
// after startup already reflects the cluster) and then on every tick until
// Close.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	ctx := context.Background()
	rt.ProbeOnce(ctx)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
			rt.ProbeOnce(ctx)
		}
	}
}
