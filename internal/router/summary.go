package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
)

// summaryTimeout bounds one /v1/stats-summary fetch; the digest is bounded
// server-side (top-128 tags per collection), so this is a small request.
const summaryTimeout = 2 * time.Second

// summaryEntry caches one node's digest. The entry mutex doubles as a
// per-node singleflight: concurrent requests needing the same stale digest
// line up behind one fetch instead of stampeding the node.
type summaryEntry struct {
	mu      sync.Mutex
	fetched time.Time
	sum     *server.StatsSummary
}

// summaries returns every node's stats digest, fetching in parallel where
// the cache is stale. A node that cannot be fetched maps to nil — callers
// must treat nil as "unknown, fan out anyway". A failed refresh deliberately
// does NOT fall back to the stale digest: a stale digest can say "empty" and
// the skip would then silently hide a dead node from the partial-result
// accounting. Unknown nodes are targeted, and targeting a dead node is what
// turns its death into a reported failure.
func (rt *Router) summaries(ctx context.Context) map[string]*server.StatsSummary {
	out := make(map[string]*server.StatsSummary, len(rt.nodes))
	var outMu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range rt.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			sum := rt.nodeSummary(ctx, n)
			outMu.Lock()
			out[n.url] = sum
			outMu.Unlock()
		}(n)
	}
	wg.Wait()
	return out
}

func (rt *Router) nodeSummary(ctx context.Context, n *node) *server.StatsSummary {
	rt.sumMu.Lock()
	e, ok := rt.sums[n.url]
	if !ok {
		e = &summaryEntry{}
		rt.sums[n.url] = e
	}
	rt.sumMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sum != nil && time.Since(e.fetched) < rt.cfg.SummaryTTL {
		return e.sum
	}
	sum, err := rt.fetchSummary(ctx, n)
	if err != nil {
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Printf("stats-summary %s: %v", n.url, err)
		}
		e.sum = nil // drop the stale digest: unknown beats wrong (see summaries)
		return nil
	}
	e.sum, e.fetched = sum, time.Now()
	return sum
}

// invalidateSummaries drops the cached digests of the given nodes. Called
// after a routed ingest: the digests the batch was planned with are now
// known-stale, and a query arriving inside the TTL window must not skip a
// node because its pre-ingest digest said "empty".
func (rt *Router) invalidateSummaries(urls []string) {
	rt.sumMu.Lock()
	defer rt.sumMu.Unlock()
	for _, u := range urls {
		delete(rt.sums, u)
	}
}

func (rt *Router) fetchSummary(ctx context.Context, n *node) (*server.StatsSummary, error) {
	ctx, cancel := context.WithTimeout(ctx, summaryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/v1/stats-summary", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var sum server.StatsSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return nil, err
	}
	return &sum, nil
}

// planTargets is the router's planner-lite: given the collection a query
// targets and the tag names its condition mentions, it decides which nodes
// to fan out to and in what order. The rules, in decreasing strength:
//
//   - A node whose fresh digest shows the collection absent or empty is
//     skipped outright — it cannot contribute answers. (An empty collection
//     name targets the node's default instance, which the router cannot
//     resolve per node, so nothing is skipped.)
//   - Among targeted nodes, fan-out is ordered by estimated contribution:
//     the sum of per-tag document counts for the query's tags, falling back
//     to the collection's document count when the digest names none of the
//     tags. Tag estimates only order, never skip: ontology rewriting (SEO)
//     can expand a query's tags beyond anything the digest mentions, so a
//     zero estimate does not prove a node has no answers.
//   - A node with no digest at all (unreachable, never fetched) is targeted
//     first: nothing is known, so nothing may be skipped, and starting its
//     stream early hides its (likely slower) first-answer latency.
//
// skipped reports the URLs left out, and absent reports whether every
// digest-bearing node showed the collection missing entirely (the routed
// equivalent of tossd's 404 for an unknown instance).
func (rt *Router) planTargets(ctx context.Context, collection string, tags []string) (targets []*node, skipped []string, absent bool) {
	sums := rt.summaries(ctx)
	type cand struct {
		n   *node
		est float64
	}
	var cands []cand
	known, missing := 0, 0
	for _, n := range rt.nodes {
		sum := sums[n.url]
		if sum == nil {
			cands = append(cands, cand{n: n, est: -1}) // sentinel: unknown
			continue
		}
		known++
		if collection == "" {
			// No collection named: every node resolves its own default
			// instance, so all of them are in play. Order by total docs.
			total := 0
			for _, cs := range sum.Collections {
				total += cs.Docs
			}
			cands = append(cands, cand{n: n, est: float64(total)})
			continue
		}
		cs, ok := sum.Collections[collection]
		if !ok {
			missing++
			skipped = append(skipped, n.url)
			continue
		}
		if cs.Docs == 0 {
			skipped = append(skipped, n.url)
			continue
		}
		est := 0.0
		matched := false
		for _, tag := range tags {
			if ts, ok := cs.Tags[tag]; ok {
				est += float64(ts.Docs)
				matched = true
			}
		}
		if !matched {
			est = float64(cs.Docs)
		}
		cands = append(cands, cand{n: n, est: est})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		// Unknown (-1) sorts first, then descending estimate.
		if (cands[i].est < 0) != (cands[j].est < 0) {
			return cands[i].est < 0
		}
		return cands[i].est > cands[j].est
	})
	for _, c := range cands {
		targets = append(targets, c.n)
	}
	absent = collection != "" && known > 0 && missing == known
	return targets, skipped, absent
}
