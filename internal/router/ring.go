package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual points each node contributes to the hash
// ring. 128 keeps the expected per-node share within a few percent of even
// for small clusters while the ring stays tiny (N×128 points, binary
// searched per placement).
const ringVnodes = 128

// ring is a consistent-hash ring over node URLs. Documents are placed by
// hashing collection + "\x00" + key clockwise onto the ring; the separator
// keeps ("ab","c") and ("a","bc") from colliding. Placement depends only on
// the set of node URLs, so every router instance configured with the same
// topology routes identically — and adding a node moves only ~1/N of keys.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

func newRing(nodes []string) *ring {
	r := &ring{
		points: make([]ringPoint, 0, len(nodes)*ringVnodes),
		nodes:  nodes,
	}
	for i, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: mix64(fnv64(fmt.Sprintf("%s#%d", n, v))),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node index so the ring is
		// deterministic regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owner returns the node URL that stores key within collection.
func (r *ring) owner(collection, key string) string {
	h := mix64(fnv64(collection + "\x00" + key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.nodes[r.points[i].node]
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer. FNV-1a alone clusters badly over the
// near-identical strings the ring feeds it (vnode labels differing in a few
// digits), which skews node shares by tens of percent; the finalizer's
// avalanche restores a near-uniform spread.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
