package router

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: placement depends only on the node set, not on the
// order nodes were configured in.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1 := newRing(nodes)
	r2 := newRing([]string{nodes[2], nodes[0], nodes[1]})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if o1, o2 := r1.owner("col", key), r2.owner("col", key); o1 != o2 {
			t.Fatalf("key %s: order-dependent placement %s vs %s", key, o1, o2)
		}
	}
}

// TestRingDistribution: with 128 vnodes per node, no node's share of 10k
// keys should stray wildly from 1/N.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := newRing(nodes)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[r.owner("col", fmt.Sprintf("doc-%d", i))]++
	}
	for _, n := range nodes {
		if counts[n] < 1500 || counts[n] > 6000 {
			t.Fatalf("lopsided ring: %v", counts)
		}
	}
}

// TestRingCollectionSeparation: the same key in different collections may
// land on different nodes, and the separator keeps ("ab","c") distinct from
// ("a","bc").
func TestRingCollectionSeparation(t *testing.T) {
	r := newRing([]string{"http://a:8080", "http://b:8080", "http://c:8080"})
	if r.owner("ab", "c") == r.owner("a", "bc") {
		// Not necessarily a failure — but the hashed bytes must differ.
		if fnv64("ab\x00c") == fnv64("a\x00bc") {
			t.Fatal("separator does not separate")
		}
	}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if r.owner("col", key) != r.owner("other", key) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("collection name does not influence placement")
	}
}
