package router

import (
	"net"
	"net/http"
	"sync"
	"time"
)

// NewClient builds an HTTP client tuned for fan-out against a small set of
// long-lived tossd nodes: a pooled transport with generous per-host idle
// connections (every routed query opens one stream per node, so the per-host
// pool must cover the router's full admission width), keep-alives to hold
// those connections across requests, and bounded dial/TLS handshakes so a
// dead node fails fast enough for the retry loop to matter. There is no
// client-level timeout: streamed responses legitimately outlive any fixed
// bound, and per-request deadlines come from the request context instead.
func NewClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   2 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxIdleConns:          128,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       90 * time.Second,
			TLSHandshakeTimeout:   5 * time.Second,
			ExpectContinueTimeout: time.Second,
		},
	}
}

var (
	sharedOnce   sync.Once
	sharedClient *http.Client
)

// SharedClient returns the process-wide pooled client. Everything in this
// process that talks to tossd nodes — router fan-out, health probes, summary
// polls, the tossql remote mode and the CI smoke drivers — goes through this
// one client, so connections are reused across all of them instead of each
// call path keeping its own cold pool.
func SharedClient() *http.Client {
	sharedOnce.Do(func() { sharedClient = NewClient() })
	return sharedClient
}
