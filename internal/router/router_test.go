package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/similarity"
)

const allAuthors = `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author"`

// newNode builds an empty tossd-equivalent node holding instance "col" and
// serves it over httptest. Collections start empty and are fed through
// ingestion, exactly like a production "-instance col=" node.
func newNode(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	sys := core.NewSystem()
	if _, err := sys.AddInstance("col"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(similarity.NameRule{}, 3); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(sys, server.Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newTestRouter wires a router over the given node URLs with test-friendly
// knobs: no background prober, no summary caching, millisecond backoff.
func newTestRouter(t *testing.T, urls ...string) *Router {
	t.Helper()
	rt, err := New(Config{
		Nodes:         urls,
		SummaryTTL:    time.Nanosecond,
		ProbeInterval: -1,
		Retries:       2,
		RetryBackoff:  time.Millisecond,
		Client:        NewClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func docLine(i int) string {
	xml := fmt.Sprintf("<inproceedings><author>Author %d</author><title>Paper %d</title></inproceedings>", i, i)
	b, _ := json.Marshal(map[string]string{"key": fmt.Sprintf("doc-%d", i), "xml": xml})
	return string(b)
}

func postNDJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func postQuery(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// rawField extracts one top-level field of a JSON object as raw bytes —
// the unit of byte-equivalence comparisons.
func rawField(t *testing.T, body []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v (%s)", field, err, body)
	}
	return string(m[field])
}

// TestRoutedEquivalence is the core acceptance test: for clusters of 1, 2
// and 3 nodes, documents ingested through the router and queried through
// the router produce byte-identical answers — materialised, streamed,
// limited, ranked, and with sequence positions — to one reference node that
// ingested the same NDJSON lines directly.
func TestRoutedEquivalence(t *testing.T) {
	for _, nodes := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			var urls []string
			for i := 0; i < nodes; i++ {
				_, ts := newNode(t)
				urls = append(urls, ts.URL)
			}
			_, refTS := newNode(t)
			rt := newTestRouter(t, urls...)
			routerTS := httptest.NewServer(rt.Handler())
			t.Cleanup(routerTS.Close)

			var batch strings.Builder
			const docs = 60
			for i := 0; i < docs; i++ {
				batch.WriteString(docLine(i))
				batch.WriteByte('\n')
			}
			resp := postNDJSON(t, routerTS.URL+"/v1/docs?instance=col", batch.String())
			var ir RoutedIngestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if ir.Ingested != docs || ir.ErrorCount != 0 {
				t.Fatalf("routed ingest: %+v", ir.IngestResponse)
			}
			refResp := postNDJSON(t, refTS.URL+"/v1/docs?instance=col", batch.String())
			refResp.Body.Close()

			if nodes > 1 {
				spread := 0
				for _, u := range urls {
					r, err := http.Get(u + "/v1/stats-summary")
					if err != nil {
						t.Fatal(err)
					}
					var sum server.StatsSummary
					json.NewDecoder(r.Body).Decode(&sum)
					r.Body.Close()
					if sum.Collections["col"].Docs > 0 {
						spread++
					}
				}
				if spread < 2 {
					t.Fatalf("expected documents spread over >=2 nodes, got %d", spread)
				}
			}

			post := func(url, body string) (int, []byte) {
				resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				return resp.StatusCode, buf.Bytes()
			}

			queries := []string{
				fmt.Sprintf(`{"instance":"col","pattern":%q}`, allAuthors),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"limit":7}`, allAuthors),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"seqs":true}`, allAuthors),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"ranked":true}`, `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Author 1"`),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"ranked":true,"seqs":true,"limit":5}`, `#1 pc #2 :: #1.tag = "inproceedings" & #2.tag = "author" & #2.content ~ "Author 2"`),
			}
			for qi, q := range queries {
				gotCode, got := post(routerTS.URL, q)
				wantCode, want := post(refTS.URL, q)
				if gotCode != wantCode {
					t.Fatalf("query %d: status %d vs reference %d\nrouted: %s\nref: %s", qi, gotCode, wantCode, got, want)
				}
				ga, wa := rawField(t, got, "answers"), rawField(t, want, "answers")
				if ga != wa {
					t.Fatalf("query %d: answers diverge\nrouted: %s\nref:    %s", qi, ga, wa)
				}
				if rawField(t, got, "count") != rawField(t, want, "count") {
					t.Fatalf("query %d: counts diverge", qi)
				}
			}

			// Streamed bodies must be byte-identical end to end (same lines,
			// same encoding, same order), with and without seqs.
			for _, q := range []string{
				fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true}`, allAuthors),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true,"seqs":true}`, allAuthors),
				fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true,"limit":9}`, allAuthors),
			} {
				gotCode, got := post(routerTS.URL, q)
				wantCode, want := post(refTS.URL, q)
				if gotCode != http.StatusOK || wantCode != http.StatusOK {
					t.Fatalf("stream status %d/%d", gotCode, wantCode)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("streamed bodies diverge\nrouted: %s\nref:    %s", got, want)
				}
			}
		})
	}
}

// TestRoutedDeleteAndReplace checks mutation semantics survive routing: a
// replaced document keeps its sequence position, a deleted one disappears.
func TestRoutedDeleteAndReplace(t *testing.T) {
	_, ts1 := newNode(t)
	_, ts2 := newNode(t)
	_, refTS := newNode(t)
	rt := newTestRouter(t, ts1.URL, ts2.URL)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)

	var batch strings.Builder
	for i := 0; i < 10; i++ {
		batch.WriteString(docLine(i) + "\n")
	}
	// Replace doc-3 (keeps seq 3) and delete doc-7.
	repl, _ := json.Marshal(map[string]string{"key": "doc-3", "xml": "<inproceedings><author>Replaced</author></inproceedings>"})
	batch.WriteString(string(repl) + "\n")
	batch.WriteString(`{"key":"doc-7","delete":true}` + "\n")

	for _, url := range []string{routerTS.URL, refTS.URL} {
		resp := postNDJSON(t, url+"/v1/docs?instance=col", batch.String())
		var ir server.IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ir.Ingested != 11 || ir.Deleted != 1 || ir.ErrorCount != 0 {
			t.Fatalf("%s ingest: %+v", url, ir)
		}
	}
	q := fmt.Sprintf(`{"instance":"col","pattern":%q,"seqs":true}`, allAuthors)
	got := postQuery(t, rt.Handler(), q)
	ref, err := http.Post(refTS.URL+"/v1/query", "application/json", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	refBuf.ReadFrom(ref.Body)
	ref.Body.Close()
	ga, wa := rawField(t, got.Body.Bytes(), "answers"), rawField(t, refBuf.Bytes(), "answers")
	if ga != wa {
		t.Fatalf("answers diverge after replace+delete\nrouted: %s\nref:    %s", ga, wa)
	}
	if !strings.Contains(ga, "Replaced") || strings.Contains(ga, "Author 7") {
		t.Fatalf("replace/delete not reflected: %s", ga)
	}
}

// TestPartialOnNodeDeath kills one node of two and asserts the routed
// response is a well-formed partial naming the dead node, and that the
// router's error metrics moved.
func TestPartialOnNodeDeath(t *testing.T) {
	_, ts1 := newNode(t)
	_, ts2 := newNode(t)
	rt := newTestRouter(t, ts1.URL, ts2.URL)
	routerTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerTS.Close)

	var batch strings.Builder
	for i := 0; i < 20; i++ {
		batch.WriteString(docLine(i) + "\n")
	}
	resp := postNDJSON(t, routerTS.URL+"/v1/docs?instance=col", batch.String())
	resp.Body.Close()

	ts2.Close() // node dies between ingest and query

	q := fmt.Sprintf(`{"instance":"col","pattern":%q}`, allAuthors)
	w := postQuery(t, rt.Handler(), q)
	if w.Code != http.StatusOK {
		t.Fatalf("partial query status %d: %s", w.Code, w.Body)
	}
	var rr RoutedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Nodes.Partial {
		t.Fatalf("expected partial result, got %+v", rr.Nodes)
	}
	if len(rr.Nodes.Failed) != 1 || rr.Nodes.Failed[0] != ts2.URL {
		t.Fatalf("failed nodes %v, want [%s]", rr.Nodes.Failed, ts2.URL)
	}
	if rr.Nodes.Reached != rr.Nodes.Targeted-1 {
		t.Fatalf("reached %d of %d targeted", rr.Nodes.Reached, rr.Nodes.Targeted)
	}
	if rr.Count == 0 || rr.Count >= 20 {
		t.Fatalf("partial count %d, want surviving node's share (0 < n < 20)", rr.Count)
	}
	if w.Header().Get("X-Toss-Partial") != "1" {
		t.Fatal("missing X-Toss-Partial header")
	}

	// Streamed: survivors' answers arrive, then the in-band trailer names
	// the dead node.
	w = postQuery(t, rt.Handler(), fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true}`, allAuthors))
	if w.Code != http.StatusOK {
		t.Fatalf("streamed partial status %d: %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Error == "" || !trailer.Partial || trailer.Node != ts2.URL {
		t.Fatalf("trailer %+v, want partial naming %s", trailer, ts2.URL)
	}
	if len(lines)-1 != rr.Count {
		t.Fatalf("streamed %d answers, materialised said %d", len(lines)-1, rr.Count)
	}

	// The per-node error counter must have moved for the dead node.
	mw := httptest.NewRecorder()
	rt.Handler().ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metrics := mw.Body.String()
	errLine := fmt.Sprintf(`toss_router_node_errors_total{node="%s"}`, ts2.URL)
	found := false
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, errLine) && !strings.HasSuffix(line, " 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected nonzero %s in metrics", errLine)
	}
	if !strings.Contains(metrics, "toss_router_partial_results_total 2") {
		t.Fatalf("expected 2 partial results counted:\n%s", metrics)
	}
}

// TestMidStreamSentinelMerge reproduces PR 6's failure mode across the
// wire: a node that dies mid-stream ends its NDJSON with an {"error":...}
// line. The router must keep merging the surviving node's answers into the
// right global positions and then surface the failure as a partial result
// naming the node.
func TestMidStreamSentinelMerge(t *testing.T) {
	_, realTS := newNode(t)
	// Seed the real node with documents at odd global sequences.
	seed := `{"key":"k1","xml":"<inproceedings><author>Real 1</author></inproceedings>","seq":1}` + "\n" +
		`{"key":"k3","xml":"<inproceedings><author>Real 3</author></inproceedings>","seq":3}` + "\n"
	resp := postNDJSON(t, realTS.URL+"/v1/docs?instance=col", seed)
	resp.Body.Close()

	// The fake node claims seqs 0 and 2, then dies in-band.
	fakeMux := http.NewServeMux()
	fakeMux.HandleFunc("/v1/stats-summary", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"collections":{"col":{"docs":2,"nodes":4,"generation":2,"next_seq":4}}}`)
	})
	fakeMux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"xml":"<inproceedings><author>Fake 0</author></inproceedings>","seq":0}`)
		fmt.Fprintln(w, `{"xml":"<inproceedings><author>Fake 2</author></inproceedings>","seq":2}`)
		fmt.Fprintln(w, `{"error":"shard 1 read failed: disk died"}`)
	})
	fakeTS := httptest.NewServer(fakeMux)
	t.Cleanup(fakeTS.Close)

	rt := newTestRouter(t, realTS.URL, fakeTS.URL)
	w := postQuery(t, rt.Handler(), fmt.Sprintf(`{"instance":"col","pattern":%q,"stream":true,"seqs":true}`, allAuthors))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 4 answers + trailer:\n%s", len(lines), w.Body)
	}
	wantOrder := []string{"Fake 0", "Real 1", "Fake 2", "Real 3"}
	for i, want := range wantOrder {
		var a struct {
			XML string  `json:"xml"`
			Seq *uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &a); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !strings.Contains(a.XML, want) {
			t.Fatalf("line %d: want %q in %s", i, want, a.XML)
		}
		if a.Seq == nil || *a.Seq != uint64(i) {
			t.Fatalf("line %d: seq %v, want %d", i, a.Seq, i)
		}
	}
	var trailer streamTrailer
	if err := json.Unmarshal([]byte(lines[4]), &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Partial || trailer.Node != fakeTS.URL || !strings.Contains(trailer.Error, "disk died") {
		t.Fatalf("trailer %+v, want partial naming %s with the node's error", trailer, fakeTS.URL)
	}

	// Materialised: same failure surfaces as partial with the node named,
	// answers still in global order.
	w = postQuery(t, rt.Handler(), fmt.Sprintf(`{"instance":"col","pattern":%q}`, allAuthors))
	if w.Code != http.StatusOK {
		t.Fatalf("materialised status %d: %s", w.Code, w.Body)
	}
	var rr RoutedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Nodes.Partial || len(rr.Nodes.Failed) != 1 || rr.Nodes.Failed[0] != fakeTS.URL {
		t.Fatalf("nodes %+v, want partial naming %s", rr.Nodes, fakeTS.URL)
	}
	if rr.Count != 4 {
		t.Fatalf("count %d, want 4", rr.Count)
	}
}

// TestIngestLineMappingAndErrors checks client line numbers survive the
// scatter: a bad line in the middle of a routed batch is reported against
// its original position.
func TestIngestLineMappingAndErrors(t *testing.T) {
	_, ts1 := newNode(t)
	_, ts2 := newNode(t)
	rt := newTestRouter(t, ts1.URL, ts2.URL)

	body := docLine(0) + "\n" +
		`{"xml":"<a/>"}` + "\n" + // line 2: missing key
		docLine(1) + "\n" +
		`{"key":"doc-x","delete":true}` + "\n" + // line 4: delete of a key that never existed
		docLine(2) + "\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/docs?instance=col", strings.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var ir RoutedIngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 3 || ir.ErrorCount != 2 {
		t.Fatalf("ingest summary %+v", ir.IngestResponse)
	}
	gotLines := map[int]bool{}
	for _, e := range ir.Errors {
		gotLines[e.Line] = true
	}
	if !gotLines[2] || !gotLines[4] {
		t.Fatalf("error lines %v, want client lines 2 and 4: %+v", gotLines, ir.Errors)
	}
}

// TestIngestPartialOnDeadNode: a dead node fails exactly the lines it
// owned; the rest of the batch lands, and the response names the node and
// the lost client lines.
func TestIngestPartialOnDeadNode(t *testing.T) {
	_, ts1 := newNode(t)
	_, ts2 := newNode(t)
	rt := newTestRouter(t, ts1.URL, ts2.URL)
	// Warm the collection so summaries exist, then kill node 2.
	resp := postNDJSON(t, ts1.URL+"/v1/docs?instance=col", docLine(100)+"\n")
	resp.Body.Close()
	ts2.Close()

	var batch strings.Builder
	const docs = 16
	for i := 0; i < docs; i++ {
		batch.WriteString(docLine(i) + "\n")
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/docs?instance=col", strings.NewReader(batch.String()))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	var ir RoutedIngestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ir); err != nil {
		t.Fatal(err)
	}
	if !ir.Nodes.Partial || len(ir.Nodes.Failed) != 1 || ir.Nodes.Failed[0] != ts2.URL {
		t.Fatalf("nodes %+v, want partial naming %s", ir.Nodes, ts2.URL)
	}
	if ir.Ingested+ir.ErrorCount != docs {
		t.Fatalf("ingested %d + errors %d != %d", ir.Ingested, ir.ErrorCount, docs)
	}
	if ir.Ingested == 0 || ir.ErrorCount == 0 {
		t.Fatalf("expected a split outcome, got ingested=%d errors=%d", ir.Ingested, ir.ErrorCount)
	}
	found := false
	for _, e := range ir.Errors {
		if strings.Contains(e.Err, ts2.URL) && strings.Contains(e.Err, "not applied") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error names the dead node: %+v", ir.Errors)
	}
}

// TestRouterReadyzAndProbe covers the router's own readiness lifecycle
// against live, dead and draining nodes.
func TestRouterReadyzAndProbe(t *testing.T) {
	s1, ts1 := newNode(t)
	_, ts2 := newNode(t)
	rt := newTestRouter(t, ts1.URL, ts2.URL)

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		rt.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	// Before any probe round the router is optimistically ready.
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("pre-probe readyz %d", w.Code)
	}
	if n := rt.ProbeOnce(context.Background()); n != 2 {
		t.Fatalf("probe found %d healthy, want 2", n)
	}
	// One node starts draining: it leaves rotation but the router stays up.
	s1.StartDraining()
	if n := rt.ProbeOnce(context.Background()); n != 1 {
		t.Fatalf("probe found %d healthy, want 1 (one draining)", n)
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz with one healthy node %d", w.Code)
	}
	// All nodes gone: the router has nowhere to route.
	ts1.Close()
	ts2.Close()
	if n := rt.ProbeOnce(context.Background()); n != 0 {
		t.Fatalf("probe found %d healthy, want 0", n)
	}
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "no healthy nodes") {
		t.Fatalf("readyz with dead cluster: %d %s", w.Code, w.Body)
	}
	// Draining overrides everything.
	rt.StartDraining()
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining readyz: %d %s", w.Code, w.Body)
	}
	// Liveness is unaffected.
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz %d", w.Code)
	}
}

// TestProxySingleNodeOps: joins, algebra, analyze and xml rendering proxy
// verbatim on a single-node cluster and refuse with 501 on larger ones.
func TestProxySingleNodeOps(t *testing.T) {
	_, ts1 := newNode(t)
	rt1 := newTestRouter(t, ts1.URL)
	resp := postNDJSON(t, ts1.URL+"/v1/docs?instance=col", docLine(0)+"\n")
	resp.Body.Close()

	w := postQuery(t, rt1.Handler(), `{"expr":"col"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("proxied algebra status %d: %s", w.Code, w.Body)
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Op != "algebra" || qr.Count != 1 {
		t.Fatalf("proxied algebra response %+v", qr)
	}

	_, ts2 := newNode(t)
	rt2 := newTestRouter(t, ts1.URL, ts2.URL)
	w = postQuery(t, rt2.Handler(), `{"expr":"col"}`)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("multi-node algebra status %d, want 501: %s", w.Code, w.Body)
	}
}

// TestUnknownInstanceRouted mirrors tossd's 404 for instances no node holds.
func TestUnknownInstanceRouted(t *testing.T) {
	_, ts1 := newNode(t)
	rt := newTestRouter(t, ts1.URL)
	w := postQuery(t, rt.Handler(), fmt.Sprintf(`{"instance":"nope","pattern":%q}`, allAuthors))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", w.Code, w.Body)
	}
}
