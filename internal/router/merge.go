package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// maxNodeLine bounds one NDJSON line read from a node stream; matches the
// nodes' own ingest-line bound, which is the upper bound on any stored
// document and therefore on any serialised answer.
const maxNodeLine = 16 << 20

// streamPrefetch is the per-node channel buffer: how many decoded answers a
// node stream may run ahead of the merge. It pipelines the gather the same
// way internal/core's asyncStream pipelines shard cursors — the merge never
// waits on a node that already has answers decoded.
const streamPrefetch = 16

// wireLine is one NDJSON line of a node's streamed response: an answer
// ({"xml":...,"seq":...}), the in-band error trailer ({"error":...}) a node
// emits when it fails after answers already went out, or the success trailer
// ({"ontology_version":N}) every complete stream ends with — the ontology
// snapshot version the node's answers were computed on.
type wireLine struct {
	XML             string   `json:"xml"`
	Score           *float64 `json:"score,omitempty"`
	Seq             *uint64  `json:"seq,omitempty"`
	Error           string   `json:"error,omitempty"`
	OntologyVersion *uint64  `json:"ontology_version,omitempty"`
}

// mergeAnswer is one gathered answer with its global merge keys.
type mergeAnswer struct {
	XML      string
	Seq      uint64
	Score    float64
	HasScore bool
}

// nodeStream is one node's contribution to a gather: a channel of decoded
// answers pumped by its own goroutine. err is written (if at all) strictly
// before the channel closes, so after draining ch the merge may read it
// without further synchronisation. version — the ontology snapshot version
// from the node's success trailer (0 until one arrives) — is atomic instead:
// a limit-stopped merge returns without draining to the close, so the gather
// may read it while the pump is still scanning the trailer.
type nodeStream struct {
	n       *node
	ch      chan mergeAnswer
	err     error
	version atomic.Uint64
}

// pump decodes body's NDJSON lines into ns.ch until the stream ends, the
// node reports an in-band error, or ctx is cancelled. Every answer must
// carry a seq — the router asked for them — so a missing one is a protocol
// error, not a tolerable omission: merging an unpositioned answer would
// silently break the global order contract.
func (rt *Router) pump(ctx context.Context, ns *nodeStream, body io.ReadCloser) {
	defer close(ns.ch)
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), maxNodeLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var wl wireLine
		if err := json.Unmarshal(line, &wl); err != nil {
			ns.err = fmt.Errorf("bad stream line: %v", err)
			rt.nodeFailed(ns.n)
			return
		}
		if wl.Error != "" {
			// The node's mid-stream failure sentinel (see internal/server's
			// streamError): everything before it is valid, nothing after it
			// will come. No retry — answers already merged downstream.
			ns.err = errors.New(wl.Error)
			rt.nodeFailed(ns.n)
			return
		}
		if wl.OntologyVersion != nil {
			// The node's success trailer: the stream is complete and its
			// answers were computed on this snapshot version. Keep scanning
			// (it is the last line by protocol, but tolerate trailing blanks).
			ns.version.Store(*wl.OntologyVersion)
			continue
		}
		if wl.Seq == nil {
			ns.err = errors.New("node answer carried no seq")
			rt.nodeFailed(ns.n)
			return
		}
		ma := mergeAnswer{XML: wl.XML, Seq: *wl.Seq}
		if wl.Score != nil {
			ma.Score, ma.HasScore = *wl.Score, true
		}
		select {
		case ns.ch <- ma:
		case <-ctx.Done():
			ns.err = ctx.Err()
			return
		}
	}
	if err := sc.Err(); err != nil {
		ns.err = fmt.Errorf("reading node stream: %v", err)
		rt.nodeFailed(ns.n)
	}
}

func (rt *Router) nodeFailed(n *node) {
	n.errors.Add(1)
}

// mergeBySeq k-way merges the streams by ascending global sequence, calling
// emit for each answer in order; emit returning false stops the merge (the
// caller cancels the fan-out context to release the pumps). A stream that
// dies mid-merge simply stops contributing: the survivors keep merging, and
// the caller reads the casualty's err afterwards to report a partial result.
//
// Order correctness rests on each node emitting its answers in ascending
// seq (document order on the node, which PutXMLAt keeps sorted) and on seqs
// being globally unique across nodes (the router assigns them at ingest).
func mergeBySeq(streams []*nodeStream, emit func(mergeAnswer) bool) {
	heads := make([]*mergeAnswer, len(streams))
	refill := func(i int) {
		if ma, ok := <-streams[i].ch; ok {
			heads[i] = &ma
		} else {
			heads[i] = nil
		}
	}
	for i := range streams {
		refill(i)
	}
	for {
		best := -1
		for i, h := range heads {
			if h != nil && (best == -1 || h.Seq < heads[best].Seq) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		if !emit(*heads[best]) {
			return
		}
		refill(best)
	}
}

// mergeRanked merges per-node ranked answer lists into the global ranking:
// ascending score (the measures are distances — closer is more similar),
// ties by global sequence. Each node list arrives sorted by (score, local
// document order), and document order within a node is seq order, so the
// global sort is a stable merge of sorted inputs; sort.SliceStable on the
// concatenation keeps it simple at router fan-in sizes.
func mergeRanked(lists [][]mergeAnswer) []mergeAnswer {
	var all []mergeAnswer
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}
