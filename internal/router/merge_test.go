package router

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestMergeRankedTieBreakPartitionInvariance is the ranked-gather half of the
// tie-break regression: however the answers are partitioned across nodes (and
// whatever order the node lists arrive in), score ties must break by global
// insertion sequence, so the merged ranking is byte-identical to what a
// single node holding everything would return.
func TestMergeRankedTieBreakPartitionInvariance(t *testing.T) {
	// Twelve answers, three distinct scores: ties dominate the ordering.
	var all []mergeAnswer
	for i := 0; i < 12; i++ {
		all = append(all, mergeAnswer{
			XML:      fmt.Sprintf("<a n=%q/>", fmt.Sprint(i)),
			Seq:      uint64(100 + i),
			Score:    float64(i % 3),
			HasScore: true,
		})
	}
	want := mergeRanked([][]mergeAnswer{all})
	for i := 1; i < len(want); i++ {
		prev, cur := want[i-1], want[i]
		if prev.Score > cur.Score || (prev.Score == cur.Score && prev.Seq > cur.Seq) {
			t.Fatalf("reference ranking not ordered by (score, seq) at %d", i)
		}
	}

	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		nodes := 1 + rng.Intn(4)
		lists := make([][]mergeAnswer, nodes)
		for _, ma := range all {
			n := rng.Intn(nodes)
			lists[n] = append(lists[n], ma)
		}
		// Each node emits its ranking sorted by (score, local seq order),
		// exactly as a node's own top-K produces it.
		for _, l := range lists {
			sort.Slice(l, func(i, j int) bool {
				if l[i].Score != l[j].Score {
					return l[i].Score < l[j].Score
				}
				return l[i].Seq < l[j].Seq
			})
		}
		rng.Shuffle(nodes, func(i, j int) { lists[i], lists[j] = lists[j], lists[i] })
		got := mergeRanked(lists)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d answers, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("trial %d: rank %d is seq %d score %g, want seq %d score %g",
					trial, i, got[i].Seq, got[i].Score, want[i].Seq, want[i].Score)
				break
			}
		}
	}
}
